"""Tests for the cut-to-fit partitioner advisor."""

import pytest

from repro.analysis.advisor import recommend_empirically, recommend_partitioner
from repro.core.properties import summarize
from repro.datasets.generators import road_network, social_graph
from repro.errors import AnalysisError


@pytest.fixture(scope="module")
def road():
    return road_network(rows=8, cols=8, num_components=2, diagonal_prob=0.02, seed=0)


@pytest.fixture(scope="module")
def dense_social():
    return social_graph(
        num_vertices=400,
        num_edges=16_000,
        undirected=True,
        triadic_closure=0.4,
        seed=1,
        name="dense",
    )


class TestHeuristicRecommendation:
    def test_large_dense_graph_gets_2d_for_pagerank(self, dense_social):
        recommendation = recommend_partitioner(dense_social, "PR")
        assert recommendation.partitioner == "2D"
        assert recommendation.metric == "comm_cost"
        assert recommendation.granularity == "coarse"

    def test_road_network_gets_destination_cut(self, road):
        recommendation = recommend_partitioner(road, "PR")
        assert recommendation.partitioner == "DC"
        assert recommendation.metric == "comm_cost"

    def test_triangle_count_recommendation_is_balanced_and_fine_grained(self, dense_social):
        recommendation = recommend_partitioner(dense_social, "TR")
        assert recommendation.partitioner == "CRVC"
        assert recommendation.metric == "cut"
        assert recommendation.granularity == "fine"

    def test_accepts_summary_instead_of_graph(self, road):
        summary = summarize(road)
        by_graph = recommend_partitioner(road, "CC")
        by_summary = recommend_partitioner(summary, "CC")
        assert by_graph.partitioner == by_summary.partitioner

    def test_algorithm_aliases(self, dense_social):
        assert recommend_partitioner(dense_social, "pagerank").algorithm == "PR"
        assert recommend_partitioner(dense_social, "Triangles").algorithm == "TR"
        assert recommend_partitioner(dense_social, "ShortestPaths").algorithm == "SSSP"

    def test_unknown_algorithm_rejected(self, dense_social):
        with pytest.raises(AnalysisError):
            recommend_partitioner(dense_social, "BFS")

    def test_invalid_graph_argument_rejected(self):
        with pytest.raises(AnalysisError):
            recommend_partitioner("not a graph", "PR")

    def test_str_contains_key_fields(self, dense_social):
        text = str(recommend_partitioner(dense_social, "PR"))
        assert "2D" in text
        assert "comm_cost" in text


class TestEmpiricalRecommendation:
    def test_picks_minimum_of_measured_metric(self, road):
        recommendation = recommend_empirically(road, "PR", num_partitions=8)
        assert recommendation.candidates
        best_by_hand = min(recommendation.candidates, key=recommendation.candidates.get)
        assert recommendation.candidates[recommendation.partitioner] == pytest.approx(
            recommendation.candidates[best_by_hand]
        )

    def test_candidate_restriction(self, road):
        recommendation = recommend_empirically(road, "CC", num_partitions=8, candidates=["RVC", "2D"])
        assert set(recommendation.candidates) == {"RVC", "2D"}
        assert recommendation.partitioner in {"RVC", "2D"}

    def test_triangle_count_uses_cut_metric(self, dense_social):
        recommendation = recommend_empirically(dense_social, "TR", num_partitions=8)
        assert recommendation.metric == "cut"

    def test_empty_candidates_rejected(self, road):
        with pytest.raises(AnalysisError):
            recommend_empirically(road, "PR", num_partitions=8, candidates=[])

    def test_rationale_mentions_measurement(self, road):
        recommendation = recommend_empirically(road, "PR", num_partitions=4)
        assert "Measured" in recommendation.rationale
