"""Unit tests for the validation helpers."""

import pytest

from repro.core.graph import Graph
from repro.core.validation import require_non_empty, require_positive_partitions
from repro.errors import GraphValidationError, PartitioningError


class TestRequireNonEmpty:
    def test_passes_for_graph_with_edges(self, triangle_graph):
        require_non_empty(triangle_graph)

    def test_raises_for_empty_graph(self):
        with pytest.raises(GraphValidationError, match="at least one edge"):
            require_non_empty(Graph([], []), context="partitioning")


class TestRequirePositivePartitions:
    @pytest.mark.parametrize("value", [1, 2, 128, 256])
    def test_accepts_positive_integers(self, value):
        require_positive_partitions(value)

    @pytest.mark.parametrize("value", [0, -1, -128])
    def test_rejects_non_positive(self, value):
        with pytest.raises(PartitioningError):
            require_positive_partitions(value)

    @pytest.mark.parametrize("value", [1.5, "8", None, True])
    def test_rejects_non_integers(self, value):
        with pytest.raises(PartitioningError):
            require_positive_partitions(value)
