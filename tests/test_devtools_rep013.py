"""REP013 fixtures: dead private functions."""

from repro.devtools import check_project_sources


def _rep013(sources):
    return [f for f in check_project_sources(sources) if f.rule == "REP013"]


class TestRep013Positives:
    def test_unreferenced_private_function(self):
        findings = _rep013(
            {"src/repro/mod.py": "def _stranded():\n    return 1\n"}
        )
        assert len(findings) == 1
        assert "_stranded" in findings[0].message
        assert findings[0].line == 1

    def test_unreferenced_private_method_uses_qualname(self):
        findings = _rep013(
            {
                "src/repro/mod.py": (
                    "class Engine:\n    def _orphan(self):\n        return 1\n"
                )
            }
        )
        assert len(findings) == 1
        assert "Engine._orphan" in findings[0].message


class TestRep013Negatives:
    def test_called_in_the_same_module(self):
        assert _rep013(
            {
                "src/repro/mod.py": (
                    "def _used():\n    return 1\n\n\ndef public():\n    return _used()\n"
                )
            }
        ) == []

    def test_called_from_another_module(self):
        assert _rep013(
            {
                "src/repro/mod.py": "def _shared():\n    return 1\n",
                "src/repro/other.py": (
                    "from repro.mod import _shared\n\nvalue = _shared()\n"
                ),
            }
        ) == []

    def test_a_test_reference_keeps_it_alive(self):
        assert _rep013(
            {
                "src/repro/mod.py": "def _probed():\n    return 1\n",
                "tests/test_mod.py": (
                    "from repro.mod import _probed\n\n\ndef test_probe():\n"
                    "    assert _probed() == 1\n"
                ),
            }
        ) == []

    def test_string_literal_dispatch_counts(self):
        assert _rep013(
            {
                "src/repro/mod.py": (
                    "def _dispatched():\n    return 1\n\n\n"
                    'TABLE = {"k": "_dispatched"}\n'
                )
            }
        ) == []

    def test_dunder_and_throwaway_are_out_of_scope(self):
        assert _rep013(
            {
                "src/repro/mod.py": (
                    "class C:\n"
                    "    def __enter__(self):\n"
                    "        return self\n\n\n"
                    "def _(ignored):\n    return None\n"
                )
            }
        ) == []

    def test_public_functions_are_not_checked(self):
        assert _rep013(
            {"src/repro/mod.py": "def nobody_calls_me():\n    return 1\n"}
        ) == []

    def test_private_helpers_in_tests_are_exempt(self):
        assert _rep013(
            {"tests/test_mod.py": "def _fixture_helper():\n    return 1\n"}
        ) == []
