"""Correctness and accounting tests for SSSP / landmark shortest paths."""

import networkx as nx
import pytest

from repro.algorithms.shortest_paths import choose_landmarks, shortest_paths
from repro.core.graph import Graph
from repro.engine.partitioned_graph import PartitionedGraph
from repro.errors import EngineError


def _nx_distances_to(graph, landmark):
    """Hop distance from every vertex TO the landmark along edge direction."""
    nx_graph = nx.DiGraph()
    nx_graph.add_nodes_from(graph.vertex_ids.tolist())
    nx_graph.add_edges_from(graph.edge_pairs())
    reversed_graph = nx_graph.reverse()
    return nx.single_source_shortest_path_length(reversed_graph, landmark)


class TestShortestPathsCorrectness:
    def test_chain_distances(self):
        graph = Graph([0, 1, 2], [1, 2, 3])
        pgraph = PartitionedGraph.partition(graph, "RVC", 2)
        result = shortest_paths(pgraph, landmarks=[3])
        assert result.vertex_values[0] == {3: 3}
        assert result.vertex_values[1] == {3: 2}
        assert result.vertex_values[2] == {3: 1}
        assert result.vertex_values[3] == {3: 0}

    def test_unreachable_vertices_have_empty_maps(self, two_component_graph):
        pgraph = PartitionedGraph.partition(two_component_graph, "RVC", 2)
        result = shortest_paths(pgraph, landmarks=[0])
        assert result.vertex_values[10] == {}
        assert result.vertex_values[11] == {}

    def test_matches_networkx_for_single_landmark(self, small_social_graph):
        landmark = choose_landmarks(small_social_graph, count=1, seed=3)[0]
        pgraph = PartitionedGraph.partition(small_social_graph, "CRVC", 8)
        result = shortest_paths(pgraph, landmarks=[landmark])
        expected = _nx_distances_to(small_social_graph, landmark)
        for vertex, value in result.vertex_values.items():
            if vertex in expected:
                assert value.get(landmark) == expected[vertex]
            else:
                assert landmark not in value

    def test_multiple_landmarks(self, small_social_graph):
        landmarks = choose_landmarks(small_social_graph, count=3, seed=5)
        pgraph = PartitionedGraph.partition(small_social_graph, "2D", 8)
        result = shortest_paths(pgraph, landmarks=landmarks)
        for landmark in landmarks:
            assert result.vertex_values[landmark][landmark] == 0
            expected = _nx_distances_to(small_social_graph, landmark)
            for vertex, value in result.vertex_values.items():
                assert value.get(landmark) == expected.get(vertex)

    def test_result_is_partitioning_invariant(self, small_social_graph):
        landmarks = choose_landmarks(small_social_graph, count=2, seed=9)
        maps = [
            shortest_paths(
                PartitionedGraph.partition(small_social_graph, strategy, 8), landmarks
            ).vertex_values
            for strategy in ("RVC", "DC")
        ]
        assert maps[0] == maps[1]


class TestShortestPathsValidation:
    def test_empty_landmarks_rejected(self, partitioned_social):
        with pytest.raises(EngineError):
            shortest_paths(partitioned_social, landmarks=[])

    def test_unknown_landmark_rejected(self, partitioned_social):
        with pytest.raises(EngineError, match="not present"):
            shortest_paths(partitioned_social, landmarks=[10**9])

    def test_choose_landmarks_deterministic_and_valid(self, small_social_graph):
        first = choose_landmarks(small_social_graph, count=5, seed=7)
        second = choose_landmarks(small_social_graph, count=5, seed=7)
        assert first == second
        assert len(first) == 5
        vertex_set = set(small_social_graph.vertex_ids.tolist())
        assert all(v in vertex_set for v in first)

    def test_choose_landmarks_caps_at_vertex_count(self, triangle_graph):
        assert len(choose_landmarks(triangle_graph, count=10)) == 3

    def test_choose_landmarks_empty_graph_rejected(self):
        with pytest.raises(EngineError):
            choose_landmarks(Graph([], []), count=2)


class TestShortestPathsAccounting:
    def test_supersteps_bounded_by_reachability_depth(self):
        graph = Graph([0, 1, 2, 3], [1, 2, 3, 4])
        pgraph = PartitionedGraph.partition(graph, "RVC", 2)
        result = shortest_paths(pgraph, landmarks=[4])
        # Distance information needs 4 hops to reach vertex 0, plus the
        # final empty round and the initial superstep.
        assert result.num_supersteps <= 7
        assert result.simulated_seconds > 0
        assert result.algorithm == "ShortestPaths"
