"""Wrapper-equivalence tests: the legacy harness vs the session planner.

The legacy entry points (``run_algorithm_study``, ``run_partitioning_study``,
``sweep_granularity``, ``recommend_empirically``) are now thin wrappers over
:mod:`repro.session`.  These tests re-implement the *pre-redesign* loops
verbatim and prove the wrappers return record-for-record identical results
(measured wall-clock time aside, which is timing noise by construction).
"""

import dataclasses

import pytest

from repro.algorithms.registry import run_algorithm
from repro.algorithms.shortest_paths import choose_landmarks
from repro.analysis.advisor import recommend_empirically
from repro.analysis.experiments import (
    ExperimentConfig,
    run_algorithm_study,
    run_infrastructure_study,
    run_partitioning_study,
)
from repro.analysis.results import RunRecord
from repro.analysis.sweep import sweep_granularity
from repro.datasets.catalog import load_dataset
from repro.engine.cluster import paper_cluster
from repro.engine.partitioned_graph import PartitionedGraph
from repro.errors import AnalysisError
from repro.metrics.partition_metrics import compute_metrics
from repro.partitioning.registry import make_partitioner
from repro.session import Session

SCALE = 0.08
SEED = 4


def _strip_wall(record):
    return dataclasses.replace(record, wall_seconds=0.0)


def _legacy_algorithm_study(config, graphs):
    """The pre-redesign run_algorithm_study loop, verbatim."""
    cluster = config.cluster or paper_cluster()
    records = []
    for dataset_name in config.datasets:
        graph = graphs[dataset_name]
        landmarks = None
        if config.algorithm.upper() == "SSSP":
            landmarks = choose_landmarks(graph, count=config.landmark_count, seed=config.seed + 7)
        for partitioner_name in config.partitioners:
            pgraph = PartitionedGraph.partition(graph, partitioner_name, config.num_partitions)
            result = run_algorithm(
                config.algorithm,
                pgraph,
                num_iterations=config.num_iterations,
                landmarks=landmarks,
                cluster=cluster,
                cost_parameters=config.cost_parameters,
                backend=config.backend,
            )
            records.append(
                RunRecord(
                    dataset=dataset_name,
                    partitioner=partitioner_name,
                    num_partitions=config.num_partitions,
                    algorithm=config.algorithm.upper(),
                    metrics=pgraph.metrics,
                    simulated_seconds=result.simulated_seconds,
                    num_supersteps=result.num_supersteps,
                    backend=result.backend,
                    wall_seconds=result.wall_seconds,
                )
            )
    return records


@pytest.fixture(scope="module")
def graphs():
    return {name: load_dataset(name, scale=SCALE, seed=SEED) for name in ("youtube", "pokec")}


class TestAlgorithmStudyEquivalence:
    @pytest.mark.parametrize("algorithm", ["PR", "CC", "SSSP"])
    def test_wrapper_matches_legacy_loop(self, graphs, algorithm):
        config = ExperimentConfig(
            algorithm=algorithm,
            num_partitions=6,
            datasets=list(graphs),
            partitioners=["RVC", "2D", "DC"],
            scale=SCALE,
            seed=SEED,
            num_iterations=3,
            landmark_count=2,
        )
        legacy = [_strip_wall(r) for r in _legacy_algorithm_study(config, graphs)]
        wrapped = [_strip_wall(r) for r in run_algorithm_study(config, graphs=graphs)]
        assert wrapped == legacy

    def test_shared_session_reuses_placements_across_studies(self, graphs):
        session = Session(scale=SCALE, seed=SEED, graphs=graphs)
        base = dict(
            num_partitions=6,
            datasets=list(graphs),
            partitioners=["RVC", "2D"],
            scale=SCALE,
            seed=SEED,
            num_iterations=2,
        )
        run_algorithm_study(ExperimentConfig(algorithm="PR", **base), session=session)
        builds_after_first = session.stats.partition_misses
        assert builds_after_first == 2 * 2
        run_algorithm_study(ExperimentConfig(algorithm="CC", **base), session=session)
        assert session.stats.partition_misses == builds_after_first  # all cache hits

    def test_missing_supplied_graph_still_rejected(self, graphs):
        config = ExperimentConfig(algorithm="PR", datasets=["youtube", "nosuch"], num_partitions=4)
        with pytest.raises(AnalysisError):
            run_algorithm_study(config, graphs={"youtube": graphs["youtube"]})

    def test_mismatched_session_scale_rejected_for_catalog_loads(self):
        # A shared session must not silently load datasets at the wrong
        # scale/seed when the config asks for different values.
        session = Session(scale=0.2, seed=0)
        config = ExperimentConfig(
            algorithm="PR", num_partitions=4, datasets=["youtube"], scale=SCALE, seed=SEED
        )
        with pytest.raises(AnalysisError, match="does not match"):
            run_algorithm_study(config, session=session)

    def test_mismatched_session_scale_allowed_for_registered_graphs(self, graphs):
        # Registered graphs are served as-is regardless of scale/seed (the
        # legacy graphs= contract), so the mismatch guard must not fire.
        session = Session(scale=0.2, seed=0, graphs=graphs)
        config = ExperimentConfig(
            algorithm="PR",
            num_partitions=4,
            datasets=list(graphs),
            partitioners=["RVC"],
            scale=SCALE,
            seed=SEED,
            num_iterations=2,
        )
        records = run_algorithm_study(config, session=session)
        assert len(records) == 2


class TestPartitioningStudyEquivalence:
    def test_duplicate_dataset_names_keep_one_row_per_partitioner(self, graphs):
        # The legacy loop assigned table[name] per dataset iteration, so a
        # duplicated name ended with one row per partitioner — not doubled.
        table = run_partitioning_study(
            4, datasets=["youtube", "youtube"], partitioners=["RVC", "2D"], graphs=graphs
        )
        assert list(table) == ["youtube"]
        assert [m.strategy for m in table["youtube"]] == ["RVC", "2D"]

    def test_wrapper_matches_legacy_loop(self, graphs):
        partitioners = ["RVC", "1D", "2D", "DC"]
        legacy = {
            name: [
                compute_metrics(make_partitioner(p).assign(graph, 6)) for p in partitioners
            ]
            for name, graph in graphs.items()
        }
        wrapped = run_partitioning_study(
            6, datasets=list(graphs), partitioners=partitioners, graphs=graphs
        )
        assert wrapped == legacy


class TestSweepEquivalence:
    def _legacy_sweep(self, graph, counts, partitioners, algorithm, num_iterations):
        """The pre-redesign sweep_granularity loop, verbatim."""
        points = []
        for num_partitions in counts:
            for name in partitioners:
                pgraph = PartitionedGraph.partition(graph, name, num_partitions)
                seconds = None
                if algorithm is not None:
                    result = run_algorithm(
                        algorithm, pgraph, num_iterations=num_iterations
                    )
                    seconds = result.simulated_seconds
                points.append((name, num_partitions, pgraph.metrics, seconds))
        return points

    @pytest.mark.parametrize("algorithm", [None, "PR"])
    def test_wrapper_matches_legacy_loop(self, small_social_graph, algorithm):
        counts = [4, 8]
        partitioners = ["RVC", "2D", "DC"]
        legacy = self._legacy_sweep(small_social_graph, counts, partitioners, algorithm, 2)
        sweep = sweep_granularity(
            small_social_graph,
            counts,
            partitioners=partitioners,
            algorithm=algorithm,
            num_iterations=2,
        )
        observed = [
            (p.partitioner, p.num_partitions, p.metrics, p.simulated_seconds)
            for p in sweep.points
        ]
        assert observed == legacy

    def test_sweep_refuses_a_conflicting_graph_on_a_shared_session(
        self, small_social_graph, small_road_graph, monkeypatch
    ):
        # Two different graphs answering to the same name on one session
        # would silently cross-contaminate the cache; the wrapper must raise.
        session = Session()
        monkeypatch.setattr(small_road_graph, "name", small_social_graph.name)
        sweep_granularity(small_social_graph, [4], partitioners=["RVC"], session=session)
        with pytest.raises(AnalysisError, match="different graph"):
            sweep_granularity(small_road_graph, [4], partitioners=["RVC"], session=session)

    def test_sweep_reuses_a_shared_session(self, small_social_graph):
        session = Session()
        sweep_granularity(
            small_social_graph, [4, 8], partitioners=["RVC", "2D"], session=session
        )
        assert session.stats.partition_misses == 4
        # Second sweep over a subset: nothing new to partition.
        sweep_granularity(
            small_social_graph, [4], partitioners=["RVC"], session=session
        )
        assert session.stats.partition_misses == 4


class TestAdvisorEquivalence:
    def test_empirical_recommendation_matches_direct_measurement(self, small_social_graph):
        candidates = ["RVC", "2D", "DC"]
        recommendation = recommend_empirically(
            small_social_graph, "PR", num_partitions=8, candidates=candidates
        )
        legacy_scores = {
            name: compute_metrics(
                make_partitioner(name).assign(small_social_graph, 8)
            ).value("comm_cost")
            for name in candidates
        }
        assert recommendation.candidates == legacy_scores
        assert recommendation.partitioner == min(
            legacy_scores, key=lambda name: (legacy_scores[name], candidates.index(name))
        )

    def test_advisor_shares_the_session_cache(self, small_social_graph):
        session = Session()
        recommend_empirically(
            small_social_graph, "PR", num_partitions=8,
            candidates=["RVC", "2D"], session=session,
        )
        assert session.stats.partition_misses == 2
        # The study that follows the advice reuses the advisor's placements.
        sweep_granularity(
            small_social_graph, [8], partitioners=["RVC", "2D"],
            algorithm="PR", num_iterations=2, session=session,
        )
        assert session.stats.partition_misses == 2


class TestInfrastructureStudySession:
    def test_shared_session_reuses_the_placement(self, graphs):
        session = Session(scale=SCALE, seed=SEED, graphs=graphs)
        first = run_infrastructure_study(
            dataset="youtube", partitioner="2D", num_partitions=8,
            num_iterations=2, session=session,
        )
        assert session.stats.partition_misses == 1
        second = run_infrastructure_study(
            dataset="youtube", partitioner="2D", num_partitions=8,
            num_iterations=2, session=session,
        )
        assert session.stats.partition_misses == 1
        assert [r.simulated_seconds for r in first] == [r.simulated_seconds for r in second]
