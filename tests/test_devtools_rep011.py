"""REP011 fixtures: import cycles across repro.* modules."""

from repro.devtools import check_project_sources


def _rep011(sources):
    return [f for f in check_project_sources(sources) if f.rule == "REP011"]


class TestRep011Positives:
    def test_two_module_cycle_reports_once(self):
        findings = _rep011(
            {
                "src/repro/a.py": "from repro.b import beta\nalpha = 1\n",
                "src/repro/b.py": "from repro.a import alpha\nbeta = 2\n",
            }
        )
        assert len(findings) == 1
        finding = findings[0]
        assert finding.path == "src/repro/a.py"  # lexicographically first
        assert finding.line == 1  # the offending import line
        assert "repro.a -> repro.b -> repro.a" in finding.message

    def test_three_module_scc_reports_the_minimal_cycle(self):
        findings = _rep011(
            {
                "src/repro/a.py": "import repro.b\nimport repro.c\n",
                "src/repro/b.py": "import repro.c\n",
                "src/repro/c.py": "import repro.a\n",
            }
        )
        assert len(findings) == 1
        # BFS from repro.a finds the 2-hop loop a -> c -> a, not the
        # 3-hop one through b.
        assert "repro.a -> repro.c -> repro.a" in findings[0].message

    def test_two_disjoint_cycles_are_two_findings(self):
        findings = _rep011(
            {
                "src/repro/a.py": "import repro.b\n",
                "src/repro/b.py": "import repro.a\n",
                "src/repro/x.py": "import repro.y\n",
                "src/repro/y.py": "import repro.x\n",
            }
        )
        assert len(findings) == 2

    def test_from_package_import_submodule_resolves_the_edge(self):
        findings = _rep011(
            {
                "src/repro/pkg/__init__.py": "",
                "src/repro/pkg/a.py": "from repro.pkg import b\n",
                "src/repro/pkg/b.py": "from repro.pkg import a\n",
            }
        )
        assert len(findings) == 1


class TestRep011Negatives:
    def test_acyclic_imports_are_fine(self):
        assert _rep011(
            {
                "src/repro/a.py": "import repro.b\n",
                "src/repro/b.py": "import repro.c\n",
                "src/repro/c.py": "c = 1\n",
            }
        ) == []

    def test_function_scope_import_breaks_the_cycle(self):
        assert _rep011(
            {
                "src/repro/a.py": "from repro.b import beta\n",
                "src/repro/b.py": (
                    "def late():\n    from repro.a import alpha\n    return alpha\n"
                ),
            }
        ) == []

    def test_type_checking_import_breaks_the_cycle(self):
        assert _rep011(
            {
                "src/repro/a.py": "from repro.b import beta\n",
                "src/repro/b.py": (
                    "from typing import TYPE_CHECKING\n"
                    "if TYPE_CHECKING:\n"
                    "    from repro.a import alpha\n"
                ),
            }
        ) == []

    def test_cycles_through_test_modules_do_not_count(self):
        assert _rep011(
            {
                "src/repro/a.py": "a = 1\n",
                "tests/test_a.py": "import repro.a\nimport tests.test_b\n",
                "tests/test_b.py": "import tests.test_a\n",
            }
        ) == []
