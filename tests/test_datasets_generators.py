"""Unit tests for the synthetic graph generators."""

import pytest

from repro.core import properties as props
from repro.datasets.generators import ring_of_cliques, road_network, social_graph
from repro.errors import DatasetError


class TestRoadNetwork:
    def test_grid_size_and_symmetry(self):
        graph = road_network(rows=4, cols=5, num_components=1, diagonal_prob=0.0, seed=0)
        assert graph.num_vertices == 20
        # 4x5 grid: horizontal edges 4*4, vertical edges 3*5, both directions.
        assert graph.num_edges == 2 * (4 * 4 + 3 * 5)
        assert props.symmetry_percent(graph) == 100.0

    def test_component_count(self):
        graph = road_network(rows=3, cols=3, num_components=4, diagonal_prob=0.0, seed=0)
        assert props.num_weakly_connected_components(graph) == 4
        assert graph.num_vertices == 36

    def test_ids_are_locality_preserving(self):
        graph = road_network(rows=4, cols=4, num_components=1, diagonal_prob=0.0, seed=0)
        # Every edge connects ids that differ by 1 (same row) or by the
        # column count (adjacent rows).
        for src, dst in graph.edge_pairs():
            assert abs(src - dst) in (1, 4)

    def test_diagonals_add_triangles(self):
        without = road_network(rows=6, cols=6, diagonal_prob=0.0, seed=1)
        with_diagonals = road_network(rows=6, cols=6, diagonal_prob=1.0, seed=1)
        assert props.triangle_count(without) == 0
        assert props.triangle_count(with_diagonals) > 0

    def test_deterministic(self):
        first = road_network(rows=5, cols=5, diagonal_prob=0.3, seed=42)
        second = road_network(rows=5, cols=5, diagonal_prob=0.3, seed=42)
        assert first.edge_set() == second.edge_set()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rows": 1, "cols": 5},
            {"rows": 5, "cols": 1},
            {"rows": 3, "cols": 3, "num_components": 0},
            {"rows": 3, "cols": 3, "diagonal_prob": 1.5},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(DatasetError):
            road_network(**kwargs)


class TestSocialGraph:
    def test_deterministic_for_same_seed(self):
        first = social_graph(num_vertices=100, num_edges=400, seed=5)
        second = social_graph(num_vertices=100, num_edges=400, seed=5)
        assert first.edge_set() == second.edge_set()

    def test_different_seeds_differ(self):
        first = social_graph(num_vertices=100, num_edges=400, seed=5)
        second = social_graph(num_vertices=100, num_edges=400, seed=6)
        assert first.edge_set() != second.edge_set()

    def test_edge_count_close_to_target(self):
        graph = social_graph(num_vertices=200, num_edges=1000, seed=1, connect=False)
        assert graph.num_edges >= 1000
        assert graph.num_edges <= 1400  # reciprocity/closure overshoot is bounded

    def test_undirected_graphs_are_fully_symmetric(self):
        graph = social_graph(num_vertices=150, num_edges=600, undirected=True, seed=2)
        assert props.symmetry_percent(graph) == 100.0

    def test_reciprocity_controls_symmetry(self):
        low = social_graph(num_vertices=200, num_edges=1200, reciprocity=0.05, seed=3)
        high = social_graph(num_vertices=200, num_edges=1200, reciprocity=0.9, seed=3)
        assert props.symmetry_percent(low) < props.symmetry_percent(high)

    def test_zero_fraction_roles_produce_leaf_vertices(self):
        graph = social_graph(
            num_vertices=300,
            num_edges=1500,
            zero_in_fraction=0.3,
            zero_out_fraction=0.2,
            reciprocity=0.2,
            seed=4,
        )
        assert props.zero_in_percent(graph) > 15.0
        assert props.zero_out_percent(graph) > 8.0

    def test_connect_produces_single_component(self):
        graph = social_graph(num_vertices=200, num_edges=600, connect=True, num_components=1, seed=7)
        assert props.num_weakly_connected_components(graph) == 1

    def test_satellite_components(self):
        graph = social_graph(
            num_vertices=300, num_edges=900, connect=True, num_components=6, seed=8
        )
        assert props.num_weakly_connected_components(graph) == 6

    def test_superstars_create_heavy_tail(self):
        graph = social_graph(
            num_vertices=400,
            num_edges=2000,
            superstar_count=5,
            superstar_boost=50.0,
            reciprocity=0.1,
            seed=9,
        )
        in_degrees = sorted(graph.in_degrees().values(), reverse=True)
        mean_degree = sum(in_degrees) / len(in_degrees)
        assert in_degrees[0] > 8 * mean_degree

    def test_triadic_closure_increases_triangles(self):
        open_graph = social_graph(num_vertices=200, num_edges=1200, triadic_closure=0.0, seed=10)
        closed_graph = social_graph(num_vertices=200, num_edges=1200, triadic_closure=0.7, seed=10)
        assert props.triangle_count(closed_graph) > props.triangle_count(open_graph)

    def test_shuffle_ids_changes_labels_not_structure(self):
        plain = social_graph(num_vertices=150, num_edges=500, shuffle_ids=False, seed=11)
        shuffled = social_graph(num_vertices=150, num_edges=500, shuffle_ids=True, seed=11)
        assert plain.num_edges == shuffled.num_edges
        assert plain.edge_set() != shuffled.edge_set()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_vertices": 1, "num_edges": 5},
            {"num_vertices": 10, "num_edges": 0},
            {"num_vertices": 10, "num_edges": 5, "exponent": 1.0},
            {"num_vertices": 10, "num_edges": 5, "reciprocity": 1.2},
            {"num_vertices": 10, "num_edges": 5, "zero_in_fraction": 0.6, "zero_out_fraction": 0.5},
            {"num_vertices": 10, "num_edges": 5, "num_components": 0},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(DatasetError):
            social_graph(seed=0, **kwargs)


class TestRingOfCliques:
    def test_structure(self):
        graph = ring_of_cliques(num_cliques=3, clique_size=4)
        assert graph.num_vertices == 12
        assert props.symmetry_percent(graph) == 100.0
        assert props.num_weakly_connected_components(graph) == 1
        # Each 4-clique contributes C(4,3)=4 triangles.
        assert props.triangle_count(graph) >= 12

    def test_single_clique(self):
        graph = ring_of_cliques(num_cliques=1, clique_size=5)
        assert props.triangle_count(graph) == 10

    def test_invalid_parameters(self):
        with pytest.raises(DatasetError):
            ring_of_cliques(0, 4)
        with pytest.raises(DatasetError):
            ring_of_cliques(3, 1)
