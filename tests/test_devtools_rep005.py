"""REP005 fixtures: deprecated shims outside tests and defining modules."""

import textwrap

from repro.devtools import check_source


def _rep005(source, path="src/repro/metrics/partition_metrics.py"):
    findings = check_source(textwrap.dedent(source), path=path)
    return [f for f in findings if f.rule == "REP005"]


class TestRep005Positives:
    def test_vertex_partitions_method_call(self):
        findings = _rep005("parts = assignment.vertex_partitions()\n")
        assert len(findings) == 1
        assert "membership()" in findings[0].message

    def test_pocek_alias_literal(self):
        findings = _rep005('graph = load_dataset("pocek")\n')
        assert len(findings) == 1
        assert "pokec" in findings[0].message


class TestRep005Negatives:
    def test_tests_may_pin_the_shims(self):
        source = 'assignment.vertex_partitions()\nload_dataset("pocek")\n'
        assert _rep005(source, path="tests/test_datasets_catalog.py") == []

    def test_defining_modules_are_exempt(self):
        assert (
            _rep005(
                "self.vertex_partitions().items()",
                path="src/repro/partitioning/base.py",
            )
            == []
        )
        assert (
            _rep005(
                '_DEPRECATED_ALIASES = {"pocek": "pokec"}',
                path="src/repro/datasets/catalog.py",
            )
            == []
        )

    def test_reference_variant_is_a_different_api(self):
        assert _rep005("assignment.vertex_partitions_reference()\n") == []

    def test_correct_dataset_spelling(self):
        assert _rep005('graph = load_dataset("pokec")\n') == []
