"""The out-of-core equivalence zoo.

Chunked placement must equal whole-array placement edge for edge, and
algorithms over memory-mapped shards must be *bit-identical* to the
in-memory engine: same vertex values, same ``SuperstepRecord`` counters,
at every chunk size.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.algorithms import (
    choose_landmarks,
    connected_components,
    pagerank,
    shortest_paths,
)
from repro.core.graph import Graph
from repro.engine.partitioned_graph import PartitionedGraph
from repro.errors import PartitioningError
from repro.ooc import GraphChunkSource, ingest_source, load_sharded_graph
from repro.partitioning.registry import make_partitioner
from repro.session.store import ArtifactStore

#: Strategies with a genuine streaming path: stateful scorers plus the
#: stateless hash families (which stream through the same protocol).
STREAMING_STRATEGIES = ["Greedy", "HDRF", "Fennel", "1D", "2D", "RVC", "CRVC"]

#: Whole-graph-degree strategies that must refuse to stream.
NON_STREAMING_STRATEGIES = ["DBH", "Hybrid"]


def _zoo():
    """Adversarial little graphs: duplicate edges, self-loops, sparse ids."""
    dup = Graph(
        [0, 1, 0, 1, 0, 2, 2, 1, 0, 1],
        [1, 0, 1, 2, 1, 0, 0, 2, 1, 0],
        name="dup-edges",
    )
    loops = Graph(
        [0, 1, 1, 2, 3, 3, 0],
        [0, 1, 2, 2, 3, 0, 3],
        name="self-loops",
    )
    sparse = Graph(
        [5, 1000, 7, 99999, 5, 1000_000],
        [1000, 5, 99999, 7, 1000_000, 5],
        name="sparse-ids",
    )
    return [dup, loops, sparse]


def _chunked_placement(strategy, graph, num_partitions, chunk_edges):
    assigner = strategy.begin_stream(num_partitions, graph.num_edges)
    placements = []
    for start in range(0, graph.num_edges, chunk_edges):
        stop = min(start + chunk_edges, graph.num_edges)
        placements.append(
            assigner.assign_chunk(graph.src[start:stop], graph.dst[start:stop])
        )
    assigner.finish()
    if not placements:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(placements)


class TestChunkedPlacementEquivalence:
    @pytest.mark.parametrize("name", STREAMING_STRATEGIES)
    def test_assign_chunk_matches_assign_on_the_zoo(self, name):
        strategy = make_partitioner(name)
        for graph in _zoo():
            whole = strategy.assign(graph, 3).partition_of
            for chunk_edges in (1, 2, 3, 100):
                chunked = _chunked_placement(
                    make_partitioner(name), graph, 3, chunk_edges
                )
                np.testing.assert_array_equal(
                    chunked, whole, err_msg=f"{name} on {graph.name} @ {chunk_edges}"
                )

    @pytest.mark.parametrize("name", STREAMING_STRATEGIES)
    def test_assign_chunk_matches_assign_on_a_social_graph(
        self, name, small_social_graph
    ):
        whole = make_partitioner(name).assign(small_social_graph, 8).partition_of
        for chunk_edges in (17, 256):
            chunked = _chunked_placement(
                make_partitioner(name), small_social_graph, 8, chunk_edges
            )
            np.testing.assert_array_equal(chunked, whole)

    @pytest.mark.parametrize("name", NON_STREAMING_STRATEGIES)
    def test_whole_graph_strategies_refuse_to_stream(self, name):
        with pytest.raises(PartitioningError, match="stream"):
            make_partitioner(name).begin_stream(4, 100)


def _records(report):
    return [vars(record) for record in report.supersteps]


def _ingest(tmp_path, graph, strategy_name, num_partitions, chunk_edges):
    store = ArtifactStore(tmp_path / "store")
    sharded, _ = ingest_source(
        store,
        GraphChunkSource(graph, chunk_edges=chunk_edges),
        strategy_name,
        num_partitions,
        chunk_edges=chunk_edges,
    )
    return store, sharded


class TestAlgorithmBitIdentity:
    @pytest.mark.parametrize("strategy", ["Greedy", "HDRF", "Fennel"])
    def test_pagerank_matches_in_memory(self, tmp_path, small_social_graph, strategy):
        pgraph = PartitionedGraph.partition(small_social_graph, strategy, 8)
        expected = pagerank(pgraph, num_iterations=5)
        _, sharded = _ingest(tmp_path, small_social_graph, strategy, 8, chunk_edges=53)
        actual = pagerank(sharded, num_iterations=5)
        assert actual.vertex_values == expected.vertex_values
        assert _records(actual.report) == _records(expected.report)

    def test_connected_components_matches_in_memory(self, tmp_path, two_component_graph):
        pgraph = PartitionedGraph.partition(two_component_graph, "Greedy", 3)
        expected = connected_components(pgraph)
        _, sharded = _ingest(tmp_path, two_component_graph, "Greedy", 3, chunk_edges=2)
        actual = connected_components(sharded)
        assert actual.vertex_values == expected.vertex_values
        assert _records(actual.report) == _records(expected.report)

    def test_shortest_paths_matches_in_memory(self, tmp_path, small_social_graph):
        landmarks = choose_landmarks(small_social_graph, count=3, seed=5)
        pgraph = PartitionedGraph.partition(small_social_graph, "HDRF", 4)
        expected = shortest_paths(pgraph, landmarks)
        _, sharded = _ingest(tmp_path, small_social_graph, "HDRF", 4, chunk_edges=97)
        actual = shortest_paths(sharded, landmarks)
        assert actual.vertex_values == expected.vertex_values
        assert _records(actual.report) == _records(expected.report)

    def test_streaming_chunk_size_does_not_change_results(
        self, tmp_path, small_social_graph
    ):
        pgraph = PartitionedGraph.partition(small_social_graph, "Fennel", 4)
        expected = pagerank(pgraph, num_iterations=4)
        _, sharded = _ingest(tmp_path, small_social_graph, "Fennel", 4, chunk_edges=700)
        for chunk_edges in (1, 19, 10_000):
            sharded.chunk_edges = chunk_edges
            actual = pagerank(sharded, num_iterations=4)
            assert actual.vertex_values == expected.vertex_values
            assert _records(actual.report) == _records(expected.report)

    def test_array_mode_over_shards_matches_too(self, tmp_path, small_social_graph):
        # stream_supersteps=False routes shards through the plain array
        # engine (materialised triplets) — the bridge the equivalence
        # arguments rest on.
        pgraph = PartitionedGraph.partition(small_social_graph, "Greedy", 4)
        expected = pagerank(pgraph, num_iterations=4)
        _, sharded = _ingest(tmp_path, small_social_graph, "Greedy", 4, chunk_edges=100)
        sharded.stream_supersteps = False
        actual = pagerank(sharded, num_iterations=4)
        assert actual.vertex_values == expected.vertex_values
        assert _records(actual.report) == _records(expected.report)

    def test_membership_and_partitions_match(self, tmp_path, small_social_graph):
        pgraph = PartitionedGraph.partition(small_social_graph, "HDRF", 6)
        _, sharded = _ingest(tmp_path, small_social_graph, "HDRF", 6, chunk_edges=64)
        assert sharded.num_partitions == pgraph.num_partitions
        for mem, ooc in zip(pgraph.partitions, sharded.partitions):
            assert mem.num_edges == ooc.num_edges
            np.testing.assert_array_equal(mem.vertex_ids, ooc.vertex_ids)
            if ooc.num_edges:
                mem_src, mem_dst = mem.local_triplets()
                ooc_src, ooc_dst = ooc.local_triplets()
                np.testing.assert_array_equal(mem_src, ooc_src)
                np.testing.assert_array_equal(mem_dst, ooc_dst)


class TestMmapDiscipline:
    def test_local_triplets_views_are_read_only(self, tmp_path, small_social_graph):
        _, sharded = _ingest(tmp_path, small_social_graph, "Greedy", 4, chunk_edges=100)
        partition = next(p for p in sharded.partitions if p.num_edges)
        src, dst = partition.local_triplets()
        for view in (src, dst):
            with pytest.raises(ValueError):
                view[0] = 7

    def test_release_then_reuse(self, tmp_path, small_social_graph):
        _, sharded = _ingest(tmp_path, small_social_graph, "Greedy", 4, chunk_edges=100)
        partition = next(p for p in sharded.partitions if p.num_edges)
        before = np.asarray(partition.local_triplets()[0]).copy()
        sharded.release()
        after = np.asarray(partition.local_triplets()[0])
        np.testing.assert_array_equal(before, after)


class TestCorruptionRecovery:
    def _shard_files(self, store):
        root = Path(store.root) / "shards"
        return sorted(root.glob("*.p*.npy")), sorted(root.glob("*.vtx.npz"))

    def test_truncated_partition_file_is_a_counted_miss_and_rebuilds(
        self, tmp_path, small_social_graph
    ):
        store, sharded = _ingest(tmp_path, small_social_graph, "Greedy", 4, chunk_edges=100)
        baseline = pagerank(sharded, num_iterations=3).vertex_values
        partition_files, _ = self._shard_files(store)
        assert partition_files
        victim = partition_files[0]
        victim.write_bytes(victim.read_bytes()[: victim.stat().st_size // 2])

        source = GraphChunkSource(small_social_graph, chunk_edges=100)
        rebuilt, report = ingest_source(store, source, "Greedy", 4, chunk_edges=100)
        assert report.reused is False
        stats = store.stats("shards")
        assert stats.misses >= 1
        assert pagerank(rebuilt, num_iterations=3).vertex_values == baseline

    def test_corrupt_vertex_table_is_a_counted_miss_and_rebuilds(
        self, tmp_path, small_social_graph
    ):
        store, sharded = _ingest(tmp_path, small_social_graph, "HDRF", 3, chunk_edges=64)
        _, vertex_tables = self._shard_files(store)
        assert vertex_tables
        vertex_tables[0].write_bytes(b"not a zip at all")
        misses_before = store.stats("shards").misses
        source = GraphChunkSource(small_social_graph, chunk_edges=64)
        rebuilt, report = ingest_source(store, source, "HDRF", 3, chunk_edges=64)
        assert report.reused is False
        assert store.stats("shards").misses == misses_before + 1
        assert rebuilt.graph.num_edges == small_social_graph.num_edges

    def test_deleted_manifest_is_a_plain_miss(self, tmp_path, small_social_graph):
        store, _ = _ingest(tmp_path, small_social_graph, "Fennel", 3, chunk_edges=64)
        for manifest in (Path(store.root) / "shards").glob("*.json"):
            manifest.unlink()
        key = ArtifactStore.shard_key(small_social_graph.name, "Fennel", 3, 1.0, 0)
        misses_before = store.stats("shards").misses
        assert load_sharded_graph(store, key) is None
        assert store.stats("shards").misses == misses_before + 1
