"""Unit tests for the ASCII figure rendering."""

import pytest

from repro.analysis.plots import ascii_scatter, loglog_histogram, scatter_from_records
from repro.analysis.results import RunRecord
from repro.core.properties import degree_histogram
from repro.errors import AnalysisError
from repro.metrics.partition_metrics import compute_metrics
from repro.partitioning.registry import make_partitioner


class TestAsciiScatter:
    def test_contains_axes_and_extremes(self):
        plot = ascii_scatter([(0, 0), (10, 5), (5, 2.5)], x_label="metric", y_label="time")
        assert "metric" in plot
        assert "time" in plot
        assert "0" in plot and "10" in plot
        assert "+" in plot and "-" in plot  # axis drawing

    def test_series_get_distinct_marks_and_legend(self):
        plot = ascii_scatter(
            [(1, 1), (2, 2), (3, 3)],
            labels=["a", "b", "a"],
            x_label="x",
            y_label="y",
        )
        assert "legend:" in plot
        assert "o=a" in plot
        assert "x=b" in plot

    def test_log_scale_requires_positive_values(self):
        with pytest.raises(AnalysisError):
            ascii_scatter([(0, 1), (1, 2)], log_x=True)

    def test_single_point_and_constant_values(self):
        plot = ascii_scatter([(5, 7)])
        assert isinstance(plot, str)
        assert plot.count("o") == 1

    def test_empty_points_rejected(self):
        with pytest.raises(AnalysisError):
            ascii_scatter([])

    def test_tiny_plot_area_rejected(self):
        with pytest.raises(AnalysisError):
            ascii_scatter([(1, 1)], width=3, height=2)

    def test_label_length_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            ascii_scatter([(1, 1), (2, 2)], labels=["only-one"])

    def test_dimensions_respected(self):
        plot = ascii_scatter([(0, 0), (1, 1)], width=30, height=10)
        grid_lines = [line for line in plot.splitlines() if "|" in line]
        assert len(grid_lines) == 10
        assert all(len(line.split("|", 1)[1]) <= 30 for line in grid_lines)


class TestScatterFromRecords:
    def test_renders_one_series_per_dataset(self, small_social_graph, small_road_graph):
        records = []
        for dataset, graph in (("social", small_social_graph), ("road", small_road_graph)):
            for name in ("RVC", "2D"):
                metrics = compute_metrics(make_partitioner(name).assign(graph, 8))
                records.append(
                    RunRecord(dataset, name, 8, "PR", metrics, metrics.comm_cost / 1000.0, 5)
                )
        plot = scatter_from_records(records, metric="comm_cost")
        assert "legend:" in plot
        assert "social" in plot and "road" in plot
        assert "comm_cost" in plot

    def test_empty_records_rejected(self):
        with pytest.raises(AnalysisError):
            scatter_from_records([])


class TestLogLogHistogram:
    def test_renders_degree_distribution(self, small_social_graph):
        histogram = degree_histogram(small_social_graph, "in")
        plot = loglog_histogram(histogram)
        assert "log10(degree)" in plot
        assert "log10(vertices)" in plot

    def test_requires_positive_entries(self):
        with pytest.raises(AnalysisError):
            loglog_histogram({0: 10})
