"""Unit tests for GraphBuilder."""

import pytest

from repro.core.builder import GraphBuilder
from repro.errors import GraphValidationError


class TestGraphBuilder:
    def test_chained_building(self):
        graph = GraphBuilder(name="toy").add_edge(0, 1).add_edge(1, 2).build()
        assert graph.name == "toy"
        assert graph.edge_set() == {(0, 1), (1, 2)}

    def test_add_edges_bulk(self):
        builder = GraphBuilder()
        builder.add_edges([(0, 1), (1, 2), (2, 3)])
        assert builder.num_pending_edges == 3
        assert builder.build().num_edges == 3

    def test_add_vertex_registers_isolated_vertex(self):
        graph = GraphBuilder().add_edge(0, 1).add_vertex(10).build()
        assert 10 in graph.vertex_ids.tolist()
        assert graph.num_vertices == 3

    def test_add_undirected_edge(self):
        graph = GraphBuilder().add_undirected_edge(3, 4).build()
        assert graph.edge_set() == {(3, 4), (4, 3)}

    def test_negative_ids_rejected(self):
        with pytest.raises(GraphValidationError):
            GraphBuilder().add_edge(-1, 0)
        with pytest.raises(GraphValidationError):
            GraphBuilder().add_vertex(-5)

    def test_empty_builder_builds_empty_graph(self):
        graph = GraphBuilder().build()
        assert graph.num_edges == 0
        assert graph.num_vertices == 0

    def test_builder_is_reusable_between_build_calls(self):
        builder = GraphBuilder().add_edge(0, 1)
        first = builder.build()
        builder.add_edge(1, 2)
        second = builder.build()
        assert first.num_edges == 1
        assert second.num_edges == 2
