"""Engine mechanics: noqa suppression, baseline, walker, rule selection."""

import json
from pathlib import Path

import pytest

from repro.devtools import check_source, load_baseline, write_baseline
from repro.devtools.engine import (
    all_rules,
    analyze,
    apply_baseline,
    check_paths,
    iter_python_files,
    select_rules,
)
from repro.errors import ReproError, StaticCheckError

VIOLATION = "def f(x: int = None):\n    return x\n"


class TestRegistry:
    def test_all_fourteen_rules_register(self):
        registry = all_rules()
        expected = [f"REP{i:03d}" for i in range(1, 15)]
        assert sorted(registry) == expected
        for meta in registry.values():
            assert meta.description
            assert meta.severity in ("error", "warning")
            assert meta.scope in ("file", "project")

    def test_project_rules_have_project_scope(self):
        registry = all_rules()
        project_scoped = {rid for rid, meta in registry.items() if meta.scope == "project"}
        assert project_scoped == {"REP011", "REP012", "REP013", "REP014"}

    def test_select_rules_is_case_insensitive(self):
        assert list(select_rules(["rep001", "REP004"])) == ["REP001", "REP004"]

    def test_select_unknown_rule_raises(self):
        with pytest.raises(StaticCheckError, match="REP999"):
            select_rules(["REP999"])

    def test_static_check_error_is_a_repro_error(self):
        assert issubclass(StaticCheckError, ReproError)


class TestNoqa:
    def test_specific_noqa_suppresses_that_rule(self):
        source = "def f(x: int = None):  # repro: noqa[REP001]\n    return x\n"
        assert check_source(source) == []

    def test_bare_noqa_suppresses_every_rule(self):
        source = "def f(x: int = None):  # repro: noqa\n    return x\n"
        assert check_source(source) == []

    def test_noqa_for_a_different_rule_does_not_suppress(self):
        source = "def f(x: int = None):  # repro: noqa[REP008]\n    return x\n"
        findings = check_source(source)
        assert [f.rule for f in findings] == ["REP001"]

    def test_noqa_only_covers_its_own_line(self):
        source = (
            "# repro: noqa[REP001]\n"
            "def f(x: int = None):\n"
            "    return x\n"
        )
        assert [f.rule for f in check_source(source)] == ["REP001"]

    def test_comma_separated_noqa_ids(self):
        source = "def f(x: int = None):  # repro: noqa[REP002, REP001]\n    return x\n"
        assert check_source(source) == []

    def test_noqa_inside_a_string_literal_does_not_suppress(self):
        # The marker here is *data* on the violation's own line; only a
        # real COMMENT token may suppress (tokenize-based, not regex).
        source = (
            'def f(x: int = None, tag: str = "# repro: noqa[REP001]"):\n'
            "    return x, tag\n"
        )
        assert [f.rule for f in check_source(source)] == ["REP001"]

    def test_noqa_in_docstring_does_not_suppress_nearby_lines(self):
        source = (
            "def f(x: int = None):\n"
            '    """Suppress with  # repro: noqa  on the line."""\n'
            "    return x\n"
        )
        assert [f.rule for f in check_source(source)] == ["REP001"]

    def test_real_comment_after_string_still_suppresses(self):
        source = (
            'def f(x: str = "# repro: noqa[REP999]"):  # repro: noqa[REP001]\n'
            "    return x\n"
        )
        assert check_source(source) == []


class TestFindings:
    def test_finding_carries_location_and_snippet(self):
        (finding,) = check_source(VIOLATION, path="src/repro/pkg/mod.py")
        assert finding.rule == "REP001"
        assert finding.path == "src/repro/pkg/mod.py"
        assert finding.line == 1
        assert finding.snippet == "def f(x: int = None):"
        assert "mod.py:1:" in str(finding)

    def test_fingerprint_is_line_number_free(self):
        (first,) = check_source(VIOLATION, path="src/repro/pkg/mod.py")
        shifted = "\n\n\n" + VIOLATION
        (second,) = check_source(shifted, path="src/repro/pkg/mod.py")
        assert first.line != second.line
        assert first.fingerprint() == second.fingerprint()

    def test_syntax_error_raises_static_check_error(self):
        with pytest.raises(StaticCheckError, match="cannot parse"):
            check_source("def f(:\n")


class TestBaseline:
    def test_round_trip_and_apply(self, tmp_path):
        findings = check_source(VIOLATION, path="src/repro/pkg/mod.py")
        baseline_path = tmp_path / "baseline.json"
        baseline = write_baseline(findings, baseline_path)
        assert baseline.total == 1
        loaded = load_baseline(baseline_path)
        new, baselined, stale = apply_baseline(findings, loaded)
        assert new == [] and baselined == 1 and stale == []

    def test_extra_findings_are_not_covered(self, tmp_path):
        findings = check_source(VIOLATION, path="src/repro/pkg/mod.py")
        baseline_path = tmp_path / "baseline.json"
        write_baseline(findings, baseline_path)
        doubled = "def f(x: int = None):\n    return x\n\ndef g(y: str = None):\n    return y\n"
        more = check_source(doubled, path="src/repro/pkg/mod.py")
        new, baselined, _ = apply_baseline(more, load_baseline(baseline_path))
        assert baselined == 1
        assert [f.line for f in new] == [4]

    def test_fixed_findings_surface_as_stale(self, tmp_path):
        findings = check_source(VIOLATION, path="src/repro/pkg/mod.py")
        baseline_path = tmp_path / "baseline.json"
        write_baseline(findings, baseline_path)
        new, baselined, stale = apply_baseline([], load_baseline(baseline_path))
        assert new == [] and baselined == 0
        assert len(stale) == 1 and stale[0].startswith("REP001:")

    def test_malformed_baseline_raises(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text("[]")
        with pytest.raises(StaticCheckError, match="version-1"):
            load_baseline(bad)
        bad.write_text(json.dumps({"version": 1, "entries": {"k": 0}}))
        with pytest.raises(StaticCheckError, match="counts"):
            load_baseline(bad)


class TestWalker:
    def test_walks_nested_python_files_only(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "notes.txt").write_text("not python\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "a.cpython-312.py").write_text("x = 1\n")
        (tmp_path / ".hidden").mkdir()
        (tmp_path / ".hidden" / "b.py").write_text("x = 1\n")
        files = sorted(p.name for p in iter_python_files([tmp_path]))
        assert files == ["a.py"]

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(StaticCheckError, match="no such file"):
            list(iter_python_files([tmp_path / "nope"]))

    def test_check_paths_counts_files(self, tmp_path):
        target = tmp_path / "src" / "repro" / "pkg"
        target.mkdir(parents=True)
        (target / "clean.py").write_text("x = 1\n")
        (target / "dirty.py").write_text(VIOLATION)
        findings, files_checked = check_paths([tmp_path])
        assert files_checked == 2
        assert [f.rule for f in findings] == ["REP001"]

    def test_explicit_file_argument_respects_skip_dirs(self, tmp_path):
        hidden = tmp_path / "__pycache__" / "a.py"
        hidden.parent.mkdir()
        hidden.write_text(VIOLATION)
        assert list(iter_python_files([hidden], root=tmp_path)) == []

    def test_dir_plus_file_inside_it_reports_once(self, tmp_path):
        target = tmp_path / "pkg"
        target.mkdir()
        dirty = target / "dirty.py"
        dirty.write_text(VIOLATION)
        files = list(iter_python_files([tmp_path, dirty], root=tmp_path))
        assert files == [dirty.resolve()]
        findings, files_checked = check_paths([tmp_path, dirty])
        assert files_checked == 1
        assert len(findings) == 1

    def test_same_file_via_absolute_and_relative_paths_reports_once(
        self, tmp_path, monkeypatch
    ):
        dirty = tmp_path / "dirty.py"
        dirty.write_text(VIOLATION)
        monkeypatch.chdir(tmp_path)
        files = list(iter_python_files([Path("dirty.py"), dirty]))
        assert files == [dirty.resolve()]

    def test_fingerprints_are_root_relative(self, tmp_path, monkeypatch):
        target = tmp_path / "src" / "repro" / "pkg"
        target.mkdir(parents=True)
        dirty = target / "dirty.py"
        dirty.write_text(VIOLATION)
        monkeypatch.chdir(tmp_path)
        via_absolute = analyze([dirty]).findings
        via_relative = analyze([Path("src") / "repro" / "pkg" / "dirty.py"]).findings
        assert via_absolute and via_relative
        assert [f.path for f in via_absolute] == ["src/repro/pkg/dirty.py"]
        assert [f.fingerprint() for f in via_absolute] == [
            f.fingerprint() for f in via_relative
        ]
