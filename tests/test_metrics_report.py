"""Unit tests for the table formatting helpers."""

from repro.metrics.partition_metrics import compute_metrics
from repro.metrics.report import format_metrics_table, format_table, metrics_table_rows
from repro.partitioning.registry import paper_partitioners


class TestFormatTable:
    def test_empty_table(self):
        assert format_table([]) == "(empty table)"

    def test_column_selection_and_alignment(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
        text = format_table(rows, columns=["a"])
        lines = text.splitlines()
        assert lines[0].strip() == "a"
        assert "x" not in text

    def test_numbers_formatted_with_separators(self):
        text = format_table([{"n": 1234567}])
        assert "1,234,567" in text

    def test_floats_rounded_to_two_decimals(self):
        text = format_table([{"f": 3.14159}])
        assert "3.14" in text

    def test_missing_cells_render_empty(self):
        text = format_table([{"a": 1}, {"b": 2}], columns=["a", "b"])
        assert text.count("\n") == 3  # header + separator + 2 rows


class TestMetricsTable:
    def test_rows_cover_every_dataset_and_partitioner(self, small_social_graph):
        per_dataset = {
            "toy": [
                compute_metrics(strategy.assign(small_social_graph, 4))
                for strategy in paper_partitioners()
            ]
        }
        rows = metrics_table_rows(per_dataset)
        assert len(rows) == 6
        assert {row["partitioner"] for row in rows} == {"RVC", "1D", "2D", "CRVC", "SC", "DC"}
        assert all(row["dataset"] == "toy" for row in rows)

    def test_format_metrics_table_contains_headers(self, small_social_graph):
        per_dataset = {
            "toy": [compute_metrics(paper_partitioners()[0].assign(small_social_graph, 4))]
        }
        text = format_metrics_table(per_dataset)
        for column in ("dataset", "partitioner", "balance", "comm_cost"):
            assert column in text
