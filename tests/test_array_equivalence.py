"""Equivalence: the array-native pipeline vs the seed dict implementations.

The PR that introduced ``VertexMembership`` rewired ``compute_metrics``,
``RoutingTable`` and the edge-partition construction onto flat numpy
arrays.  These tests prove the rewrite is observationally identical to the
seed code across every registered partitioner and the awkward graph shapes
(duplicate edges, self-loops, sparse vertex ids, isolated vertices), and
that the vectorised ``assign_array`` overrides agree edge-for-edge with
the scalar ``partition_edge`` semantics.
"""

import numpy as np
import pytest

from repro.core.graph import Graph
from repro.engine.partitioned_graph import PartitionedGraph
from repro.engine.routing import RoutingTable
from repro.metrics.partition_metrics import compute_metrics, compute_metrics_reference
from repro.partitioning.base import PartitionStrategy
from repro.partitioning.degrees import DegreeLookup
from repro.partitioning.greedy import DegreeBasedHashing
from repro.partitioning.hybrid import HybridCut
from repro.partitioning.registry import available_partitioners, make_partitioner

ALL_PARTITIONERS = available_partitioners()

#: Pure (stateless) strategies whose scalar method can be compared directly.
STATELESS = ["RVC", "1D", "2D", "CRVC", "SC", "DC"]


def _edge_case_graphs():
    return {
        "dups-and-loops": Graph([4, 4, 4, 9, 9, 2], [7, 7, 4, 2, 2, 9]),
        "sparse-ids": Graph([0, 10**9, 10**12], [10**9, 10**12, 0]),
        "isolated": Graph([1, 2], [2, 3], vertices=[100, 200]),
        "empty": Graph([], [], vertices=[1, 2, 3]),
    }


@pytest.mark.parametrize("name", ALL_PARTITIONERS)
@pytest.mark.parametrize("num_partitions", [1, 8, 13])
class TestMetricsAndRoutingEquivalence:
    def test_metrics_identical_on_social_graph(self, name, num_partitions, small_social_graph):
        assignment = make_partitioner(name).assign(small_social_graph, num_partitions)
        assert compute_metrics(assignment) == compute_metrics_reference(assignment)

    def test_routing_identical_on_social_graph(self, name, num_partitions, small_social_graph):
        assignment = make_partitioner(name).assign(small_social_graph, num_partitions)
        array_table = RoutingTable.from_assignment(assignment)
        seed_table = RoutingTable.from_vertex_partitions(
            num_partitions, assignment.vertex_partitions_reference()
        )
        assert array_table.replicas == seed_table.replicas
        assert array_table.masters == seed_table.masters
        for vertex in small_social_graph.vertex_ids.tolist():
            assert array_table.master_of(vertex) == seed_table.masters[vertex]
            assert array_table.replica_partitions(vertex) == seed_table.replicas[vertex]
            assert array_table.sync_message_count(vertex) == sum(
                1 for p in seed_table.replicas[vertex] if p != seed_table.masters[vertex]
            )

    def test_vertex_partitions_shim_matches_reference(
        self, name, num_partitions, small_social_graph
    ):
        assignment = make_partitioner(name).assign(small_social_graph, num_partitions)
        assert assignment.vertex_partitions() == assignment.vertex_partitions_reference()


@pytest.mark.parametrize("name", ALL_PARTITIONERS)
@pytest.mark.parametrize("label", list(_edge_case_graphs()))
def test_metrics_equivalent_on_edge_case_graphs(name, label):
    graph = _edge_case_graphs()[label]
    assignment = make_partitioner(name).assign(graph, 5)
    assert compute_metrics(assignment) == compute_metrics_reference(assignment)
    assert assignment.vertex_partitions() == assignment.vertex_partitions_reference()
    array_table = RoutingTable.from_assignment(assignment)
    seed_table = RoutingTable.from_vertex_partitions(
        5, assignment.vertex_partitions_reference()
    )
    assert array_table.replicas == seed_table.replicas
    assert array_table.masters == seed_table.masters


@pytest.mark.parametrize("name", ALL_PARTITIONERS)
def test_edge_partitions_match_seed_bucketing(name, small_social_graph):
    """The argsort-based EdgePartition build preserves the seed's per-partition
    edge order and vertex mirror sets."""
    pgraph = PartitionedGraph.partition(small_social_graph, name, 7)
    placement = pgraph.assignment.partition_of.tolist()
    for partition in pgraph.partitions:
        expected_pairs = [
            (s, d)
            for (s, d), p in zip(small_social_graph.edge_pairs(), placement)
            if p == partition.partition_id
        ]
        src, dst = partition.edge_pairs()
        assert list(zip(src, dst)) == expected_pairs
        endpoints = (
            np.concatenate([partition.src, partition.dst])
            if partition.num_edges
            else np.empty(0, np.int64)
        )
        assert partition.vertex_ids.tolist() == np.unique(endpoints).tolist()


@pytest.mark.parametrize("name", ALL_PARTITIONERS)
def test_sync_message_counts_matches_scalar(name, small_social_graph):
    routing = RoutingTable.from_assignment(
        make_partitioner(name).assign(small_social_graph, 8)
    )
    counts = routing.sync_message_counts()
    for index, vertex in enumerate(routing.membership.vertices.tolist()):
        assert counts[index] == routing.sync_message_count(vertex)
    # Summed over all placed vertices this is the engine-side broadcast
    # volume, which can never exceed the total replica count.
    assert counts.sum() <= routing.membership.num_pairs


def _seed_greedy(graph, num_partitions, balance_slack=1.1):
    """The seed GreedyVertexCut loop (dict-of-sets, per-partition scans)."""
    loads = np.zeros(num_partitions, dtype=np.int64)
    capacity = max(1.0, balance_slack * graph.num_edges / num_partitions)
    where = {}
    placement = np.empty(graph.num_edges, dtype=np.int64)
    for index, (src, dst) in enumerate(graph.edge_pairs()):
        parts_src = where.get(src, set())
        parts_dst = where.get(dst, set())
        common = {p for p in parts_src & parts_dst if loads[p] < capacity}
        either = {p for p in parts_src | parts_dst if loads[p] < capacity}
        candidates = common or either or set(range(num_partitions))
        choice = min(candidates, key=lambda p: (loads[p], p))
        placement[index] = choice
        loads[choice] += 1
        where.setdefault(src, set()).add(choice)
        where.setdefault(dst, set()).add(choice)
    return placement


def _seed_hdrf(graph, num_partitions, balance_weight=1.0):
    """The seed HdrfPartitioner loop (per-partition Python scoring scan)."""
    loads = np.zeros(num_partitions, dtype=np.float64)
    partial_degree = {}
    where = {}
    placement = np.empty(graph.num_edges, dtype=np.int64)
    for index, (src, dst) in enumerate(graph.edge_pairs()):
        partial_degree[src] = partial_degree.get(src, 0) + 1
        partial_degree[dst] = partial_degree.get(dst, 0) + 1
        deg_src = partial_degree[src]
        deg_dst = partial_degree[dst]
        total = deg_src + deg_dst
        theta_src = deg_src / total
        theta_dst = deg_dst / total
        max_load = loads.max()
        min_load = loads.min()
        spread = (max_load - min_load) + 1.0
        best_part = 0
        best_score = -np.inf
        parts_src = where.get(src, set())
        parts_dst = where.get(dst, set())
        for part in range(num_partitions):
            rep = 0.0
            if part in parts_src:
                rep += 1.0 + (1.0 - theta_src)
            if part in parts_dst:
                rep += 1.0 + (1.0 - theta_dst)
            bal = balance_weight * (max_load - loads[part]) / spread
            score = rep + bal
            if score > best_score:
                best_score = score
                best_part = part
        placement[index] = best_part
        loads[best_part] += 1.0
        where.setdefault(src, set()).add(best_part)
        where.setdefault(dst, set()).add(best_part)
    return placement


def _seed_fennel(graph, num_partitions, gamma=1.5):
    """The seed FennelEdgePartitioner loop (per-partition Python scan)."""
    capacity = max(1.0, graph.num_edges / num_partitions)
    loads = np.zeros(num_partitions, dtype=np.float64)
    where = {}
    placement = np.empty(graph.num_edges, dtype=np.int64)
    for index, (src, dst) in enumerate(graph.edge_pairs()):
        parts_src = where.get(src, set())
        parts_dst = where.get(dst, set())
        best_part = 0
        best_score = -np.inf
        for part in range(num_partitions):
            affinity = (1.0 if part in parts_src else 0.0) + (
                1.0 if part in parts_dst else 0.0
            )
            penalty = gamma * loads[part] / capacity
            score = affinity - penalty
            if score > best_score:
                best_score = score
                best_part = part
        placement[index] = best_part
        loads[best_part] += 1.0
        where.setdefault(src, set()).add(best_part)
        where.setdefault(dst, set()).add(best_part)
    return placement


_SEED_STREAMING = {"Greedy": _seed_greedy, "HDRF": _seed_hdrf, "Fennel": _seed_fennel}


@pytest.mark.parametrize("name", sorted(_SEED_STREAMING))
@pytest.mark.parametrize("num_partitions", [1, 4, 9])
class TestStreamingPlacementsMatchSeed:
    """The array-scored streaming loops place every edge exactly where the
    seed set-based loops did, tie-breaking and float evaluation included."""

    def test_on_social_graph(self, name, num_partitions, small_social_graph):
        got = make_partitioner(name).assign(small_social_graph, num_partitions)
        expected = _SEED_STREAMING[name](small_social_graph, num_partitions)
        assert np.array_equal(got.partition_of, expected)

    @pytest.mark.parametrize("label", list(_edge_case_graphs()))
    def test_on_edge_case_graphs(self, name, num_partitions, label):
        graph = _edge_case_graphs()[label]
        got = make_partitioner(name).assign(graph, num_partitions)
        expected = _SEED_STREAMING[name](graph, num_partitions)
        assert np.array_equal(got.partition_of, expected)


class TestScalarVsArrayAssignment:
    @pytest.mark.parametrize("name", STATELESS)
    def test_stateless_strategies_agree(self, name, small_social_graph):
        strategy = make_partitioner(name)
        src, dst = small_social_graph.src, small_social_graph.dst
        vectorised = strategy.assign_array(src, dst, 6)
        scalar = [
            strategy.partition_edge(int(s), int(d), 6) for s, d in zip(src, dst)
        ]
        assert vectorised.tolist() == scalar

    @pytest.mark.parametrize("name", STATELESS + ["DBH", "Hybrid"])
    @pytest.mark.parametrize("label", list(_edge_case_graphs()))
    def test_assign_matches_scalar_fallback(self, name, label):
        """Full assign() (vectorised path) vs the base-class per-edge fallback."""
        graph = _edge_case_graphs()[label]
        vectorised = make_partitioner(name).assign(graph, 5).partition_of

        scalar_strategy = make_partitioner(name)
        if isinstance(scalar_strategy, (DegreeBasedHashing, HybridCut)):
            # Stateful-context strategies: rebuild the degree context, then
            # force the scalar fallback while it is live.
            scalar = _scalar_with_context(scalar_strategy, graph, 5)
        else:
            scalar = PartitionStrategy.assign_array(
                scalar_strategy, graph.src, graph.dst, 5
            )
        assert vectorised.tolist() == scalar.tolist()

    def test_default_fallback_calls_per_edge_in_stream_order(self, small_social_graph):
        # The abstract fallback is the extension point for third-party
        # strategies, which may be stateful: it must keep the seed contract
        # of one partition_edge call per edge, duplicates included.
        class TracingModulo(PartitionStrategy):
            name = "tracing"
            seen = []

            def partition_edge(self, src, dst, num_partitions):
                type(self).seen.append((src, dst))
                return (src + dst) % num_partitions

        graph = Graph([1, 1, 1, 2], [2, 2, 2, 3])  # three duplicate edges
        assignment = TracingModulo().assign(graph, 4)
        assert assignment.partition_of.tolist() == [3, 3, 3, 1]
        assert TracingModulo.seen == [(1, 2), (1, 2), (1, 2), (2, 3)]


def _scalar_with_context(strategy, graph, num_partitions):
    """Run the per-edge scalar fallback with the strategy's degree context set."""
    if isinstance(strategy, DegreeBasedHashing):
        strategy._degrees = DegreeLookup.count(
            graph.vertex_ids, np.concatenate([graph.src, graph.dst])
        )
    else:  # HybridCut
        strategy._in_degrees = DegreeLookup.count(graph.vertex_ids, graph.dst)
        if strategy.threshold is not None:
            strategy._effective_threshold = float(strategy.threshold)
        elif graph.num_vertices:
            strategy._effective_threshold = max(
                1.0, 4.0 * graph.num_edges / graph.num_vertices
            )
    return PartitionStrategy.assign_array(strategy, graph.src, graph.dst, num_partitions)
