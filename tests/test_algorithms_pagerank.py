"""Correctness and accounting tests for PageRank."""

import networkx as nx
import pytest

from repro.algorithms.pagerank import pagerank, reference_pagerank
from repro.engine.partitioned_graph import PartitionedGraph
from repro.errors import EngineError


class TestPageRankCorrectness:
    def test_matches_reference_implementation(self, small_social_graph):
        pgraph = PartitionedGraph.partition(small_social_graph, "2D", 8)
        result = pagerank(pgraph, num_iterations=8)
        expected = reference_pagerank(small_social_graph, num_iterations=8)
        for vertex, value in expected.items():
            assert result.vertex_values[vertex] == pytest.approx(value, abs=1e-9)

    def test_partitioning_does_not_change_ranks(self, small_social_graph):
        baselines = None
        for strategy in ("RVC", "1D", "DC"):
            pgraph = PartitionedGraph.partition(small_social_graph, strategy, 8)
            values = pagerank(pgraph, num_iterations=5).vertex_values
            if baselines is None:
                baselines = values
            else:
                for vertex in baselines:
                    assert values[vertex] == pytest.approx(baselines[vertex], abs=1e-9)

    def test_ranking_agrees_with_networkx(self, small_social_graph):
        """The top-ranked vertices should be the same as networkx's pagerank."""
        pgraph = PartitionedGraph.partition(small_social_graph, "CRVC", 8)
        result = pagerank(pgraph, num_iterations=30)
        nx_graph = nx.DiGraph()
        nx_graph.add_nodes_from(small_social_graph.vertex_ids.tolist())
        nx_graph.add_edges_from(small_social_graph.edge_pairs())
        nx_ranks = nx.pagerank(nx_graph, alpha=0.85, max_iter=200)
        ours_top = sorted(result.vertex_values, key=result.vertex_values.get, reverse=True)[:5]
        nx_top = sorted(nx_ranks, key=nx_ranks.get, reverse=True)[:5]
        assert set(ours_top) & set(nx_top)  # substantial overlap at the top

    def test_sink_vertices_keep_reset_probability(self):
        from repro.core.graph import Graph

        # 0 -> 1, 1 has no outgoing edges, 0 has no incoming edges.
        graph = Graph([0], [1])
        pgraph = PartitionedGraph.partition(graph, "RVC", 2)
        result = pagerank(pgraph, num_iterations=4, reset_prob=0.15)
        assert result.vertex_values[0] == pytest.approx(0.15)
        assert result.vertex_values[1] == pytest.approx(0.15 + 0.85 * 0.15)

    def test_uniform_cycle_has_uniform_ranks(self, triangle_graph):
        pgraph = PartitionedGraph.partition(triangle_graph, "RVC", 2)
        values = pagerank(pgraph, num_iterations=20).vertex_values
        assert values[0] == pytest.approx(values[1]) == pytest.approx(values[2])
        assert values[0] == pytest.approx(1.0)


class TestPageRankValidationAndAccounting:
    def test_invalid_parameters_rejected(self, partitioned_social):
        with pytest.raises(EngineError):
            pagerank(partitioned_social, num_iterations=0)
        with pytest.raises(EngineError):
            pagerank(partitioned_social, reset_prob=1.5)

    def test_runs_requested_number_of_supersteps(self, partitioned_social):
        result = pagerank(partitioned_social, num_iterations=7)
        assert result.num_supersteps == 8  # init superstep + 7 iterations
        assert result.algorithm == "PageRank"

    def test_simulated_time_increases_with_iterations(self, partitioned_social):
        short = pagerank(partitioned_social, num_iterations=2).simulated_seconds
        long = pagerank(partitioned_social, num_iterations=10).simulated_seconds
        assert long > short

    def test_every_superstep_scans_all_edges(self, partitioned_social):
        result = pagerank(partitioned_social, num_iterations=3)
        for record in result.report.supersteps[1:]:
            assert record.edges_scanned == partitioned_social.graph.num_edges
