"""Unit tests for graph statistics, validated against networkx where possible."""

import math

import networkx as nx
import pytest

from repro.core.graph import Graph
from repro.core import properties as props


def _to_nx_directed(graph: Graph) -> nx.DiGraph:
    g = nx.DiGraph()
    g.add_nodes_from(graph.vertex_ids.tolist())
    g.add_edges_from(graph.edge_pairs())
    return g


def _to_nx_undirected(graph: Graph) -> nx.Graph:
    g = nx.Graph()
    g.add_nodes_from(graph.vertex_ids.tolist())
    g.add_edges_from(graph.edge_pairs())
    g.remove_edges_from(nx.selfloop_edges(g))
    return g


class TestSymmetry:
    def test_fully_symmetric_graph(self, two_component_graph):
        assert props.symmetry_percent(two_component_graph) == 100.0

    def test_directed_triangle_has_no_reciprocated_edges(self, triangle_graph):
        assert props.symmetry_percent(triangle_graph) == 0.0

    def test_partial_symmetry(self):
        graph = Graph([0, 1, 1], [1, 0, 2])
        assert props.symmetry_percent(graph) == pytest.approx(100.0 * 2 / 3)

    def test_empty_graph_is_symmetric_by_convention(self):
        assert props.symmetry_percent(Graph([], [])) == 100.0

    def test_self_loop_counts_as_symmetric(self):
        graph = Graph([0], [0])
        assert props.symmetry_percent(graph) == 100.0


class TestLeafVertices:
    def test_zero_in_and_out_percent(self):
        graph = Graph([0, 1], [1, 2])
        assert props.zero_in_percent(graph) == pytest.approx(100.0 / 3)
        assert props.zero_out_percent(graph) == pytest.approx(100.0 / 3)

    def test_symmetric_graph_has_no_leaves(self, two_component_graph):
        assert props.zero_in_percent(two_component_graph) == 0.0
        assert props.zero_out_percent(two_component_graph) == 0.0

    def test_empty_graph(self):
        empty = Graph([], [])
        assert props.zero_in_percent(empty) == 0.0
        assert props.zero_out_percent(empty) == 0.0


class TestTriangles:
    def test_directed_triangle_counts_once(self, triangle_graph):
        assert props.triangle_count(triangle_graph) == 1

    def test_clique_ring_matches_networkx(self, clique_ring_graph):
        expected = sum(nx.triangles(_to_nx_undirected(clique_ring_graph)).values()) // 3
        assert props.triangle_count(clique_ring_graph) == expected

    def test_social_graph_matches_networkx(self, small_social_graph):
        expected = sum(nx.triangles(_to_nx_undirected(small_social_graph)).values()) // 3
        assert props.triangle_count(small_social_graph) == expected

    def test_per_vertex_triangles_match_networkx(self, clique_ring_graph):
        expected = nx.triangles(_to_nx_undirected(clique_ring_graph))
        assert props.per_vertex_triangles(clique_ring_graph) == expected

    def test_triangle_free_graph(self, small_road_graph):
        nx_count = sum(nx.triangles(_to_nx_undirected(small_road_graph)).values()) // 3
        assert props.triangle_count(small_road_graph) == nx_count


class TestConnectivity:
    def test_weak_components_labels_use_min_vertex_id(self, two_component_graph):
        labels = props.weakly_connected_components(two_component_graph)
        assert labels[0] == labels[1] == labels[2] == 0
        assert labels[10] == labels[11] == 10

    def test_weak_component_count_matches_networkx(self, small_social_graph):
        expected = nx.number_weakly_connected_components(_to_nx_directed(small_social_graph))
        assert props.num_weakly_connected_components(small_social_graph) == expected

    def test_road_graph_component_count(self, small_road_graph):
        expected = nx.number_weakly_connected_components(_to_nx_directed(small_road_graph))
        assert props.num_weakly_connected_components(small_road_graph) == expected

    def test_strong_components_match_networkx(self, small_social_graph):
        expected = nx.number_strongly_connected_components(_to_nx_directed(small_social_graph))
        assert props.num_strongly_connected_components(small_social_graph) == expected

    def test_strong_components_on_directed_triangle(self, triangle_graph):
        assert props.num_strongly_connected_components(triangle_graph) == 1

    def test_strong_components_on_directed_path(self):
        graph = Graph([0, 1], [1, 2])
        assert props.num_strongly_connected_components(graph) == 3

    def test_empty_graph_has_zero_components(self):
        assert props.num_weakly_connected_components(Graph([], [])) == 0


class TestDiameter:
    def test_disconnected_graph_has_infinite_diameter(self, two_component_graph):
        assert math.isinf(props.diameter(two_component_graph))

    def test_path_graph_diameter(self):
        graph = Graph([0, 1, 1, 2], [1, 0, 2, 1])
        assert props.diameter(graph) == 2.0

    def test_matches_networkx_on_connected_graph(self, clique_ring_graph):
        expected = nx.diameter(_to_nx_undirected(clique_ring_graph))
        assert props.diameter(clique_ring_graph) == float(expected)

    def test_double_sweep_bound_is_close_on_larger_graph(self, small_social_graph):
        if props.num_weakly_connected_components(small_social_graph) != 1:
            pytest.skip("fixture graph not connected for this seed")
        exact = nx.diameter(_to_nx_undirected(small_social_graph))
        approx = props.diameter(small_social_graph, exact_limit=10)
        assert approx <= exact
        assert approx >= exact / 2

    def test_empty_graph_diameter_zero(self):
        assert props.diameter(Graph([], [])) == 0.0


class TestDistributions:
    def test_degree_histogram_sums_to_vertex_count(self, small_social_graph):
        histogram = props.degree_histogram(small_social_graph, direction="in")
        assert sum(histogram.values()) == small_social_graph.num_vertices

    def test_degree_histogram_out_direction(self):
        graph = Graph([0, 0, 1], [1, 2, 2])
        assert props.degree_histogram(graph, "out") == {2: 1, 1: 1, 0: 1}

    def test_degree_histogram_rejects_bad_direction(self, triangle_graph):
        with pytest.raises(ValueError):
            props.degree_histogram(triangle_graph, "up")

    def test_degree_ratio_cdf_monotone_and_bounded(self, small_social_graph):
        cdf = props.degree_ratio_cdf(small_social_graph)
        fractions = [fraction for _, fraction in cdf]
        assert all(0.0 < f <= 1.0 for f in fractions)
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)

    def test_degree_ratio_cdf_for_symmetric_graph_is_step_at_one(self, two_component_graph):
        cdf = props.degree_ratio_cdf(two_component_graph)
        assert cdf == [(1.0, 1.0)]

    def test_degree_ratio_cdf_at_explicit_points(self):
        graph = Graph([0, 1], [1, 2])  # ratios: 0 -> inf, 1 -> 1, 2 -> 0
        cdf = props.degree_ratio_cdf(graph, points=[0.5, 1.0, 100.0])
        assert cdf[0][1] == pytest.approx(1 / 3)
        assert cdf[1][1] == pytest.approx(2 / 3)
        assert cdf[2][1] == pytest.approx(2 / 3)

    def test_degree_ratio_cdf_empty_graph(self):
        assert props.degree_ratio_cdf(Graph([], [])) == []


class TestSummary:
    def test_summarize_fields(self, two_component_graph):
        summary = props.summarize(two_component_graph, name="toy")
        assert summary.name == "toy"
        assert summary.num_vertices == 5
        assert summary.num_edges == 6
        assert summary.symmetry_percent == 100.0
        assert summary.connected_components == 2
        assert math.isinf(summary.diameter)
        assert summary.size_bytes == 6 * 16

    def test_summary_as_row_keys(self, triangle_graph):
        row = props.summarize(triangle_graph).as_row()
        assert {"dataset", "vertices", "edges", "symm_pct", "triangles", "components"} <= set(row)

    def test_estimated_size_scales_with_edges(self, triangle_graph):
        assert props.estimated_size_bytes(triangle_graph, bytes_per_edge=10) == 30
