"""Equivalence: the array-native Pregel superstep path vs the scalar loop.

The PR that introduced ``ArrayMessageKernel`` rewired PageRank, Connected
Components, ShortestPaths, TriangleCount and the degree computation onto
vectorised message kernels.  These tests prove the array path is
*observationally identical* to the scalar loop — bit-identical vertex
values and identical :class:`SuperstepRecord` counters (edges scanned,
remote/local messages, partition compute units, simulated seconds) —
across every registered partitioner and the awkward graph shapes
(duplicate edges, self-loops, isolated vertices), mirroring
``tests/test_array_equivalence.py`` for the partitioning pipeline.
"""

import numpy as np
import pytest

from repro.algorithms.connected_components import connected_components
from repro.algorithms.degrees import degree_count
from repro.algorithms.pagerank import pagerank
from repro.algorithms.shortest_paths import shortest_paths
from repro.algorithms.triangle_count import triangle_count
from repro.core.graph import Graph
from repro.engine.partitioned_graph import PartitionedGraph
from repro.partitioning.registry import available_partitioners

ALL_PARTITIONERS = available_partitioners()


def _edge_case_graphs():
    return {
        "dups-and-loops": Graph([4, 4, 4, 9, 9, 2], [7, 7, 4, 2, 2, 9]),
        "sparse-ids": Graph([0, 10**9, 10**12], [10**9, 10**12, 0]),
        "isolated": Graph([1, 2], [2, 3], vertices=[100, 200]),
        "empty": Graph([], [], vertices=[1, 2, 3]),
    }


def _landmarks_of(graph, count=3):
    ids = graph.vertex_ids.tolist()
    return ids[: min(count, len(ids))]


def _runners(pgraph):
    """One ``vectorized=...`` callable per algorithm, on a fixed setup."""
    landmarks = _landmarks_of(pgraph.graph)
    return {
        "PR": lambda v: pagerank(pgraph, num_iterations=5, vectorized=v),
        "CC": lambda v: connected_components(pgraph, vectorized=v),
        "SSSP": lambda v: shortest_paths(pgraph, landmarks, vectorized=v),
        "TR": lambda v: triangle_count(pgraph, vectorized=v),
        "DEG": lambda v: degree_count(pgraph, direction="both", vectorized=v),
    }


def _assert_identical(scalar, array):
    # Exact (bit-identical) vertex values: dict equality compares floats
    # with ==, so any reassociated float sum would fail here.
    assert scalar.vertex_values == array.vertex_values
    assert scalar.num_supersteps == array.num_supersteps
    # SuperstepRecord is a dataclass: == covers every counter and every
    # derived simulated-seconds figure.
    assert scalar.report.supersteps == array.report.supersteps
    assert scalar.report.load_seconds == array.report.load_seconds
    assert scalar.simulated_seconds == array.simulated_seconds


@pytest.mark.parametrize("name", ALL_PARTITIONERS)
@pytest.mark.parametrize("algorithm", ["PR", "CC", "SSSP", "TR", "DEG"])
class TestArraySuperstepEquivalence:
    def test_identical_on_social_graph(self, name, algorithm, small_social_graph):
        pgraph = PartitionedGraph.partition(small_social_graph, name, 8)
        run = _runners(pgraph)[algorithm]
        _assert_identical(run(False), run(True))

    @pytest.mark.parametrize("label", list(_edge_case_graphs()))
    def test_identical_on_edge_case_graphs(self, name, algorithm, label):
        graph = _edge_case_graphs()[label]
        pgraph = PartitionedGraph.partition(graph, name, 5)
        run = _runners(pgraph)[algorithm]
        _assert_identical(run(False), run(True))


def _parallel_runners(pgraph):
    """One ``parallel_workers=...`` callable per Pregel algorithm."""
    landmarks = _landmarks_of(pgraph.graph)
    return {
        "PR": lambda w: pagerank(pgraph, num_iterations=5, parallel_workers=w),
        "CC": lambda w: connected_components(pgraph, parallel_workers=w),
        "SSSP": lambda w: shortest_paths(pgraph, landmarks, parallel_workers=w),
    }


@pytest.mark.parametrize("name", ALL_PARTITIONERS)
class TestParallelWorkersEquivalence:
    """The shared-memory parallel executor vs the serial array path.

    ``REPRO_PARALLEL_MIN_ACTIVE=0`` forces even these tiny graphs through
    the worker fan-out (the production threshold would run them serially),
    so the two-round fold really executes in the pool.  Bit-identity is
    asserted the same way as for scalar-vs-array: exact vertex values and
    ``SuperstepRecord`` equality at every worker count.
    """

    @pytest.fixture(autouse=True)
    def _force_parallel(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_MIN_ACTIVE", "0")

    def test_identical_on_social_graph(self, name, small_social_graph):
        pgraph = PartitionedGraph.partition(small_social_graph, name, 8)
        for run in _parallel_runners(pgraph).values():
            serial = run(None)
            for workers in (1, 2, 4):
                _assert_identical(serial, run(workers))

    @pytest.mark.parametrize("label", list(_edge_case_graphs()))
    def test_identical_on_edge_case_graphs(self, name, label):
        graph = _edge_case_graphs()[label]
        pgraph = PartitionedGraph.partition(graph, name, 5)
        for run in _parallel_runners(pgraph).values():
            serial = run(None)
            for workers in (1, 2, 4):
                _assert_identical(serial, run(workers))


def test_parallel_identical_without_threshold_override(small_social_graph):
    # No REPRO_PARALLEL_MIN_ACTIVE override: data-driven supersteps below
    # the production threshold take the in-parent serial branch while
    # always-active ones fan out — the mixed path must stay bit-identical.
    pgraph = PartitionedGraph.partition(small_social_graph, "2D", 8)
    for run in _parallel_runners(pgraph).values():
        _assert_identical(run(None), run(2))


@pytest.mark.parametrize("direction", ["out", "in", "both"])
def test_degree_directions_identical(direction, small_social_graph):
    pgraph = PartitionedGraph.partition(small_social_graph, "2D", 8)
    _assert_identical(
        degree_count(pgraph, direction=direction, vectorized=False),
        degree_count(pgraph, direction=direction, vectorized=True),
    )


def test_road_graph_cc_identical(small_road_graph):
    # Multi-component graph: the shrinking active set exercises the
    # data-driven (non-always-active) masks and the early-termination
    # superstep of both paths.
    pgraph = PartitionedGraph.partition(small_road_graph, "DC", 6)
    _assert_identical(
        connected_components(pgraph, vectorized=False),
        connected_components(pgraph, vectorized=True),
    )


def test_pagerank_iteration_cap_identical(small_social_graph):
    pgraph = PartitionedGraph.partition(small_social_graph, "1D", 4)
    for iterations in (1, 3):
        _assert_identical(
            pagerank(pgraph, num_iterations=iterations, vectorized=False),
            pagerank(pgraph, num_iterations=iterations, vectorized=True),
        )


def test_triplet_arrays_match_partition_scan(small_social_graph):
    """The cached triplet arrays enumerate exactly the partition-major scan
    the scalar loop performs."""
    pgraph = PartitionedGraph.partition(small_social_graph, "CRVC", 7)
    trip = pgraph.triplets()
    assert pgraph.triplets() is trip  # cached
    expected = []
    for partition in pgraph.partitions:
        src, dst = partition.edge_pairs()
        expected.extend(
            (partition.partition_id, s, d) for s, d in zip(src, dst)
        )
    ids = trip.vertex_ids
    got = list(
        zip(
            trip.edge_pid.tolist(),
            ids[trip.src].tolist(),
            ids[trip.dst].tolist(),
        )
    )
    assert got == expected
    assert np.array_equal(
        trip.master_of,
        np.array([pgraph.routing.master_of(int(v)) for v in ids.tolist()]),
    )


def test_edge_partition_caches_are_stable(small_social_graph):
    pgraph = PartitionedGraph.partition(small_social_graph, "RVC", 4)
    partition = pgraph.partitions[0]
    assert partition.edge_pairs() is partition.edge_pairs()
    local_src, local_dst = partition.local_triplets()
    assert partition.local_triplets()[0] is local_src
    assert np.array_equal(partition.vertex_ids[local_src], partition.src)
    assert np.array_equal(partition.vertex_ids[local_dst], partition.dst)


def test_local_triplets_are_read_only(small_social_graph):
    # Regression: the cached local-triplet views are shared by every later
    # superstep (and published into shared memory by the parallel
    # executor), so a caller mutating them must fail loudly instead of
    # silently corrupting subsequent runs.
    pgraph = PartitionedGraph.partition(small_social_graph, "RVC", 4)
    partition = pgraph.partitions[0]
    local_src, local_dst = partition.local_triplets()
    assert not local_src.flags.writeable
    assert not local_dst.flags.writeable
    with pytest.raises(ValueError):
        local_src[0] = 99
    with pytest.raises(ValueError):
        local_dst[0] = 99
    # edge_pairs() returns tuples — immutable by construction.
    src_pairs, dst_pairs = partition.edge_pairs()
    assert isinstance(src_pairs, tuple) and isinstance(dst_pairs, tuple)
