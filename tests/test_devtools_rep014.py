"""REP014 fixtures: registry names wired through the CLI and tested."""

from repro.devtools import check_project_sources

REGISTRY = "src/repro/partitioning/registry.py"
ALGO_REGISTRY = "src/repro/algorithms/registry.py"
CLI = "src/repro/cli.py"


def _rep014(sources):
    return [f for f in check_project_sources(sources) if f.rule == "REP014"]


class TestRep014Positives:
    def test_untested_name_is_reported(self):
        findings = _rep014(
            {
                REGISTRY: '_FACTORIES = {"XYZ": None}\n',
                CLI: 'choice = canonical_partitioner_name("xyz")\n',
            }
        )
        assert len(findings) == 1
        assert "XYZ" in findings[0].message
        assert "no test" in findings[0].message
        assert findings[0].path == REGISTRY

    def test_name_missing_from_a_literal_cli_surface(self):
        findings = _rep014(
            {
                REGISTRY: '_FACTORIES = {"RVC": None, "XYZ": None}\n',
                CLI: 'CHOICES = ["RVC"]\n',
                "tests/test_reg.py": 'names = ["rvc", "xyz"]\n',
            }
        )
        assert len(findings) == 1
        assert "XYZ" in findings[0].message
        assert "CLI" in findings[0].message

    def test_algorithm_registry_is_checked_too(self):
        findings = _rep014({ALGO_REGISTRY: 'ALGORITHM_NAMES = ["QQ"]\n'})
        assert len(findings) == 1
        assert "algorithm 'QQ'" in findings[0].message


class TestRep014Negatives:
    def test_dynamic_cli_accessor_covers_every_name(self):
        assert _rep014(
            {
                REGISTRY: '_FACTORIES = {"RVC": None}\n',
                CLI: "names = available_partitioners()\n",
                "tests/test_reg.py": 'assert "RVC"\n',
            }
        ) == []

    def test_literal_cli_choice_and_test_reference(self):
        assert _rep014(
            {
                REGISTRY: '_FACTORIES = {"RVC": None}\n',
                CLI: 'CHOICES = ["RVC"]\n',
                "tests/test_reg.py": 'assert "rvc" != ""\n',
            }
        ) == []

    def test_test_reference_is_case_insensitive(self):
        assert _rep014(
            {
                REGISTRY: '_FACTORIES = {"Greedy": None}\n',
                CLI: "names = make_partitioner\n",
                "tests/test_reg.py": 'assert "GREEDY".lower()\n',
            }
        ) == []

    def test_cli_leg_is_skipped_without_a_cli_module(self):
        findings = _rep014(
            {
                REGISTRY: '_FACTORIES = {"RVC": None}\n',
                "tests/test_reg.py": 'assert "rvc"\n',
            }
        )
        assert findings == []

    def test_unrelated_modules_have_no_registries(self):
        assert _rep014({"src/repro/engine/core.py": 'NAMES = ["x"]\n'}) == []
