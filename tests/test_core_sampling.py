"""Unit tests for graph sampling (forest fire, edge sampling, induced subgraphs)."""

import pytest

from repro.core import properties as props
from repro.core.graph import Graph
from repro.core.sampling import edge_sample, forest_fire_sample, induced_subgraph
from repro.errors import GraphValidationError


class TestInducedSubgraph:
    def test_keeps_only_internal_edges(self, small_social_graph):
        vertices = small_social_graph.vertex_ids.tolist()[:50]
        sample = induced_subgraph(small_social_graph, vertices)
        keep = set(vertices)
        assert set(sample.vertex_ids.tolist()) <= keep
        for src, dst in sample.edge_pairs():
            assert src in keep and dst in keep

    def test_edges_are_subset_of_original(self, small_social_graph):
        sample = induced_subgraph(small_social_graph, small_social_graph.vertex_ids.tolist()[:60])
        assert sample.edge_set() <= small_social_graph.edge_set()

    def test_full_vertex_set_returns_same_edges(self, triangle_graph):
        sample = induced_subgraph(triangle_graph, [0, 1, 2])
        assert sample.edge_set() == triangle_graph.edge_set()


class TestEdgeSample:
    def test_fraction_one_keeps_everything(self, small_social_graph):
        sample = edge_sample(small_social_graph, 1.0, seed=1)
        assert sample.num_edges == small_social_graph.num_edges

    def test_fraction_half_keeps_roughly_half(self, small_social_graph):
        sample = edge_sample(small_social_graph, 0.5, seed=2)
        assert 0.3 * small_social_graph.num_edges < sample.num_edges < 0.7 * small_social_graph.num_edges

    def test_deterministic(self, small_social_graph):
        first = edge_sample(small_social_graph, 0.4, seed=3)
        second = edge_sample(small_social_graph, 0.4, seed=3)
        assert first.edge_set() == second.edge_set()

    @pytest.mark.parametrize("fraction", [0.0, -0.5, 1.5])
    def test_invalid_fraction_rejected(self, small_social_graph, fraction):
        with pytest.raises(GraphValidationError):
            edge_sample(small_social_graph, fraction)


class TestForestFireSample:
    def test_respects_target_size(self, small_social_graph):
        sample = forest_fire_sample(small_social_graph, target_vertices=40, seed=5)
        assert sample.num_vertices <= 45  # induced edges may include a couple of extras
        assert sample.num_vertices >= 10

    def test_is_subgraph_of_original(self, small_social_graph):
        sample = forest_fire_sample(small_social_graph, target_vertices=30, seed=6)
        assert sample.edge_set() <= small_social_graph.edge_set()

    def test_deterministic(self, small_social_graph):
        first = forest_fire_sample(small_social_graph, 30, seed=7)
        second = forest_fire_sample(small_social_graph, 30, seed=7)
        assert first.edge_set() == second.edge_set()

    def test_target_larger_than_graph_returns_whole_component_set(self, triangle_graph):
        sample = forest_fire_sample(triangle_graph, target_vertices=100, seed=1)
        assert sample.num_vertices == 3

    def test_creates_leaf_vertices_like_a_crawl(self, clique_ring_graph):
        # Sampling part of a dense graph leaves frontier vertices with
        # reduced degree, the crawl artefact Table 1 attributes to
        # forest-fire sampling.
        sample = forest_fire_sample(clique_ring_graph, target_vertices=10, seed=2)
        degrees = sample.degrees()
        assert min(degrees.values()) < max(degrees.values())

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"target_vertices": 0},
            {"target_vertices": 5, "forward_probability": 1.0},
            {"target_vertices": 5, "backward_probability": -0.1},
        ],
    )
    def test_invalid_parameters_rejected(self, small_social_graph, kwargs):
        with pytest.raises(GraphValidationError):
            forest_fire_sample(small_social_graph, **kwargs)

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphValidationError):
            forest_fire_sample(Graph([], []), target_vertices=5)
