"""Property-based tests (hypothesis) for core invariants.

These cover the invariants that must hold for *any* graph and *any*
partitioning, not just the fixtures: metric identities, partitioner
determinism and range safety, and algorithm correctness against
single-machine oracles.
"""

from collections import deque

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms.connected_components import connected_components
from repro.algorithms.pagerank import pagerank, reference_pagerank
from repro.algorithms.triangle_count import total_triangles, triangle_count
from repro.core.graph import Graph
from repro.core.properties import triangle_count as exact_triangles
from repro.engine.partitioned_graph import PartitionedGraph
from repro.metrics.partition_metrics import compute_metrics
from repro.partitioning.registry import PAPER_PARTITIONER_NAMES, make_partitioner

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graphs(draw, max_vertices=30, min_edges=1, max_edges=120):
    """Random small directed multigraphs (self-loops and duplicates allowed)."""
    num_vertices = draw(st.integers(min_value=2, max_value=max_vertices))
    num_edges = draw(st.integers(min_value=min_edges, max_value=max_edges))
    vertex = st.integers(min_value=0, max_value=num_vertices - 1)
    edges = draw(
        st.lists(st.tuples(vertex, vertex), min_size=num_edges, max_size=num_edges)
    )
    return Graph.from_edges(edges, name="hypothesis")


@st.composite
def partitioned_graphs(draw):
    graph = draw(graphs())
    strategy = draw(st.sampled_from(PAPER_PARTITIONER_NAMES))
    num_partitions = draw(st.integers(min_value=1, max_value=12))
    return PartitionedGraph.partition(graph, strategy, num_partitions)


class TestPartitioningProperties:
    @SETTINGS
    @given(graph=graphs(), name=st.sampled_from(PAPER_PARTITIONER_NAMES), parts=st.integers(1, 16))
    def test_assignment_in_range_and_deterministic(self, graph, name, parts):
        strategy = make_partitioner(name)
        first = strategy.assign(graph, parts)
        second = strategy.assign(graph, parts)
        assert first.partition_of.tolist() == second.partition_of.tolist()
        if graph.num_edges:
            assert 0 <= first.partition_of.min()
            assert first.partition_of.max() < parts

    @SETTINGS
    @given(pgraph=partitioned_graphs())
    def test_metric_identities(self, pgraph):
        metrics = compute_metrics(pgraph.assignment)
        # Replica-count breakdowns from Section 3.1 of the paper.
        assert metrics.comm_cost + metrics.non_cut == metrics.total_replicas
        assert metrics.vertices_to_same + metrics.vertices_to_other == metrics.total_replicas
        assert metrics.cut + metrics.non_cut <= pgraph.graph.num_vertices
        assert metrics.comm_cost >= 2 * metrics.cut
        # Edge bookkeeping.
        assert metrics.max_partition_edges <= pgraph.graph.num_edges
        assert sum(pgraph.assignment.edges_per_partition()) == pgraph.graph.num_edges
        if pgraph.graph.num_edges:
            assert metrics.balance >= 1.0 - 1e-9

    @SETTINGS
    @given(pgraph=partitioned_graphs())
    def test_partitions_and_routing_consistent(self, pgraph):
        total_edges = sum(p.num_edges for p in pgraph.partitions)
        assert total_edges == pgraph.graph.num_edges
        for vertex, parts in pgraph.routing.replicas.items():
            assert pgraph.routing.sync_message_count(vertex) <= len(parts)
            for part in parts:
                assert 0 <= part < pgraph.num_partitions

    @SETTINGS
    @given(graph=graphs(), parts=st.integers(4, 16))
    def test_2d_replication_bound(self, graph, parts):
        side = int(parts ** 0.5)
        perfect_square = side * side
        strategy = make_partitioner("2D")
        assignment = strategy.assign(graph, perfect_square)
        bound = 2 * side - 1
        for membership in assignment.vertex_partitions().values():
            assert len(membership) <= bound


def _bfs_components(graph):
    adjacency = graph.adjacency(direction="both")
    labels = {}
    for start in adjacency:
        if start in labels:
            continue
        queue = deque([start])
        members = {start}
        while queue:
            node = queue.popleft()
            for neighbour in adjacency[node]:
                if neighbour not in members:
                    members.add(neighbour)
                    queue.append(neighbour)
        label = min(members)
        for member in members:
            labels[member] = label
    return labels


class TestAlgorithmProperties:
    @SETTINGS
    @given(pgraph=partitioned_graphs())
    def test_connected_components_match_bfs_oracle(self, pgraph):
        result = connected_components(pgraph)
        assert result.vertex_values == _bfs_components(pgraph.graph)

    @SETTINGS
    @given(pgraph=partitioned_graphs(), iterations=st.integers(1, 5))
    def test_pagerank_matches_reference(self, pgraph, iterations):
        result = pagerank(pgraph, num_iterations=iterations)
        expected = reference_pagerank(pgraph.graph, num_iterations=iterations)
        for vertex, value in expected.items():
            assert result.vertex_values[vertex] == pytest.approx(value, abs=1e-9)

    @SETTINGS
    @given(pgraph=partitioned_graphs())
    def test_triangle_count_matches_exact_count(self, pgraph):
        result = triangle_count(pgraph)
        assert total_triangles(result) == exact_triangles(pgraph.graph)

    @SETTINGS
    @given(pgraph=partitioned_graphs())
    def test_simulated_time_is_positive_and_finite(self, pgraph):
        result = pagerank(pgraph, num_iterations=2)
        assert 0 < result.simulated_seconds < 1e6
