"""Unit tests for the array-native VertexMembership representation."""

import numpy as np
import pytest

from repro.core.graph import Graph
from repro.metrics.partition_metrics import master_partition
from repro.partitioning.base import EdgePartitionAssignment
from repro.partitioning.membership import VertexMembership, master_partition_array
from repro.partitioning.registry import make_partitioner


def _membership(graph, num_partitions, placement):
    assignment = EdgePartitionAssignment(
        graph, num_partitions, np.asarray(placement), strategy_name="manual"
    )
    return assignment.membership()


class TestConstruction:
    def test_pairs_are_deduped_and_sorted(self):
        # Star 0 -> {1, 2}; hub copies in partitions 0 and 1.
        graph = Graph([0, 0], [1, 2])
        membership = _membership(graph, 2, [0, 1])
        assert membership.pair_vertex.tolist() == [0, 0, 1, 2]
        assert membership.pair_partition.tolist() == [0, 1, 0, 1]
        assert membership.vertices.tolist() == [0, 1, 2]
        assert membership.offsets.tolist() == [0, 2, 3, 4]
        assert membership.counts.tolist() == [2, 1, 1]

    def test_duplicate_edges_and_self_loops_collapse(self):
        graph = Graph([3, 3, 3, 5], [3, 3, 7, 5])
        membership = _membership(graph, 4, [1, 1, 1, 2])
        assert membership.pair_vertex.tolist() == [3, 5, 7]
        assert membership.pair_partition.tolist() == [1, 2, 1]

    def test_sparse_vertex_ids_survive_encoding(self):
        huge = 2**61
        graph = Graph([huge, 0], [huge + 1, huge])
        membership = _membership(graph, 1000, [999, 0])
        assert membership.vertices.tolist() == [0, huge, huge + 1]
        assert membership.partitions_of(huge).tolist() == [0, 999]

    def test_empty_graph(self):
        membership = _membership(Graph([], [], vertices=[5]), 3, [])
        assert membership.num_pairs == 0
        assert membership.num_placed_vertices == 0
        assert membership.vertices_per_partition().tolist() == [0, 0, 0]
        assert membership.to_dict(np.array([5])) == {5: frozenset()}

    def test_cached_on_assignment(self, small_social_graph):
        assignment = make_partitioner("RVC").assign(small_social_graph, 8)
        assert assignment.membership() is assignment.membership()


class TestAccessors:
    def test_masters_match_scalar_hash(self, small_social_graph):
        assignment = make_partitioner("2D").assign(small_social_graph, 9)
        membership = assignment.membership()
        for vertex, master in zip(
            membership.vertices.tolist(), membership.masters.tolist()
        ):
            assert master == master_partition(vertex, 9)

    def test_indices_of_marks_missing_vertices(self):
        graph = Graph([0, 10], [10, 20])
        membership = _membership(graph, 2, [0, 1])
        idx = membership.indices_of(np.array([0, 5, 20, 99]))
        assert idx.tolist() == [0, -1, 2, -1]

    def test_expand_flattens_csr_segments(self):
        graph = Graph([0, 0, 1], [1, 2, 2])
        membership = _membership(graph, 3, [0, 1, 2])
        positions, counts = membership.expand(np.array([0, 2]))
        assert counts.tolist() == [2, 2]  # vertex 0 in {0,1}, vertex 2 in {1,2}
        assert membership.pair_partition[positions].tolist() == [0, 1, 1, 2]

    def test_vertices_of_partition_sorted_unique(self, small_social_graph):
        assignment = make_partitioner("CRVC").assign(small_social_graph, 6)
        membership = assignment.membership()
        for partition in range(6):
            mirrored = membership.vertices_of_partition(partition)
            edge_ids = assignment.edge_ids_of_partition(partition)
            expected = np.unique(
                np.concatenate(
                    [small_social_graph.src[edge_ids], small_social_graph.dst[edge_ids]]
                )
            )
            assert np.array_equal(mirrored, expected)

    def test_to_dict_matches_reference(self, small_social_graph):
        assignment = make_partitioner("1D").assign(small_social_graph, 8)
        expected = assignment.vertex_partitions_reference()
        got = assignment.membership().to_dict(small_social_graph.vertex_ids)
        assert got == expected
        assert list(got) == list(expected)  # same (sorted) key order


class TestMasterPartitionArray:
    def test_matches_scalar_for_range(self):
        vertices = np.arange(200, dtype=np.int64)
        array = master_partition_array(vertices, 16)
        assert array.tolist() == [master_partition(int(v), 16) for v in vertices]

    @pytest.mark.parametrize("num_partitions", [1, 7, 128])
    def test_in_range(self, num_partitions):
        array = master_partition_array(np.arange(50), num_partitions)
        assert array.min() >= 0
        assert array.max() < num_partitions
