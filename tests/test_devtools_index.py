"""Pass-1 index: ModuleInfo extraction, JSON round-trip, ProjectIndex lookups."""

import ast
import json
import textwrap

from repro.devtools.index import (
    ModuleInfo,
    ProjectIndex,
    build_module_info,
    module_name_for,
    noqa_lines,
)

RICH_SOURCE = textwrap.dedent(
    '''
    """Module docstring."""

    from typing import TYPE_CHECKING

    from ..core.io import atomic_write_bytes
    from .helpers import unpack

    if TYPE_CHECKING:
        from ..core.graph import Graph

    __all__ = ["CHUNK", "process"]

    CHUNK = 64
    KINDS = {"alpha": 1, "beta": 2}
    NAMES = ["PR", "CC"]


    def process(graph):
        from ..session.store import ArtifactStore

        return ArtifactStore(graph.root).info()


    def _helper(x):
        return unpack(x)


    class Codec:
        def encode(self, value):
            return atomic_write_bytes(value, b"payload-kind")
    '''
)

RICH_PATH = "src/repro/engine/rich.py"


def info_for(source, path=RICH_PATH):
    return build_module_info(ast.parse(source), source, path)


class TestModuleNameFor:
    def test_src_layout_strips_the_anchor(self):
        assert module_name_for("src/repro/engine/parallel.py") == "repro.engine.parallel"

    def test_tests_keep_their_anchor(self):
        assert module_name_for("tests/test_cli.py") == "tests.test_cli"

    def test_init_names_the_package(self):
        assert module_name_for("src/repro/engine/__init__.py") == "repro.engine"

    def test_bare_repro_path(self):
        assert module_name_for("repro/cli.py") == "repro.cli"


class TestBuildModuleInfo:
    def test_definitions_and_import_bindings(self):
        info = info_for(RICH_SOURCE)
        assert info.module == "repro.engine.rich"
        assert not info.is_test
        for name in ("CHUNK", "KINDS", "NAMES", "process", "_helper", "Codec"):
            assert name in info.definitions
        assert "atomic_write_bytes" in info.import_bindings
        assert "unpack" in info.import_bindings

    def test_relative_imports_resolve_against_the_module(self):
        info = info_for(RICH_SOURCE)
        targets = {record.module for record in info.imports}
        assert "repro.core.io" in targets
        assert "repro.engine.helpers" in targets

    def test_type_checking_imports_are_marked(self):
        info = info_for(RICH_SOURCE)
        typed = [r for r in info.imports if r.typing_only]
        assert [r.module for r in typed] == ["repro.core.graph"]

    def test_function_scope_imports_are_not_toplevel(self):
        info = info_for(RICH_SOURCE)
        lazy = [r for r in info.imports if r.scope == "function"]
        assert [r.module for r in lazy] == ["repro.session.store"]

    def test_exports_and_literal_collections(self):
        info = info_for(RICH_SOURCE)
        assert info.exports == ("CHUNK", "process")
        assert info.exports_resolved
        assert info.literal_collections["KINDS"][0] == ("alpha", "beta")
        assert info.literal_collections["NAMES"][0] == ("PR", "CC")
        assert "__all__" not in info.literal_collections

    def test_dynamic_all_is_unresolved(self):
        info = info_for('__all__ = ["a"]\n__all__ += ["b"]\n')
        assert not info.exports_resolved

    def test_functions_carry_qualnames_and_method_flag(self):
        info = info_for(RICH_SOURCE)
        records = {record.qualname: record for record in info.functions}
        assert set(records) == {"process", "_helper", "Codec.encode"}
        assert records["Codec.encode"].is_method
        assert not records["process"].is_method

    def test_references_cover_names_attributes_and_strings(self):
        info = info_for(RICH_SOURCE)
        assert "unpack" in info.references
        assert "info" in info.references  # attribute use
        assert "alpha" in info.string_literals
        assert "Module docstring." in info.string_literals

    def test_long_strings_are_not_indexed(self):
        info = info_for(f's = "{"x" * 80}"\n')
        assert info.string_literals == frozenset()

    def test_json_round_trip_is_lossless(self):
        info = info_for(RICH_SOURCE)
        restored = ModuleInfo.from_dict(json.loads(json.dumps(info.as_dict())))
        assert restored == info


class TestNoqaLines:
    def test_comment_tokens_only(self):
        source = 'x = "# repro: noqa"  # repro: noqa[REP001]\n'
        assert noqa_lines(source) == {1: frozenset({"REP001"})}

    def test_unparseable_source_falls_back_to_line_scan(self):
        source = "def broken(:\n    x = 1  # repro: noqa\n"
        assert noqa_lines(source) == {2: None}


class TestProjectIndex:
    SOURCES = {
        "src/repro/pkg/__init__.py": (
            "from repro.pkg.mod import thing\n\ndoubled = thing + thing\n"
        ),
        "src/repro/pkg/mod.py": 'thing = 1\nKIND = "special-name"\n',
        "tests/test_pkg.py": 'def test_thing():\n    assert "Thing" != "KIND"\n',
    }

    def test_lookup_by_module_and_matching(self):
        index = ProjectIndex.from_sources(self.SOURCES)
        assert index.module_at("repro.pkg.mod").path == "src/repro/pkg/mod.py"
        assert [m.module for m in index.modules_matching("pkg/mod.py")] == [
            "repro.pkg.mod"
        ]

    def test_library_and_test_partitions(self):
        index = ProjectIndex.from_sources(self.SOURCES)
        library = {m.module for m in index.library_modules()}
        tests = {m.module for m in index.test_modules()}
        assert library == {"repro.pkg", "repro.pkg.mod"}
        assert tests == {"tests.test_pkg"}

    def test_all_references_include_identifier_like_strings(self):
        index = ProjectIndex.from_sources(self.SOURCES)
        references = index.all_references()
        assert "thing" in references
        assert "special-name" not in references  # not identifier-like

    def test_test_string_literals_are_lowercased(self):
        index = ProjectIndex.from_sources(self.SOURCES)
        literals = index.test_string_literals()
        assert "thing" in literals
        assert "kind" in literals
