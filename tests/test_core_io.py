"""Unit tests for edge-list reading and writing."""

import pytest

from repro.core.graph import Graph
from repro.core.io import read_edge_list, write_edge_list
from repro.errors import GraphIOError


class TestReadEdgeList:
    def test_round_trip(self, tmp_path, small_social_graph):
        path = tmp_path / "graph.txt"
        write_edge_list(small_social_graph, path)
        loaded = read_edge_list(path)
        assert loaded.edge_set() == small_social_graph.edge_set()
        assert loaded.num_edges == small_social_graph.num_edges

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "snap.txt"
        path.write_text("# SNAP style header\n\n% another comment\n0\t1\n1\t2\n")
        graph = read_edge_list(path)
        assert graph.edge_set() == {(0, 1), (1, 2)}

    def test_extra_columns_ignored(self, tmp_path):
        path = tmp_path / "weighted.txt"
        path.write_text("0 1 0.5\n1 2 0.25\n")
        graph = read_edge_list(path)
        assert graph.edge_set() == {(0, 1), (1, 2)}

    def test_missing_column_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0\n")
        with pytest.raises(GraphIOError):
            read_edge_list(path)

    def test_non_integer_vertex_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("a b\n")
        with pytest.raises(GraphIOError):
            read_edge_list(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(GraphIOError):
            read_edge_list(tmp_path / "does-not-exist.txt")

    def test_default_name_is_filename(self, tmp_path):
        path = tmp_path / "roads.txt"
        path.write_text("0 1\n")
        assert read_edge_list(path).name == "roads.txt"


class TestWriteEdgeList:
    def test_header_contains_counts(self, tmp_path, triangle_graph):
        path = tmp_path / "out.tsv"
        write_edge_list(triangle_graph, path)
        content = path.read_text()
        assert content.startswith("#")
        assert "vertices: 3 edges: 3" in content

    def test_no_header_option(self, tmp_path, triangle_graph):
        path = tmp_path / "out.tsv"
        write_edge_list(triangle_graph, path, header=False)
        assert not path.read_text().startswith("#")

    def test_custom_delimiter(self, tmp_path):
        graph = Graph([0], [1])
        path = tmp_path / "out.csv"
        write_edge_list(graph, path, delimiter=",", header=False)
        assert path.read_text().strip() == "0,1"

    def test_write_to_unwritable_path_raises(self, tmp_path, triangle_graph):
        with pytest.raises(GraphIOError):
            write_edge_list(triangle_graph, tmp_path / "missing-dir" / "out.txt")
