"""Unit tests for the vertex routing table."""

import numpy as np

from repro.core.graph import Graph
from repro.engine.routing import RoutingTable
from repro.metrics.partition_metrics import compute_metrics, master_partition
from repro.partitioning.base import EdgePartitionAssignment
from repro.partitioning.registry import make_partitioner


def _manual(graph, num_partitions, placement):
    return EdgePartitionAssignment(graph, num_partitions, np.asarray(placement), "manual")


class TestRoutingTable:
    def test_replicas_match_assignment_membership(self, small_social_graph):
        assignment = make_partitioner("RVC").assign(small_social_graph, 8)
        routing = RoutingTable.from_assignment(assignment)
        membership = assignment.vertex_partitions()
        for vertex, parts in membership.items():
            assert set(routing.replica_partitions(vertex)) == set(parts)
            assert routing.replication_count(vertex) == len(parts)

    def test_masters_are_hash_assigned(self, small_social_graph):
        assignment = make_partitioner("1D").assign(small_social_graph, 8)
        routing = RoutingTable.from_assignment(assignment)
        for vertex in small_social_graph.vertex_ids.tolist():
            assert routing.master_of(vertex) == master_partition(vertex, 8)

    def test_sync_message_count_excludes_master(self):
        graph = Graph([0, 0, 0], [1, 2, 3])
        assignment = _manual(graph, 4, [0, 1, 2])
        routing = RoutingTable.from_assignment(assignment)
        hub_master = routing.master_of(0)
        expected = sum(1 for p in routing.replica_partitions(0) if p != hub_master)
        assert routing.sync_message_count(0) == expected
        assert routing.sync_message_count(0) in (2, 3)

    def test_unknown_vertex_has_no_replicas(self, triangle_graph):
        assignment = make_partitioner("RVC").assign(triangle_graph, 2)
        routing = RoutingTable.from_assignment(assignment)
        assert routing.replica_partitions(999) == ()
        assert routing.replication_count(999) == 0

    def test_total_sync_messages_close_to_comm_cost(self, small_social_graph):
        # The replica broadcast the engine performs each superstep is what
        # the CommCost metric approximates: summed over all vertices the
        # two quantities differ only by the master-held replicas.
        assignment = make_partitioner("CRVC").assign(small_social_graph, 8)
        routing = RoutingTable.from_assignment(assignment)
        metrics = compute_metrics(assignment)
        total_sync = sum(routing.sync_message_count(v) for v in routing.replicas)
        assert total_sync <= metrics.total_replicas
        assert total_sync >= metrics.comm_cost - metrics.cut - metrics.non_cut
