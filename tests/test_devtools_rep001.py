"""REP001 fixtures: annotated non-Optional parameter/field with None default."""

import textwrap

from repro.devtools import check_source


def _rep001(source, path="src/repro/example.py"):
    findings = check_source(textwrap.dedent(source), path=path)
    return [f for f in findings if f.rule == "REP001"]


class TestRep001Positives:
    def test_positional_parameter(self):
        findings = _rep001("def f(x: int = None):\n    return x\n")
        assert len(findings) == 1
        assert "'x'" in findings[0].message
        assert findings[0].severity == "error"

    def test_keyword_only_parameter(self):
        source = """
        from typing import Sequence

        def f(*, labels: Sequence[str] = None):
            return labels
        """
        findings = _rep001(source)
        assert len(findings) == 1
        assert "'labels'" in findings[0].message

    def test_dataclass_field(self):
        source = """
        from dataclasses import dataclass
        from typing import Dict

        @dataclass
        class Recommendation:
            candidates: Dict[str, float] = None
        """
        findings = _rep001(source)
        assert len(findings) == 1
        assert "'candidates'" in findings[0].message

    def test_async_function_parameter(self):
        findings = _rep001("async def f(x: str = None):\n    return x\n")
        assert len(findings) == 1

    def test_only_the_none_defaulted_parameter_is_flagged(self):
        findings = _rep001("def f(a: int, b: float = 1.0, c: str = None):\n    pass\n")
        assert len(findings) == 1
        assert "'c'" in findings[0].message


class TestRep001Negatives:
    def test_optional_annotation(self):
        source = """
        from typing import Optional

        def f(x: Optional[int] = None):
            return x
        """
        assert _rep001(source) == []

    def test_pep604_union_annotation(self):
        assert _rep001("def f(x: int | None = None):\n    return x\n") == []

    def test_union_with_none(self):
        source = """
        from typing import Union

        def f(x: Union[int, None] = None):
            return x
        """
        assert _rep001(source) == []

    def test_string_annotation_mentioning_optional(self):
        assert _rep001('def f(x: "Optional[int]" = None):\n    return x\n') == []

    def test_any_annotation(self):
        source = """
        from typing import Any

        def f(x: Any = None):
            return x
        """
        assert _rep001(source) == []

    def test_unannotated_parameter(self):
        assert _rep001("def f(x=None):\n    return x\n") == []

    def test_non_none_default(self):
        assert _rep001("def f(x: int = 3):\n    return x\n") == []

    def test_optional_dataclass_field(self):
        source = """
        from typing import Optional

        class C:
            value: Optional[int] = None
        """
        assert _rep001(source) == []
