"""REP006 fixtures: non-canonical name literals in comparisons."""

import textwrap

from repro.devtools import check_source


def _rep006(source, path="src/repro/analysis/advisor.py"):
    findings = check_source(textwrap.dedent(source), path=path)
    return [f for f in findings if f.rule == "REP006"]


class TestRep006Positives:
    def test_lowercase_algorithm_literal(self):
        findings = _rep006('if name == "pr":\n    pass\n')
        assert len(findings) == 1
        assert "'PR'" in findings[0].message

    def test_lowercase_partitioner_literal(self):
        findings = _rep006('if algo.lower() == "hybrid":\n    pass\n')
        assert len(findings) == 1
        assert "'Hybrid'" in findings[0].message

    def test_literal_on_the_left(self):
        assert len(_rep006('ok = "2d" == spec.partitioner\n')) == 1

    def test_membership_in_literal_tuple(self):
        findings = _rep006('if name in ("pr", "cc"):\n    pass\n')
        assert len(findings) == 2

    def test_long_form_alias_literal(self):
        findings = _rep006('if name == "PageRank":\n    pass\n')
        assert len(findings) == 1
        assert "canonical_algorithm_name" in findings[0].message


class TestRep006Negatives:
    def test_canonical_spellings_are_the_normal_idiom(self):
        source = """
        if key == "PR":
            pass
        if key in ("CC", "SSSP"):
            pass
        if partitioner == "Hybrid":
            pass
        """
        assert _rep006(source) == []

    def test_dict_membership_with_literal_needle(self):
        assert _rep006('present = "triangles" in row\n') == []

    def test_unrelated_string_comparisons(self):
        assert _rep006('if direction == "in":\n    pass\n') == []

    def test_tests_are_exempt(self):
        assert _rep006('assert name == "pr"\n', path="tests/test_cli.py") == []
