"""Tests for the experiment harness (partitioning study, algorithm study, infrastructure)."""

import pytest

from repro.analysis.experiments import (
    ExperimentConfig,
    run_algorithm_study,
    run_infrastructure_study,
    run_partitioning_study,
)
from repro.analysis.results import best_partitioner_per_dataset
from repro.datasets.generators import social_graph
from repro.errors import AnalysisError

DATASETS = ["youtube", "pokec"]
SCALE = 0.08
SEED = 4


class TestExperimentConfig:
    def test_defaults_cover_paper_setup(self):
        config = ExperimentConfig(algorithm="PR")
        assert config.num_partitions == 128
        assert len(config.datasets) == 9
        assert config.partitioners == ["RVC", "1D", "2D", "CRVC", "SC", "DC"]
        assert config.num_iterations == 10

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_partitions": 0},
            {"scale": 0.0},
            {"num_iterations": 0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(AnalysisError):
            ExperimentConfig(algorithm="PR", **kwargs)


class TestPartitioningStudy:
    def test_table_shape(self):
        table = run_partitioning_study(
            num_partitions=8, datasets=DATASETS, scale=SCALE, seed=SEED
        )
        assert list(table) == DATASETS
        for rows in table.values():
            assert [m.strategy for m in rows] == ["RVC", "1D", "2D", "CRVC", "SC", "DC"]
            for metrics in rows:
                assert metrics.num_partitions == 8
                assert metrics.comm_cost + metrics.non_cut == metrics.total_replicas

    def test_accepts_pre_built_graphs(self, small_social_graph):
        table = run_partitioning_study(
            num_partitions=4,
            datasets=["custom"],
            partitioners=["RVC", "2D"],
            graphs={"custom": small_social_graph},
        )
        assert list(table) == ["custom"]
        assert len(table["custom"]) == 2

    def test_missing_graph_rejected(self, small_social_graph):
        with pytest.raises(AnalysisError):
            run_partitioning_study(
                num_partitions=4, datasets=["a", "b"], graphs={"a": small_social_graph}
            )

    def test_finer_granularity_does_not_decrease_comm_cost(self):
        coarse = run_partitioning_study(num_partitions=8, datasets=["pokec"], scale=SCALE, seed=SEED)
        fine = run_partitioning_study(num_partitions=32, datasets=["pokec"], scale=SCALE, seed=SEED)
        for coarse_metrics, fine_metrics in zip(coarse["pokec"], fine["pokec"]):
            assert fine_metrics.comm_cost >= coarse_metrics.comm_cost


class TestAlgorithmStudy:
    @pytest.fixture(scope="class")
    def pr_records(self):
        config = ExperimentConfig(
            algorithm="PR",
            num_partitions=8,
            datasets=DATASETS,
            partitioners=["RVC", "2D", "DC"],
            scale=SCALE,
            seed=SEED,
            num_iterations=3,
        )
        return run_algorithm_study(config)

    def test_one_record_per_dataset_partitioner_pair(self, pr_records):
        assert len(pr_records) == len(DATASETS) * 3
        keys = {(r.dataset, r.partitioner) for r in pr_records}
        assert len(keys) == len(pr_records)

    def test_records_carry_metrics_and_time(self, pr_records):
        for record in pr_records:
            assert record.simulated_seconds > 0
            assert record.metrics.comm_cost > 0
            assert record.algorithm == "PR"
            assert record.num_partitions == 8

    def test_best_partitioner_extractable(self, pr_records):
        best = best_partitioner_per_dataset(pr_records)
        assert set(best) == set(DATASETS)
        assert all(p in {"RVC", "2D", "DC"} for p in best.values())

    def test_sssp_study_runs(self):
        config = ExperimentConfig(
            algorithm="SSSP",
            num_partitions=6,
            datasets=["youtube"],
            partitioners=["2D"],
            scale=SCALE,
            seed=SEED,
            landmark_count=2,
        )
        records = run_algorithm_study(config)
        assert len(records) == 1
        assert records[0].algorithm == "SSSP"

    def test_uses_supplied_graphs_without_regenerating(self):
        graph = social_graph(num_vertices=80, num_edges=300, seed=1, name="custom")
        config = ExperimentConfig(
            algorithm="CC",
            num_partitions=4,
            datasets=["custom"],
            partitioners=["RVC"],
            num_iterations=5,
        )
        records = run_algorithm_study(config, graphs={"custom": graph})
        assert records[0].dataset == "custom"
        assert records[0].metrics.num_edges == graph.num_edges


class TestInfrastructureStudy:
    def test_faster_infrastructure_reduces_simulated_time(self):
        results = run_infrastructure_study(
            dataset="pokec",
            partitioner="2D",
            num_partitions=16,
            scale=SCALE,
            seed=SEED,
            num_iterations=3,
        )
        assert [r.label.split()[0] for r in results] == ["config-ii", "config-iii", "config-iv"]
        baseline, fast_network, fast_storage = results
        assert fast_network.simulated_seconds < baseline.simulated_seconds
        assert fast_storage.simulated_seconds <= fast_network.simulated_seconds
        assert 0.0 < fast_network.speedup_vs(baseline) < 1.0

    def test_speedup_vs_self_is_zero(self):
        results = run_infrastructure_study(
            dataset="youtube", num_partitions=8, scale=SCALE, seed=SEED, num_iterations=2
        )
        assert results[0].speedup_vs(results[0]) == pytest.approx(0.0)
