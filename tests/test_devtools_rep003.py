"""REP003 fixtures: shared-memory lifecycle outside the ShmRegistry."""

import textwrap

from repro.devtools import check_source


def _rep003(source, path="src/repro/session/store.py"):
    findings = check_source(textwrap.dedent(source), path=path)
    return [f for f in findings if f.rule == "REP003"]


class TestRep003Positives:
    def test_shared_memory_create(self):
        findings = _rep003("shm = SharedMemory(create=True, size=64)\n")
        assert len(findings) == 1
        assert "ShmRegistry" in findings[0].message

    def test_qualified_shared_memory_create(self):
        source = "seg = shared_memory.SharedMemory(create=True, name=name, size=n)\n"
        assert len(_rep003(source)) == 1

    def test_unlink_on_shm_receiver(self):
        assert len(_rep003("self._shm.unlink()\n")) == 1

    def test_unlink_on_segment_receiver(self):
        assert len(_rep003("segment.unlink()\n")) == 1


class TestRep003Negatives:
    def test_shm_registry_module_is_exempt(self):
        source = "probe = shared_memory.SharedMemory(create=True, size=16)\nprobe.unlink()\n"
        assert _rep003(source, path="src/repro/engine/shm_registry.py") == []

    def test_attach_without_create_is_fine(self):
        assert _rep003("shm = shared_memory.SharedMemory(name=name)\n") == []

    def test_create_false_is_fine(self):
        assert _rep003("shm = SharedMemory(create=False, name=name)\n") == []

    def test_path_unlink_is_not_shared_memory(self):
        assert _rep003("artifact_path.unlink()\n") == []
        assert _rep003("Path(tmp).unlink()\n") == []

    def test_tests_are_exempt(self):
        source = "shm = SharedMemory(create=True, size=8)\n"
        assert _rep003(source, path="tests/test_shm_leaks.py") == []
