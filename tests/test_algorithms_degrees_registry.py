"""Tests for degree counting on the engine and the algorithm registry."""

import pytest

from repro.algorithms.degrees import degree_count
from repro.algorithms.registry import (
    ALGORITHM_NAMES,
    algorithm_metric_of_interest,
    run_algorithm,
)
from repro.engine.partitioned_graph import PartitionedGraph
from repro.errors import EngineError


class TestDegreeCount:
    def test_out_degrees_match_graph(self, partitioned_social, small_social_graph):
        result = degree_count(partitioned_social, direction="out")
        assert result.vertex_values == small_social_graph.out_degrees()

    def test_in_degrees_match_graph(self, partitioned_social, small_social_graph):
        result = degree_count(partitioned_social, direction="in")
        assert result.vertex_values == small_social_graph.in_degrees()

    def test_total_degrees_match_graph(self, partitioned_social, small_social_graph):
        result = degree_count(partitioned_social, direction="both")
        assert result.vertex_values == small_social_graph.degrees()

    def test_invalid_direction_rejected(self, partitioned_social):
        with pytest.raises(EngineError):
            degree_count(partitioned_social, direction="sideways")

    def test_single_superstep(self, partitioned_social):
        result = degree_count(partitioned_social)
        assert result.num_supersteps == 1
        assert result.simulated_seconds > 0


class TestAlgorithmRegistry:
    def test_paper_algorithm_names(self):
        assert ALGORITHM_NAMES == ["PR", "CC", "TR", "SSSP"]

    def test_metric_of_interest_matches_paper_findings(self):
        assert algorithm_metric_of_interest("PR") == "comm_cost"
        assert algorithm_metric_of_interest("CC") == "comm_cost"
        assert algorithm_metric_of_interest("SSSP") == "comm_cost"
        assert algorithm_metric_of_interest("TR") == "cut"

    def test_metric_of_interest_unknown_algorithm(self):
        with pytest.raises(EngineError):
            algorithm_metric_of_interest("BFS")

    @pytest.mark.parametrize("name", ALGORITHM_NAMES)
    def test_run_algorithm_dispatch(self, name, small_social_graph):
        pgraph = PartitionedGraph.partition(small_social_graph, "CRVC", 6)
        result = run_algorithm(name, pgraph, num_iterations=3)
        assert result.simulated_seconds > 0
        assert len(result.vertex_values) == small_social_graph.num_vertices

    def test_run_algorithm_case_insensitive(self, partitioned_social):
        assert run_algorithm("pr", partitioned_social, num_iterations=2).algorithm == "PageRank"

    def test_run_algorithm_unknown_name(self, partitioned_social):
        with pytest.raises(EngineError):
            run_algorithm("BFS", partitioned_social)

    def test_run_algorithm_sssp_with_explicit_landmarks(self, partitioned_social):
        landmark = int(partitioned_social.graph.vertex_ids[0])
        result = run_algorithm("SSSP", partitioned_social, landmarks=[landmark])
        assert result.vertex_values[landmark] == {landmark: 0}
