"""Unit tests for the 64-bit mixing hash used by the partitioners."""

import numpy as np

from repro.partitioning.hashing import hash_pair, mix64


class TestMix64:
    def test_deterministic(self):
        assert mix64(12345) == mix64(12345)

    def test_scalar_and_array_agree(self):
        values = np.array([0, 1, 7, 123456789], dtype=np.uint64)
        array_result = mix64(values)
        for value, hashed in zip(values.tolist(), array_result.tolist()):
            assert int(mix64(value)) == hashed

    def test_spreads_consecutive_inputs(self):
        hashes = mix64(np.arange(1000, dtype=np.uint64))
        # Consecutive integers should not map to consecutive hashes.
        assert len(np.unique(hashes)) == 1000
        assert np.std(hashes.astype(np.float64)) > 1e17

    def test_zero_input_is_not_zero_output(self):
        assert int(mix64(0)) != 0


class TestHashPair:
    def test_order_sensitive(self):
        assert int(hash_pair(1, 2)) != int(hash_pair(2, 1))

    def test_deterministic_for_arrays(self):
        src = np.array([1, 2, 3], dtype=np.uint64)
        dst = np.array([4, 5, 6], dtype=np.uint64)
        assert hash_pair(src, dst).tolist() == hash_pair(src, dst).tolist()

    def test_uniform_bucket_distribution(self):
        rng = np.random.default_rng(0)
        src = rng.integers(0, 10_000, size=20_000).astype(np.uint64)
        dst = rng.integers(0, 10_000, size=20_000).astype(np.uint64)
        buckets = hash_pair(src, dst) % np.uint64(16)
        counts = np.bincount(buckets.astype(np.int64), minlength=16)
        # Every bucket should hold roughly 1/16th of the pairs (within 25%).
        assert counts.min() > 0.75 * 20_000 / 16
        assert counts.max() < 1.25 * 20_000 / 16
