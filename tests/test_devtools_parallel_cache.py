"""Execution layer: --jobs equivalence and the content-addressed check cache."""

import pytest

from repro.devtools.engine import (
    CHECK_ENGINE_VERSION,
    analyze,
    ruleset_fingerprint,
)
from repro.session.store import ArtifactStore

VIOLATION = "def f(x: int = None):\n    return x\n"


@pytest.fixture
def tree(tmp_path):
    pkg = tmp_path / "src" / "repro" / "pkg"
    pkg.mkdir(parents=True)
    (pkg / "dirty.py").write_text(VIOLATION)
    for index in range(4):
        (pkg / f"clean_{index}.py").write_text(f"value_{index} = {index}\n")
    return tmp_path


def _summary(report):
    return [(f.rule, f.path, f.line) for f in report.findings]


class TestParallelEquivalence:
    def test_parallel_findings_match_serial(self, tree):
        serial = analyze([tree], root=tree)
        parallel = analyze([tree], jobs=2, root=tree)
        assert _summary(parallel) == _summary(serial)
        assert parallel.files_checked == serial.files_checked == 5
        assert parallel.jobs == 2

    def test_single_file_stays_serial(self, tree):
        only = tree / "src" / "repro" / "pkg" / "dirty.py"
        report = analyze([only], jobs=8, root=tree)
        assert report.files_checked == 1
        assert [f.rule for f in report.findings] == ["REP001"]


class TestCheckCache:
    def test_cold_then_warm(self, tree, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        cold = analyze([tree], store=store, root=tree)
        assert cold.files_cached == 0
        assert cold.files_analyzed == cold.files_checked == 5

        warm = analyze([tree], store=store, root=tree)
        assert warm.files_cached == 5
        assert warm.files_analyzed == 0
        assert _summary(warm) == _summary(cold)
        # The CI bar: a warm second invocation is >= 90% cached.
        assert warm.files_cached / warm.files_checked >= 0.9

    def test_editing_one_file_reanalyzes_only_it(self, tree, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        analyze([tree], store=store, root=tree)
        edited = tree / "src" / "repro" / "pkg" / "clean_0.py"
        edited.write_text("value_0 = 999\n")
        warm = analyze([tree], store=store, root=tree)
        assert warm.files_analyzed == 1
        assert warm.files_cached == 4

    def test_cached_findings_round_trip(self, tree, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        cold = analyze([tree], store=store, root=tree)
        warm = analyze([tree], store=store, root=tree)
        assert warm.files_cached == 5
        (cold_finding,) = [f for f in cold.findings if f.rule == "REP001"]
        (warm_finding,) = [f for f in warm.findings if f.rule == "REP001"]
        assert warm_finding == cold_finding

    def test_rule_selection_changes_the_cache_key(self, tree, tmp_path):
        from repro.devtools.engine import select_rules

        store = ArtifactStore(tmp_path / "cache")
        analyze([tree], store=store, root=tree)
        narrowed = analyze(
            [tree], rules=select_rules(["REP001"]), store=store, root=tree
        )
        # Different rule set -> different fingerprint -> full re-analysis.
        assert narrowed.files_cached == 0
        assert narrowed.files_analyzed == 5

    def test_store_counts_check_artifacts(self, tree, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        analyze([tree], store=store, root=tree)
        assert store.info().checks == 5

    def test_check_key_is_content_addressed(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        key = store.check_key("src/repro/x.py", "a" * 64, "f" * 64, CHECK_ENGINE_VERSION)
        store.save_check(key, {"module_info": {}, "findings": []})
        assert store.load_check(key) == {"module_info": {}, "findings": []}
        other_sha = store.check_key(
            "src/repro/x.py", "b" * 64, "f" * 64, CHECK_ENGINE_VERSION
        )
        assert store.load_check(other_sha) is None

    def test_fingerprint_depends_on_rules_and_engine(self):
        wide = ruleset_fingerprint(("REP001", "REP002"))
        narrow = ruleset_fingerprint(("REP001",))
        assert wide != narrow
        assert ruleset_fingerprint(("REP002", "REP001")) == wide  # order-free
