"""REP004 fixtures: blocking calls inside async def in the serve daemon."""

import textwrap

from repro.devtools import check_source

SERVE_PATH = "src/repro/serve/router.py"


def _rep004(source, path=SERVE_PATH):
    findings = check_source(textwrap.dedent(source), path=path)
    return [f for f in findings if f.rule == "REP004"]


class TestRep004Positives:
    def test_time_sleep_in_async_def(self):
        source = """
        async def handler(request):
            time.sleep(0.1)
        """
        findings = _rep004(source)
        assert len(findings) == 1
        assert "asyncio.sleep" in findings[0].message

    def test_subprocess_in_async_def(self):
        source = """
        async def handler(request):
            subprocess.run(["ls"])
        """
        assert len(_rep004(source)) == 1

    def test_requests_in_async_def(self):
        source = """
        async def handler(request):
            return requests.get(url)
        """
        assert len(_rep004(source)) == 1

    def test_sync_open_in_async_def(self):
        source = """
        async def handler(request):
            return open(path).read()
        """
        assert len(_rep004(source)) == 1

    def test_urllib_in_async_def(self):
        source = """
        async def handler(request):
            return urllib.request.urlopen(url)
        """
        assert len(_rep004(source)) == 1

    def test_nested_async_def_is_still_async(self):
        source = """
        async def outer():
            async def inner():
                time.sleep(1)
        """
        assert len(_rep004(source)) == 1


class TestRep004Negatives:
    def test_asyncio_sleep_is_fine(self):
        source = """
        async def tick(self):
            await asyncio.sleep(self.window_seconds)
        """
        assert _rep004(source) == []

    def test_sync_function_may_block(self):
        source = """
        def preload(self):
            time.sleep(0.1)
            return open(path).read()
        """
        assert _rep004(source) == []

    def test_executor_payload_nested_sync_def_is_exempt(self):
        source = """
        async def flush(self):
            def run_batch():
                return open(path).read()
            return await loop.run_in_executor(None, run_batch)
        """
        assert _rep004(source) == []

    def test_executor_payload_lambda_is_exempt(self):
        source = """
        async def flush(self):
            return await loop.run_in_executor(None, lambda: time.sleep(1))
        """
        assert _rep004(source) == []

    def test_rule_is_scoped_to_serve(self):
        source = """
        async def helper():
            time.sleep(1)
        """
        assert _rep004(source, path="src/repro/engine/parallel.py") == []
