"""Tests for the backend protocol, registry and dispatch wiring."""

import pytest

from repro.algorithms.registry import run_algorithm
from repro.analysis.experiments import ExperimentConfig, run_algorithm_study
from repro.backends import (
    Backend,
    available_backends,
    get_backend,
    register_backend,
    validate_backends,
)
from repro.backends.base import _REGISTRY, resolve_graph
from repro.errors import BackendError


class TestRegistry:
    def test_default_backends_registered(self):
        assert "reference" in available_backends()
        assert "vectorized" in available_backends()

    def test_get_backend_unknown_name(self):
        with pytest.raises(BackendError, match="unknown backend"):
            get_backend("gpu")

    def test_register_requires_name(self):
        class Nameless(Backend):
            def _run(self, *args, **kwargs):  # pragma: no cover - never called
                raise NotImplementedError

            def _degrees(self, *args, **kwargs):  # pragma: no cover - never called
                raise NotImplementedError

        with pytest.raises(BackendError, match="non-empty name"):
            register_backend(Nameless())

    def test_custom_backend_is_dispatchable(self, partitioned_social):
        reference = get_backend("reference")

        class EchoBackend(Backend):
            name = "echo-test"

            def _run(self, algorithm, graph, **kwargs):
                return reference.run(algorithm, graph, **kwargs)

            def _degrees(self, graph, direction="out"):
                return reference.degrees(graph, direction)

        register_backend(EchoBackend())
        try:
            result = run_algorithm("CC", partitioned_social, backend="echo-test")
            assert result.backend == "echo-test"
        finally:
            _REGISTRY.pop("echo-test")

    def test_resolve_graph_rejects_other_types(self):
        with pytest.raises(BackendError, match="expected a Graph"):
            resolve_graph(object())


class TestDispatch:
    def test_default_backend_is_reference(self, partitioned_social):
        result = run_algorithm("PR", partitioned_social, num_iterations=2)
        assert result.backend == "reference"
        assert result.report is not None
        assert result.wall_seconds > 0.0
        assert result.simulated_seconds > 0.0

    def test_vectorized_has_no_simulated_time(self, partitioned_social):
        result = run_algorithm("PR", partitioned_social, num_iterations=2, backend="vectorized")
        assert result.backend == "vectorized"
        assert result.report is None
        assert result.simulated_seconds == 0.0
        assert result.wall_seconds > 0.0

    def test_unknown_algorithm_on_vectorized(self, partitioned_social):
        with pytest.raises(BackendError, match="unknown algorithm"):
            run_algorithm("BFS", partitioned_social, backend="vectorized")

    def test_unknown_backend_name(self, partitioned_social):
        with pytest.raises(BackendError, match="unknown backend"):
            run_algorithm("PR", partitioned_social, backend="quantum")


class TestExperimentHarness:
    def test_study_carries_backend_provenance(self, small_social_graph):
        config = ExperimentConfig(
            algorithm="CC",
            num_partitions=4,
            datasets=["small-social"],
            partitioners=["1D", "2D"],
            num_iterations=3,
            backend="vectorized",
        )
        records = run_algorithm_study(config, graphs={"small-social": small_social_graph})
        assert len(records) == 2
        for record in records:
            assert record.backend == "vectorized"
            assert record.simulated_seconds == 0.0
            assert record.wall_seconds > 0.0
            assert record.as_row()["backend"] == "vectorized"
            assert record.as_row()["wall_s"] > 0.0
        # Partition-oblivious backends execute once per dataset; every
        # partitioner row reuses that single run.
        assert len({record.wall_seconds for record in records}) == 1

    def test_reference_study_unchanged(self, small_social_graph):
        config = ExperimentConfig(
            algorithm="PR",
            num_partitions=4,
            datasets=["small-social"],
            partitioners=["1D"],
            num_iterations=2,
        )
        (record,) = run_algorithm_study(config, graphs={"small-social": small_social_graph})
        assert record.backend == "reference"
        assert record.simulated_seconds > 0.0


class TestValidationFailure:
    def test_disagreeing_backend_is_reported(self, partitioned_social):
        vectorized = get_backend("vectorized")

        class OffByOneBackend(Backend):
            name = "off-by-one-test"

            def _run(self, algorithm, graph, **kwargs):
                result = vectorized.run(algorithm, graph, **kwargs)
                vertex = next(iter(result.vertex_values))
                result.vertex_values[vertex] += 1
                return result

            def _degrees(self, graph, direction="out"):  # pragma: no cover
                return vectorized.degrees(graph, direction)

        register_backend(OffByOneBackend())
        try:
            with pytest.raises(BackendError, match="disagree at vertex"):
                validate_backends(
                    partitioned_social,
                    algorithms=("CC",),
                    backends=("reference", "off-by-one-test"),
                )
        finally:
            _REGISTRY.pop("off-by-one-test")

    def test_needs_two_backends(self, partitioned_social):
        with pytest.raises(BackendError, match="at least two"):
            validate_backends(partitioned_social, backends=("reference",))
