"""REP009 fixtures: whole-graph materialisation in out-of-core code."""

import textwrap

from repro.devtools import check_source


def _rep009(source, path="src/repro/ooc/shards.py"):
    findings = check_source(textwrap.dedent(source), path=path)
    return [f for f in findings if f.rule == "REP009"]


class TestRep009Positives:
    def test_edges_method_call(self):
        findings = _rep009("for edge in graph.edges():\n    handle(edge)\n")
        assert len(findings) == 1
        assert "realises every edge" in findings[0].message

    def test_edge_set_call(self):
        assert len(_rep009("seen = graph.edge_set()\n")) == 1

    def test_edge_pairs_call(self):
        assert len(_rep009("pairs = graph.edge_pairs()\n")) == 1

    def test_list_wrapped_edge_pairs(self):
        # list(...) wrapping does not hide the materialising inner call.
        assert len(_rep009("pairs = list(graph.edge_pairs())\n")) == 1

    def test_chained_receiver(self):
        assert len(_rep009("pairs = self.graph.edge_pairs()\n")) == 1

    def test_np_asarray_of_src_column(self):
        findings = _rep009("src = np.asarray(graph.src)\n")
        assert len(findings) == 1
        assert "full edge column" in findings[0].message

    def test_np_array_of_dst_column(self):
        assert len(_rep009("dst = np.array(self.graph.dst)\n")) == 1

    def test_np_copy_and_fromiter(self):
        assert len(_rep009("dst = np.copy(graph.dst)\n")) == 1
        assert len(_rep009("src = np.fromiter(graph.src, dtype=int)\n")) == 1

    def test_applies_to_streaming_partitioners(self):
        for path in (
            "src/repro/partitioning/greedy.py",
            "src/repro/partitioning/streaming.py",
        ):
            assert len(_rep009("pairs = graph.edge_pairs()\n", path=path)) == 1


class TestRep009Negatives:
    def test_bounded_column_slices_are_fine(self):
        assert _rep009("chunk = graph.src[start:stop]\n") == []

    def test_attribute_access_without_copy_is_fine(self):
        assert _rep009("total = graph.src.size\n") == []

    def test_asarray_of_non_edge_attribute_is_fine(self):
        assert _rep009("ids = np.asarray(graph.vertex_ids)\n") == []

    def test_asarray_of_local_name_is_fine(self):
        assert _rep009("arr = np.asarray(values)\n") == []

    def test_other_modules_are_exempt(self):
        # The in-memory engine may materialise freely; the rule guards
        # only the out-of-core package and the streaming partitioners.
        source = "pairs = list(graph.edge_pairs())\n"
        assert _rep009(source, path="src/repro/core/graph.py") == []
        assert _rep009(source, path="src/repro/engine/pregel.py") == []
        assert _rep009(source, path="tests/test_ooc_equivalence.py") == []

    def test_noqa_suppression(self):
        source = "pairs = graph.edge_pairs()  # repro: noqa[REP009]\n"
        assert _rep009(source) == []
