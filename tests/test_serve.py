"""The serving layer: query cache, batcher, service, router and daemon.

The HTTP tests run a real :class:`GraphQueryServer` on an ephemeral port
inside ``asyncio.run`` and speak HTTP/1.1 over raw stream connections —
the same wire path production traffic takes.
"""

import asyncio
import json

import pytest

from repro.engine.partitioned_graph import PartitionedGraph
from repro.errors import EngineError
from repro.serve import (
    BatchingScheduler,
    GraphQueryServer,
    GraphService,
    QueryCache,
    Router,
    ServeError,
)
from repro.serve.telemetry import LatencyHistogram, ServerTelemetry
from repro.session import Session


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _make_service(graph, name="toy", **kwargs) -> GraphService:
    session = Session(scale=1.0, seed=0, graphs={name: graph})
    kwargs.setdefault("landmark_count", 3)
    service = GraphService(session, [name], "RVC", 4, **kwargs)
    service.preload()
    return service


async def _request(host, port, path, method="GET", raw=None):
    """One HTTP exchange on a fresh connection; returns (status, payload)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        if raw is not None:
            writer.write(raw)
        else:
            writer.write(f"{method} {path} HTTP/1.1\r\nHost: t\r\n\r\n".encode())
        await writer.drain()
        return await _read_response(reader)
    finally:
        writer.close()
        await writer.wait_closed()


async def _read_response(reader):
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b""):
            break
        key, _, value = line.decode("latin-1").partition(":")
        if key.strip().lower() == "content-length":
            length = int(value)
    return status, json.loads(await reader.readexactly(length))


def _with_server(service, scenario, window_seconds=0.01):
    """Run ``scenario(host, port, router)`` against a live daemon."""

    async def main():
        batcher = BatchingScheduler(service.run_batch, window_seconds=window_seconds)
        router = Router(service, batcher)
        server = GraphQueryServer(router, host="127.0.0.1", port=0)
        host, port = await server.start()
        try:
            return await scenario(host, port, router)
        finally:
            await server.close()

    return asyncio.run(main())


# ----------------------------------------------------------------------
# Query cache
# ----------------------------------------------------------------------
class TestQueryCache:
    def test_keys_are_canonical(self):
        assert QueryCache.key(a=1, b="x") == QueryCache.key(b="x", a=1)
        assert QueryCache.key(a=1) != QueryCache.key(a=2)

    def test_hit_and_miss_accounting(self):
        cache = QueryCache(max_entries=4)
        key = QueryCache.key(q=1)
        hit, value = cache.lookup(key)
        assert (hit, value) == (False, None)
        cache.put(key, "answer")
        hit, value = cache.lookup(key)
        assert (hit, value) == (True, "answer")
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["entries"] == 1

    def test_lru_evicts_least_recently_used(self):
        cache = QueryCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.lookup("a")[0]  # refresh "a": now "b" is the LRU entry
        cache.put("c", 3)
        assert cache.lookup("b") == (False, None)
        assert cache.lookup("a") == (True, 1)
        assert cache.lookup("c") == (True, 3)
        assert cache.stats()["evictions"] == 1


# ----------------------------------------------------------------------
# Telemetry
# ----------------------------------------------------------------------
class TestTelemetry:
    def test_histogram_percentiles_are_ordered(self):
        histogram = LatencyHistogram()
        for ms in (1, 2, 3, 50, 200):
            histogram.record(ms / 1000.0)
        summary = histogram.as_dict()
        assert summary["count"] == 5
        assert summary["p50_ms"] <= summary["p90_ms"] <= summary["p99_ms"]
        assert summary["p99_ms"] <= summary["max_ms"] == 200.0

    def test_endpoint_error_accounting(self):
        telemetry = ServerTelemetry()
        telemetry.record("/x", 0.001, 200)
        telemetry.record("/x", 0.002, 404)
        snapshot = telemetry.snapshot()
        assert snapshot["requests_total"] == 2
        assert snapshot["endpoints"]["/x"]["errors"] == 1


# ----------------------------------------------------------------------
# Batching scheduler
# ----------------------------------------------------------------------
class TestBatchingScheduler:
    def test_concurrent_submits_coalesce_into_one_call(self):
        calls = []

        def run_batch(keys):
            calls.append(sorted(keys))
            return {key: key * 10 for key in keys}

        async def main():
            batcher = BatchingScheduler(run_batch, window_seconds=0.02)
            try:
                return await asyncio.gather(*(batcher.submit(k) for k in range(5)))
            finally:
                await batcher.close()

        results = asyncio.run(main())
        assert results == [0, 10, 20, 30, 40]
        assert calls == [[0, 1, 2, 3, 4]]

    def test_duplicate_keys_share_one_slot(self):
        calls = []

        def run_batch(keys):
            calls.append(list(keys))
            return {key: "v" for key in keys}

        async def main():
            batcher = BatchingScheduler(run_batch, window_seconds=0.02)
            try:
                return await asyncio.gather(*(batcher.submit("same") for _ in range(4)))
            finally:
                await batcher.close()

        assert asyncio.run(main()) == ["v"] * 4
        assert calls == [["same"]]
        # 4 queries, 1 batch of 1 distinct key.

    def test_max_batch_flushes_early(self):
        calls = []

        def run_batch(keys):
            calls.append(list(keys))
            return {key: key for key in keys}

        async def main():
            # A huge window: only the max_batch=3 trigger can flush the
            # first three; the fourth then rides a second flush.
            batcher = BatchingScheduler(run_batch, window_seconds=30.0, max_batch=3)
            try:
                first = asyncio.gather(*(batcher.submit(k) for k in range(3)))
                results = await asyncio.wait_for(first, timeout=5.0)
                await batcher.close()
                return results
            except BaseException:
                await batcher.close()
                raise

        assert asyncio.run(main()) == [0, 1, 2]
        assert len(calls) == 1 and sorted(calls[0]) == [0, 1, 2]

    def test_runner_failure_propagates_to_all_waiters(self):
        def run_batch(keys):
            raise RuntimeError("engine exploded")

        async def main():
            batcher = BatchingScheduler(run_batch, window_seconds=0.01)
            try:
                return await asyncio.gather(
                    *(batcher.submit(k) for k in range(3)), return_exceptions=True
                )
            finally:
                await batcher.close()

        results = asyncio.run(main())
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_missing_key_in_result_is_an_engine_error(self):
        async def main():
            batcher = BatchingScheduler(lambda keys: {}, window_seconds=0.01)
            try:
                with pytest.raises(EngineError, match="no result"):
                    await batcher.submit("ghost")
            finally:
                await batcher.close()

        asyncio.run(main())

    def test_invalid_configuration_rejected(self):
        with pytest.raises(EngineError):
            BatchingScheduler(lambda keys: {}, window_seconds=-1.0)
        with pytest.raises(EngineError):
            BatchingScheduler(lambda keys: {}, max_batch=0)


# ----------------------------------------------------------------------
# Service semantics
# ----------------------------------------------------------------------
class TestGraphService:
    def test_batched_queries_use_one_engine_run(self, small_social_graph):
        """N concurrent exact-SSSP queries -> exactly one engine run, with
        results identical to N serial single-source runs."""
        sources = sorted(small_social_graph.vertex_ids.tolist())[:6]

        batched_service = _make_service(small_social_graph)
        runs_before = batched_service.engine_runs

        async def main():
            batcher = BatchingScheduler(batched_service.run_batch, window_seconds=0.05)
            try:
                return await asyncio.gather(
                    *(batcher.submit(("toy", source)) for source in sources)
                )
            finally:
                await batcher.close()

        batched_maps = asyncio.run(main())
        assert batched_service.engine_runs == runs_before + 1

        serial_service = _make_service(small_social_graph)
        runs_before = serial_service.engine_runs
        serial_maps = [
            serial_service.exact_distances("toy", source) for source in sources
        ]
        assert serial_service.engine_runs == runs_before + len(sources)
        assert batched_maps == serial_maps

    def test_estimates_bound_exact_distances(self, small_social_graph):
        service = _make_service(small_social_graph)
        vertices = small_social_graph.vertex_ids.tolist()
        source = vertices[0]
        exact = service.exact_distances("toy", source)
        for target in vertices[::9]:
            estimate = service.estimate_distance("toy", source, target)
            if estimate is not None:
                assert estimate >= exact[target]
        for landmark in service.matrix("toy").landmarks:
            exact = service.exact_distances("toy", landmark)
            for target in vertices[::9]:
                assert service.estimate_distance("toy", landmark, target) == exact.get(target)

    def test_component_and_degree_lookups(self, two_component_graph):
        service = _make_service(two_component_graph)
        left = service.component_of("toy", 0)
        right = service.component_of("toy", 10)
        assert left["component"] != right["component"]
        assert left["component_size"] == 3 and right["component_size"] == 2
        assert left["num_components"] == 2
        info = service.vertex_info("toy", 1)
        assert info["out_degree"] == 2 and info["in_degree"] == 2
        neighbors = service.neighbors("toy", 1, "out", limit=10)
        assert sorted(neighbors["neighbors"]) == [0, 2]

    def test_unknown_dataset_and_vertex_are_404(self, two_component_graph):
        service = _make_service(two_component_graph)
        with pytest.raises(ServeError) as excinfo:
            service.resolve("nope")
        assert excinfo.value.status == 404
        with pytest.raises(ServeError) as excinfo:
            service.vertex_info("toy", 999)
        assert excinfo.value.status == 404

    def test_run_batch_publishes_to_query_cache(self, two_component_graph):
        service = _make_service(two_component_graph)
        service.exact_distances("toy", 0)
        hit, mapping = service.cache.lookup(service.exact_map_key("toy", 0))
        assert hit and mapping[2] == 2


# ----------------------------------------------------------------------
# HTTP daemon end to end
# ----------------------------------------------------------------------
class TestHTTPServer:
    @pytest.fixture
    def service(self, small_social_graph):
        return _make_service(small_social_graph)

    def test_query_endpoints(self, service, small_social_graph):
        vertices = sorted(small_social_graph.vertex_ids.tolist())
        a, b = vertices[0], vertices[len(vertices) // 2]

        async def scenario(host, port, router):
            status, health = await _request(host, port, "/health")
            assert status == 200 and health["status"] == "ok"

            status, estimate = await _request(
                host, port, f"/distance?source={a}&target={b}"
            )
            assert status == 200 and estimate["method"] in ("estimate", "exact")

            status, exact = await _request(
                host, port, f"/distance?source={a}&target={b}&exact=1"
            )
            assert status == 200 and exact["method"] == "exact"

            status, again = await _request(
                host, port, f"/distance?source={a}&target={b}&exact=1"
            )
            assert again["cached"] is True
            assert again["distance"] == exact["distance"]

            status, top = await _request(host, port, "/pagerank/top?k=3")
            assert status == 200 and len(top["top"]) == 3
            ranks = [row["rank"] for row in top["top"]]
            assert ranks == sorted(ranks, reverse=True)

            status, component = await _request(host, port, f"/component?vertex={a}")
            assert status == 200 and "component_size" in component

            status, vertex = await _request(host, port, f"/vertex?vertex={a}")
            assert status == 200 and vertex["degree"] >= 0

            status, neighbors = await _request(
                host, port, f"/neighbors?vertex={a}&direction=out&limit=5"
            )
            assert status == 200 and len(neighbors["neighbors"]) <= 5

        _with_server(service, scenario)

    def test_malformed_requests_get_4xx_and_daemon_survives(self, service):
        async def scenario(host, port, router):
            # Garbage on the wire -> 400 JSON, connection closed.
            status, payload = await _request(host, port, "", raw=b"NOT HTTP\r\n\r\n")
            assert status == 400 and payload["error"]["status"] == 400

            # Unknown endpoint -> 404; wrong method -> 405.
            status, payload = await _request(host, port, "/nope")
            assert status == 404
            status, payload = await _request(host, port, "/shutdown", method="GET")
            assert status == 405

            # Bad parameter types -> 400 with a JSON error body.
            status, payload = await _request(host, port, "/distance?source=x&target=1")
            assert status == 400 and "integer" in payload["error"]["message"]
            status, payload = await _request(host, port, "/pagerank/top?k=0")
            assert status == 400

            # Unknown vertex -> 404, unknown dataset -> 404.
            status, payload = await _request(
                host, port, "/distance?source=999999&target=999998"
            )
            assert status == 404
            status, payload = await _request(host, port, "/vertex?vertex=1&dataset=ghost")
            assert status == 404

            # After all that abuse the daemon still answers normally.
            status, payload = await _request(host, port, "/health")
            assert status == 200 and payload["status"] == "ok"

        _with_server(service, scenario)

    def test_concurrent_exact_distances_coalesce_over_http(
        self, service, small_social_graph
    ):
        sources = sorted(small_social_graph.vertex_ids.tolist())[:8]
        target = sources[-1]
        runs_before = service.engine_runs

        async def scenario(host, port, router):
            results = await asyncio.gather(
                *(
                    _request(host, port, f"/distance?source={s}&target={target}&exact=1")
                    for s in sources
                )
            )
            assert all(status == 200 for status, _ in results)
            stats = router.batcher.stats.as_dict()
            assert stats["queries"] == len(sources)
            assert stats["batches"] < len(sources)
            return results

        _with_server(service, scenario, window_seconds=0.05)
        # All 8 concurrent queries rode at most a couple of engine runs
        # (one per flush), never one run per query.
        assert service.engine_runs - runs_before < len(sources)

    def test_stats_payload_shape(self, service):
        async def scenario(host, port, router):
            await _request(host, port, "/health")
            status, stats = await _request(host, port, "/stats")
            assert status == 200
            for key in (
                "uptime_seconds",
                "requests_total",
                "endpoints",
                "datasets",
                "query_cache",
                "batcher",
                "engine_runs",
                "session",
            ):
                assert key in stats, key
            health = stats["endpoints"]["/health"]
            assert health["requests"] == 1
            assert set(health["latency"]) == {
                "count", "mean_ms", "p50_ms", "p90_ms", "p99_ms", "max_ms",
            }
            assert stats["batcher"]["window_ms"] == pytest.approx(10.0)

        _with_server(service, scenario)

    def test_keep_alive_serves_sequential_requests(self, service):
        async def scenario(host, port, router):
            reader, writer = await asyncio.open_connection(host, port)
            try:
                for _ in range(3):
                    writer.write(b"GET /health HTTP/1.1\r\nHost: t\r\n\r\n")
                    await writer.drain()
                    status, payload = await _read_response(reader)
                    assert status == 200
            finally:
                writer.close()
                await writer.wait_closed()
            assert router.telemetry.endpoint("/health").requests == 3

        _with_server(service, scenario)

    def test_shutdown_endpoint_sets_event(self, service):
        async def scenario(host, port, router):
            status, payload = await _request(host, port, "/shutdown", method="POST")
            assert status == 200 and payload["status"] == "shutting down"
            assert router.shutdown_event.is_set()

        _with_server(service, scenario)
