"""Unit tests for run records, grouping helpers and correlation analysis."""

import numpy as np
import pytest

from repro.analysis.correlation import (
    _ranks,
    correlation_table,
    correlation_with_time,
    pearson,
    spearman,
)
from repro.analysis.results import (
    RunRecord,
    best_partitioner_per_dataset,
    group_by_dataset,
    records_to_rows,
)
from repro.errors import AnalysisError
from repro.metrics.partition_metrics import compute_metrics
from repro.partitioning.registry import make_partitioner


def _record(dataset, partitioner, seconds, graph, num_partitions=4, algorithm="PR"):
    metrics = compute_metrics(make_partitioner(partitioner).assign(graph, num_partitions))
    return RunRecord(
        dataset=dataset,
        partitioner=partitioner,
        num_partitions=num_partitions,
        algorithm=algorithm,
        metrics=metrics,
        simulated_seconds=seconds,
        num_supersteps=10,
    )


@pytest.fixture
def sample_records(small_social_graph, small_road_graph):
    return [
        _record("social", "RVC", 2.0, small_social_graph),
        _record("social", "2D", 1.5, small_social_graph),
        _record("social", "DC", 1.2, small_social_graph),
        _record("road", "RVC", 0.8, small_road_graph),
        _record("road", "2D", 0.7, small_road_graph),
        _record("road", "DC", 0.5, small_road_graph),
    ]


class TestPearsonAndSpearman:
    def test_perfect_positive_correlation(self):
        assert pearson([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)
        assert spearman([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)

    def test_perfect_negative_correlation(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_series_gives_zero(self):
        assert pearson([1, 1, 1], [1, 2, 3]) == 0.0

    def test_spearman_is_rank_based(self):
        # A monotone but non-linear relationship: Spearman sees it as perfect.
        xs = [1, 2, 3, 4, 5]
        ys = [1, 8, 27, 64, 125]
        assert spearman(xs, ys) == pytest.approx(1.0)
        assert pearson(xs, ys) < 1.0

    def test_matches_scipy(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        xs = [3.0, 1.0, 4.0, 1.5, 9.0, 2.6, 5.3]
        ys = [2.0, 7.0, 1.0, 8.0, 2.8, 1.8, 2.9]
        assert pearson(xs, ys) == pytest.approx(scipy_stats.pearsonr(xs, ys)[0])
        assert spearman(xs, ys) == pytest.approx(scipy_stats.spearmanr(xs, ys)[0])

    @staticmethod
    def _ranks_reference(values):
        """The seed per-unique-value tie-averaging loop (O(n*unique))."""
        array = np.asarray(values, dtype=np.float64)
        order = np.argsort(array, kind="mergesort")
        ranks = np.empty(len(values), dtype=np.float64)
        ranks[order] = np.arange(1, len(values) + 1, dtype=np.float64)
        for value in np.unique(array):
            mask = array == value
            if mask.sum() > 1:
                ranks[mask] = ranks[mask].mean()
        return ranks

    def test_vectorized_ranks_match_reference_loop_on_ties(self):
        rng = np.random.default_rng(42)
        cases = [
            [1.0] * 9,  # every value tied
            [3.0],  # singleton
            [1, 1, 2, 2, 2, 3],  # mixed tie groups
            [5, 4, 3, 2, 1],  # no ties, reversed
            [-np.inf, 0.0, 0.0, np.inf, np.inf],  # ties at the extremes
            [1.0, np.nan, np.nan, 2.0],  # NaNs are never a tie group
            [np.nan, np.nan, np.nan],
        ]
        for _ in range(50):
            n = int(rng.integers(2, 200))
            pool = rng.normal(size=max(1, n // 4))  # few distinct values: tie-heavy
            cases.append(rng.choice(pool, size=n))
        for values in cases:
            assert np.array_equal(_ranks(values), self._ranks_reference(values))

    def test_spearman_with_heavy_ties_matches_scipy(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        xs = [1, 1, 2, 2, 2, 3, 3, 4]
        ys = [2, 2, 2, 1, 5, 5, 7, 7]
        assert spearman(xs, ys) == pytest.approx(scipy_stats.spearmanr(xs, ys)[0])

    @pytest.mark.parametrize("func", [pearson, spearman])
    def test_length_mismatch_rejected(self, func):
        with pytest.raises(AnalysisError):
            func([1, 2], [1, 2, 3])

    @pytest.mark.parametrize("func", [pearson, spearman])
    def test_too_few_observations_rejected(self, func):
        with pytest.raises(AnalysisError):
            func([1], [2])


class TestRunRecordHelpers:
    def test_metric_lookup(self, sample_records):
        record = sample_records[0]
        assert record.metric("comm_cost") == record.metrics.comm_cost
        assert record.metric("balance") == pytest.approx(record.metrics.balance)

    def test_records_to_rows_columns(self, sample_records):
        rows = records_to_rows(sample_records)
        assert len(rows) == 6
        assert {"dataset", "partitioner", "seconds", "comm_cost"} <= set(rows[0])

    def test_group_by_dataset(self, sample_records):
        grouped = group_by_dataset(sample_records)
        assert set(grouped) == {"social", "road"}
        assert len(grouped["social"]) == 3

    def test_best_partitioner_per_dataset(self, sample_records):
        best = best_partitioner_per_dataset(sample_records)
        assert best == {"social": "DC", "road": "DC"}

    def test_best_partitioner_filtered_by_granularity(self, sample_records, small_social_graph):
        extra = _record("social", "1D", 0.1, small_social_graph, num_partitions=8)
        best_coarse = best_partitioner_per_dataset(sample_records + [extra], num_partitions=4)
        best_fine = best_partitioner_per_dataset(sample_records + [extra], num_partitions=8)
        assert best_coarse["social"] == "DC"
        assert best_fine == {"social": "1D"}


class TestCorrelationWithTime:
    def test_correlates_comm_cost_with_time(self, sample_records):
        value = correlation_with_time(sample_records, "comm_cost")
        assert -1.0 <= value <= 1.0

    def test_time_proxy_correlates_perfectly_with_itself(self, small_social_graph):
        records = [
            _record("d", name, float(compute_metrics(
                make_partitioner(name).assign(small_social_graph, 4)
            ).comm_cost), small_social_graph)
            for name in ("RVC", "2D", "DC", "CRVC")
        ]
        assert correlation_with_time(records, "comm_cost") == pytest.approx(1.0)

    def test_spearman_method(self, sample_records):
        value = correlation_with_time(sample_records, "comm_cost", method="spearman")
        assert -1.0 <= value <= 1.0

    def test_unknown_method_rejected(self, sample_records):
        with pytest.raises(AnalysisError):
            correlation_with_time(sample_records, "comm_cost", method="kendall")

    def test_too_few_records_rejected(self, sample_records):
        with pytest.raises(AnalysisError):
            correlation_with_time(sample_records[:1], "comm_cost")

    def test_correlation_table_covers_requested_metrics(self, sample_records):
        table = correlation_table(sample_records, metrics=("comm_cost", "cut"))
        assert set(table) == {"comm_cost", "cut"}
