"""Vectorized kernels must reproduce the reference simulator's vertex values.

The contract: bit-exact equality for CC, TR, SSSP and the degree kernels,
floating-point equality (``pytest.approx``) for PageRank, on every graph
of the zoo below — including duplicate edges, self-loops, isolated
vertices and sparse non-contiguous vertex ids.
"""

import pytest

from repro.algorithms.registry import run_algorithm
from repro.algorithms.shortest_paths import choose_landmarks
from repro.backends import get_backend, validate_backends
from repro.core.graph import Graph
from repro.datasets.generators import social_graph
from repro.engine.partitioned_graph import PartitionedGraph


def _random_graph():
    return social_graph(
        num_vertices=80,
        num_edges=420,
        exponent=2.3,
        reciprocity=0.3,
        triadic_closure=0.3,
        connect=True,
        seed=5,
        name="zoo-random",
    )


def _path_graph():
    return Graph.from_edges([(i, i + 1) for i in range(25)], name="zoo-path")


def _star_graph():
    edges = [(i, 0) for i in range(1, 12)] + [(0, i) for i in range(1, 4)]
    return Graph.from_edges(edges, name="zoo-star")


def _messy_graph():
    # Duplicate edges, self loops, two components, an isolated vertex and
    # sparse ids.
    edges = [
        (5, 9), (5, 9), (9, 5), (5, 5), (9, 100), (100, 101), (101, 100),
        (100, 5), (200, 201), (201, 202), (202, 200), (202, 202),
    ]
    return Graph.from_edges(edges, vertices=[77], name="zoo-messy")


GRAPH_BUILDERS = {
    "random": _random_graph,
    "path": _path_graph,
    "star": _star_graph,
    "messy": _messy_graph,
}


@pytest.fixture(params=sorted(GRAPH_BUILDERS), ids=sorted(GRAPH_BUILDERS))
def zoo_pgraph(request):
    graph = GRAPH_BUILDERS[request.param]()
    return PartitionedGraph.partition(graph, "CRVC", 4)


class TestAlgorithmEquivalence:
    def test_pagerank_matches_reference(self, zoo_pgraph):
        reference = run_algorithm("PR", zoo_pgraph, num_iterations=10)
        vectorized = run_algorithm("PR", zoo_pgraph, num_iterations=10, backend="vectorized")
        assert set(vectorized.vertex_values) == set(reference.vertex_values)
        assert vectorized.num_supersteps == reference.num_supersteps
        for vertex, expected in reference.vertex_values.items():
            assert vectorized.vertex_values[vertex] == pytest.approx(expected)

    @pytest.mark.parametrize("iterations", [3, 10, 50])
    def test_connected_components_matches_reference(self, zoo_pgraph, iterations):
        reference = run_algorithm("CC", zoo_pgraph, num_iterations=iterations)
        vectorized = run_algorithm(
            "CC", zoo_pgraph, num_iterations=iterations, backend="vectorized"
        )
        assert vectorized.vertex_values == reference.vertex_values
        assert vectorized.num_supersteps == reference.num_supersteps

    def test_triangle_count_matches_reference(self, zoo_pgraph):
        reference = run_algorithm("TR", zoo_pgraph)
        vectorized = run_algorithm("TR", zoo_pgraph, backend="vectorized")
        assert vectorized.vertex_values == reference.vertex_values

    def test_shortest_paths_matches_reference(self, zoo_pgraph):
        landmarks = choose_landmarks(zoo_pgraph, count=3, seed=13)
        reference = run_algorithm("SSSP", zoo_pgraph, landmarks=landmarks)
        vectorized = run_algorithm("SSSP", zoo_pgraph, landmarks=landmarks, backend="vectorized")
        assert vectorized.vertex_values == reference.vertex_values
        assert vectorized.num_supersteps == reference.num_supersteps

    def test_shortest_paths_default_landmarks_agree(self, zoo_pgraph):
        reference = run_algorithm("SSSP", zoo_pgraph, landmark_seed=21)
        vectorized = run_algorithm("SSSP", zoo_pgraph, landmark_seed=21, backend="vectorized")
        assert vectorized.vertex_values == reference.vertex_values

    @pytest.mark.parametrize("direction", ["out", "in", "both"])
    def test_degrees_match_reference(self, zoo_pgraph, direction):
        reference = get_backend("reference").degrees(zoo_pgraph, direction)
        vectorized = get_backend("vectorized").degrees(zoo_pgraph, direction)
        assert vectorized.vertex_values == reference.vertex_values


class TestValidateBackends:
    def test_full_zoo_validates(self, zoo_pgraph):
        outcomes = validate_backends(zoo_pgraph)
        assert sorted(outcomes) == ["CC", "PR", "SSSP", "TR"]
        for runs in outcomes.values():
            assert sorted(runs) == ["reference", "vectorized"]
            assert runs["reference"].report is not None
            assert runs["vectorized"].report is None
            # Wall-clock timing is stamped uniformly by the backend layer.
            assert runs["reference"].wall_seconds > 0.0
            assert runs["vectorized"].wall_seconds > 0.0

    def test_accepts_bare_graph(self):
        outcomes = validate_backends(_star_graph(), algorithms=("PR", "CC"))
        assert sorted(outcomes) == ["CC", "PR"]

    def test_triangle_counts_on_clique_ring(self, clique_ring_graph):
        pgraph = PartitionedGraph.partition(clique_ring_graph, "2D", 4)
        outcomes = validate_backends(pgraph, algorithms=("TR",))
        counts = outcomes["TR"]["vectorized"].vertex_values
        # Every vertex of a 5-clique sits on at least C(4,2) = 6 triangles.
        assert all(count >= 6 for count in counts.values())
