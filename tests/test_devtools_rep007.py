"""REP007 fixtures: bare except / swallowed KeyError in engine routing."""

import textwrap

from repro.devtools import check_source

ENGINE_PATH = "src/repro/engine/routing.py"


def _rep007(source, path=ENGINE_PATH):
    findings = check_source(textwrap.dedent(source), path=path)
    return [f for f in findings if f.rule == "REP007"]


class TestRep007Positives:
    def test_bare_except_in_library_code(self):
        source = """
        try:
            deliver(message)
        except:
            pass
        """
        findings = _rep007(source, path="src/repro/session/session.py")
        assert len(findings) == 1
        assert "bare except" in findings[0].message

    def test_swallowed_keyerror_in_engine(self):
        source = """
        try:
            mailbox = mailboxes[target]
        except KeyError:
            pass
        """
        findings = _rep007(source)
        assert len(findings) == 1
        assert "EngineError" in findings[0].message

    def test_swallowed_keyerror_tuple_with_continue(self):
        source = """
        for target in targets:
            try:
                route(target)
            except (KeyError, IndexError):
                continue
        """
        assert len(_rep007(source)) == 1

    def test_swallowed_keyerror_with_ellipsis_body(self):
        source = """
        try:
            route(target)
        except KeyError:
            ...
        """
        assert len(_rep007(source)) == 1


class TestRep007Negatives:
    def test_handled_keyerror_is_fine(self):
        source = """
        try:
            mailbox = mailboxes[target]
        except KeyError:
            raise EngineError(f"unknown message target {target!r}")
        """
        assert _rep007(source) == []

    def test_swallowed_keyerror_outside_engine_is_fine(self):
        source = """
        try:
            value = cache[key]
        except KeyError:
            pass
        """
        assert _rep007(source, path="src/repro/serve/cache.py") == []

    def test_named_broad_exception_is_not_a_bare_except(self):
        source = """
        try:
            run()
        except Exception as exc:
            log(exc)
        """
        assert _rep007(source) == []
