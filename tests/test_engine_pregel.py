"""Unit tests for the Pregel loop and the aggregate_messages primitive."""

import pytest

from repro.core.graph import Graph
from repro.engine.cluster import ClusterConfig
from repro.engine.partitioned_graph import PartitionedGraph
from repro.engine.pregel import aggregate_messages, pregel
from repro.errors import EngineError


def _chain_graph(length=5):
    """Directed chain 0 -> 1 -> ... -> length."""
    return Graph(list(range(length)), list(range(1, length + 1)), name="chain")


def _pgraph(graph, num_partitions=4, strategy="RVC"):
    return PartitionedGraph.partition(graph, strategy, num_partitions)


def _min_propagation(pgraph, max_iterations=50, **kwargs):
    """Propagate the minimum vertex id along edges in both directions."""
    values = {int(v): int(v) for v in pgraph.graph.vertex_ids.tolist()}

    def vertex_program(vertex, value, message):
        if message is None:
            return value
        return min(value, message)

    def send_message(src, src_value, dst, dst_value):
        out = []
        if src_value < dst_value:
            out.append((dst, src_value))
        if dst_value < src_value:
            out.append((src, dst_value))
        return out

    return pregel(
        pgraph,
        initial_values=values,
        initial_message=None,
        vertex_program=vertex_program,
        send_message=send_message,
        merge_message=min,
        max_iterations=max_iterations,
        **kwargs,
    )


class TestPregelCorrectness:
    def test_min_propagation_converges_on_chain(self):
        pgraph = _pgraph(_chain_graph(6))
        result = _min_propagation(pgraph)
        assert set(result.vertex_values.values()) == {0}

    def test_min_propagation_respects_components(self, two_component_graph):
        pgraph = _pgraph(two_component_graph, num_partitions=3)
        result = _min_propagation(pgraph)
        assert result.vertex_values[2] == 0
        assert result.vertex_values[11] == 10

    def test_result_is_partitioning_invariant(self, small_social_graph):
        results = []
        for strategy in ("RVC", "2D", "DC"):
            pgraph = _pgraph(small_social_graph, num_partitions=8, strategy=strategy)
            results.append(_min_propagation(pgraph).vertex_values)
        assert results[0] == results[1] == results[2]

    def test_max_iterations_caps_supersteps(self):
        pgraph = _pgraph(_chain_graph(30), num_partitions=2)
        capped = _min_propagation(pgraph, max_iterations=3)
        # Superstep 0 plus at most 3 message rounds.
        assert capped.num_supersteps <= 4
        assert capped.vertex_values[30] != 0  # not yet converged

    def test_zero_max_iterations_runs_only_superstep_zero(self):
        pgraph = _pgraph(_chain_graph(3), num_partitions=2)
        result = _min_propagation(pgraph, max_iterations=0)
        assert result.num_supersteps == 1
        assert result.vertex_values == {0: 0, 1: 1, 2: 2, 3: 3}


class TestPregelValidation:
    def test_missing_initial_values_rejected(self):
        pgraph = _pgraph(_chain_graph(3))
        with pytest.raises(EngineError, match="missing"):
            pregel(
                pgraph,
                initial_values={0: 0},
                initial_message=None,
                vertex_program=lambda v, val, msg: val,
                send_message=lambda s, sv, d, dv: (),
                merge_message=min,
            )

    def test_bad_active_direction_rejected(self):
        pgraph = _pgraph(_chain_graph(3))
        with pytest.raises(EngineError, match="active_direction"):
            _min_propagation(pgraph, active_direction="diagonal")

    def test_negative_max_iterations_rejected(self):
        pgraph = _pgraph(_chain_graph(3))
        with pytest.raises(EngineError):
            _min_propagation(pgraph, max_iterations=-1)

    def test_unknown_message_target_raises_engine_error(self):
        # A send_message that addresses a vertex id outside the graph must
        # fail with a named EngineError, not a bare KeyError from the
        # routing table.
        pgraph = _pgraph(_chain_graph(3), num_partitions=2)
        values = {int(v): int(v) for v in pgraph.graph.vertex_ids.tolist()}
        with pytest.raises(EngineError, match=r"unknown vertex 999.*partition"):
            pregel(
                pgraph,
                initial_values=values,
                initial_message=None,
                vertex_program=lambda v, val, msg: val,
                send_message=lambda s, sv, d, dv: ((999, 1),),
                merge_message=min,
            )

    def test_unknown_target_in_aggregate_messages_raises(self):
        pgraph = _pgraph(_chain_graph(3), num_partitions=2)
        values = {int(v): 0 for v in pgraph.graph.vertex_ids.tolist()}
        with pytest.raises(EngineError, match="unknown vertex"):
            aggregate_messages(
                pgraph,
                vertex_values=values,
                send_message=lambda s, sv, d, dv: ((-5, 1),),
                merge_message=lambda a, b: a + b,
            )


class TestPregelAccounting:
    def test_report_contains_supersteps_and_messages(self, partitioned_social):
        result = _min_propagation(partitioned_social, max_iterations=5)
        report = result.report
        assert report.num_supersteps == result.num_supersteps
        assert report.total_messages > 0
        assert report.load_seconds > 0
        assert result.simulated_seconds == pytest.approx(report.total_seconds)
        # Superstep 0 never scans edges; later supersteps do.
        assert report.supersteps[0].edges_scanned == 0
        assert report.supersteps[1].edges_scanned > 0

    def test_active_set_shrinks_over_time(self, partitioned_social):
        result = _min_propagation(partitioned_social, max_iterations=30)
        actives = [record.active_vertices for record in result.report.supersteps]
        assert actives[0] >= actives[-1]
        assert actives[-1] <= partitioned_social.graph.num_vertices

    def test_always_active_runs_exactly_max_iterations(self, partitioned_social):
        result = _min_propagation(
            partitioned_social, max_iterations=4, always_active=True, default_message=None
        )
        assert result.num_supersteps == 5  # superstep 0 + 4 rounds

    def test_single_partition_has_no_remote_messages(self, small_social_graph):
        pgraph = PartitionedGraph.partition(small_social_graph, "RVC", 1)
        cluster = ClusterConfig(num_executors=1, cores_per_executor=4)
        result = _min_propagation(pgraph, cluster=cluster)
        assert result.report.total_remote_messages == 0

    def test_more_partitions_mean_more_sync_messages(self, small_social_graph):
        coarse = _min_propagation(_pgraph(small_social_graph, 2), max_iterations=5)
        fine = _min_propagation(_pgraph(small_social_graph, 32), max_iterations=5)
        assert fine.report.total_messages > coarse.report.total_messages


class TestAggregateMessages:
    def test_degree_aggregation_matches_graph_degrees(self, small_social_graph):
        pgraph = _pgraph(small_social_graph, 8)
        values = {int(v): None for v in small_social_graph.vertex_ids.tolist()}
        merged, report = aggregate_messages(
            pgraph,
            vertex_values=values,
            send_message=lambda s, sv, d, dv: ((d, 1),),
            merge_message=lambda a, b: a + b,
        )
        expected = {v: d for v, d in small_social_graph.in_degrees().items() if d > 0}
        assert merged == expected
        assert report.num_supersteps == 1
        assert report.supersteps[0].edges_scanned == small_social_graph.num_edges

    def test_existing_report_is_extended(self, partitioned_social):
        values = {int(v): None for v in partitioned_social.graph.vertex_ids.tolist()}
        _, report = aggregate_messages(
            partitioned_social,
            vertex_values=values,
            send_message=lambda s, sv, d, dv: ((d, 1),),
            merge_message=lambda a, b: a + b,
        )
        _, report2 = aggregate_messages(
            partitioned_social,
            vertex_values=values,
            send_message=lambda s, sv, d, dv: ((s, 1),),
            merge_message=lambda a, b: a + b,
            report=report,
        )
        assert report2 is report
        assert report.num_supersteps == 2
