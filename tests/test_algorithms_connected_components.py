"""Correctness and accounting tests for Connected Components."""

import networkx as nx
import pytest

from repro.algorithms.connected_components import connected_components
from repro.engine.partitioned_graph import PartitionedGraph


def _nx_component_labels(graph):
    nx_graph = nx.Graph()
    nx_graph.add_nodes_from(graph.vertex_ids.tolist())
    nx_graph.add_edges_from(graph.edge_pairs())
    labels = {}
    for component in nx.connected_components(nx_graph):
        label = min(component)
        for vertex in component:
            labels[vertex] = label
    return labels


class TestConnectedComponentsCorrectness:
    def test_matches_networkx_on_social_graph(self, small_social_graph):
        pgraph = PartitionedGraph.partition(small_social_graph, "CRVC", 8)
        result = connected_components(pgraph)
        assert result.vertex_values == _nx_component_labels(small_social_graph)

    def test_matches_networkx_on_road_graph(self, small_road_graph):
        pgraph = PartitionedGraph.partition(small_road_graph, "SC", 6)
        result = connected_components(pgraph)
        assert result.vertex_values == _nx_component_labels(small_road_graph)

    def test_two_components_get_two_labels(self, two_component_graph):
        pgraph = PartitionedGraph.partition(two_component_graph, "RVC", 3)
        result = connected_components(pgraph)
        assert set(result.vertex_values.values()) == {0, 10}

    def test_labels_are_component_minima(self, clique_ring_graph):
        pgraph = PartitionedGraph.partition(clique_ring_graph, "1D", 4)
        result = connected_components(pgraph)
        assert set(result.vertex_values.values()) == {0}

    def test_result_is_partitioning_invariant(self, small_social_graph):
        labels = [
            connected_components(
                PartitionedGraph.partition(small_social_graph, strategy, 8)
            ).vertex_values
            for strategy in ("RVC", "2D", "SC")
        ]
        assert labels[0] == labels[1] == labels[2]


class TestConnectedComponentsBehaviour:
    def test_iteration_cap_limits_supersteps(self):
        from repro.core.graph import Graph

        chain = Graph(list(range(20)), list(range(1, 21)))
        pgraph = PartitionedGraph.partition(chain, "RVC", 4)
        capped = connected_components(pgraph, max_iterations=3)
        converged = connected_components(pgraph)
        assert capped.num_supersteps < converged.num_supersteps
        assert set(capped.vertex_values.values()) != {0}
        assert set(converged.vertex_values.values()) == {0}

    def test_active_set_shrinks(self, partitioned_social):
        result = connected_components(partitioned_social)
        actives = [r.active_vertices for r in result.report.supersteps]
        assert actives[-1] < actives[0]

    def test_algorithm_name_and_time(self, partitioned_social):
        result = connected_components(partitioned_social, max_iterations=10)
        assert result.algorithm == "ConnectedComponents"
        assert result.simulated_seconds > 0
