"""CFG construction and the forward dataflow fixpoint, hand-checked.

The torture module at the bottom exercises nested try/finally,
with-statements, early returns, raises and loops through the *real*
REP010 liveness analysis; every expected finding (and non-finding) was
worked out on paper against the explicit-flow CFG contract.
"""

import ast
import textwrap

from repro.devtools.cfg import Synthetic, WithEnter, build_cfg
from repro.devtools.dataflow import GenKillAnalysis, solve_forward
from repro.devtools.engine import check_source, select_rules

TORTURE_PATH = "src/repro/engine/torture.py"


def cfg_of(source):
    tree = ast.parse(textwrap.dedent(source))
    return build_cfg(tree.body[0])


class AssignedNames(GenKillAnalysis):
    """May-analysis: names that may have been bound on some path."""

    def gen(self, statement, facts):
        if isinstance(statement, ast.Assign):
            return frozenset(
                t.id for t in statement.targets if isinstance(t, ast.Name)
            )
        if isinstance(statement, Synthetic) and isinstance(statement.bind, ast.Name):
            return frozenset([statement.bind.id])
        if isinstance(statement, WithEnter) and isinstance(
            statement.item.optional_vars, ast.Name
        ):
            return frozenset([statement.item.optional_vars.id])
        return frozenset()


def names_at_exit(source):
    cfg = cfg_of(source)
    return set(solve_forward(cfg, AssignedNames()).at_exit(cfg))


class TestCfgShape:
    def test_straight_line_is_one_block_into_exit(self):
        cfg = cfg_of(
            """
            def f():
                a = 1
                b = 2
                return b
            """
        )
        entry = cfg.blocks[cfg.entry]
        assert len(entry.statements) == 3
        assert entry.successors == {cfg.exit}
        assert cfg.blocks[cfg.exit].statements == []

    def test_statements_after_return_are_unreachable(self):
        cfg = cfg_of(
            """
            def f():
                return 1
                a = 2
            """
        )
        placed = [
            s
            for block in cfg.blocks.values()
            for s in block.statements
            if isinstance(s, ast.Assign)
        ]
        assert placed == []

    def test_if_without_else_falls_through(self):
        cfg = cfg_of(
            """
            def f(cond):
                if cond:
                    a = 1
                b = 2
            """
        )
        entry = cfg.blocks[cfg.entry]
        # The condition splits: one successor is the then-branch, and the
        # entry block itself reaches the join directly (no else).
        assert len(entry.successors) == 2

    def test_while_has_a_back_edge(self):
        cfg = cfg_of(
            """
            def f(n):
                while n:
                    n = n - 1
                return n
            """
        )
        headers = [
            block.block_id
            for block in cfg.blocks.values()
            if any(isinstance(s, Synthetic) for s in block.statements)
        ]
        assert len(headers) == 1
        header = headers[0]
        back_edges = [
            block.block_id
            for block in cfg.blocks.values()
            if header in block.successors and block.block_id != cfg.entry
        ]
        assert back_edges, "loop body must edge back to the header"

    def test_handler_entry_is_reached_from_the_pre_try_block(self):
        cfg = cfg_of(
            """
            def f(path):
                before = 1
                try:
                    body = 2
                except OSError:
                    handled = 3
                return before
            """
        )
        pre_try = cfg.entry  # `before = 1` shares the entry block
        handler_blocks = {
            block.block_id
            for block in cfg.blocks.values()
            if any(
                isinstance(s, ast.Assign)
                and isinstance(s.targets[0], ast.Name)
                and s.targets[0].id == "handled"
                for s in block.statements
            )
        }
        assert handler_blocks
        reachable = cfg.blocks[pre_try].successors
        assert handler_blocks & reachable, (
            "handler must be entered with the facts held at try entry"
        )


class TestDataflow:
    def test_union_join_sees_both_branches(self):
        assert names_at_exit(
            """
            def f(cond):
                if cond:
                    a = 1
                else:
                    b = 2
            """
        ) == {"a", "b"}

    def test_early_return_facts_reach_exit(self):
        # `b` is only bound on the fall-through path, `a` on both.
        assert names_at_exit(
            """
            def f(cond):
                a = 1
                if cond:
                    return a
                b = 2
                return b
            """
        ) == {"a", "b"}

    def test_loop_bindings_survive_the_back_edge(self):
        assert names_at_exit(
            """
            def f(items):
                total = 0
                for item in items:
                    total = item
                return total
            """
        ) == {"total", "item"}

    def test_with_binding_is_seen_once(self):
        assert names_at_exit(
            """
            def f(path):
                with open(path) as handle:
                    data = handle.read()
                return data
            """
        ) == {"handle", "data"}

    def test_return_routes_through_finally(self):
        # `flag` is set in the finally, so it must be live at exit even
        # though the only return precedes it lexically.
        assert "flag" in names_at_exit(
            """
            def f(path):
                try:
                    return path
                finally:
                    flag = 1
            """
        )


#: Hand-checked torture module.  Expected REP010 findings, in order:
#:   leaks_on_early_return  -> `handle` live on the `return None` path
#:   leak_through_loop      -> `continue` can exit the loop without close
#:   raise_after_acquire    -> the raise path never reaches close
#: and *no* findings for closed_in_finally / with_block / nested_finally.
TORTURE = textwrap.dedent(
    """
    def leaks_on_early_return(path, cond):
        handle = open(path)
        if cond:
            return None
        handle.close()
        return 1


    def closed_in_finally(path, cond):
        handle = open(path)
        try:
            if cond:
                return None
            return handle.read()
        finally:
            handle.close()


    def with_block(path):
        with open(path) as handle:
            return handle.read()


    def leak_through_loop(paths):
        for path in paths:
            handle = open(path)
            if handle.readable():
                continue
            handle.close()
        return None


    def raise_after_acquire(path, cond):
        handle = open(path)
        if cond:
            raise ValueError(path)
        handle.close()
        return None


    def nested_finally(path, other):
        outer = open(path)
        try:
            inner = open(other)
            try:
                return inner.read()
            finally:
                inner.close()
        finally:
            outer.close()
    """
)


class TestTortureModule:
    def test_hand_checked_findings(self):
        findings = check_source(
            TORTURE, path=TORTURE_PATH, rules=select_rules(["REP010"])
        )
        flagged = [f.snippet for f in findings]
        assert flagged == [
            "handle = open(path)",
            "handle = open(path)",
            "handle = open(path)",
        ]
        messages = " ".join(f.message for f in findings)
        for function in ("leaks_on_early_return", "leak_through_loop", "raise_after_acquire"):
            assert function in messages
        for function in ("closed_in_finally", "with_block", "nested_finally"):
            assert function not in messages
