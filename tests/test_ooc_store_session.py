"""Shard artifacts in the store and session: keys, info/clear, counters."""

from pathlib import Path

import numpy as np
import pytest

from repro.algorithms import pagerank
from repro.engine.partitioned_graph import PartitionedGraph
from repro.errors import AnalysisError
from repro.ooc import GraphChunkSource, ingest_source
from repro.session import ArtifactStore, Session
from repro.session.session import CacheStats


def _ingest(store, graph, strategy="Greedy", num_partitions=4, **kwargs):
    return ingest_source(
        store, GraphChunkSource(graph), strategy, num_partitions, **kwargs
    )


class TestShardKeys:
    def test_key_carries_the_full_identity(self):
        key = ArtifactStore.shard_key("pokec", "Greedy", 16, 0.5, 7)
        assert key["dataset"] == "pokec"
        assert key["num_partitions"] == 16
        assert key["scale"] == 0.5
        assert key["seed"] == 7

    def test_distinct_identities_do_not_collide(self, tmp_path, small_social_graph):
        store = ArtifactStore(tmp_path)
        _ingest(store, small_social_graph, "Greedy", 4)
        _ingest(store, small_social_graph, "Greedy", 8)
        _ingest(store, small_social_graph, "HDRF", 4)
        _ingest(store, small_social_graph, "Greedy", 4, scale=2.0)
        _ingest(store, small_social_graph, "Greedy", 4, seed=3)
        assert store.info().shards == 5

    def test_warm_lookup_is_a_hit_and_identical(self, tmp_path, small_social_graph):
        store = ArtifactStore(tmp_path)
        first, report1 = _ingest(store, small_social_graph, "Fennel", 4)
        warm, report2 = _ingest(store, small_social_graph, "Fennel", 4)
        assert report1.reused is False and report2.reused is True
        stats = store.stats("shards")
        assert (stats.hits, stats.misses) == (1, 1)
        assert pagerank(first, num_iterations=3).vertex_values == pagerank(
            warm, num_iterations=3
        ).vertex_values

    def test_force_rebuilds_and_counts_a_miss(self, tmp_path, small_social_graph):
        store = ArtifactStore(tmp_path)
        _ingest(store, small_social_graph)
        _, report = _ingest(store, small_social_graph, force=True)
        assert report.reused is False
        assert store.stats("shards").misses == 2


class TestStoreInfoAndClear:
    def test_info_counts_manifests_and_sums_sidecar_bytes(
        self, tmp_path, small_social_graph
    ):
        store = ArtifactStore(tmp_path)
        _ingest(store, small_social_graph)
        info = store.info()
        assert info.shards == 1
        shard_dir = Path(store.root) / "shards"
        on_disk = sum(f.stat().st_size for f in shard_dir.iterdir())
        assert info.total_bytes >= on_disk > 0

    def test_clear_kind_shards_removes_sidecars_too(self, tmp_path, small_social_graph):
        store = ArtifactStore(tmp_path)
        _ingest(store, small_social_graph)
        removed = store.clear(kind="shards")
        assert removed >= 1
        assert store.info().shards == 0
        assert list((Path(store.root) / "shards").glob("*")) == []

    def test_clear_all_covers_shards(self, tmp_path, small_social_graph):
        store = ArtifactStore(tmp_path)
        _ingest(store, small_social_graph)
        store.clear()
        assert store.info().shards == 0
        assert store.info().total_bytes == 0

    def test_discard_shard_unpublishes(self, tmp_path, small_social_graph):
        store = ArtifactStore(tmp_path)
        _, report = _ingest(store, small_social_graph)
        key = ArtifactStore.shard_key(
            small_social_graph.name, "Greedy", 4, 1.0, 0
        )
        assert store.load_shard_manifest(key) is not None
        store.discard_shard(key)
        assert store.load_shard_manifest(key) is None
        assert store.info().shards == 0


class TestSessionShardedPartition:
    def test_requires_a_store(self):
        session = Session(scale=0.3, seed=11)
        with pytest.raises(AnalysisError, match="store"):
            session.sharded_partition("roadnet-pa", "Greedy", 4)

    def test_rejects_registered_graphs(self, tmp_path, small_social_graph):
        session = Session(scale=0.3, seed=11, store=str(tmp_path))
        session.add_graph("mine", small_social_graph)
        with pytest.raises(AnalysisError, match="registered"):
            session.sharded_partition("mine", "Greedy", 4)

    def test_rejects_non_positive_partition_counts(self, tmp_path):
        session = Session(scale=0.3, seed=11, store=str(tmp_path))
        with pytest.raises(AnalysisError, match=">= 1"):
            session.sharded_partition("roadnet-pa", "Greedy", 0)

    def test_memoizes_and_counts(self, tmp_path):
        session = Session(scale=0.3, seed=11, store=str(tmp_path))
        first = session.sharded_partition("roadnet-pa", "Greedy", 4)
        again = session.sharded_partition("roadnet-pa", "Greedy", 4)
        assert again is first
        stats = session.stats
        assert (stats.disk_shard_hits, stats.disk_shard_misses) == (0, 1)
        assert stats.shard_builds == 1

        warm = Session(scale=0.3, seed=11, store=str(tmp_path))
        warm.sharded_partition("roadnet-pa", "Greedy", 4)
        warm_stats = warm.stats
        assert (warm_stats.disk_shard_hits, warm_stats.disk_shard_misses) == (1, 0)
        assert warm_stats.shard_builds == 0

    def test_matches_in_memory_partition(self, tmp_path):
        session = Session(scale=0.3, seed=11, store=str(tmp_path))
        sharded = session.sharded_partition("roadnet-pa", "HDRF", 4)
        pgraph = PartitionedGraph.partition(session.graph("roadnet-pa"), "HDRF", 4)
        expected = pagerank(pgraph, num_iterations=4)
        actual = pagerank(sharded, num_iterations=4)
        assert actual.vertex_values == expected.vertex_values
        for mine, theirs in zip(
            actual.report.supersteps, expected.report.supersteps
        ):
            assert vars(mine) == vars(theirs)


class TestCacheStatsSurface:
    def test_shard_counters_in_as_dict(self):
        stats = CacheStats(0, 0, 0, 0, disk_shard_hits=2, disk_shard_misses=1)
        payload = stats.as_dict()
        assert payload["disk_shard_hits"] == 2
        assert payload["disk_shard_misses"] == 1

    def test_shard_counts_roll_into_disk_totals(self):
        stats = CacheStats(
            0,
            0,
            0,
            0,
            disk_partition_hits=1,
            disk_shard_hits=2,
            disk_record_misses=1,
            disk_shard_misses=3,
        )
        assert stats.disk_hits == 3
        assert stats.disk_misses == 4
        assert stats.shard_builds == 3
