"""Unit tests for the strategy base class and assignment object."""

import numpy as np
import pytest

from repro.core.graph import Graph
from repro.errors import PartitioningError
from repro.partitioning.base import EdgePartitionAssignment, PartitionStrategy
from repro.partitioning.hash_partitioners import RandomVertexCut


class ModuloStrategy(PartitionStrategy):
    """Toy strategy used to exercise the scalar fallback path."""

    name = "toy-modulo"

    def partition_edge(self, src, dst, num_partitions):
        return (src + dst) % num_partitions


class TestAssignmentValidation:
    def test_length_mismatch_rejected(self, triangle_graph):
        with pytest.raises(PartitioningError):
            EdgePartitionAssignment(triangle_graph, 2, np.array([0, 1]))

    def test_out_of_range_partition_rejected(self, triangle_graph):
        with pytest.raises(PartitioningError):
            EdgePartitionAssignment(triangle_graph, 2, np.array([0, 1, 2]))
        with pytest.raises(PartitioningError):
            EdgePartitionAssignment(triangle_graph, 2, np.array([0, -1, 1]))

    def test_zero_partitions_rejected_by_assign(self, triangle_graph):
        with pytest.raises(PartitioningError):
            RandomVertexCut().assign(triangle_graph, 0)


class TestAssignmentAccessors:
    def test_edges_per_partition_sums_to_total(self, small_social_graph):
        assignment = RandomVertexCut().assign(small_social_graph, 7)
        counts = assignment.edges_per_partition()
        assert counts.sum() == small_social_graph.num_edges
        assert counts.shape == (7,)

    def test_edge_ids_of_partition_partition_membership(self, small_social_graph):
        assignment = RandomVertexCut().assign(small_social_graph, 5)
        for partition_id in range(5):
            ids = assignment.edge_ids_of_partition(partition_id)
            assert (assignment.partition_of[ids] == partition_id).all()

    def test_vertex_partitions_cover_every_endpoint(self, triangle_graph):
        assignment = RandomVertexCut().assign(triangle_graph, 2)
        membership = assignment.vertex_partitions()
        assert set(membership) == {0, 1, 2}
        assert all(parts for parts in membership.values())

    def test_vertex_partitions_cached(self, triangle_graph):
        assignment = RandomVertexCut().assign(triangle_graph, 2)
        assert assignment.vertex_partitions() is assignment.vertex_partitions()

    def test_replication_counts(self):
        graph = Graph([0, 0], [1, 2])
        assignment = EdgePartitionAssignment(graph, 2, np.array([0, 1]), strategy_name="manual")
        counts = assignment.replication_counts()
        assert counts[0] == 2  # vertex 0 touches both partitions
        assert counts[1] == 1
        assert counts[2] == 1

    def test_isolated_vertices_have_empty_membership(self):
        graph = Graph([0], [1], vertices=[9])
        assignment = RandomVertexCut().assign(graph, 4)
        assert assignment.vertex_partitions()[9] == frozenset()


class TestScalarFallback:
    def test_assign_array_default_uses_partition_edge(self, small_social_graph):
        strategy = ModuloStrategy()
        assignment = strategy.assign(small_social_graph, 4)
        expected = [
            (s + d) % 4 for s, d in small_social_graph.edge_pairs()
        ]
        assert assignment.partition_of.tolist() == expected

    def test_empty_graph_assignment(self):
        assignment = ModuloStrategy().assign(Graph([], []), 3)
        assert assignment.partition_of.size == 0
        assert assignment.edges_per_partition().tolist() == [0, 0, 0]
