"""Runner error paths, --statistics, and the check JSON document."""

import json

import pytest

from repro.cli import main
from repro.devtools.engine import _read_source
from repro.errors import StaticCheckError

VIOLATION = "def f(x: int = None):\n    return x\n"


class TestErrorPaths:
    def test_unreadable_target_is_a_static_check_error(self, tmp_path):
        # A directory named like a python file is the portable "cannot
        # read" case (permission bits do not stop a root test runner).
        decoy = tmp_path / "pkg" / "bad.py"
        decoy.mkdir(parents=True)
        with pytest.raises(StaticCheckError, match="cannot read"):
            _read_source(decoy)
        assert main(["check", str(tmp_path)]) == 2

    def test_syntax_error_among_good_files_names_the_file(self, tmp_path, capsys):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "good.py").write_text("x = 1\n")
        (pkg / "broken.py").write_text("def f(:\n")
        assert main(["check", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert "cannot parse" in err
        assert "broken.py" in err

    def test_empty_target_directory_passes_with_zero_files(self, tmp_path, capsys):
        (tmp_path / "empty").mkdir()
        assert main(["check", str(tmp_path / "empty")]) == 0
        assert "0 file(s)" in capsys.readouterr().out

    def test_write_baseline_without_baseline_path(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(VIOLATION)
        assert main(["check", str(tmp_path), "--write-baseline"]) == 2
        assert "--write-baseline requires --baseline" in capsys.readouterr().err

    def test_write_baseline_takes_precedence_over_checking(self, tmp_path, capsys):
        (tmp_path / "src" / "repro").mkdir(parents=True)
        (tmp_path / "src" / "repro" / "mod.py").write_text(VIOLATION)
        baseline = tmp_path / "baseline.json"
        code = main(
            ["check", str(tmp_path), "--baseline", str(baseline), "--write-baseline"]
        )
        # Findings exist, but writing the baseline is the requested action
        # and exits 0 without reporting them.
        assert code == 0
        assert "wrote 1 grandfathered finding(s)" in capsys.readouterr().out
        assert baseline.exists()

    def test_nonexistent_path_is_a_usage_error(self, tmp_path, capsys):
        assert main(["check", str(tmp_path / "missing")]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_zero_jobs_is_rejected_by_argparse(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["check", str(tmp_path), "--jobs", "0"])


class TestStatistics:
    def test_text_statistics_print_per_rule_counts_and_timings(
        self, tmp_path, capsys
    ):
        (tmp_path / "src" / "repro").mkdir(parents=True)
        (tmp_path / "src" / "repro" / "mod.py").write_text(VIOLATION)
        code = main(["check", str(tmp_path), "--statistics"])
        assert code == 1
        out = capsys.readouterr().out
        assert "REP001" in out
        assert "parse" in out and "analysis" in out

    def test_json_statistics_carry_counts_and_wall_time(self, tmp_path, capsys):
        (tmp_path / "src" / "repro").mkdir(parents=True)
        (tmp_path / "src" / "repro" / "mod.py").write_text(VIOLATION)
        main(["check", str(tmp_path), "--statistics", "--format", "json"])
        document = json.loads(capsys.readouterr().out)
        statistics = document["statistics"]
        assert statistics["per_rule"]["REP001"] == {"findings": 1, "files": 1}
        assert statistics["per_rule"]["REP002"] == {"findings": 0, "files": 0}
        assert statistics["parse_seconds"] >= 0
        assert statistics["analysis_seconds"] >= 0

    def test_statistics_absent_unless_requested(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text("x = 1\n")
        main(["check", str(tmp_path), "--format", "json"])
        document = json.loads(capsys.readouterr().out)
        assert "statistics" not in document


class TestJsonDocument:
    def test_document_reports_cache_and_jobs_accounting(self, tmp_path, capsys):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "b.py").write_text("y = 2\n")
        cache = tmp_path / "cache"
        main(
            [
                "check",
                str(tmp_path / "pkg"),
                "--cache-dir",
                str(cache),
                "--jobs",
                "2",
                "--format",
                "json",
            ]
        )
        first = json.loads(capsys.readouterr().out)
        assert first["files_checked"] == 2
        assert first["files_cached"] == 0
        assert first["files_analyzed"] == 2
        assert first["jobs"] == 2

        main(
            [
                "check",
                str(tmp_path / "pkg"),
                "--cache-dir",
                str(cache),
                "--format",
                "json",
            ]
        )
        second = json.loads(capsys.readouterr().out)
        assert second["files_cached"] == 2
        assert second["files_analyzed"] == 0

    def test_text_summary_mentions_cache_hits(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text("x = 1\n")
        cache = tmp_path / "cache"
        main(["check", str(tmp_path), "--cache-dir", str(cache)])
        capsys.readouterr()
        main(["check", str(tmp_path), "--cache-dir", str(cache)])
        assert "1 cached / 0 analyzed" in capsys.readouterr().out
