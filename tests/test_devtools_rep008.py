"""REP008 fixtures: unseeded randomness in library code."""

import textwrap

from repro.devtools import check_source


def _rep008(source, path="src/repro/datasets/generators.py"):
    findings = check_source(textwrap.dedent(source), path=path)
    return [f for f in findings if f.rule == "REP008"]


class TestRep008Positives:
    def test_unseeded_default_rng(self):
        findings = _rep008("rng = np.random.default_rng()\n")
        assert len(findings) == 1
        assert "seed" in findings[0].message

    def test_unseeded_bare_default_rng(self):
        assert len(_rep008("rng = default_rng()\n")) == 1

    def test_module_level_random_call(self):
        findings = _rep008("value = random.random()\n")
        assert len(findings) == 1
        assert "global RNG state" in findings[0].message

    def test_module_level_shuffle(self):
        assert len(_rep008("random.shuffle(order)\n")) == 1


class TestRep008Negatives:
    def test_seeded_default_rng(self):
        assert _rep008("rng = np.random.default_rng(seed)\n") == []
        assert _rep008("rng = default_rng(0)\n") == []
        assert _rep008("rng = np.random.default_rng(seed=seed)\n") == []

    def test_seeded_random_instance(self):
        assert _rep008("rng = random.Random(seed)\n") == []

    def test_generator_instance_methods_are_fine(self):
        assert _rep008("value = rng.random()\n") == []

    def test_tests_are_exempt(self):
        assert _rep008("random.random()\n", path="tests/test_sampling.py") == []
