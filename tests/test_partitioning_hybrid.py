"""Unit tests for the HybridCut (PowerLyra-style) extension partitioner."""

import numpy as np
import pytest

from repro.core.graph import Graph
from repro.metrics.partition_metrics import compute_metrics
from repro.partitioning.hashing import mix64
from repro.partitioning.hybrid import HybridCut
from repro.partitioning.modulo_partitioners import DestinationCut
from repro.partitioning.registry import make_partitioner


def _hub_graph(num_leaves=40, num_partitions=8):
    """A star into vertex 0 plus a sparse low-degree tail."""
    src = list(range(1, num_leaves + 1)) + [50, 51, 52]
    dst = [0] * num_leaves + [51, 52, 53]
    return Graph(src, dst)


class TestHybridCut:
    def test_registered_in_registry(self):
        assert make_partitioner("hybrid").name == "Hybrid"

    def test_low_degree_destinations_grouped_like_dc(self):
        graph = _hub_graph()
        strategy = HybridCut(threshold=10)
        assignment = strategy.assign(graph, 8)
        placement = dict(zip(graph.edge_pairs(), assignment.partition_of.tolist()))
        # Low-degree destinations (51, 52, 53) are placed by destination hash.
        for src, dst in [(50, 51), (51, 52), (52, 53)]:
            assert placement[(src, dst)] == int(mix64(dst) % np.uint64(8))

    def test_high_degree_destination_spread_by_source(self):
        graph = _hub_graph()
        assignment = HybridCut(threshold=10).assign(graph, 8)
        hub_partitions = {
            part
            for (src, dst), part in zip(graph.edge_pairs(), assignment.partition_of.tolist())
            if dst == 0
        }
        # The hub's in-edges land in many partitions instead of one.
        assert len(hub_partitions) > 3

    def test_default_threshold_adapts_to_graph(self, small_social_graph):
        assignment = HybridCut().assign(small_social_graph, 8)
        assert assignment.partition_of.shape[0] == small_social_graph.num_edges
        assert assignment.partition_of.max() < 8

    def test_improves_balance_over_dc_on_hub_heavy_graph(self):
        graph = _hub_graph(num_leaves=64)
        hybrid = compute_metrics(HybridCut(threshold=8).assign(graph, 8))
        dc = compute_metrics(DestinationCut().assign(graph, 8))
        assert hybrid.balance < dc.balance

    def test_deterministic(self, small_social_graph):
        first = HybridCut().assign(small_social_graph, 6).partition_of
        second = HybridCut().assign(small_social_graph, 6).partition_of
        assert np.array_equal(first, second)

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            HybridCut(threshold=0)

    def test_scalar_call_outside_assign_uses_destination(self):
        # With no degree context every vertex counts as low degree, so the
        # strategy degrades gracefully to destination hashing.
        strategy = HybridCut(threshold=5)
        assert strategy.partition_edge(3, 9, 4) == int(mix64(9) % np.uint64(4))
