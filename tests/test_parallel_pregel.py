"""Lifecycle, fallback and telemetry tests for the shared-memory parallel
Pregel executor (bit-identity itself is proven by the workers axis of
``test_pregel_array_equivalence.py``).

The leak tests pin down the hygiene contract of ``shm_registry``: no
orphan ``/dev/shm`` segment may survive a successful run, a worker
exception, or a SIGTERM — and a live executor keeps exactly its static
graph segments until its graph is collected.
"""

import gc
import glob
import multiprocessing
import os
import signal
import subprocess
import sys
import textwrap
import time

import numpy as np
import pytest

from repro.algorithms.pagerank import PageRankKernel, pagerank
from repro.algorithms.registry import run_algorithm
from repro.analysis.experiments import ExperimentConfig
from repro.core.graph import Graph
from repro.engine.parallel import (
    ParallelPregelExecutor,
    engine_stats,
    parallel_supported,
    reset_engine_stats,
)
from repro.engine.partitioned_graph import PartitionedGraph
from repro.engine.pregel import pregel
from repro.engine.shm_registry import (
    SEGMENT_PREFIX,
    ShmRegistry,
    attach_array,
    live_segment_stats,
    shared_memory_available,
)
from repro.errors import AnalysisError, EngineError
from repro.session.session import Session

needs_shm = pytest.mark.skipif(
    not shared_memory_available(), reason="platform lacks POSIX shared memory"
)
needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="worker-side classes from the test module need the fork start method",
)


def _own_segments():
    """Names of this process's live /dev/shm segments."""
    return sorted(glob.glob(f"/dev/shm/{SEGMENT_PREFIX}-{os.getpid()}-*"))


def _make_pgraph(seed=0, vertices=80, edges=400, strategy="2D", parts=6):
    rng = np.random.default_rng(seed)
    graph = Graph(
        rng.integers(0, vertices, edges).tolist(),
        rng.integers(0, vertices, edges).tolist(),
    )
    return PartitionedGraph.partition(graph, strategy, parts)


# ----------------------------------------------------------------------
# ShmRegistry
# ----------------------------------------------------------------------
@needs_shm
class TestShmRegistry:
    def test_publish_attach_roundtrip(self):
        with ShmRegistry(label="test") as registry:
            payload = np.arange(12, dtype=np.float64).reshape(3, 4)
            registry.publish_array("grid", payload)
            shm, view = attach_array(registry.entry("grid"))
            try:
                assert view.shape == (3, 4)
                assert view.dtype == np.float64
                np.testing.assert_array_equal(view, payload)
                # Zero-copy: owner-side writes are visible through the view.
                registry.array("grid")[0, 0] = 99.0
                assert view[0, 0] == 99.0
            finally:
                shm.close()

    def test_publish_bytes_roundtrip(self):
        with ShmRegistry() as registry:
            registry.publish_bytes("blob", b"hello kernel")
            assert bytes(registry.array("blob").tobytes()) == b"hello kernel"
            assert registry.entry("blob")["kind"] == "bytes"

    def test_segments_unlinked_on_close(self):
        registry = ShmRegistry(label="cleanup")
        registry.create_array("a", (100,), np.int64)
        registry.publish_bytes("b", b"x")
        assert len(_own_segments()) >= 2
        assert registry.num_segments == 2
        assert registry.total_bytes >= 100 * 8
        registry.close()
        registry.close()  # idempotent
        assert _own_segments() == []
        assert live_segment_stats() == (0, 0)

    def test_close_on_exception_via_context_manager(self):
        with pytest.raises(RuntimeError):
            with ShmRegistry() as registry:
                registry.create_array("a", (10,), np.float64)
                raise RuntimeError("boom")
        assert _own_segments() == []

    def test_duplicate_key_rejected(self):
        with ShmRegistry() as registry:
            registry.create_array("a", (1,), np.int64)
            with pytest.raises(EngineError):
                registry.create_array("a", (1,), np.int64)

    def test_closed_registry_rejects_creates(self):
        registry = ShmRegistry()
        registry.close()
        with pytest.raises(EngineError):
            registry.create_array("late", (1,), np.int64)


# ----------------------------------------------------------------------
# Executor lifecycle
# ----------------------------------------------------------------------
@needs_shm
class TestExecutorLifecycle:
    def test_for_graph_caches_per_worker_count(self):
        pgraph = _make_pgraph(seed=1)
        two = ParallelPregelExecutor.for_graph(pgraph, 2)
        assert ParallelPregelExecutor.for_graph(pgraph, 2) is two
        four = ParallelPregelExecutor.for_graph(pgraph, 4)
        assert four is not two
        two.close()
        replacement = ParallelPregelExecutor.for_graph(pgraph, 2)
        assert replacement is not two and not replacement.closed
        replacement.close()
        four.close()

    def test_static_segments_live_with_executor_only(self):
        before = len(_own_segments())
        pgraph = _make_pgraph(seed=2)
        result = pagerank(pgraph, num_iterations=3, parallel_workers=2)
        assert result.num_supersteps == 4
        # Per-run segments are gone; the executor keeps src/dst/master_of.
        assert len(_own_segments()) == before + 3
        del pgraph
        gc.collect()  # weakref.finalize tears the executor down
        assert len(_own_segments()) == before

    def test_run_on_closed_executor_rejected(self):
        pgraph = _make_pgraph(seed=3)
        executor = ParallelPregelExecutor.for_graph(pgraph, 2)
        executor.close()
        executor.close()  # idempotent
        with pytest.raises(EngineError):
            executor.run(
                pgraph,
                {},
                PageRankKernel(0.15),
                max_iterations=1,
                active_direction="either",
                cluster=None,
                model=None,
                report=None,
                edge_compute_units=1.0,
                vertex_compute_units=1.0,
                always_active=True,
            )

    def test_invalid_worker_counts_rejected(self):
        pgraph = _make_pgraph(seed=4)
        with pytest.raises(EngineError):
            ParallelPregelExecutor(pgraph, 0)
        with pytest.raises(EngineError):
            pagerank(pgraph, parallel_workers=0)

    def test_empty_graph_falls_back_to_serial(self):
        graph = Graph([], [], vertices=[1, 2, 3])
        pgraph = PartitionedGraph.partition(graph, "1D", 2)
        before = len(_own_segments())
        result = pagerank(pgraph, num_iterations=2, parallel_workers=4)
        assert len(_own_segments()) == before  # no executor was built
        assert result.vertex_values == pagerank(pgraph, num_iterations=2).vertex_values
        with pytest.raises(EngineError):
            ParallelPregelExecutor(pgraph, 2)

    def test_workers_one_is_serial(self):
        pgraph = _make_pgraph(seed=5)
        before = len(_own_segments())
        result = pagerank(pgraph, num_iterations=2, parallel_workers=1)
        assert len(_own_segments()) == before
        assert result.vertex_values == pagerank(pgraph, num_iterations=2).vertex_values


# ----------------------------------------------------------------------
# Leak behaviour on failure paths
# ----------------------------------------------------------------------
class ExplodingKernel(PageRankKernel):
    """A kernel whose worker-side compute raises mid-superstep."""

    def send_message_array(self, src_idx, dst_idx, state):
        raise RuntimeError("kernel exploded in the worker")


@needs_shm
@needs_fork
def test_no_leak_after_worker_exception():
    pgraph = _make_pgraph(seed=6)
    out_degrees = pgraph.graph.out_degrees()
    initial_values = {v: (1.0, out_degrees[v]) for v in out_degrees}
    before = len(_own_segments())
    with pytest.raises(RuntimeError, match="kernel exploded"):
        pregel(
            pgraph,
            initial_values=initial_values,
            initial_message=None,
            vertex_program=lambda v, value, message: value,
            send_message=lambda s, sv, d, dv: (),
            merge_message=lambda a, b: a + b,
            max_iterations=3,
            always_active=True,
            default_message=0.0,
            message_kernel=ExplodingKernel(0.15),
            parallel_workers=2,
        )
    # All per-run segments were unlinked by the finally; only the
    # executor's three static segments remain until the graph dies.
    assert len(_own_segments()) == before + 3
    del pgraph
    gc.collect()
    assert len(_own_segments()) == before


@needs_shm
@needs_fork
def test_no_leak_after_sigterm():
    script = textwrap.dedent(
        """
        import time
        import numpy as np
        from repro.core.graph import Graph
        from repro.engine.partitioned_graph import PartitionedGraph
        from repro.algorithms.pagerank import pagerank

        rng = np.random.default_rng(1)
        graph = Graph(rng.integers(0, 60, 240).tolist(), rng.integers(0, 60, 240).tolist())
        pgraph = PartitionedGraph.partition(graph, "1D", 4)
        pagerank(pgraph, num_iterations=2, parallel_workers=2)
        print("READY", flush=True)
        time.sleep(30)
        """
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [os.path.abspath("src"), env.get("PYTHONPATH")])
    )
    proc = subprocess.Popen(
        [sys.executable, "-c", script],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        assert proc.stdout.readline().strip() == "READY", proc.stderr.read()
        pattern = f"/dev/shm/{SEGMENT_PREFIX}-{proc.pid}-*"
        assert glob.glob(pattern), "executor should hold live static segments"
        proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=15)
        deadline = time.monotonic() + 5.0
        while glob.glob(pattern) and time.monotonic() < deadline:
            time.sleep(0.05)
        assert glob.glob(pattern) == [], "SIGTERM handler must unlink segments"
    finally:
        if proc.poll() is None:  # pragma: no cover - only on assertion failure
            proc.kill()
            proc.wait()


# ----------------------------------------------------------------------
# Telemetry and plumbing
# ----------------------------------------------------------------------
@needs_shm
def test_engine_stats_counts_runs_and_supersteps():
    reset_engine_stats()
    pgraph = _make_pgraph(seed=7)
    pagerank(pgraph, num_iterations=3, parallel_workers=2)
    stats = engine_stats()
    assert stats["runs"] == 1
    assert stats["supersteps"]["parallel"] == 3  # always-active: all fan out
    assert stats["supersteps"]["parallel_fraction"] == 1.0
    assert stats["executors"] >= 1
    assert stats["workers"] >= 2
    assert stats["shared_memory"]["segments"] >= 3
    assert stats["shared_memory"]["bytes"] > 0
    reset_engine_stats()


@needs_shm
def test_min_active_threshold_keeps_small_frontiers_serial(monkeypatch):
    # Data-driven CC on an 80-vertex graph never reaches the production
    # threshold, so every superstep takes the in-parent serial branch.
    from repro.algorithms.connected_components import connected_components

    monkeypatch.delenv("REPRO_PARALLEL_MIN_ACTIVE", raising=False)
    reset_engine_stats()
    pgraph = _make_pgraph(seed=8)
    connected_components(pgraph, parallel_workers=2)
    stats = engine_stats()
    assert stats["runs"] == 1
    assert stats["supersteps"]["parallel"] == 0
    assert stats["supersteps"]["serial"] > 0
    reset_engine_stats()


def test_min_active_env_override_parses_garbage(monkeypatch):
    from repro.engine.parallel import _DEFAULT_MIN_PARALLEL_ACTIVE, _min_parallel_active

    monkeypatch.setenv("REPRO_PARALLEL_MIN_ACTIVE", "not-a-number")
    assert _min_parallel_active() == _DEFAULT_MIN_PARALLEL_ACTIVE
    monkeypatch.setenv("REPRO_PARALLEL_MIN_ACTIVE", "0")
    assert _min_parallel_active() == 0


@needs_shm
def test_run_algorithm_engine_workers_identical():
    pgraph = _make_pgraph(seed=9)
    for name in ("PR", "CC", "SSSP"):
        serial = run_algorithm(name, pgraph, num_iterations=4)
        parallel = run_algorithm(name, pgraph, num_iterations=4, engine_workers=2)
        assert serial.vertex_values == parallel.vertex_values
        assert serial.report.supersteps == parallel.report.supersteps
    # TR has no Pregel superstep loop; engine_workers is accepted and ignored.
    assert (
        run_algorithm("TR", pgraph, engine_workers=2).vertex_values
        == run_algorithm("TR", pgraph).vertex_values
    )


def test_experiment_config_validates_engine_workers():
    with pytest.raises(AnalysisError):
        ExperimentConfig(algorithm="PR", engine_workers=0)
    config = ExperimentConfig(algorithm="PR", engine_workers=2)
    assert config.engine_workers == 2


def test_engine_workers_not_part_of_record_identity(small_social_graph):
    # Parallel execution is bit-identical, so cached records must be shared
    # between serial and parallel plans: the store key may not change.
    session = Session(scale=1.0, seed=0, graphs={"toy": small_social_graph})
    serial_plan = session.plan().datasets("toy").partitioners("1D").algorithms("PR")
    parallel_plan = (
        session.plan().datasets("toy").partitioners("1D").algorithms("PR").engine_workers(4)
    )
    serial_cell = serial_plan.cells()[0]
    parallel_cell = parallel_plan.cells()[0]
    assert serial_plan._record_key(serial_cell) == parallel_plan._record_key(parallel_cell)
    with pytest.raises(AnalysisError):
        session.plan().engine_workers(0)


@needs_shm
def test_graph_service_engine_summary(small_social_graph):
    from repro.serve.service import GraphService

    session = Session(scale=1.0, seed=0, graphs={"toy": small_social_graph})
    service = GraphService(
        session, ["toy"], "RVC", 4, landmark_count=2, engine_workers=2
    )
    service.preload()
    summary = service.engine_summary()
    assert summary["configured_workers"] == 2
    # preload published the graph into the registry: its executor is live.
    assert summary["executors"] >= 1
    assert summary["shared_memory"]["segments"] >= 3
    assert set(summary["supersteps"]) == {"parallel", "serial", "parallel_fraction"}
    # The batch-sweep primitive actually uses the pool (and stays correct).
    source = int(small_social_graph.vertex_ids[0])
    distances = service.exact_distances("toy", source)
    assert distances[source] == 0

    with pytest.raises(EngineError):
        GraphService(session, ["toy"], "RVC", 4, engine_workers=0)
