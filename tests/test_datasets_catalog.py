"""Unit tests for the dataset catalog and the Table 1 characterisation."""

import math

import pytest

from repro.core import properties as props
from repro.datasets.catalog import (
    PAPER_DATASET_NAMES,
    dataset_names,
    get_spec,
    load_all_datasets,
    load_dataset,
)
from repro.datasets.characterization import (
    build_table1,
    degree_distributions,
    degree_ratio_distributions,
    format_table1,
)
from repro.errors import DatasetError

SCALE = 0.15  # keep the catalog tests fast
SEED = 3


class TestCatalog:
    def test_all_nine_paper_datasets_registered(self):
        assert len(PAPER_DATASET_NAMES) == 9
        assert dataset_names() == PAPER_DATASET_NAMES
        for name in PAPER_DATASET_NAMES:
            assert get_spec(name).name == name

    def test_lookup_is_case_insensitive(self):
        assert get_spec("ORKUT").name == "orkut"

    def test_unknown_dataset_raises(self):
        with pytest.raises(DatasetError):
            get_spec("facebook")
        with pytest.raises(DatasetError):
            load_dataset("facebook")

    def test_invalid_scale_rejected(self):
        with pytest.raises(DatasetError):
            load_dataset("orkut", scale=0.0)

    def test_load_is_deterministic(self):
        first = load_dataset("pokec", scale=SCALE, seed=SEED)
        second = load_dataset("pokec", scale=SCALE, seed=SEED)
        assert first.edge_set() == second.edge_set()

    def test_deprecated_pocek_alias_still_loads(self):
        # The historical misspelling keeps working, but warns and resolves
        # to the canonical pokec entry.
        with pytest.warns(DeprecationWarning, match="pocek"):
            assert get_spec("pocek").name == "pokec"
        with pytest.warns(DeprecationWarning):
            aliased = load_dataset("POCEK", scale=SCALE, seed=SEED)
        canonical = load_dataset("pokec", scale=SCALE, seed=SEED)
        assert aliased.name == "pokec"
        assert aliased.edge_set() == canonical.edge_set()

    def test_scale_controls_size(self):
        small = load_dataset("youtube", scale=0.1, seed=SEED)
        large = load_dataset("youtube", scale=0.4, seed=SEED)
        assert large.num_vertices > small.num_vertices
        assert large.num_edges > small.num_edges

    def test_load_all_datasets_keys_and_names(self):
        graphs = load_all_datasets(scale=0.05, seed=SEED)
        assert list(graphs) == PAPER_DATASET_NAMES
        for name, graph in graphs.items():
            assert graph.name == name
            assert graph.num_edges > 0


class TestShapeFidelity:
    """The analogues must preserve the structural traits Table 1 reports."""

    @pytest.fixture(scope="class")
    def graphs(self):
        return load_all_datasets(scale=SCALE, seed=SEED)

    def test_road_networks_are_symmetric_multi_component(self, graphs):
        for name in ("roadnet-pa", "roadnet-tx", "roadnet-ca"):
            graph = graphs[name]
            assert props.symmetry_percent(graph) == 100.0
            assert props.num_weakly_connected_components(graph) > 1
            assert math.isinf(props.diameter(graph))

    def test_undirected_social_graphs(self, graphs):
        for name in ("youtube", "orkut"):
            graph = graphs[name]
            assert props.symmetry_percent(graph) == 100.0
            assert props.num_weakly_connected_components(graph) == 1

    def test_directed_social_graphs_have_partial_symmetry(self, graphs):
        for name, low, high in (
            ("pokec", 35, 75),
            ("soclivejournal", 55, 90),
            ("follow-jul", 20, 60),
            ("follow-dec", 20, 60),
        ):
            symmetry = props.symmetry_percent(graphs[name])
            assert low <= symmetry <= high, f"{name}: {symmetry}"

    def test_follow_graphs_have_many_leaf_vertices(self, graphs):
        for name in ("follow-jul", "follow-dec"):
            assert props.zero_in_percent(graphs[name]) > 25.0

    def test_follow_graphs_have_many_components(self, graphs):
        for name in ("follow-jul", "follow-dec"):
            assert props.num_weakly_connected_components(graphs[name]) >= 5

    def test_orkut_is_densest_social_graph(self, graphs):
        def density(graph):
            return graph.num_edges / graph.num_vertices

        assert density(graphs["orkut"]) == max(density(g) for g in graphs.values())

    def test_datasets_ordered_by_paper_vertex_count(self):
        paper_sizes = [get_spec(name).paper_vertices for name in PAPER_DATASET_NAMES]
        assert paper_sizes == sorted(paper_sizes)


class TestCharacterization:
    def test_build_table1_rows(self):
        rows = build_table1(scale=0.05, seed=SEED)
        assert len(rows) == 9
        names = [row.summary.name for row in rows]
        assert names == PAPER_DATASET_NAMES
        for row in rows:
            assert row.paper_vertices > row.summary.num_vertices  # analogues are scaled down
            flat = row.as_row()
            assert flat["dataset"] == row.summary.name

    def test_format_table1_mentions_every_dataset(self):
        rows = build_table1(scale=0.05, seed=SEED)
        text = format_table1(rows)
        for name in PAPER_DATASET_NAMES:
            assert name in text

    def test_degree_distributions_structure(self):
        graphs = load_all_datasets(scale=0.05, seed=SEED)
        distributions = degree_distributions(graphs)
        assert set(distributions) == set(PAPER_DATASET_NAMES)
        for name, hists in distributions.items():
            assert set(hists) == {"in", "out"}
            assert sum(hists["in"].values()) == graphs[name].num_vertices

    def test_degree_ratio_distributions_structure(self):
        graphs = load_all_datasets(scale=0.05, seed=SEED)
        cdfs = degree_ratio_distributions(graphs)
        for name, cdf in cdfs.items():
            assert cdf[-1][1] == pytest.approx(1.0)
