"""REP010 fixtures: resource lifecycle over the per-function CFG."""

import textwrap

from repro.devtools import check_source


def _rep010(source, path="src/repro/session/handles.py"):
    findings = check_source(textwrap.dedent(source), path=path)
    return [f for f in findings if f.rule == "REP010"]


class TestRep010Positives:
    def test_early_return_skips_close(self):
        findings = _rep010(
            """
            def f(path, cond):
                handle = open(path)
                if cond:
                    return None
                handle.close()
                return 1
            """
        )
        assert len(findings) == 1
        assert "handle" in findings[0].message
        assert findings[0].snippet == "handle = open(path)"

    def test_fallthrough_never_closes(self):
        assert len(
            _rep010(
                """
                def f(path):
                    handle = open(path)
                    data = handle.read()
                """
            )
        ) == 1

    def test_raise_path_leaks(self):
        assert len(
            _rep010(
                """
                def f(path, cond):
                    handle = open(path)
                    if cond:
                        raise ValueError(path)
                    handle.close()
                """
            )
        ) == 1

    def test_shared_memory_attachment_never_closed(self):
        # segment.buf is a *use* (attribute receiver), not an ownership
        # transfer, so the attachment leaks at return.
        assert len(
            _rep010(
                """
                def attach(name):
                    segment = SharedMemory(name=name)
                    return bytes(segment.buf)
                """
            )
        ) == 1

    def test_np_load_mmap_mode(self):
        findings = _rep010(
            """
            def f(path, cond):
                arr = np.load(path, mmap_mode="r")
                if cond:
                    return None
                arr._mmap.close()
                return arr.shape
            """
        )
        # `arr` is reported: the early return leaks the mmap.  (The
        # close() call on the attribute chain releases `arr` on the
        # other path only.)
        assert len(findings) == 1

    def test_continue_can_exit_the_loop_open(self):
        assert len(
            _rep010(
                """
                def f(paths):
                    for path in paths:
                        handle = open(path)
                        if handle.readable():
                            continue
                        handle.close()
                """
            )
        ) == 1

    def test_method_use_does_not_release(self):
        # v.read() keeps the fact alive: only release methods kill it.
        assert len(
            _rep010(
                """
                def f(path):
                    handle = open(path)
                    return handle.read()
                """
            )
        ) == 1


class TestRep010Negatives:
    def test_with_block(self):
        assert _rep010(
            """
            def f(path):
                with open(path) as handle:
                    return handle.read()
            """
        ) == []

    def test_try_finally_close(self):
        assert _rep010(
            """
            def f(path, cond):
                handle = open(path)
                try:
                    if cond:
                        return None
                    return handle.read()
                finally:
                    handle.close()
            """
        ) == []

    def test_close_on_every_branch(self):
        assert _rep010(
            """
            def f(path, cond):
                handle = open(path)
                if cond:
                    handle.close()
                    return None
                handle.close()
                return 1
            """
        ) == []

    def test_returning_the_handle_transfers_ownership(self):
        assert _rep010(
            """
            def f(path):
                handle = open(path)
                return handle
            """
        ) == []

    def test_storing_the_handle_transfers_ownership(self):
        assert _rep010(
            """
            def f(self, path):
                handle = open(path)
                self.handles.append(handle)
            """
        ) == []

    def test_closing_wrapper_adopts(self):
        assert _rep010(
            """
            def f(path):
                handle = open(path)
                with closing(handle):
                    return handle.read()
            """
        ) == []

    def test_shared_memory_closed_and_unlinked(self):
        assert _rep010(
            """
            def f(name):
                segment = SharedMemory(name=name)
                payload = bytes(segment.buf)
                segment.close()
                return payload
            """
        ) == []

    def test_np_load_without_mmap_mode(self):
        assert _rep010(
            """
            def f(path):
                arr = np.load(path)
                return arr.sum()
            """
        ) == []

    def test_shm_registry_is_exempt(self):
        source = """
            def f(path):
                handle = open(path)
                return handle.read()
        """
        assert _rep010(source, path="src/repro/engine/shm_registry.py") == []

    def test_tests_are_exempt(self):
        source = """
            def f(path):
                handle = open(path)
                return handle.read()
        """
        assert _rep010(source, path="tests/test_handles.py") == []
