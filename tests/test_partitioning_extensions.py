"""Unit tests for the extension partitioners (DBH, Greedy, HDRF, Fennel)."""

import numpy as np
import pytest

from repro.metrics.partition_metrics import compute_metrics
from repro.partitioning.greedy import DegreeBasedHashing, GreedyVertexCut, HdrfPartitioner
from repro.partitioning.hash_partitioners import RandomVertexCut
from repro.partitioning.streaming import FennelEdgePartitioner

EXTENSIONS = [DegreeBasedHashing(), GreedyVertexCut(), HdrfPartitioner(), FennelEdgePartitioner()]


@pytest.mark.parametrize("strategy", EXTENSIONS, ids=lambda s: s.name)
class TestExtensionCommonProperties:
    def test_every_edge_assigned_in_range(self, strategy, small_social_graph):
        assignment = strategy.assign(small_social_graph, 8)
        assert assignment.partition_of.shape[0] == small_social_graph.num_edges
        assert assignment.partition_of.min() >= 0
        assert assignment.partition_of.max() < 8

    def test_deterministic(self, strategy, small_social_graph):
        first = strategy.assign(small_social_graph, 8).partition_of
        second = strategy.assign(small_social_graph, 8).partition_of
        assert np.array_equal(first, second)

    def test_single_partition(self, strategy, triangle_graph):
        assignment = strategy.assign(triangle_graph, 1)
        assert set(assignment.partition_of.tolist()) == {0}


class TestDegreeBasedHashing:
    def test_lower_degree_endpoint_anchors_the_edge(self):
        # Vertex 0 is a hub (degree 4); vertices 1-4 are leaves.  Every
        # edge must be placed where its leaf endpoint hashes.
        from repro.core.graph import Graph
        from repro.partitioning.hashing import mix64

        graph = Graph([0, 0, 0, 0], [1, 2, 3, 4])
        assignment = DegreeBasedHashing().assign(graph, 5)
        for (_, leaf), part in zip(graph.edge_pairs(), assignment.partition_of.tolist()):
            assert part == int(mix64(leaf) % np.uint64(5))

    def test_reduces_replication_versus_rvc_on_skewed_graph(self, small_social_graph):
        dbh = compute_metrics(DegreeBasedHashing().assign(small_social_graph, 16))
        rvc = compute_metrics(RandomVertexCut().assign(small_social_graph, 16))
        assert dbh.total_replicas < rvc.total_replicas

    def test_scalar_api_requires_degrees_context(self):
        # partition_edge with no prior assign() sees zero degrees and falls
        # back to hashing the source; it must still return a valid id.
        strategy = DegreeBasedHashing()
        assert 0 <= strategy.partition_edge(3, 4, 8) < 8


class TestGreedyVertexCut:
    def test_balanced_loads(self, small_social_graph):
        metrics = compute_metrics(GreedyVertexCut().assign(small_social_graph, 8))
        assert metrics.balance < 1.2

    def test_fewer_replicas_than_rvc(self, small_social_graph):
        greedy = compute_metrics(GreedyVertexCut().assign(small_social_graph, 8))
        rvc = compute_metrics(RandomVertexCut().assign(small_social_graph, 8))
        assert greedy.comm_cost < rvc.comm_cost

    def test_scalar_api_not_supported(self):
        with pytest.raises(NotImplementedError):
            GreedyVertexCut().partition_edge(0, 1, 2)


class TestHdrf:
    def test_balance_weight_validation(self):
        with pytest.raises(ValueError):
            HdrfPartitioner(balance_weight=-1.0)

    def test_fewer_replicas_than_rvc(self, small_social_graph):
        hdrf = compute_metrics(HdrfPartitioner().assign(small_social_graph, 8))
        rvc = compute_metrics(RandomVertexCut().assign(small_social_graph, 8))
        assert hdrf.total_replicas < rvc.total_replicas

    def test_scalar_api_not_supported(self):
        with pytest.raises(NotImplementedError):
            HdrfPartitioner().partition_edge(0, 1, 2)


class TestFennel:
    def test_gamma_validation(self):
        with pytest.raises(ValueError):
            FennelEdgePartitioner(gamma=-0.5)

    def test_balance_penalty_keeps_partitions_bounded(self, small_social_graph):
        metrics = compute_metrics(FennelEdgePartitioner(gamma=2.0).assign(small_social_graph, 8))
        assert metrics.balance < 2.0

    def test_zero_gamma_degenerates_to_pure_affinity(self, small_social_graph):
        # Without the balance penalty the first partition soaks up almost
        # everything (all endpoints become "known" there).
        metrics = compute_metrics(FennelEdgePartitioner(gamma=0.0).assign(small_social_graph, 4))
        assert metrics.largest_edge_fraction > 0.5

    def test_scalar_api_not_supported(self):
        with pytest.raises(NotImplementedError):
            FennelEdgePartitioner().partition_edge(0, 1, 2)
