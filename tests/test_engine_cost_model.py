"""Unit tests for the cost model that converts counters into simulated time."""

import pytest

from repro.engine.cluster import ClusterConfig, paper_cluster
from repro.engine.cost_model import CostModel, CostParameters


@pytest.fixture
def model(small_cluster):
    return CostModel(small_cluster, CostParameters())


class TestLoadTime:
    def test_scales_with_dataset_size(self, model):
        assert model.load_seconds(2_000_000) == pytest.approx(2 * model.load_seconds(1_000_000))

    def test_faster_on_ssd(self):
        hdd = CostModel(paper_cluster(storage="hdd"))
        ssd = CostModel(paper_cluster(storage="ssd"))
        assert ssd.load_seconds(10_000_000) < hdd.load_seconds(10_000_000)


class TestComputeTime:
    def test_balanced_tasks_use_all_cores(self, model):
        balanced = model.executor_compute_seconds([100.0] * 8)
        single = model.executor_compute_seconds([800.0] + [0.0] * 7)
        # Eight balanced tasks across 2 executors x 4 cores finish much
        # faster than one giant task that serialises on a single core.
        assert balanced < single

    def test_imbalance_increases_makespan(self, model):
        even = model.executor_compute_seconds([100.0, 100.0, 100.0, 100.0])
        skewed = model.executor_compute_seconds([340.0, 20.0, 20.0, 20.0])
        assert skewed > even

    def test_empty_superstep_costs_nothing_but_overhead(self, model):
        assert model.executor_compute_seconds([]) == 0.0


class TestNetworkTime:
    def test_remote_messages_cost_more_than_local(self, model):
        remote = model.network_seconds(1000, 0, 64_000)
        local = model.network_seconds(0, 1000, 0)
        assert remote > local

    def test_faster_network_reduces_transfer_time(self):
        slow = CostModel(paper_cluster(network_gbps=1.0))
        fast = CostModel(paper_cluster(network_gbps=40.0))
        assert fast.network_seconds(10_000, 0, 10_000 * 64) < slow.network_seconds(10_000, 0, 10_000 * 64)

    def test_ssd_reduces_shuffle_spill_time(self):
        hdd = CostModel(paper_cluster(storage="hdd"))
        ssd = CostModel(paper_cluster(storage="ssd"))
        assert ssd.network_seconds(10_000, 0, 10_000 * 64) < hdd.network_seconds(10_000, 0, 10_000 * 64)


class TestReports:
    def test_record_superstep_appends_and_totals(self, model):
        report = model.new_report()
        report.load_seconds = 0.5
        model.record_superstep(
            report,
            superstep=0,
            partition_units=[10.0, 20.0],
            messages_remote=100,
            messages_local=50,
            active_vertices=30,
            edges_scanned=200,
        )
        model.record_superstep(
            report,
            superstep=1,
            partition_units=[5.0, 5.0],
            messages_remote=10,
            messages_local=5,
            active_vertices=3,
            edges_scanned=20,
        )
        assert report.num_supersteps == 2
        assert report.total_messages == 165
        assert report.total_remote_messages == 110
        assert report.total_bytes == 110 * model.parameters.bytes_per_message
        assert report.total_seconds == pytest.approx(
            0.5
            + model.parameters.job_overhead_seconds
            + sum(record.total_seconds for record in report.supersteps)
        )
        assert report.compute_seconds > 0
        assert report.network_seconds > 0

    def test_superstep_time_has_barrier_floor(self, model):
        seconds = model.superstep_seconds([0.0], 0, 0, 0)
        assert seconds >= model.parameters.superstep_overhead_seconds

    def test_more_remote_messages_cost_more(self, model):
        report = model.new_report()
        light = model.record_superstep(report, 0, [1.0], 10, 0, 1, 1)
        heavy = model.record_superstep(report, 1, [1.0], 10_000, 0, 1, 1)
        assert heavy.total_seconds > light.total_seconds
