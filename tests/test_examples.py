"""Smoke tests for the example scripts.

Each example must import cleanly (no side effects at import time) and
expose a ``main`` entry point.  The quickstart is additionally executed at
a reduced scale to make sure the documented workflow really runs.
"""

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def _load(path: pathlib.Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_directory_has_at_least_three_scenarios(self):
        assert len(EXAMPLE_FILES) >= 3
        names = {path.name for path in EXAMPLE_FILES}
        assert "quickstart.py" in names

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
    def test_example_imports_and_has_main(self, path):
        module = _load(path)
        assert hasattr(module, "main")
        assert callable(module.main)

    def test_quickstart_runs_end_to_end(self, capsys):
        module = _load(EXAMPLES_DIR / "quickstart.py")
        module.main()
        output = capsys.readouterr().out
        assert "PageRank finished" in output
        assert "slower" in output
