"""Repo-wide gate: HEAD is clean, the shipped baseline is exact, and a
tree seeded with one violation per rule fails through the real CLI."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.devtools import check_paths, load_baseline
from repro.devtools.engine import baseline_from_findings

ROOT = Path(__file__).resolve().parents[1]
SHIPPED_BASELINE = ROOT / "check-baseline.json"

#: One violation per rule.  Each value is a tuple of (path, source)
#: pairs because the project rules (REP011+) need more than one file to
#: misbehave; the *first* pair is always the file the finding lands in.
SEEDED_VIOLATIONS = {
    "REP001": (("src/repro/analysis/bad_defaults.py", "def f(x: int = None):\n    return x\n"),),
    "REP002": (("src/repro/engine/bad_fold.py", "outbox[indices] += messages\n"),),
    "REP003": (("src/repro/session/bad_shm.py", "shm = SharedMemory(create=True, size=64)\n"),),
    "REP004": (
        (
            "src/repro/serve/bad_async.py",
            "async def handler(request):\n    time.sleep(0.1)\n",
        ),
    ),
    "REP005": (("src/repro/metrics/bad_shim.py", "parts = assignment.vertex_partitions()\n"),),
    "REP006": (("src/repro/analysis/bad_names.py", 'ok = name == "pr"\n'),),
    "REP007": (
        (
            "src/repro/engine/bad_except.py",
            "try:\n    route(target)\nexcept KeyError:\n    pass\n",
        ),
    ),
    "REP008": (("src/repro/datasets/bad_random.py", "rng = np.random.default_rng()\n"),),
    "REP009": (
        (
            "src/repro/ooc/bad_materialize.py",
            "pairs = list(graph.edge_pairs())\n",
        ),
    ),
    "REP010": (
        (
            "src/repro/engine/bad_handle.py",
            "def f(path, cond):\n"
            "    handle = open(path)\n"
            "    if cond:\n"
            "        return None\n"
            "    handle.close()\n"
            "    return 1\n",
        ),
    ),
    "REP011": (
        ("src/repro/cycle_a.py", "from repro.cycle_b import beta\nalpha = 1\n"),
        ("src/repro/cycle_b.py", "from repro.cycle_a import alpha\nbeta = 2\n"),
    ),
    "REP012": (("src/repro/analysis/bad_exports.py", '__all__ = ["missing"]\n'),),
    "REP013": (("src/repro/metrics/bad_dead.py", "def _stranded():\n    return 1\n"),),
    "REP014": (("src/repro/partitioning/registry.py", '_FACTORIES = {"XYZ": None}\n'),),
}


def _repo_targets():
    return [ROOT / name for name in ("src", "tests", "benchmarks", "examples") if (ROOT / name).is_dir()]


def _seed_tree(root: Path) -> None:
    for pairs in SEEDED_VIOLATIONS.values():
        for rel_path, source in pairs:
            target = root / rel_path
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(source)


class TestRepoAtHead:
    def test_repo_is_clean(self):
        findings, files_checked = check_paths(_repo_targets())
        assert files_checked > 100
        assert findings == [], "\n".join(str(f) for f in findings)

    def test_shipped_baseline_is_exact(self):
        # The baseline must mirror the tree exactly: no un-baselined
        # findings and no stale grandfathered entries.
        findings, _ = check_paths(_repo_targets())
        shipped = load_baseline(SHIPPED_BASELINE)
        assert shipped.entries == baseline_from_findings(findings).entries

    def test_cli_exits_zero_at_head(self, capsys):
        paths = [str(p) for p in _repo_targets()]
        code = main(["check", *paths, "--baseline", str(SHIPPED_BASELINE)])
        assert code == 0
        assert "0 new finding(s)" in capsys.readouterr().out


class TestSeededViolationTree:
    def test_cli_exits_one_with_every_rule_firing(self, tmp_path, capsys):
        _seed_tree(tmp_path)
        code = main(["check", str(tmp_path), "--format", "json"])
        assert code == 1
        document = json.loads(capsys.readouterr().out)
        fired = {finding["rule"] for finding in document["findings"]}
        assert fired == set(SEEDED_VIOLATIONS)
        assert document["exit_code"] == 1
        assert len(document["findings"]) == len(SEEDED_VIOLATIONS)

    def test_single_rule_selection_only_fires_that_rule(self, tmp_path, capsys):
        _seed_tree(tmp_path)
        code = main(["check", str(tmp_path), "--rule", "REP003", "--format", "json"])
        assert code == 1
        document = json.loads(capsys.readouterr().out)
        assert {f["rule"] for f in document["findings"]} == {"REP003"}

    def test_comma_separated_rule_selection(self, tmp_path, capsys):
        _seed_tree(tmp_path)
        code = main(
            ["check", str(tmp_path), "--rule", "rep001,REP004", "--format", "json"]
        )
        assert code == 1
        document = json.loads(capsys.readouterr().out)
        assert document["rules"] == ["REP001", "REP004"]
        assert {f["rule"] for f in document["findings"]} == {"REP001", "REP004"}

    def test_write_baseline_then_check_passes(self, tmp_path, capsys):
        _seed_tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main(["check", str(tmp_path), "--baseline", str(baseline), "--write-baseline"]) == 0
        capsys.readouterr()
        code = main(["check", str(tmp_path), "--baseline", str(baseline)])
        out = capsys.readouterr().out
        assert code == 0
        assert f"{len(SEEDED_VIOLATIONS)} baselined" in out

    def test_fixing_a_baselined_violation_reports_stale_entry(self, tmp_path, capsys):
        _seed_tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        main(["check", str(tmp_path), "--baseline", str(baseline), "--write-baseline"])
        (tmp_path / SEEDED_VIOLATIONS["REP008"][0][0]).write_text("rng = np.random.default_rng(seed)\n")
        capsys.readouterr()
        code = main(
            ["check", str(tmp_path), "--baseline", str(baseline), "--format", "json"]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert len(document["stale_baseline"]) == 1
        assert document["stale_baseline"][0].startswith("REP008:")


class TestCliSurface:
    def test_list_rules_prints_the_table(self, capsys):
        assert main(["check", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for index in range(1, 15):
            assert f"REP{index:03d}" in out

    def test_unknown_rule_id_is_a_usage_error(self, capsys):
        assert main(["check", "--rule", "REP999"]) == 2
        assert "REP999" in capsys.readouterr().err

    def test_malformed_rule_id_is_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit):
            main(["check", "--rule", "banana"])

    def test_output_writes_the_json_document(self, tmp_path, capsys):
        _seed_tree(tmp_path)
        artifact = tmp_path / "findings.json"
        code = main(["check", str(tmp_path), "--output", str(artifact)])
        capsys.readouterr()
        assert code == 1
        document = json.loads(artifact.read_text())
        assert {f["rule"] for f in document["findings"]} == set(SEEDED_VIOLATIONS)

    def test_write_baseline_without_baseline_path_is_an_error(self, tmp_path, capsys):
        _seed_tree(tmp_path)
        assert main(["check", str(tmp_path), "--write-baseline"]) == 2
        assert "--baseline" in capsys.readouterr().err
