"""REP002 fixtures: buffered fancy-index accumulation in engine code."""

import textwrap

from repro.devtools import check_source

ENGINE_PATH = "src/repro/engine/messaging.py"


def _rep002(source, path=ENGINE_PATH):
    findings = check_source(textwrap.dedent(source), path=path)
    return [f for f in findings if f.rule == "REP002"]


class TestRep002Positives:
    def test_augmented_assign_with_index_array_name(self):
        findings = _rep002("outbox[indices] += messages\n")
        assert len(findings) == 1
        assert "ufunc.at" in findings[0].message

    def test_augmented_assign_with_idx_suffix(self):
        assert len(_rep002("merged[local_idx] += values\n")) == 1

    def test_augmented_assign_with_attribute_index(self):
        assert len(_rep002("outbox[plan.slots] += messages\n")) == 1

    def test_augmented_assign_with_call_index(self):
        assert len(_rep002("out[np.nonzero(mask)] += 1\n")) == 1

    def test_augmented_assign_with_slice_subscript_index(self):
        assert len(_rep002("out[order[:n]] += 1\n")) == 1

    def test_buffered_ufunc_with_subscript_out(self):
        assert len(_rep002("np.add(a, b, out=merged[inverse])\n")) == 1

    def test_buffered_minimum_with_subscript_out(self):
        assert len(_rep002("np.minimum(a, b, out=dist[mask])\n")) == 1


class TestRep002Negatives:
    def test_scalar_loop_index_is_fine(self):
        source = """
        for partition_id in range(parts):
            partition_units[partition_id] += units
        """
        assert _rep002(source) == []

    def test_singular_name_index_is_fine(self):
        source = """
        target = loads.index(min(loads))
        loads[target] += weight
        """
        assert _rep002(source) == []

    def test_unbuffered_ufunc_at_is_the_blessed_form(self):
        assert _rep002("np.add.at(out, indices, values)\n") == []
        assert _rep002("kernel.merge_ufunc.at(outbox, inverse, messages)\n") == []

    def test_out_keyword_on_plain_array_is_fine(self):
        assert _rep002("np.add(a, b, out=buffer)\n") == []

    def test_rule_is_scoped_to_engine(self):
        assert _rep002("out[indices] += v\n", path="src/repro/backends/csr.py") == []

    def test_noqa_suppresses(self):
        assert _rep002("out[indices] += v  # repro: noqa[REP002]\n") == []
