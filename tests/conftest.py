"""Shared fixtures for the test suite.

All fixtures build *small* graphs so the full suite stays fast; the
benchmark harness under ``benchmarks/`` is where the paper-scale sweeps
live.
"""

from __future__ import annotations

import gc
import glob

import pytest

from repro.core.graph import Graph
from repro.datasets.generators import ring_of_cliques, road_network, social_graph
from repro.engine.cluster import ClusterConfig
from repro.engine.partitioned_graph import PartitionedGraph


@pytest.fixture(scope="session", autouse=True)
def shared_memory_leak_guard():
    """Fail the session if any test leaks a shared-memory segment.

    Every segment the parallel Pregel stack creates is named with the
    ``repro-shm`` prefix; once the graphs (and therefore their executors)
    tested here are collected, nothing of ours may remain in /dev/shm.
    """
    yield
    # Executors are torn down by weakref.finalize when their graph is
    # collected; break any lingering reference cycles first.
    gc.collect()
    leaked = glob.glob("/dev/shm/repro-shm-*")
    assert not leaked, f"leaked shared-memory segments: {leaked}"


@pytest.fixture
def triangle_graph() -> Graph:
    """A single directed triangle 0 -> 1 -> 2 -> 0."""
    return Graph([0, 1, 2], [1, 2, 0], name="triangle")


@pytest.fixture
def two_component_graph() -> Graph:
    """Two disjoint undirected paths: {0,1,2} and {10,11}."""
    edges = [(0, 1), (1, 0), (1, 2), (2, 1), (10, 11), (11, 10)]
    return Graph.from_edges(edges, name="two-components")


@pytest.fixture
def small_social_graph() -> Graph:
    """A small deterministic power-law style directed graph."""
    return social_graph(
        num_vertices=120,
        num_edges=700,
        exponent=2.3,
        reciprocity=0.4,
        triadic_closure=0.3,
        connect=True,
        seed=11,
        name="small-social",
    )


@pytest.fixture
def small_road_graph() -> Graph:
    """A small two-component grid with id locality."""
    return road_network(rows=6, cols=6, num_components=2, diagonal_prob=0.05, seed=3, name="small-road")


@pytest.fixture
def clique_ring_graph() -> Graph:
    """Four 5-cliques connected in a ring (lots of triangles, one component)."""
    return ring_of_cliques(num_cliques=4, clique_size=5, seed=1)


@pytest.fixture
def small_cluster() -> ClusterConfig:
    """A small simulated cluster (2 executors x 4 cores) used in engine tests."""
    return ClusterConfig(num_executors=2, cores_per_executor=4, network_gbps=1.0, storage="hdd", name="test")


@pytest.fixture
def partitioned_social(small_social_graph) -> PartitionedGraph:
    """The small social graph partitioned with CRVC into 8 parts."""
    return PartitionedGraph.partition(small_social_graph, "CRVC", 8)
