"""Integration tests: the paper's headline findings at reduced scale.

These tests run the same sweeps as the benchmark harness but on much
smaller graphs, asserting the *shape* of the paper's results:

* Communication Cost is the strongest runtime predictor for PageRank
  (Figure 3) and remains strong for Connected Components and SSSP
  (Figures 4 and 6);
* the Cut metric predicts Triangle Count better than CommCost does
  (Figure 5), and TR is far less sensitive to the partitioner choice;
* finer granularity increases CommCost but by less than 2x (Table 2 vs 3);
* a faster network / SSD storage reduces PageRank time (Section 4).
"""

import pytest

from repro.analysis.correlation import correlation_table, correlation_with_time
from repro.analysis.experiments import (
    ExperimentConfig,
    run_algorithm_study,
    run_infrastructure_study,
    run_partitioning_study,
)
from repro.analysis.results import group_by_dataset
from repro.datasets.catalog import load_all_datasets

SCALE = 0.12
SEED = 9
DATASETS = ["roadnet-pa", "youtube", "pokec", "orkut", "follow-jul"]
PARTITIONERS = ["RVC", "1D", "2D", "CRVC", "SC", "DC"]


@pytest.fixture(scope="module")
def graphs():
    return {
        name: graph
        for name, graph in load_all_datasets(scale=SCALE, seed=SEED).items()
        if name in DATASETS
    }


def _study(algorithm, graphs, num_partitions=16, iterations=5):
    config = ExperimentConfig(
        algorithm=algorithm,
        num_partitions=num_partitions,
        datasets=DATASETS,
        partitioners=PARTITIONERS,
        scale=SCALE,
        seed=SEED,
        num_iterations=iterations,
        landmark_count=2,
    )
    return run_algorithm_study(config, graphs=graphs)


@pytest.fixture(scope="module")
def pagerank_records(graphs):
    return _study("PR", graphs)


@pytest.fixture(scope="module")
def triangle_records(graphs):
    return _study("TR", graphs)


class TestFigure3PageRank:
    def test_comm_cost_is_a_strong_predictor(self, pagerank_records):
        correlation = correlation_with_time(pagerank_records, "comm_cost")
        assert correlation > 0.8

    def test_comm_cost_beats_balance_and_stdev(self, pagerank_records):
        table = correlation_table(pagerank_records)
        assert table["comm_cost"] >= table["balance"]
        assert table["comm_cost"] >= table["part_stdev"]

    def test_lower_comm_cost_is_faster_within_each_dataset(self, pagerank_records):
        for dataset, records in group_by_dataset(pagerank_records).items():
            per_partitioner = sorted(records, key=lambda r: r.metric("comm_cost"))
            assert (
                per_partitioner[0].simulated_seconds
                < per_partitioner[-1].simulated_seconds
            ), dataset


class TestFigure5TriangleCount:
    def test_cut_predicts_better_than_comm_cost(self, triangle_records):
        cut_corr = correlation_with_time(triangle_records, "cut")
        comm_corr = correlation_with_time(triangle_records, "comm_cost")
        assert cut_corr > comm_corr

    def test_partitioner_choice_matters_less_than_for_pagerank(
        self, triangle_records, pagerank_records
    ):
        def max_relative_spread(records):
            spreads = []
            for _, group in group_by_dataset(records).items():
                times = [r.simulated_seconds for r in group]
                spreads.append((max(times) - min(times)) / min(times))
            return max(spreads)

        assert max_relative_spread(triangle_records) < max_relative_spread(pagerank_records)


class TestGranularity:
    def test_finer_partitioning_raises_comm_cost_sublinearly(self, graphs):
        coarse = run_partitioning_study(
            num_partitions=16, datasets=DATASETS, graphs=graphs
        )
        fine = run_partitioning_study(
            num_partitions=32, datasets=DATASETS, graphs=graphs
        )
        for dataset in DATASETS:
            for coarse_metrics, fine_metrics in zip(coarse[dataset], fine[dataset]):
                assert fine_metrics.comm_cost >= coarse_metrics.comm_cost
                assert fine_metrics.comm_cost <= 2 * coarse_metrics.comm_cost

    def test_finer_partitioning_slows_down_pagerank(self, graphs, pagerank_records):
        fine_records = _study("PR", graphs, num_partitions=32)
        coarse_by_key = {(r.dataset, r.partitioner): r for r in pagerank_records}
        slower = sum(
            1
            for record in fine_records
            if record.simulated_seconds
            > coarse_by_key[(record.dataset, record.partitioner)].simulated_seconds
        )
        # PageRank is communication bound: finer granularity should slow
        # down the clear majority of (dataset, partitioner) combinations.
        assert slower >= 0.7 * len(fine_records)


class TestInfrastructure:
    def test_better_infrastructure_speeds_up_pagerank(self, graphs):
        results = run_infrastructure_study(
            dataset="follow-jul",
            partitioner="2D",
            num_partitions=16,
            num_iterations=5,
            graph=graphs["follow-jul"],
        )
        baseline, fast_network, fast_storage = results
        # At the reduced test scale the fixed per-superstep overheads
        # dominate, so the improvement is small but must be present and in
        # the right order; the full-scale benchmark shows the paper-sized
        # effect.
        assert fast_network.speedup_vs(baseline) > 0.01
        assert fast_storage.speedup_vs(baseline) >= fast_network.speedup_vs(baseline)


class TestCrossAlgorithmFindings:
    def test_best_partitioner_depends_on_algorithm(self, pagerank_records, triangle_records):
        from repro.analysis.results import best_partitioner_per_dataset

        pr_best = best_partitioner_per_dataset(pagerank_records)
        tr_best = best_partitioner_per_dataset(triangle_records)
        # The paper's core message: the best strategy for one algorithm is
        # not necessarily the best for another.
        assert pr_best != tr_best
