"""Tests for the CSR view behind the vectorized backend."""

import numpy as np
import pytest

from repro.backends.csr import CSRGraph
from repro.core.graph import Graph


class TestConstruction:
    def test_dense_indices_cover_sorted_vertex_ids(self):
        graph = Graph([10, 30, 30], [30, 10, 50], name="sparse-ids")
        csr = CSRGraph.from_graph(graph)
        assert csr.vertex_ids.tolist() == [10, 30, 50]
        assert csr.num_vertices == 3
        assert csr.num_edges == 3
        assert csr.index_of([10, 30, 50]).tolist() == [0, 1, 2]

    def test_out_orientation_matches_adjacency(self, small_social_graph):
        csr = CSRGraph.from_graph(small_social_graph)
        adjacency = small_social_graph.adjacency("out")
        for index, vertex in enumerate(csr.vertex_ids.tolist()):
            neighbours = csr.vertex_ids[csr.out_neighbors(index)]
            assert set(neighbours.tolist()) == adjacency[vertex]

    def test_in_orientation_matches_adjacency(self, small_social_graph):
        csr = CSRGraph.from_graph(small_social_graph)
        adjacency = small_social_graph.adjacency("in")
        for index, vertex in enumerate(csr.vertex_ids.tolist()):
            neighbours = csr.vertex_ids[csr.in_neighbors(index)]
            assert set(neighbours.tolist()) == adjacency[vertex]

    def test_rows_are_sorted(self, small_social_graph):
        csr = CSRGraph.from_graph(small_social_graph)
        for index in range(csr.num_vertices):
            row = csr.out_neighbors(index)
            assert np.all(row[:-1] <= row[1:])

    def test_duplicate_edges_are_preserved(self):
        graph = Graph([0, 0, 0], [1, 1, 2], name="dups")
        csr = CSRGraph.from_graph(graph)
        assert csr.out_degrees.tolist() == [3, 0, 0]
        assert csr.out_neighbors(0).tolist() == [1, 1, 2]

    def test_degrees_match_graph(self, small_social_graph):
        csr = CSRGraph.from_graph(small_social_graph)
        out_map = small_social_graph.out_degrees()
        in_map = small_social_graph.in_degrees()
        for index, vertex in enumerate(csr.vertex_ids.tolist()):
            assert csr.out_degrees[index] == out_map[vertex]
            assert csr.in_degrees[index] == in_map[vertex]

    def test_empty_graph(self):
        csr = CSRGraph.from_graph(Graph([], [], vertices=[1, 2]))
        assert csr.num_vertices == 2
        assert csr.num_edges == 0
        assert csr.out_indptr.tolist() == [0, 0, 0]


class TestCanonicalView:
    def test_drops_self_loops_and_duplicates(self):
        graph = Graph([0, 0, 1, 2, 2], [1, 1, 0, 2, 0], name="messy")
        csr = CSRGraph.from_graph(graph)
        indptr, indices = csr.canonical_csr()
        # Canonical simple undirected edges: {0,1} and {0,2}.
        assert indptr.tolist() == [0, 2, 3, 4]
        assert indices.tolist() == [1, 2, 0, 0]

    def test_symmetric_and_cached(self, clique_ring_graph):
        csr = CSRGraph.from_graph(clique_ring_graph)
        first = csr.canonical_csr()
        assert csr.canonical_csr() is first
        indptr, indices = first
        canonical = clique_ring_graph.canonicalized()
        assert indices.size == 2 * canonical.num_edges


class TestGraphCache:
    def test_graph_csr_is_cached(self, small_social_graph):
        assert small_social_graph.csr() is small_social_graph.csr()

    def test_degree_maps_cached_but_safe_to_mutate(self, small_social_graph):
        first = small_social_graph.out_degrees()
        vertex = next(iter(first))
        first[vertex] += 1000
        assert small_social_graph.out_degrees()[vertex] == first[vertex] - 1000

    def test_degrees_unaffected_by_cache(self, small_social_graph):
        total = small_social_graph.degrees()
        out = small_social_graph.out_degrees()
        inn = small_social_graph.in_degrees()
        assert total == {v: out[v] + inn[v] for v in out}

    def test_adjacency_cached_but_safe_to_mutate(self, small_social_graph):
        first = small_social_graph.adjacency("both")
        vertex = next(iter(first))
        first[vertex].add(10**9)
        assert 10**9 not in small_social_graph.adjacency("both")[vertex]

    def test_adjacency_direction_rejected(self, small_social_graph):
        with pytest.raises(Exception):
            small_social_graph.adjacency("sideways")
