"""Tests for granularity sweeps and result serialisation."""

import pytest

from repro.analysis.results import RunRecord
from repro.analysis.serialization import (
    load_records,
    metrics_from_dict,
    metrics_to_dict,
    record_from_dict,
    record_to_dict,
    report_to_dict,
    save_records,
)
from repro.analysis.sweep import sweep_granularity
from repro.algorithms.pagerank import pagerank
from repro.errors import AnalysisError
from repro.metrics.partition_metrics import compute_metrics
from repro.partitioning.registry import make_partitioner


class TestGranularitySweep:
    def test_metrics_only_sweep(self, small_social_graph):
        sweep = sweep_granularity(small_social_graph, [4, 8, 16], partitioners=["RVC", "DC"])
        assert len(sweep.points) == 3 * 2
        assert all(p.simulated_seconds is None for p in sweep.points)
        curve = sweep.curve("RVC", "comm_cost")
        assert [n for n, _ in curve] == [4, 8, 16]
        # CommCost grows (weakly) with the partition count.
        values = [v for _, v in curve]
        assert values == sorted(values)

    def test_sweep_with_algorithm_records_runtimes(self, small_social_graph):
        sweep = sweep_granularity(
            small_social_graph,
            [4, 8],
            partitioners=["RVC", "DC"],
            algorithm="PR",
            num_iterations=2,
        )
        assert all(p.simulated_seconds > 0 for p in sweep.points)
        best = sweep.crossover_points(by="seconds")
        assert set(best) == {4, 8}
        assert all(choice in {"RVC", "DC"} for choice in best.values())

    def test_best_partitioner_by_metric(self, small_social_graph):
        sweep = sweep_granularity(small_social_graph, [8], partitioners=["RVC", "DC", "2D"])
        best = sweep.best_partitioner(8, by="comm_cost")
        by_hand = min(
            (p for p in sweep.points if p.num_partitions == 8),
            key=lambda p: p.metrics.comm_cost,
        ).partitioner
        assert best == by_hand

    def test_best_by_seconds_without_algorithm_rejected(self, small_social_graph):
        sweep = sweep_granularity(small_social_graph, [4], partitioners=["RVC"])
        with pytest.raises(AnalysisError):
            sweep.best_partitioner(4, by="seconds")

    def test_unknown_granularity_rejected(self, small_social_graph):
        sweep = sweep_granularity(small_social_graph, [4], partitioners=["RVC"])
        with pytest.raises(AnalysisError):
            sweep.best_partitioner(128)

    @pytest.mark.parametrize("counts", [[], [0], [-2]])
    def test_invalid_partition_counts_rejected(self, small_social_graph, counts):
        with pytest.raises(AnalysisError):
            sweep_granularity(small_social_graph, counts)


def _sample_record(graph, partitioner="CRVC", num_partitions=8):
    metrics = compute_metrics(make_partitioner(partitioner).assign(graph, num_partitions))
    return RunRecord(
        dataset="sample",
        partitioner=partitioner,
        num_partitions=num_partitions,
        algorithm="PR",
        metrics=metrics,
        simulated_seconds=0.1234,
        num_supersteps=11,
    )


class TestSerialization:
    def test_metrics_round_trip(self, small_social_graph):
        metrics = compute_metrics(make_partitioner("2D").assign(small_social_graph, 9))
        assert metrics_from_dict(metrics_to_dict(metrics)) == metrics

    def test_metrics_missing_field_rejected(self):
        with pytest.raises(AnalysisError):
            metrics_from_dict({"strategy": "RVC"})

    def test_record_round_trip(self, small_social_graph):
        record = _sample_record(small_social_graph)
        assert record_from_dict(record_to_dict(record)) == record

    def test_record_missing_field_rejected(self):
        with pytest.raises(AnalysisError):
            record_from_dict({"dataset": "x"})

    def test_save_and_load_records(self, tmp_path, small_social_graph):
        records = [_sample_record(small_social_graph, name) for name in ("RVC", "DC", "2D")]
        path = tmp_path / "runs.json"
        save_records(records, path)
        loaded = load_records(path)
        assert loaded == records

    def test_load_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(AnalysisError):
            load_records(path)

    def test_load_rejects_non_list_payload(self, tmp_path):
        path = tmp_path / "obj.json"
        path.write_text("{}")
        with pytest.raises(AnalysisError):
            load_records(path)

    def test_save_to_missing_directory_rejected(self, tmp_path, small_social_graph):
        with pytest.raises(AnalysisError):
            save_records([_sample_record(small_social_graph)], tmp_path / "no-dir" / "x.json")

    def test_report_to_dict_totals_consistent(self, partitioned_social):
        result = pagerank(partitioned_social, num_iterations=3)
        payload = report_to_dict(result.report)
        assert payload["total_seconds"] == pytest.approx(result.simulated_seconds)
        assert len(payload["supersteps"]) == result.num_supersteps
        assert payload["cluster"]["num_executors"] == 4
        assert payload["total_messages"] == result.report.total_messages
