"""Multi-source SSSP and the landmark-distance matrix behind ``repro serve``.

The serving layer's batching contract rests on two equivalences proved
here: one multi-source Pregel sweep returns exactly what N single-source
sweeps return, and the landmark matrix's triangle-inequality estimates
upper-bound (and at landmarks equal) the exact distances.
"""

import networkx as nx
import pytest

from repro.algorithms.shortest_paths import (
    build_landmark_matrix,
    choose_landmarks,
    multi_source_distances,
    shortest_paths,
)
from repro.core.graph import Graph
from repro.engine.partitioned_graph import PartitionedGraph
from repro.errors import EngineError


def _nx_distances_from(graph, source):
    """Hop distance FROM the source along edge direction (forward)."""
    nx_graph = nx.DiGraph()
    nx_graph.add_nodes_from(graph.vertex_ids.tolist())
    nx_graph.add_edges_from(graph.edge_pairs())
    return nx.single_source_shortest_path_length(nx_graph, source)


class TestMultiSourceCorrectness:
    def test_chain_forward_distances(self):
        graph = Graph([0, 1, 2], [1, 2, 3])
        pgraph = PartitionedGraph.partition(graph, "RVC", 2)
        result = multi_source_distances(pgraph, [0])
        assert result.vertex_values[0] == {0: 0}
        assert result.vertex_values[1] == {0: 1}
        assert result.vertex_values[2] == {0: 2}
        assert result.vertex_values[3] == {0: 3}

    def test_matches_networkx(self, small_social_graph):
        pgraph = PartitionedGraph.partition(small_social_graph, "CRVC", 8)
        sources = choose_landmarks(small_social_graph, count=3, seed=5)
        result = multi_source_distances(pgraph, sources)
        for source in sources:
            expected = _nx_distances_from(small_social_graph, source)
            for vertex, value in result.vertex_values.items():
                assert value.get(source) == expected.get(vertex)

    def test_batched_identical_to_serial_runs(self, small_social_graph):
        """The serving guarantee: one N-source sweep == N separate sweeps."""
        pgraph = PartitionedGraph.partition(small_social_graph, "2D", 8)
        sources = choose_landmarks(small_social_graph, count=4, seed=11)
        batched = multi_source_distances(pgraph, sources).vertex_values
        for source in sources:
            serial = multi_source_distances(pgraph, [source]).vertex_values
            for vertex, value in serial.items():
                assert batched[vertex].get(source) == value.get(source)

    def test_scalar_and_vectorized_paths_identical(self, small_social_graph):
        pgraph = PartitionedGraph.partition(small_social_graph, "DC", 8)
        sources = choose_landmarks(small_social_graph, count=3, seed=2)
        scalar = multi_source_distances(pgraph, sources, vectorized=False)
        array = multi_source_distances(pgraph, sources, vectorized=True)
        assert scalar.vertex_values == array.vertex_values
        assert scalar.report.supersteps == array.report.supersteps

    def test_partitioning_invariant(self, small_social_graph):
        sources = choose_landmarks(small_social_graph, count=2, seed=9)
        maps = [
            multi_source_distances(
                PartitionedGraph.partition(small_social_graph, strategy, 8), sources
            ).vertex_values
            for strategy in ("RVC", "Hybrid")
        ]
        assert maps[0] == maps[1]

    def test_duplicate_sources_deduplicated(self, two_component_graph):
        pgraph = PartitionedGraph.partition(two_component_graph, "RVC", 2)
        result = multi_source_distances(pgraph, [0, 0, 1, 0])
        assert result.vertex_values[0] == {0: 0, 1: 1}
        assert result.vertex_values[10] == {}


class TestMultiSourceValidation:
    def test_empty_sources_rejected(self, partitioned_social):
        with pytest.raises(EngineError):
            multi_source_distances(partitioned_social, [])

    def test_unknown_source_rejected(self, partitioned_social):
        with pytest.raises(EngineError, match="not present"):
            multi_source_distances(partitioned_social, [10**9])


class TestChooseLandmarks:
    def test_count_below_one_rejected(self, small_social_graph):
        with pytest.raises(EngineError, match="must be >= 1"):
            choose_landmarks(small_social_graph, count=0)
        with pytest.raises(EngineError, match="must be >= 1"):
            choose_landmarks(small_social_graph, count=-3)

    def test_seed_none_matches_historical_default(self, small_social_graph):
        assert choose_landmarks(small_social_graph, count=4, seed=None) == (
            choose_landmarks(small_social_graph, count=4, seed=7)
        )


class TestLandmarkMatrix:
    @pytest.fixture
    def matrix_and_graph(self, small_social_graph):
        pgraph = PartitionedGraph.partition(small_social_graph, "CRVC", 8)
        landmarks = choose_landmarks(small_social_graph, count=4, seed=3)
        return build_landmark_matrix(pgraph, landmarks), small_social_graph, landmarks

    def test_directions_match_single_sweeps(self, matrix_and_graph):
        matrix, graph, landmarks = matrix_and_graph
        pgraph = PartitionedGraph.partition(graph, "CRVC", 8)
        backward = shortest_paths(pgraph, landmarks).vertex_values
        forward = multi_source_distances(pgraph, landmarks).vertex_values
        for vertex in graph.vertex_ids.tolist():
            row = matrix.to_landmark[matrix.index_of(vertex)]
            column = matrix.from_landmark[:, matrix.index_of(vertex)]
            for j, landmark in enumerate(matrix.landmarks):
                expected_to = backward[vertex].get(landmark)
                expected_from = forward[vertex].get(landmark)
                assert (expected_to if expected_to is not None else float("inf")) == row[j]
                assert (expected_from if expected_from is not None else float("inf")) == column[j]

    def test_estimate_upper_bounds_exact_distance(self, matrix_and_graph):
        matrix, graph, landmarks = matrix_and_graph
        vertices = graph.vertex_ids.tolist()
        for source in vertices[::7]:
            exact = _nx_distances_from(graph, source)
            for target in vertices[::5]:
                estimate = matrix.estimate(source, target)
                if estimate is None:
                    continue  # no landmark connects the pair
                assert target in exact, "estimate implies reachability"
                assert estimate >= exact[target]

    def test_estimate_exact_at_landmarks(self, matrix_and_graph):
        """Routes through an endpoint landmark collapse the triangle
        inequality to the true distance."""
        matrix, graph, landmarks = matrix_and_graph
        for landmark in landmarks:
            exact = _nx_distances_from(graph, landmark)
            for target in graph.vertex_ids.tolist()[::5]:
                estimate = matrix.estimate(landmark, target)
                assert estimate == exact.get(target)

    def test_estimate_zero_for_self(self, matrix_and_graph):
        matrix, graph, _ = matrix_and_graph
        vertex = graph.vertex_ids.tolist()[0]
        assert matrix.estimate(vertex, vertex) == 0

    def test_unknown_vertex_rejected(self, matrix_and_graph):
        matrix, _, _ = matrix_and_graph
        with pytest.raises(EngineError, match="not in the graph"):
            matrix.index_of(10**9)
        with pytest.raises(EngineError):
            matrix.estimate(10**9, 0)
