"""Unit tests for the Graph data model."""

import numpy as np
import pytest

from repro.core.graph import Edge, Graph
from repro.errors import GraphValidationError


class TestEdge:
    def test_reversed_swaps_endpoints(self):
        assert Edge(1, 2).reversed() == Edge(2, 1)

    def test_canonical_orders_endpoints(self):
        assert Edge(5, 3).canonical() == Edge(3, 5)
        assert Edge(3, 5).canonical() == Edge(3, 5)

    def test_edges_are_hashable_and_frozen(self):
        assert len({Edge(0, 1), Edge(0, 1), Edge(1, 0)}) == 2
        with pytest.raises(AttributeError):
            Edge(0, 1).src = 4  # type: ignore[misc]


class TestGraphConstruction:
    def test_basic_counts(self, triangle_graph):
        assert triangle_graph.num_vertices == 3
        assert triangle_graph.num_edges == 3
        assert len(triangle_graph) == 3

    def test_from_edges_matches_direct_construction(self):
        pairs = [(0, 1), (1, 2), (2, 0)]
        assert Graph.from_edges(pairs).edge_set() == Graph([0, 1, 2], [1, 2, 0]).edge_set()

    def test_from_edges_empty(self):
        graph = Graph.from_edges([])
        assert graph.num_edges == 0
        assert graph.num_vertices == 0

    def test_explicit_isolated_vertices_are_counted(self):
        graph = Graph([0], [1], vertices=[5, 6])
        assert graph.num_vertices == 4
        assert 5 in graph.vertex_ids.tolist()

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(GraphValidationError):
            Graph([0, 1], [1])

    def test_negative_ids_rejected(self):
        with pytest.raises(GraphValidationError):
            Graph([-1], [0])
        with pytest.raises(GraphValidationError):
            Graph([0], [1], vertices=[-3])

    def test_two_dimensional_input_rejected(self):
        with pytest.raises(GraphValidationError):
            Graph(np.zeros((2, 2)), np.zeros((2, 2)))

    def test_duplicate_edges_preserved(self):
        graph = Graph([0, 0], [1, 1])
        assert graph.num_edges == 2
        assert graph.deduplicated().num_edges == 1


class TestGraphAccessors:
    def test_vertex_ids_sorted_unique(self):
        graph = Graph([5, 3, 5], [3, 7, 7])
        assert graph.vertex_ids.tolist() == [3, 5, 7]

    def test_edge_iteration(self, triangle_graph):
        assert list(triangle_graph.edge_pairs()) == [(0, 1), (1, 2), (2, 0)]
        assert [e.src for e in triangle_graph.edges()] == [0, 1, 2]

    def test_edge_set(self, triangle_graph):
        assert triangle_graph.edge_set() == {(0, 1), (1, 2), (2, 0)}


class TestDegrees:
    def test_out_and_in_degrees(self, triangle_graph):
        assert triangle_graph.out_degrees() == {0: 1, 1: 1, 2: 1}
        assert triangle_graph.in_degrees() == {0: 1, 1: 1, 2: 1}

    def test_degrees_include_zero_entries(self):
        graph = Graph([0, 0], [1, 2])
        assert graph.out_degrees() == {0: 2, 1: 0, 2: 0}
        assert graph.in_degrees() == {0: 0, 1: 1, 2: 1}
        assert graph.degrees() == {0: 2, 1: 1, 2: 1}

    def test_degree_of_isolated_vertex_is_zero(self):
        graph = Graph([0], [1], vertices=[9])
        assert graph.out_degrees()[9] == 0
        assert graph.in_degrees()[9] == 0


class TestTransformations:
    def test_reverse_flips_edges(self, triangle_graph):
        reversed_graph = triangle_graph.reverse()
        assert reversed_graph.edge_set() == {(1, 0), (2, 1), (0, 2)}
        assert reversed_graph.num_vertices == triangle_graph.num_vertices

    def test_canonicalized_removes_duplicates_loops_and_direction(self):
        graph = Graph([0, 1, 2, 2, 3], [1, 0, 2, 3, 2])
        canonical = graph.canonicalized()
        assert canonical.edge_set() == {(0, 1), (2, 3)}

    def test_canonicalized_on_loop_only_graph(self):
        graph = Graph([4], [4])
        assert graph.canonicalized().num_edges == 0

    def test_symmetrized_adds_reciprocal_edges(self):
        graph = Graph([0, 1], [1, 2])
        assert graph.symmetrized().edge_set() == {(0, 1), (1, 0), (1, 2), (2, 1)}

    def test_adjacency_directions(self):
        graph = Graph([0, 1], [1, 2])
        assert graph.adjacency("out")[0] == {1}
        assert graph.adjacency("in")[2] == {1}
        assert graph.adjacency("both")[1] == {0, 2}

    def test_adjacency_rejects_bad_direction(self, triangle_graph):
        with pytest.raises(GraphValidationError):
            triangle_graph.adjacency("sideways")
