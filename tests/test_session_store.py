"""Tests for the persistent on-disk artifact store and resumable sweeps."""

import dataclasses
import json
import os

import numpy as np
import pytest

from repro.analysis.serialization import record_to_dict
from repro.errors import AnalysisError
from repro.partitioning.registry import available_partitioners, make_partitioner
from repro.session import ArtifactStore, Session, StoreInfo
from repro.session.store import STORE_FORMAT_VERSION, as_store

DATASET = "youtube"
SCALE = 0.08
SEED = 4


def _strip_wall(record):
    return dataclasses.replace(record, wall_seconds=0.0)


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "cache")


@pytest.fixture
def session(tmp_path):
    return Session(scale=SCALE, seed=SEED, store=tmp_path / "cache")


def _grid(session, **run_kwargs):
    return (
        session.plan()
        .datasets(DATASET)
        .partitioners("RVC", "2D")
        .granularities(4)
        .algorithms("PR", "SSSP")
        .iterations(2)
        .landmarks(2)
        .run(**run_kwargs)
    )


class TestPlacementRoundTrip:
    @pytest.mark.parametrize("partitioner", available_partitioners())
    def test_every_registry_partitioner_round_trips_byte_identically(
        self, store, small_social_graph, partitioner
    ):
        assignment = make_partitioner(partitioner).assign(small_social_graph, 6)
        key = ArtifactStore.placement_key("small-social", partitioner, 6, 1.0, 0)
        store.save_placement(key, assignment.partition_of, assignment.strategy_name)
        loaded = store.load_placement(key)
        assert loaded is not None
        partition_of, strategy_name = loaded
        assert partition_of.dtype == np.int64
        assert np.array_equal(partition_of, assignment.partition_of)
        assert strategy_name == assignment.strategy_name

    def test_missing_placement_is_a_counted_miss(self, store):
        key = ArtifactStore.placement_key(DATASET, "2D", 4, SCALE, SEED)
        assert store.load_placement(key) is None
        assert store.stats("placements").misses == 1
        assert store.stats("placements").hits == 0

    def test_truncated_placement_degrades_to_a_miss(self, store, small_social_graph):
        assignment = make_partitioner("2D").assign(small_social_graph, 4)
        key = ArtifactStore.placement_key("small-social", "2D", 4, 1.0, 0)
        store.save_placement(key, assignment.partition_of, assignment.strategy_name)
        path = store._path("placements", key, ".npz")
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) // 2)
        assert store.load_placement(key) is None

    def test_garbage_placement_degrades_to_a_miss(self, store):
        key = ArtifactStore.placement_key(DATASET, "2D", 4, SCALE, SEED)
        path = store._path("placements", key, ".npz")
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "wb") as handle:
            handle.write(b"this is not a zip archive")
        assert store.load_placement(key) is None

    def test_key_mismatch_degrades_to_a_miss(self, store, small_social_graph):
        # Simulate a filename/key collision: an artifact saved under one key
        # sitting at another key's path must never be served for it.
        assignment = make_partitioner("2D").assign(small_social_graph, 4)
        saved_key = ArtifactStore.placement_key("small-social", "2D", 4, 1.0, 0)
        store.save_placement(saved_key, assignment.partition_of, assignment.strategy_name)
        other_key = ArtifactStore.placement_key("other-dataset", "2D", 4, 1.0, 0)
        os.replace(
            store._path("placements", saved_key, ".npz"),
            store._path("placements", other_key, ".npz"),
        )
        assert store.load_placement(other_key) is None

    def test_version_bump_invalidates_old_artifacts(self, store, small_social_graph):
        assignment = make_partitioner("2D").assign(small_social_graph, 4)
        key = ArtifactStore.placement_key("small-social", "2D", 4, 1.0, 0)
        store.save_placement(key, assignment.partition_of, assignment.strategy_name)
        bumped = dict(key, version=STORE_FORMAT_VERSION + 1)
        assert store.load_placement(bumped) is None
        assert store.load_placement(key) is not None  # the old version still loads


class TestLandmarkAndRecordRoundTrip:
    def test_landmarks_round_trip(self, store):
        key = ArtifactStore.landmark_key(DATASET, 3, 11, SCALE, SEED)
        store.save_landmarks(key, [5, 9, 42])
        assert store.load_landmarks(key) == [5, 9, 42]

    def test_corrupt_landmarks_degrade_to_a_miss(self, store):
        key = ArtifactStore.landmark_key(DATASET, 3, 11, SCALE, SEED)
        store.save_landmarks(key, [5, 9, 42])
        path = store._path("landmarks", key, ".json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{broken")
        assert store.load_landmarks(key) is None

    def test_records_round_trip_identically(self, store, session):
        results = _grid(session)
        keys = [
            ArtifactStore.record_key(
                DATASET, record.partitioner, 4, record.algorithm, record.backend,
                2, SCALE, SEED,
            )
            for record in results
        ]
        for key, record in zip(keys, results):
            store.save_record(key, record)
        for key, record in zip(keys, results):
            loaded = store.load_record(key)
            assert loaded == record  # full dataclass equality, metrics included
            assert record_to_dict(loaded) == record_to_dict(record)

    def test_foreign_json_record_degrades_to_a_miss(self, store):
        key = ArtifactStore.record_key(DATASET, "2D", 4, "PR", "reference", 2, SCALE, SEED)
        path = store._path("records", key, ".json")
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"unexpected": "payload"}, handle)
        assert store.load_record(key) is None


class TestSessionDiskCache:
    def test_fresh_process_rehydrates_placements_without_building(self, tmp_path):
        first = Session(scale=SCALE, seed=SEED, store=tmp_path / "cache")
        built = first.partitioned(DATASET, "2D", 4)
        assert first.stats.partition_builds == 1
        assert first.stats.disk_partition_misses == 1

        second = Session(scale=SCALE, seed=SEED, store=tmp_path / "cache")
        rehydrated = second.partitioned(DATASET, "2D", 4)
        stats = second.stats
        assert stats.partition_misses == 1  # an L1 miss...
        assert stats.disk_partition_hits == 1  # ...answered by the disk L2
        assert stats.partition_builds == 0  # so nothing was partitioned
        assert np.array_equal(
            rehydrated.assignment.partition_of, built.assignment.partition_of
        )
        assert rehydrated.strategy_name == built.strategy_name
        assert rehydrated.metrics == built.metrics

    def test_landmarks_rehydrate_across_sessions(self, tmp_path):
        first = Session(scale=SCALE, seed=SEED, store=tmp_path / "cache")
        chosen = first.landmarks(DATASET, 3)
        second = Session(scale=SCALE, seed=SEED, store=tmp_path / "cache")
        assert second.landmarks(DATASET, 3) == chosen
        assert second.stats.disk_landmark_hits == 1

    def test_wrong_length_placement_degrades_to_a_rebuild(self, tmp_path):
        session = Session(scale=SCALE, seed=SEED, store=tmp_path / "cache")
        key = ArtifactStore.placement_key(DATASET, "2D", 4, SCALE, SEED)
        # A loadable npz whose array cannot describe this graph.
        session.store.save_placement(key, np.zeros(3, dtype=np.int64), "2D")
        pgraph = session.partitioned(DATASET, "2D", 4)
        assert pgraph.graph.num_edges == len(pgraph.assignment.partition_of)
        assert session.stats.partition_builds == 1  # rebuilt, not crashed
        assert session.stats.disk_partition_misses == 1

    def test_registered_graphs_never_touch_the_store(self, tmp_path, small_social_graph):
        session = Session(scale=SCALE, seed=SEED, store=tmp_path / "cache")
        session.add_graph("custom", small_social_graph)
        session.partitioned("custom", "2D", 4)
        session.landmarks("custom", 2)
        stats = session.stats
        assert stats.disk_hits == 0
        assert stats.disk_misses == 0
        assert session.store.info().total_artifacts == 0

    def test_store_accepts_path_or_instance_and_rejects_others(self, tmp_path):
        assert Session(store=None).store is None
        by_path = Session(store=tmp_path / "cache")
        assert isinstance(by_path.store, ArtifactStore)
        shared = ArtifactStore(tmp_path / "cache")
        assert Session(store=shared).store is shared
        with pytest.raises(AnalysisError):
            as_store(123)

    def test_store_root_must_be_a_directory(self, tmp_path):
        target = tmp_path / "not-a-dir"
        target.write_text("file in the way")
        with pytest.raises(AnalysisError):
            ArtifactStore(target)


class TestResumableSweeps:
    def test_repeated_sweep_runs_nothing(self, tmp_path):
        """Acceptance: a repeated grid over the same store performs zero
        partition builds and zero algorithm re-runs."""
        first = Session(scale=SCALE, seed=SEED, store=tmp_path / "cache")
        results = _grid(first)
        assert first.stats.disk_record_hits == 0

        second = Session(scale=SCALE, seed=SEED, store=tmp_path / "cache")
        repeated = _grid(second)
        stats = second.stats
        assert stats.partition_builds == 0
        assert stats.partition_misses == 0  # no placement was even requested
        assert stats.disk_record_hits == len(results)
        assert stats.disk_record_misses == 0
        # Loaded verbatim: identical including measured wall seconds.
        assert list(repeated) == list(results)

    def test_resume_after_interrupt_reruns_only_missing_cells(self, tmp_path):
        completed = Session(scale=SCALE, seed=SEED, store=tmp_path / "cache")
        results = _grid(completed)
        # Simulate a mid-grid interrupt: drop two completed-cell records.
        record_dir = tmp_path / "cache" / "records"
        record_files = sorted(record_dir.iterdir())
        assert len(record_files) == len(results)
        for path in record_files[:2]:
            path.unlink()

        resumed_session = Session(scale=SCALE, seed=SEED, store=tmp_path / "cache")
        resumed = _grid(resumed_session, resume=True)
        stats = resumed_session.stats
        assert stats.disk_record_hits == len(results) - 2
        assert stats.disk_record_misses == 2  # only the missing cells re-ran
        assert stats.partition_builds == 0  # their placements came from disk
        assert [_strip_wall(r) for r in resumed] == [_strip_wall(r) for r in results]

    def test_resume_false_reexecutes_but_reuses_placements(self, tmp_path):
        first = Session(scale=SCALE, seed=SEED, store=tmp_path / "cache")
        results = _grid(first)
        second = Session(scale=SCALE, seed=SEED, store=tmp_path / "cache")
        rerun = _grid(second, resume=False)
        stats = second.stats
        assert stats.disk_record_hits == 0  # no record reuse requested
        assert stats.partition_builds == 0  # placements still rehydrated
        assert [_strip_wall(r) for r in rerun] == [_strip_wall(r) for r in results]

    def test_resume_requires_a_store(self):
        session = Session(scale=SCALE, seed=SEED)
        with pytest.raises(AnalysisError, match="artifact store"):
            _grid(session, resume=True)

    def test_changed_calibration_misses_stored_records(self, tmp_path):
        from repro.engine.cluster import ClusterConfig

        baseline = Session(scale=SCALE, seed=SEED, store=tmp_path / "cache")
        _grid(baseline)
        tweaked = Session(
            scale=SCALE,
            seed=SEED,
            store=tmp_path / "cache",
            cluster=ClusterConfig(network_gbps=40.0),
        )
        tweaked_results = _grid(tweaked)
        stats = tweaked.stats
        assert stats.disk_record_hits == 0  # different fingerprint: no reuse
        assert stats.disk_record_misses == len(tweaked_results)
        assert stats.partition_builds == 0  # placements are calibration-independent


class TestStoreMaintenance:
    def test_info_counts_artifacts_and_bytes(self, tmp_path):
        session = Session(scale=SCALE, seed=SEED, store=tmp_path / "cache")
        results = _grid(session)
        info = session.store.info()
        assert isinstance(info, StoreInfo)
        assert info.placements == 2  # two partitioners at one granularity
        assert info.landmarks == 1
        assert info.records == len(results)
        assert info.total_artifacts == 2 + 1 + len(results)
        assert info.total_bytes > 0
        assert info.as_dict()["records"] == len(results)

    def test_clear_by_kind_and_fully(self, tmp_path):
        session = Session(scale=SCALE, seed=SEED, store=tmp_path / "cache")
        results = _grid(session)
        store = session.store
        assert store.clear(kind="records") == len(results)
        assert store.info().records == 0
        assert store.info().placements == 2  # other kinds untouched
        assert store.clear() == 3  # two placements + one landmark set
        assert store.info().total_artifacts == 0

    def test_clear_unknown_kind_rejected(self, store):
        with pytest.raises(AnalysisError):
            store.clear(kind="everything")

    def test_clear_sweeps_orphaned_temp_files(self, store):
        # A writer killed between create and rename leaves a .part orphan;
        # it must not count as an artifact, but clear() must reclaim it.
        key = ArtifactStore.landmark_key(DATASET, 2, 7, SCALE, SEED)
        store.save_landmarks(key, [1, 2])
        orphan = os.path.join(store.root, "landmarks", ".tmp-1234-deadbeef.part")
        with open(orphan, "wb") as handle:
            handle.write(b"half-written")
        assert store.info().landmarks == 1  # the orphan is not an artifact
        assert store.clear() == 1
        assert not os.path.exists(orphan)

    def test_info_on_empty_store_directory(self, tmp_path):
        info = ArtifactStore(tmp_path / "never-written").info()
        assert info.total_artifacts == 0
        assert info.total_bytes == 0

    def test_artifacts_carry_umask_mode_not_mkstemp_0600(self, store):
        # Published artifacts must be as readable as a plain open() would
        # have made them (mkstemp's private 0600 would break shared caches).
        import stat

        umask = os.umask(0)
        os.umask(umask)  # reading the umask requires setting it
        key = ArtifactStore.landmark_key(DATASET, 2, 7, SCALE, SEED)
        store.save_landmarks(key, [1, 2])
        path = store._path("landmarks", key, ".json")
        assert stat.S_IMODE(os.stat(path).st_mode) == 0o666 & ~umask
