"""Unit tests for EdgePartition and PartitionedGraph."""

import numpy as np
import pytest

from repro.core.graph import Graph
from repro.engine.edge_partition import EdgePartition
from repro.engine.partitioned_graph import PartitionedGraph
from repro.errors import EngineError
from repro.partitioning.hash_partitioners import EdgePartition2D


class TestEdgePartition:
    def test_vertex_ids_derived_from_edges(self):
        partition = EdgePartition(partition_id=0, src=[0, 1], dst=[1, 2])
        assert partition.num_edges == 2
        assert partition.num_vertices == 3
        assert partition.vertex_ids.tolist() == [0, 1, 2]

    def test_explicit_vertex_ids_respected(self):
        partition = EdgePartition(partition_id=1, src=[0], dst=[1], vertex_ids=[0, 1, 5])
        assert partition.num_vertices == 3

    def test_empty_partition(self):
        partition = EdgePartition(partition_id=3, src=[], dst=[])
        assert partition.num_edges == 0
        assert partition.num_vertices == 0

    def test_edge_pairs_returns_plain_int_sequences(self):
        partition = EdgePartition(partition_id=0, src=[4, 5], dst=[5, 6])
        src, dst = partition.edge_pairs()
        # Cached as immutable tuples so no caller can corrupt the shared view.
        assert list(src) == [4, 5]
        assert list(dst) == [5, 6]
        assert all(isinstance(v, int) for v in (*src, *dst))
        assert partition.edge_pairs() is partition.edge_pairs()


class TestPartitionedGraph:
    def test_partition_by_name_and_by_instance_agree(self, small_social_graph):
        by_name = PartitionedGraph.partition(small_social_graph, "2D", 9)
        by_instance = PartitionedGraph.partition(small_social_graph, EdgePartition2D(), 9)
        assert np.array_equal(by_name.assignment.partition_of, by_instance.assignment.partition_of)

    def test_invalid_strategy_type_rejected(self, small_social_graph):
        with pytest.raises(EngineError):
            PartitionedGraph.partition(small_social_graph, 42, 4)

    def test_partitions_cover_all_edges_exactly_once(self, partitioned_social, small_social_graph):
        total = sum(p.num_edges for p in partitioned_social.partitions)
        assert total == small_social_graph.num_edges
        assert len(partitioned_social.partitions) == partitioned_social.num_partitions

    def test_partition_contents_match_assignment(self, partitioned_social):
        placement = partitioned_social.assignment.partition_of.tolist()
        graph = partitioned_social.graph
        for partition in partitioned_social.partitions:
            expected = [
                (s, d)
                for (s, d), p in zip(graph.edge_pairs(), placement)
                if p == partition.partition_id
            ]
            assert list(zip(*partition.edge_pairs())) == expected or (
                not expected and partition.num_edges == 0
            )

    def test_metrics_and_routing_are_cached(self, partitioned_social):
        assert partitioned_social.metrics is partitioned_social.metrics
        assert partitioned_social.routing is partitioned_social.routing
        assert partitioned_social.partitions is partitioned_social.partitions

    def test_metrics_strategy_name_propagates(self, partitioned_social):
        assert partitioned_social.metrics.strategy == "CRVC"
        assert partitioned_social.strategy_name == "CRVC"

    def test_non_empty_partitions_subset(self, partitioned_social):
        non_empty = partitioned_social.non_empty_partitions()
        assert all(p.num_edges > 0 for p in non_empty)
        assert len(non_empty) <= partitioned_social.num_partitions

    def test_dataset_bytes_positive(self, partitioned_social):
        assert partitioned_social.dataset_bytes == partitioned_social.graph.num_edges * 16

    def test_more_partitions_than_edges_is_allowed(self):
        graph = Graph([0, 1], [1, 2])
        pgraph = PartitionedGraph.partition(graph, "RVC", 16)
        assert sum(p.num_edges for p in pgraph.partitions) == 2
