"""Unit tests for the partitioner registry."""

import pytest

from repro.errors import PartitioningError
from repro.partitioning.base import PartitionStrategy
from repro.partitioning.registry import (
    EXTENSION_PARTITIONER_NAMES,
    PAPER_PARTITIONER_NAMES,
    available_partitioners,
    extension_partitioners,
    make_partitioner,
    paper_partitioners,
)


class TestRegistry:
    def test_paper_order_matches_tables(self):
        assert PAPER_PARTITIONER_NAMES == ["RVC", "1D", "2D", "CRVC", "SC", "DC"]

    def test_every_registered_name_is_constructible(self):
        for name in available_partitioners():
            strategy = make_partitioner(name)
            assert isinstance(strategy, PartitionStrategy)
            assert strategy.name == name

    def test_lookup_is_case_insensitive(self):
        assert make_partitioner("crvc").name == "CRVC"
        assert make_partitioner("dc").name == "DC"

    def test_unknown_name_raises(self):
        with pytest.raises(PartitioningError, match="unknown partitioner"):
            make_partitioner("metis")

    def test_paper_and_extension_sets_are_disjoint(self):
        assert not set(PAPER_PARTITIONER_NAMES) & set(EXTENSION_PARTITIONER_NAMES)

    def test_factories_return_fresh_instances(self):
        assert make_partitioner("RVC") is not make_partitioner("RVC")

    def test_extension_partitioners_list(self):
        names = [s.name for s in extension_partitioners()]
        assert names == EXTENSION_PARTITIONER_NAMES

    def test_paper_partitioners_list(self):
        names = [s.name for s in paper_partitioners()]
        assert names == PAPER_PARTITIONER_NAMES
