"""Unit tests for the Section 3.1 partitioning metrics."""

import numpy as np
import pytest

from repro.core.graph import Graph
from repro.metrics.partition_metrics import (
    METRIC_NAMES,
    compute_metrics,
    master_partition,
)
from repro.partitioning.base import EdgePartitionAssignment
from repro.partitioning.registry import make_partitioner, paper_partitioners


def _manual_assignment(graph, num_partitions, placement):
    return EdgePartitionAssignment(
        graph=graph,
        num_partitions=num_partitions,
        partition_of=np.asarray(placement),
        strategy_name="manual",
    )


class TestManualExamples:
    def test_star_split_across_two_partitions(self):
        # Star 0 -> {1, 2, 3, 4}; first two edges in partition 0, last two in 1.
        graph = Graph([0, 0, 0, 0], [1, 2, 3, 4])
        metrics = compute_metrics(_manual_assignment(graph, 2, [0, 0, 1, 1]))
        assert metrics.non_cut == 4          # the four leaves live in one partition each
        assert metrics.cut == 1              # the hub is replicated
        assert metrics.comm_cost == 2        # two copies of the hub
        assert metrics.total_replicas == 6
        assert metrics.balance == pytest.approx(1.0)
        assert metrics.part_stdev == pytest.approx(0.0)
        assert metrics.replication_factor == pytest.approx(6 / 5)

    def test_all_edges_in_one_partition(self):
        graph = Graph([0, 1, 2], [1, 2, 0])
        metrics = compute_metrics(_manual_assignment(graph, 3, [1, 1, 1]))
        assert metrics.cut == 0
        assert metrics.non_cut == 3
        assert metrics.comm_cost == 0
        assert metrics.balance == pytest.approx(3.0)  # max 3 edges vs mean 1
        assert metrics.max_partition_edges == 3
        assert metrics.largest_edge_fraction == pytest.approx(1.0)

    def test_every_edge_in_its_own_partition(self):
        graph = Graph([0, 1, 2], [1, 2, 0])
        metrics = compute_metrics(_manual_assignment(graph, 3, [0, 1, 2]))
        assert metrics.cut == 3
        assert metrics.non_cut == 0
        assert metrics.comm_cost == 6
        assert metrics.balance == pytest.approx(1.0)

    def test_isolated_vertices_do_not_count(self):
        graph = Graph([0], [1], vertices=[7, 8])
        metrics = compute_metrics(_manual_assignment(graph, 2, [0]))
        assert metrics.non_cut == 2
        assert metrics.cut == 0
        assert metrics.total_replicas == 2


class TestInvariants:
    @pytest.mark.parametrize("partitioner", [s.name for s in paper_partitioners()])
    @pytest.mark.parametrize("num_partitions", [4, 9, 16])
    def test_replica_breakdowns_agree(self, small_social_graph, partitioner, num_partitions):
        strategy = make_partitioner(partitioner)
        metrics = compute_metrics(strategy.assign(small_social_graph, num_partitions))
        # The two breakdowns of the replica count described in Section 3.1.
        assert metrics.comm_cost + metrics.non_cut == metrics.total_replicas
        assert metrics.vertices_to_same + metrics.vertices_to_other == metrics.total_replicas
        # Cut/NonCut partition the placed vertex set.
        placed = metrics.cut + metrics.non_cut
        assert placed <= small_social_graph.num_vertices
        assert metrics.replication_factor >= 1.0
        assert metrics.comm_cost >= 2 * metrics.cut

    def test_single_partition_has_no_cut_vertices(self, small_social_graph):
        metrics = compute_metrics(make_partitioner("RVC").assign(small_social_graph, 1))
        assert metrics.cut == 0
        assert metrics.comm_cost == 0
        assert metrics.balance == pytest.approx(1.0)
        assert metrics.part_stdev == pytest.approx(0.0)

    def test_more_partitions_never_reduce_comm_cost(self, small_social_graph):
        strategy = make_partitioner("CRVC")
        coarse = compute_metrics(strategy.assign(small_social_graph, 8))
        fine = compute_metrics(strategy.assign(small_social_graph, 32))
        assert fine.comm_cost >= coarse.comm_cost

    def test_metric_value_lookup(self, small_social_graph):
        metrics = compute_metrics(make_partitioner("2D").assign(small_social_graph, 9))
        for name in METRIC_NAMES:
            assert metrics.value(name) == pytest.approx(float(getattr(metrics, name)))
        with pytest.raises(KeyError):
            metrics.value("no-such-metric")

    def test_as_row_matches_table_columns(self, small_social_graph):
        metrics = compute_metrics(make_partitioner("1D").assign(small_social_graph, 8))
        row = metrics.as_row()
        assert list(row) == ["partitioner", "balance", "non_cut", "cut", "comm_cost", "part_stdev"]
        assert row["partitioner"] == "1D"


class TestMasterPartition:
    def test_in_range_and_deterministic(self):
        for vertex in range(100):
            master = master_partition(vertex, 16)
            assert 0 <= master < 16
            assert master == master_partition(vertex, 16)

    def test_distribution_roughly_uniform(self):
        counts = np.bincount([master_partition(v, 8) for v in range(4000)], minlength=8)
        assert counts.min() > 0.7 * 4000 / 8
        assert counts.max() < 1.3 * 4000 / 8
