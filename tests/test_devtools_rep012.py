"""REP012 fixtures: __all__ export drift."""

from repro.devtools import check_project_sources


def _rep012(sources):
    return [f for f in check_project_sources(sources) if f.rule == "REP012"]


class TestRep012Positives:
    def test_all_lists_an_undefined_name(self):
        findings = _rep012(
            {"src/repro/mod.py": '__all__ = ["gone"]\n\npresent = 1\n'}
        )
        assert len(findings) == 2  # 'gone' undefined + 'present' unexported
        undefined = [f for f in findings if "gone" in f.message]
        assert len(undefined) == 1
        assert undefined[0].line == 1  # anchored at the __all__ literal

    def test_public_symbol_missing_from_all(self):
        findings = _rep012(
            {
                "src/repro/mod.py": (
                    '__all__ = ["listed"]\n\nlisted = 1\n\n\ndef unlisted():\n    return 2\n'
                )
            }
        )
        assert len(findings) == 1
        assert "unlisted" in findings[0].message
        assert findings[0].line == 6  # anchored at the definition


class TestRep012Negatives:
    def test_exact_all_is_clean(self):
        assert _rep012(
            {
                "src/repro/mod.py": (
                    '__all__ = ["thing", "Widget"]\n\nthing = 1\n\n\nclass Widget:\n    pass\n'
                )
            }
        ) == []

    def test_no_all_declared_is_not_checked(self):
        assert _rep012({"src/repro/mod.py": "anything = 1\n"}) == []

    def test_dynamic_all_is_skipped(self):
        assert _rep012(
            {"src/repro/mod.py": '__all__ = ["a"]\n__all__ += ["b"]\na = 1\n'}
        ) == []

    def test_imported_names_count_as_defined(self):
        assert _rep012(
            {
                "src/repro/mod.py": (
                    'from repro.other import helper\n\n__all__ = ["helper"]\n'
                ),
                "src/repro/other.py": '__all__ = ["helper"]\n\n\ndef helper():\n    return 1\n',
            }
        ) == []

    def test_private_symbols_need_no_export(self):
        assert _rep012(
            {"src/repro/mod.py": '__all__ = ["a"]\na = 1\n_internal = 2\n'}
        ) == []

    def test_tests_are_exempt(self):
        assert _rep012({"tests/test_mod.py": '__all__ = ["gone"]\n'}) == []
