"""Correctness and accounting tests for Triangle Count."""

import networkx as nx
import pytest

from repro.algorithms.triangle_count import total_triangles, triangle_count
from repro.core.graph import Graph
from repro.core.properties import triangle_count as exact_triangle_count
from repro.engine.partitioned_graph import PartitionedGraph


def _nx_triangles(graph):
    nx_graph = nx.Graph()
    nx_graph.add_nodes_from(graph.vertex_ids.tolist())
    nx_graph.add_edges_from(graph.edge_pairs())
    nx_graph.remove_edges_from(nx.selfloop_edges(nx_graph))
    return nx.triangles(nx_graph)


class TestTriangleCountCorrectness:
    def test_single_triangle(self, triangle_graph):
        pgraph = PartitionedGraph.partition(triangle_graph, "RVC", 2)
        result = triangle_count(pgraph)
        assert result.vertex_values == {0: 1, 1: 1, 2: 1}
        assert total_triangles(result) == 1

    def test_per_vertex_counts_match_networkx(self, clique_ring_graph):
        pgraph = PartitionedGraph.partition(clique_ring_graph, "CRVC", 4)
        result = triangle_count(pgraph)
        assert result.vertex_values == _nx_triangles(clique_ring_graph)

    def test_social_graph_total_matches_networkx(self, small_social_graph):
        pgraph = PartitionedGraph.partition(small_social_graph, "2D", 9)
        result = triangle_count(pgraph)
        expected_total = sum(_nx_triangles(small_social_graph).values()) // 3
        assert total_triangles(result) == expected_total

    def test_agrees_with_core_properties(self, small_social_graph):
        pgraph = PartitionedGraph.partition(small_social_graph, "DC", 8)
        result = triangle_count(pgraph)
        assert total_triangles(result) == exact_triangle_count(small_social_graph)

    def test_duplicate_and_reciprocal_edges_counted_once(self):
        # Triangle stored with duplicates and both directions.
        graph = Graph([0, 1, 2, 1, 2, 0, 0], [1, 2, 0, 0, 1, 2, 1])
        pgraph = PartitionedGraph.partition(graph, "RVC", 3)
        assert total_triangles(triangle_count(pgraph)) == 1

    def test_triangle_free_graph(self, small_road_graph):
        pgraph = PartitionedGraph.partition(small_road_graph, "SC", 6)
        expected = exact_triangle_count(small_road_graph)
        assert total_triangles(triangle_count(pgraph)) == expected

    def test_result_is_partitioning_invariant(self, clique_ring_graph):
        totals = {
            strategy: total_triangles(
                triangle_count(PartitionedGraph.partition(clique_ring_graph, strategy, 5))
            )
            for strategy in ("RVC", "1D", "2D", "CRVC", "SC", "DC")
        }
        assert len(set(totals.values())) == 1


class TestTriangleCountAccounting:
    def test_three_phases_recorded(self, partitioned_social):
        result = triangle_count(partitioned_social)
        assert result.num_supersteps == 3
        assert result.algorithm == "TriangleCount"
        assert result.simulated_seconds > 0

    def test_not_dominated_by_per_replica_messages(self, partitioned_social):
        # Unlike the Pregel algorithms, TR's exchanges are per cut vertex
        # and bulk transfers, not per replica: the remote message count must
        # stay far below the CommCost replica count.
        result = triangle_count(partitioned_social)
        metrics = partitioned_social.metrics
        budget = metrics.cut + 4 * partitioned_social.num_partitions
        assert result.report.total_remote_messages <= budget
        assert result.report.total_remote_messages < metrics.comm_cost

    def test_denser_graph_costs_more(self, small_social_graph, small_road_graph):
        social = triangle_count(PartitionedGraph.partition(small_social_graph, "RVC", 8))
        road = triangle_count(PartitionedGraph.partition(small_road_graph, "RVC", 8))
        assert social.simulated_seconds > road.simulated_seconds
