"""Unit tests for the paper's six partitioning strategies.

Each strategy's defining collocation / bounding property from Section 3 of
the paper is asserted explicitly.
"""

import math

import numpy as np
import pytest

from repro.core.graph import Graph
from repro.partitioning.hash_partitioners import (
    CanonicalRandomVertexCut,
    EdgePartition1D,
    EdgePartition2D,
    RandomVertexCut,
)
from repro.partitioning.modulo_partitioners import DestinationCut, SourceCut
from repro.partitioning.registry import paper_partitioners

ALL_STRATEGIES = [
    RandomVertexCut(),
    EdgePartition1D(),
    EdgePartition2D(),
    CanonicalRandomVertexCut(),
    SourceCut(),
    DestinationCut(),
]


@pytest.mark.parametrize("strategy", ALL_STRATEGIES, ids=lambda s: s.name)
class TestCommonStrategyProperties:
    def test_partition_ids_in_range(self, strategy, small_social_graph):
        for num_partitions in (1, 3, 8, 17):
            assignment = strategy.assign(small_social_graph, num_partitions)
            placement = assignment.partition_of
            assert placement.min() >= 0
            assert placement.max() < num_partitions

    def test_deterministic(self, strategy, small_social_graph):
        first = strategy.assign(small_social_graph, 8).partition_of
        second = strategy.assign(small_social_graph, 8).partition_of
        assert np.array_equal(first, second)

    def test_scalar_and_vectorised_paths_agree(self, strategy, small_social_graph):
        assignment = strategy.assign(small_social_graph, 6)
        scalar = [
            strategy.partition_edge(s, d, 6) for s, d in small_social_graph.edge_pairs()
        ]
        assert assignment.partition_of.tolist() == scalar

    def test_single_partition_collapses_everything(self, strategy, triangle_graph):
        assignment = strategy.assign(triangle_graph, 1)
        assert set(assignment.partition_of.tolist()) == {0}


class TestRandomVertexCut:
    def test_parallel_edges_collocated(self):
        strategy = RandomVertexCut()
        assert strategy.partition_edge(3, 9, 16) == strategy.partition_edge(3, 9, 16)

    def test_reverse_edges_usually_separated(self):
        strategy = RandomVertexCut()
        separated = sum(
            strategy.partition_edge(u, v, 64) != strategy.partition_edge(v, u, 64)
            for u, v in [(i, i + 101) for i in range(200)]
        )
        assert separated > 150  # overwhelmingly in different partitions


class TestCanonicalRandomVertexCut:
    def test_both_directions_collocated(self):
        strategy = CanonicalRandomVertexCut()
        for u, v in [(1, 2), (5, 100), (17, 3), (99, 98)]:
            assert strategy.partition_edge(u, v, 32) == strategy.partition_edge(v, u, 32)

    def test_agrees_with_rvc_on_canonical_order(self):
        crvc = CanonicalRandomVertexCut()
        rvc = RandomVertexCut()
        assert crvc.partition_edge(2, 7, 16) == rvc.partition_edge(2, 7, 16)


class TestEdgePartition1D:
    def test_all_out_edges_of_a_vertex_collocated(self, small_social_graph):
        assignment = EdgePartition1D().assign(small_social_graph, 8)
        placements = {}
        for (s, _d), p in zip(small_social_graph.edge_pairs(), assignment.partition_of.tolist()):
            placements.setdefault(s, set()).add(p)
        assert all(len(parts) == 1 for parts in placements.values())

    def test_ignores_destination(self):
        strategy = EdgePartition1D()
        assert strategy.partition_edge(42, 1, 8) == strategy.partition_edge(42, 999, 8)


class TestEdgePartition2D:
    def test_replication_bound_on_perfect_square(self, small_social_graph):
        num_partitions = 16  # perfect square
        strategy = EdgePartition2D()
        assignment = strategy.assign(small_social_graph, num_partitions)
        bound = strategy.max_replication(num_partitions)
        assert bound == 2 * int(math.sqrt(num_partitions)) - 1
        worst = max(len(p) for p in assignment.vertex_partitions().values())
        assert worst <= bound

    def test_grid_side_is_ceiling_of_sqrt(self):
        assert EdgePartition2D._grid_side(16) == 4
        assert EdgePartition2D._grid_side(17) == 5
        assert EdgePartition2D._grid_side(1) == 1

    def test_source_determines_column_destination_row(self):
        strategy = EdgePartition2D()
        # With 16 partitions the grid is 4x4: same (src, dst) hashes map to
        # the same cell regardless of other ids.
        assert strategy.partition_edge(8, 3, 16) == strategy.partition_edge(8, 3, 16)

    def test_non_perfect_square_still_in_range(self, small_social_graph):
        assignment = EdgePartition2D().assign(small_social_graph, 12)
        assert assignment.partition_of.max() < 12


class TestSourceAndDestinationCut:
    def test_source_cut_is_modulo_of_source(self):
        strategy = SourceCut()
        assert strategy.partition_edge(10, 999, 4) == 2
        assert strategy.partition_edge(7, 0, 4) == 3

    def test_destination_cut_is_modulo_of_destination(self):
        strategy = DestinationCut()
        assert strategy.partition_edge(999, 10, 4) == 2
        assert strategy.partition_edge(0, 7, 4) == 3

    def test_sc_and_dc_agree_on_symmetric_graphs(self, small_road_graph):
        sc_metrics = SourceCut().assign(small_road_graph, 8).edges_per_partition()
        dc_metrics = DestinationCut().assign(small_road_graph, 8).edges_per_partition()
        # On a fully reciprocated graph each (u, v) has a twin (v, u), so the
        # per-partition edge counts coincide.
        assert sc_metrics.tolist() == dc_metrics.tolist()

    def test_id_locality_reduces_replication_on_road_networks(self, small_road_graph):
        # With locality-preserving ids, the modulo strategy keeps each
        # vertex's edges in a handful of neighbouring partitions, so the
        # total number of vertex replicas is smaller than under the random
        # vertex cut.
        num_partitions = 6
        sc_replicas = _total_replicas(SourceCut().assign(small_road_graph, num_partitions))
        rvc_replicas = _total_replicas(RandomVertexCut().assign(small_road_graph, num_partitions))
        assert sc_replicas < rvc_replicas


def _total_replicas(assignment) -> int:
    return sum(len(parts) for parts in assignment.vertex_partitions().values())


class TestPaperPartitionerSet:
    def test_six_strategies_in_paper_order(self):
        names = [s.name for s in paper_partitioners()]
        assert names == ["RVC", "1D", "2D", "CRVC", "SC", "DC"]

    def test_strategies_differ_on_a_real_graph(self, small_social_graph):
        placements = {
            s.name: tuple(s.assign(small_social_graph, 8).partition_of.tolist())
            for s in paper_partitioners()
        }
        # SC/DC may coincide with each other only on symmetric graphs; on a
        # directed social graph all six placements should be distinct.
        assert len(set(placements.values())) == 6
