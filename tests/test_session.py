"""Tests for the unified Session / ExperimentPlan / ResultSet API."""

import dataclasses
import json

import pytest

from repro.errors import AnalysisError, BackendError
from repro.session import (
    METRICS_ONLY,
    CacheStats,
    ExperimentPlan,
    PlannedRun,
    ResultSet,
    Session,
)

DATASETS = ["youtube", "pokec"]
SCALE = 0.08
SEED = 4


def _strip_wall(record):
    """Normalise away measured wall-clock time (the only nondeterministic field)."""
    return dataclasses.replace(record, wall_seconds=0.0)


@pytest.fixture
def session():
    return Session(scale=SCALE, seed=SEED)


class TestSessionCaching:
    def test_graph_loads_are_memoized(self, session):
        first = session.graph("youtube")
        second = session.graph("youtube")
        assert first is second
        stats = session.stats
        assert stats.graph_misses == 1
        assert stats.graph_hits == 1

    def test_registered_graphs_bypass_the_catalog(self, small_social_graph):
        session = Session(graphs={"custom": small_social_graph})
        assert session.graph("custom") is small_social_graph
        assert session.stats.graph_misses == 0

    def test_add_graph_rejects_non_graphs(self, session):
        with pytest.raises(AnalysisError):
            session.add_graph("bad", object())

    def test_partition_cache_hit_and_miss_accounting(self, session):
        first = session.partitioned("youtube", "2D", 4)
        second = session.partitioned("youtube", "2D", 4)
        assert first is second
        assert session.stats.partition_misses == 1
        assert session.stats.partition_hits == 1
        session.partitioned("youtube", "2D", 8)  # different granularity: a build
        session.partitioned("youtube", "DC", 4)  # different strategy: a build
        assert session.stats.partition_misses == 3
        assert session.num_cached_partitions == 3

    def test_partition_key_canonicalizes_strategy_names(self, session):
        assert session.partitioned("youtube", "rvc", 4) is session.partitioned(
            "youtube", "RVC", 4
        )
        assert session.stats.partition_misses == 1

    def test_is_partitioned_does_not_touch_stats(self, session):
        assert not session.is_partitioned("youtube", "2D", 4)
        session.partitioned("youtube", "2D", 4)
        assert session.is_partitioned("youtube", "2D", 4)
        assert session.stats.partition_hits == 0

    def test_invalid_partition_count_rejected(self, session):
        with pytest.raises(AnalysisError):
            session.partitioned("youtube", "2D", 0)

    def test_invalid_scale_rejected(self):
        with pytest.raises(AnalysisError):
            Session(scale=0.0)

    def test_landmarks_are_memoized_and_deterministic(self, session):
        first = session.landmarks("youtube", 3)
        second = session.landmarks("youtube", 3)
        assert first is second
        assert len(first) == 3

    def test_landmark_matrix_is_memoized_and_consistent(self, session):
        first = session.landmark_matrix("youtube", "2D", 4, count=3)
        second = session.landmark_matrix("youtube", "2D", 4, count=3)
        assert first is second
        # Built over the same landmark choices the session hands out.
        assert list(first.landmarks) == list(
            session.landmarks("youtube", 3, seed=session.seed + 7)
        )
        # A different seed is a different matrix.
        other = session.landmark_matrix("youtube", "2D", 4, count=3, seed=99)
        assert other is not first

    def test_registering_a_different_graph_evicts_its_placements(
        self, small_social_graph, small_road_graph
    ):
        session = Session()
        session.add_graph("custom", small_social_graph)
        stale = session.partitioned("custom", "2D", 4)
        session.landmarks("custom", 2)
        # Re-registering the same object keeps the cache...
        session.add_graph("custom", small_social_graph)
        assert session.is_partitioned("custom", "2D", 4)
        # ...but a different graph under the same name must not be served
        # stale placements, landmarks or metrics.
        session.add_graph("custom", small_road_graph)
        assert not session.is_partitioned("custom", "2D", 4)
        fresh = session.partitioned("custom", "2D", 4)
        assert fresh is not stale
        assert fresh.graph is small_road_graph
        assert session.landmarks("custom", 2) != []

    def test_adopt_graph_refuses_to_displace_a_different_graph(
        self, small_social_graph, small_road_graph
    ):
        session = Session()
        session.adopt_graph("custom", small_social_graph)
        session.adopt_graph("custom", small_social_graph)  # same object: no-op
        with pytest.raises(AnalysisError, match="different graph"):
            session.adopt_graph("custom", small_road_graph)
        assert session.graph("custom") is small_social_graph

    def test_engine_ready_materializes_derived_structures(self, session):
        plain = session.partitioned("youtube", "2D", 4)
        assert plain._triplets is None  # metrics-only: no engine state built
        ready = session.partitioned("youtube", "2D", 4, engine_ready=True)
        assert ready is plain
        assert ready._triplets is not None
        assert ready._routing is not None
        assert ready._partitions is not None

    def test_clear_drops_cached_placements(self, session):
        session.partitioned("youtube", "2D", 4)
        session.clear()
        assert session.num_cached_partitions == 0
        assert not session.is_partitioned("youtube", "2D", 4)

    def test_stats_snapshot_is_plain_data(self, session):
        session.partitioned("youtube", "2D", 4)
        stats = session.stats
        assert isinstance(stats, CacheStats)
        assert stats.partition_builds == stats.partition_misses == 1
        assert stats.as_dict()["partition_misses"] == 1


class TestExperimentPlan:
    def test_cells_expand_dataset_major_then_granularity(self, session):
        cells = (
            session.plan()
            .datasets(DATASETS)
            .partitioners("RVC", "2D")
            .granularities(4, 8)
            .algorithms("PR")
            .cells()
        )
        assert len(cells) == 2 * 2 * 2
        assert all(isinstance(cell, PlannedRun) for cell in cells)
        assert [(c.dataset, c.num_partitions, c.partitioner) for c in cells[:4]] == [
            ("youtube", 4, "RVC"),
            ("youtube", 4, "2D"),
            ("youtube", 8, "RVC"),
            ("youtube", 8, "2D"),
        ]
        assert cells[0].partition_key == ("youtube", "RVC", 4, SCALE, SEED)

    def test_defaults_cover_paper_grid_metrics_only(self, session):
        cells = session.plan().cells()
        # 9 datasets x 2 granularities x 6 partitioners, no algorithm.
        assert len(cells) == 9 * 2 * 6
        assert all(cell.algorithm is None for cell in cells)

    def test_setters_validate_eagerly(self, session):
        plan = session.plan()
        with pytest.raises(AnalysisError):
            plan.datasets()
        with pytest.raises(AnalysisError):
            plan.granularities(0)
        with pytest.raises(AnalysisError):
            plan.algorithms("BFS")
        with pytest.raises(AnalysisError):
            plan.algorithms([])  # an empty list must not mean metrics-only
        with pytest.raises(BackendError):
            plan.backends("gpu")
        with pytest.raises(AnalysisError):
            plan.iterations(0)
        with pytest.raises(AnalysisError):
            plan.landmarks(0)
        with pytest.raises(AnalysisError):
            plan.run(workers=0)

    def test_algorithm_names_are_canonicalized(self, session):
        plan = session.plan().datasets("youtube").algorithms("pagerank", "cc")
        assert [cell.algorithm for cell in plan.cells()[:2]] == ["PR", "PR"]
        assert {cell.algorithm for cell in plan.cells()} == {"PR", "CC"}

    def test_preview_counts_unique_triples_and_existing_cache(self, session):
        plan = (
            session.plan()
            .datasets("youtube")
            .partitioners("RVC", "2D")
            .granularities(4)
            .algorithms("PR", "CC")
        )
        preview = plan.preview()
        assert preview.num_cells == 4
        assert preview.unique_partitions == 2
        assert preview.partition_builds == 2
        assert preview.expected_cache_hits == 2
        session.partitioned("youtube", "RVC", 4)
        assert plan.preview().partition_builds == 1

    def test_metrics_only_run_records_no_execution(self, session):
        results = (
            session.plan().datasets("youtube").partitioners("RVC").granularities(4).run()
        )
        record = results[0]
        assert record.algorithm == METRICS_ONLY
        assert record.simulated_seconds == 0.0
        assert record.num_supersteps == 0
        assert record.metrics.comm_cost > 0

    def test_full_grid_partitions_each_triple_exactly_once(self, session):
        """Acceptance: a Figure 3-6 style grid builds each placement once."""
        results = (
            session.plan()
            .datasets(DATASETS)
            .partitioners("RVC", "2D")
            .granularities(4, 8)
            .algorithms("PR", "CC", "TR", "SSSP")
            .iterations(2)
            .landmarks(2)
            .run()
        )
        num_cells = 2 * 2 * 2 * 4
        unique_triples = 2 * 2 * 2
        assert len(results) == num_cells
        stats = session.stats
        assert stats.partition_misses == unique_triples
        assert stats.partition_hits == num_cells - unique_triples
        # Re-running the same grid is all cache hits.
        session.plan().datasets(DATASETS).partitioners("RVC", "2D").granularities(
            4, 8
        ).run()
        assert session.stats.partition_misses == unique_triples

    def test_parallel_run_matches_serial_run(self):
        def run(workers):
            session = Session(scale=SCALE, seed=SEED)
            return (
                session.plan()
                .datasets(DATASETS)
                .partitioners("RVC", "2D", "DC")
                .granularities(4, 8)
                .algorithms("PR", "CC")
                .iterations(2)
                .run(workers=workers)
            )

        serial = [_strip_wall(record) for record in run(1)]
        parallel = [_strip_wall(record) for record in run(4)]
        assert serial == parallel  # same records, same order

    def test_run_rejects_non_integer_workers(self, session):
        plan = session.plan().datasets("youtube").partitioners("2D").granularities(4)
        with pytest.raises(AnalysisError, match="integer"):
            plan.run(workers=2.5)
        with pytest.raises(AnalysisError, match="integer"):
            plan.run(workers="4")
        with pytest.raises(AnalysisError, match="integer"):
            plan.run(workers=True)  # bool would silently mean one worker

    def test_run_rejects_unknown_executor(self, session):
        plan = session.plan().datasets("youtube").partitioners("2D").granularities(4)
        with pytest.raises(AnalysisError, match="executor"):
            plan.run(executor="greenlet")

    def test_process_run_matches_serial_run(self):
        def run(**kwargs):
            session = Session(scale=SCALE, seed=SEED)
            return (
                session.plan()
                .datasets(DATASETS)
                .partitioners("RVC", "2D")
                .granularities(4)
                .algorithms("PR", "CC", "SSSP")
                .iterations(2)
                .landmarks(2)
                .run(**kwargs)
            )

        serial = [_strip_wall(record) for record in run()]
        parallel = [_strip_wall(record) for record in run(workers=2, executor="process")]
        assert serial == parallel  # same records, same order

    def test_process_run_shares_placements_through_the_store(self, tmp_path):
        session = Session(scale=SCALE, seed=SEED, store=tmp_path / "cache")
        results = (
            session.plan()
            .datasets("youtube")
            .partitioners("RVC", "2D")
            .granularities(4)
            .algorithms("PR", "CC")
            .iterations(2)
            .run(workers=2, executor="process")
        )
        assert len(results) == 4
        # The parent session absorbed the workers' cache accounting: a cold
        # process run must not read as "0 builds, 0 misses".
        stats = session.stats
        assert stats.partition_misses > 0
        assert stats.partition_builds == stats.disk_partition_misses >= 2
        # The workers persisted their artifacts into the shared store...
        info = session.store.info()
        assert info.placements == 2
        assert info.records == 4
        # ...so a fresh in-process rerun resumes entirely from disk.
        resumed = Session(scale=SCALE, seed=SEED, store=tmp_path / "cache")
        rerun = (
            resumed.plan()
            .datasets("youtube")
            .partitioners("RVC", "2D")
            .granularities(4)
            .algorithms("PR", "CC")
            .iterations(2)
            .run()
        )
        assert resumed.stats.partition_builds == 0
        assert resumed.stats.disk_record_hits == 4
        assert list(rerun) == list(results)

    def test_process_run_rejects_registered_graphs(self, small_social_graph):
        session = Session(scale=SCALE, seed=SEED)
        session.add_graph("custom", small_social_graph)
        plan = (
            session.plan().datasets("custom").partitioners("RVC", "2D").granularities(4)
        )
        with pytest.raises(AnalysisError, match="registered graph"):
            plan.run(workers=2, executor="process")
        # The rejection must not depend on grid size or worker count: a
        # single-cell plan (which executes in-process anyway) still raises.
        single = session.plan().datasets("custom").partitioners("2D").granularities(4)
        with pytest.raises(AnalysisError, match="registered graph"):
            single.run(workers=1, executor="process")

    def test_parallel_run_builds_each_triple_once(self):
        session = Session(scale=SCALE, seed=SEED)
        (
            session.plan()
            .datasets(DATASETS)
            .partitioners("RVC", "2D")
            .granularities(4)
            .algorithms("PR", "CC", "TR")
            .iterations(2)
            .run(workers=8)
        )
        assert session.stats.partition_misses == 2 * 2

    def test_partition_oblivious_backend_executes_once_per_dataset(self, session):
        results = (
            session.plan()
            .datasets("youtube")
            .partitioners("RVC", "2D", "DC")
            .granularities(4)
            .algorithms("PR")
            .backends("vectorized")
            .iterations(2)
            .run()
        )
        assert len(results) == 3
        assert {record.backend for record in results} == {"vectorized"}
        # One shared execution: identical measured wall time on every row.
        assert len({record.wall_seconds for record in results}) == 1

    def test_sssp_uses_plan_landmarks(self, session):
        results = (
            session.plan()
            .datasets("youtube")
            .partitioners("2D")
            .granularities(4)
            .algorithms("SSSP")
            .iterations(3)
            .landmarks(2)
            .run()
        )
        assert results[0].algorithm == "SSSP"
        assert results[0].simulated_seconds > 0


class TestResultSet:
    @pytest.fixture(scope="class")
    def results(self):
        session = Session(scale=SCALE, seed=SEED)
        return (
            session.plan()
            .datasets(DATASETS)
            .partitioners("RVC", "2D")
            .granularities(4, 8)
            .algorithms("PR")
            .iterations(2)
            .run()
        )

    def test_sequence_protocol(self, results):
        assert len(results) == 8
        assert list(results)[0] is results[0]
        assert isinstance(results[:3], ResultSet)
        assert len(results[:3]) == 3

    def test_filter_by_fields_and_predicate(self, results):
        youtube = results.filter(dataset="youtube")
        assert len(youtube) == 4
        assert {record.dataset for record in youtube} == {"youtube"}
        coarse_2d = results.filter(partitioner="2D", num_partitions=4)
        assert len(coarse_2d) == 2
        fast = results.filter(lambda r: r.simulated_seconds > 0, partitioner=("RVC", "2D"))
        assert len(fast) == 8

    def test_filter_accepts_metric_names_and_aliases(self, results):
        assert len(results.filter(partitions=4)) == 4
        positive = results.filter(lambda r: True, comm_cost=results[0].metrics.comm_cost)
        assert all(r.metrics.comm_cost == results[0].metrics.comm_cost for r in positive)

    def test_group_by_preserves_order(self, results):
        grouped = results.group_by("dataset")
        assert list(grouped) == DATASETS
        assert all(isinstance(subset, ResultSet) for subset in grouped.values())
        assert sum(len(subset) for subset in grouped.values()) == len(results)

    def test_best_minimises_the_requested_field(self, results):
        best = results.best()
        assert best.simulated_seconds == min(r.simulated_seconds for r in results)
        lowest_cut = results.best(by="cut")
        assert lowest_cut.metrics.cut == min(r.metrics.cut for r in results)

    def test_best_of_empty_set_rejected(self):
        with pytest.raises(AnalysisError):
            ResultSet().best()

    def test_pivot_builds_two_axis_table(self, results):
        table = results.filter(num_partitions=4).pivot()
        assert set(table) == set(DATASETS)
        assert set(table["youtube"]) == {"RVC", "2D"}
        assert table["youtube"]["2D"] > 0

    def test_pivot_rejects_ambiguous_cells(self, results):
        with pytest.raises(AnalysisError):
            results.pivot()  # two granularities collapse onto one cell

    def test_json_round_trip(self, results):
        restored = ResultSet.from_json(results.to_json())
        assert restored == results
        assert restored[0].backend == "reference"
        assert restored[0].wall_seconds == results[0].wall_seconds

    def test_from_json_rejects_bad_payloads(self):
        with pytest.raises(AnalysisError):
            ResultSet.from_json("{not json")
        with pytest.raises(AnalysisError):
            ResultSet.from_json(json.dumps({"not": "a list"}))

    def test_save_and_load_file_round_trip(self, results, tmp_path):
        path = tmp_path / "grid.json"
        results.save(path)
        assert ResultSet.load(path) == results

    def test_to_rows_matches_record_rows(self, results):
        rows = results.to_rows()
        assert len(rows) == len(results)
        assert rows[0]["dataset"] == results[0].dataset
