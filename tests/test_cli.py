"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_characterize_defaults(self):
        args = build_parser().parse_args(["characterize"])
        assert args.command == "characterize"
        assert args.scale == 0.5

    def test_run_arguments(self):
        args = build_parser().parse_args(
            ["--scale", "0.1", "run", "--algorithm", "CC", "--partitions", "16"]
        )
        assert args.algorithm == "CC"
        assert args.partitions == 16
        assert args.scale == 0.1

    def test_invalid_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--algorithm", "BFS"])

    def test_lowercase_algorithm_accepted(self):
        args = build_parser().parse_args(["run", "--algorithm", "sssp"])
        assert args.algorithm == "SSSP"
        args = build_parser().parse_args(["advise", "--dataset", "orkut", "--algorithm", "tr"])
        assert args.algorithm == "TR"

    def test_lowercase_partitioner_names_accepted(self):
        args = build_parser().parse_args(["metrics", "--partitioners", "rvc", "dC", "HYBRID"])
        assert args.partitioners == ["RVC", "DC", "Hybrid"]
        args = build_parser().parse_args(["run", "--partitioners", "2d", "crvc"])
        assert args.partitioners == ["2D", "CRVC"]

    def test_unknown_partitioner_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["metrics", "--partitioners", "metis"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--partitioners", "rvc", "nope"])

    def test_partitioners_default_to_none(self):
        assert build_parser().parse_args(["metrics"]).partitioners is None
        assert build_parser().parse_args(["run"]).partitioners is None

    def test_empty_partitioners_flag_rejected(self):
        # A bare --partitioners (e.g. from an empty shell variable) must not
        # silently fall back to the full six-strategy study.
        with pytest.raises(SystemExit):
            build_parser().parse_args(["metrics", "--partitioners"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--partitioners"])

    def test_backend_flag(self):
        args = build_parser().parse_args(["run", "--backend", "vectorized"])
        assert args.backend == "vectorized"
        args = build_parser().parse_args(["run"])
        assert args.backend == "reference"
        args = build_parser().parse_args(["advise", "--dataset", "orkut"])
        assert args.backend is None

    def test_invalid_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--backend", "gpu"])

    def test_global_flags_accepted_after_subcommand(self):
        args = build_parser().parse_args(["characterize", "--scale", "0.05"])
        assert args.scale == 0.05
        args = build_parser().parse_args(
            ["run", "--algorithm", "CC", "--scale", "0.1", "--seed", "3"]
        )
        assert args.scale == 0.1
        assert args.seed == 3

    def test_global_flags_after_subcommand_win(self):
        args = build_parser().parse_args(["--scale", "0.1", "metrics", "--scale", "0.2"])
        assert args.scale == 0.2

    def test_global_flag_before_subcommand_survives_subparse(self):
        args = build_parser().parse_args(["--seed", "7", "advise", "--dataset", "orkut"])
        assert args.seed == 7
        assert args.scale == 0.5  # untouched default

    def test_non_positive_partitions_rejected(self):
        for command in ("metrics", "run"):
            with pytest.raises(SystemExit) as excinfo:
                build_parser().parse_args([command, "--partitions", "0"])
            assert excinfo.value.code == 2
        with pytest.raises(SystemExit):
            build_parser().parse_args(["advise", "--dataset", "orkut", "--partitions", "-4"])

    def test_non_positive_iterations_rejected(self):
        # --iterations 0 / negative would silently produce empty or
        # nonsense runs; it must be rejected at parse time like --partitions.
        for args in (
            ["run", "--iterations", "0"],
            ["run", "--iterations", "-3"],
            ["sweep", "--iterations", "0"],
        ):
            with pytest.raises(SystemExit) as excinfo:
                build_parser().parse_args(args)
            assert excinfo.value.code == 2

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.datasets == ["youtube"]
        assert args.partitioner == "Hybrid"
        assert args.port == 8571
        assert args.top_k == 10
        assert args.batch_window_ms == 25
        assert args.max_batch == 256
        assert args.cache_dir is None

    def test_serve_flags(self):
        args = build_parser().parse_args(
            [
                "serve", "--datasets", "youtube", "pokec",
                "--partitioner", "hdrf", "--partitions", "32",
                "--port", "0", "--batch-window-ms", "0",
                "--top-k", "25", "--cache-dir", "/tmp/store",
            ]
        )
        assert args.datasets == ["youtube", "pokec"]
        assert args.partitioner == "HDRF"  # case-insensitive canonicalisation
        assert args.port == 0  # 0 = ephemeral port is allowed
        assert args.batch_window_ms == 0  # 0 = flush every tick is allowed
        assert args.top_k == 25
        assert args.cache_dir == "/tmp/store"

    def test_serve_invalid_flags_rejected(self):
        for flags in (
            ["serve", "--port", "65536"],
            ["serve", "--port", "-1"],
            ["serve", "--port", "http"],
            ["serve", "--top-k", "0"],
            ["serve", "--batch-window-ms", "-5"],
            ["serve", "--batch-window-ms", "fast"],
            ["serve", "--max-batch", "0"],
            ["serve", "--partitions", "0"],
            ["serve", "--landmarks", "0"],
            ["serve", "--iterations", "-1"],
            ["serve", "--partitioner", "metis"],
        ):
            with pytest.raises(SystemExit) as excinfo:
                build_parser().parse_args(flags)
            assert excinfo.value.code == 2

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.command == "sweep"
        assert args.algorithms == ["PR"]
        assert args.partitions == [128, 256]
        assert args.backends == ["reference"]
        assert args.workers == 1
        assert args.dry_run is False
        assert args.executor == "thread"
        assert args.cache_dir is None
        assert args.resume is False

    def test_sweep_cache_and_executor_flags(self):
        args = build_parser().parse_args(
            ["sweep", "--cache-dir", "/tmp/c", "--resume", "--executor", "process"]
        )
        assert args.cache_dir == "/tmp/c"
        assert args.resume is True
        assert args.executor == "process"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--executor", "greenlet"])

    def test_cache_subcommand_parsing(self):
        args = build_parser().parse_args(["cache", "info", "--cache-dir", "/tmp/c"])
        assert args.command == "cache"
        assert args.action == "info"
        assert args.cache_dir == "/tmp/c"
        args = build_parser().parse_args(
            ["cache", "clear", "--cache-dir", "/tmp/c", "--kind", "records"]
        )
        assert args.action == "clear"
        assert args.kind == "records"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache", "info"])  # --cache-dir is required
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache", "prune", "--cache-dir", "/tmp/c"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["cache", "clear", "--cache-dir", "/tmp/c", "--kind", "everything"]
            )

    def test_sweep_grid_arguments(self):
        args = build_parser().parse_args(
            [
                "sweep",
                "--algorithms", "pr", "cc",
                "--partitions", "8", "16",
                "--partitioners", "rvc", "2d",
                "--workers", "4",
                "--dry-run",
            ]
        )
        assert args.algorithms == ["PR", "CC"]
        assert args.partitions == [8, 16]
        assert args.partitioners == ["RVC", "2D"]
        assert args.workers == 4
        assert args.dry_run is True

    def test_sweep_rejects_bad_grid_values(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--algorithms", "BFS"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--partitions", "0"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--workers", "0"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--backends", "gpu"])


class TestCommands:
    def test_characterize_prints_table(self, capsys):
        exit_code = main(["--scale", "0.05", "characterize"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "roadnet-pa" in output
        assert "follow-dec" in output

    def test_characterize_scale_after_subcommand(self, capsys):
        exit_code = main(["characterize", "--scale", "0.05"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "follow-dec" in output

    def test_unknown_dataset_reports_one_line_error(self, capsys):
        exit_code = main(["--scale", "0.05", "run", "--datasets", "nosuch"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "nosuch" in captured.err
        assert "Traceback" not in captured.err
        assert captured.err.count("\n") == 1  # a single line on stderr

    def test_metrics_unknown_dataset_reports_error(self, capsys):
        exit_code = main(["--scale", "0.05", "metrics", "--datasets", "nosuch"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert captured.err.startswith("repro: error:")

    def test_serve_unknown_dataset_reports_one_line_error(self, capsys):
        # The catalog check fires before any graph is loaded or any socket
        # is bound, so a typo fails fast through the one-line error path.
        exit_code = main(["--scale", "0.05", "serve", "--datasets", "nosuch"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert captured.err.startswith("repro: error:")
        assert "nosuch" in captured.err
        assert captured.err.count("\n") == 1

    def test_metrics_prints_partitioners(self, capsys):
        exit_code = main(
            ["--scale", "0.05", "metrics", "--partitions", "8", "--datasets", "youtube"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        for partitioner in ("RVC", "1D", "2D", "CRVC", "SC", "DC"):
            assert partitioner in output

    def test_run_prints_correlations_and_best(self, capsys):
        exit_code = main(
            [
                "--scale", "0.05",
                "run",
                "--algorithm", "PR",
                "--partitions", "8",
                "--datasets", "youtube", "pokec",
                "--iterations", "2",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Correlation of metrics" in output
        assert "Best partitioner per dataset" in output

    def test_metrics_lowercase_partitioners(self, capsys):
        exit_code = main(
            [
                "--scale", "0.05",
                "metrics",
                "--partitions", "8",
                "--datasets", "youtube",
                "--partitioners", "rvc", "dc",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "RVC" in output
        assert "DC" in output
        assert "CRVC" not in output  # only the requested strategies are studied

    def test_run_lowercase_partitioners(self, capsys):
        exit_code = main(
            [
                "--scale", "0.05",
                "run",
                "--algorithm", "PR",
                "--partitions", "4",
                "--datasets", "youtube", "pokec",
                "--partitioners", "rvc", "2d",
                "--iterations", "2",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "2D" in output
        assert "Best partitioner per dataset" in output

    def test_run_lowercase_algorithm(self, capsys):
        exit_code = main(
            [
                "--scale", "0.05",
                "run",
                "--algorithm", "cc",
                "--partitions", "4",
                "--datasets", "youtube",
                "--iterations", "2",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "CC" in output

    def test_run_vectorized_backend(self, capsys):
        exit_code = main(
            [
                "--scale", "0.05",
                "run",
                "--algorithm", "PR",
                "--partitions", "4",
                "--datasets", "youtube", "pokec",
                "--iterations", "2",
                "--backend", "vectorized",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "vectorized" in output
        assert "wall-clock" in output
        assert "Correlation of metrics" not in output

    def test_sweep_dry_run_prints_cells_without_executing(self, capsys):
        exit_code = main(
            [
                "--scale", "0.05",
                "sweep",
                "--dry-run",
                "--datasets", "youtube", "pokec",
                "--partitioners", "2d", "dc",
                "--partitions", "4", "8",
                "--algorithms", "PR", "CC",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Planned 16 cells" in output
        assert "8 partition builds" in output
        assert "8 partition-cache hits" in output
        assert "seconds" not in output  # no results table: nothing executed

    def test_sweep_executes_grid_and_reports_cache(self, capsys):
        exit_code = main(
            [
                "--scale", "0.05",
                "sweep",
                "--datasets", "youtube",
                "--partitioners", "2d", "dc",
                "--partitions", "4",
                "--algorithms", "PR", "CC",
                "--iterations", "2",
                "--workers", "2",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        # 4 cells over 2 unique placements: the cache halves the partitioning.
        assert "Partition cache: 2 builds, 2 hits (4 cells, workers=2, executor=thread)." in output
        assert "Artifact store" not in output  # no --cache-dir: nothing persisted
        assert "Best partitioner per dataset [PR @ 4]" in output
        assert "Best partitioner per dataset [CC @ 4]" in output

    def test_sweep_unknown_dataset_reports_one_line_error(self, capsys):
        exit_code = main(["--scale", "0.05", "sweep", "--datasets", "nosuch"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "nosuch" in captured.err
        assert captured.err.count("\n") == 1

    def test_sweep_dry_run_rejects_unknown_dataset(self, capsys):
        # The dry run must not print a confident plan for a typo'd dataset.
        exit_code = main(["--scale", "0.05", "sweep", "--dry-run", "--datasets", "yuotube"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "yuotube" in captured.err
        assert "Planned" not in captured.out

    def test_sweep_with_cache_dir_resumes_second_invocation(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        argv = [
            "--scale", "0.05",
            "sweep",
            "--datasets", "youtube",
            "--partitioners", "2d", "dc",
            "--partitions", "4",
            "--algorithms", "PR",
            "--iterations", "2",
            "--cache-dir", cache_dir,
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "Partition cache: 2 builds" in cold
        assert "0 disk hits" in cold

        # Second invocation: a fresh process-equivalent (new session) must
        # re-run nothing — every cell resumes from the store.
        assert main(argv + ["--resume"]) == 0
        warm = capsys.readouterr().out
        assert "Partition cache: 0 builds, 0 hits" in warm
        assert "2 disk hits (2 records" in warm
        assert "2 of 2 cells resumed" in warm
        # The resumed table reports the same simulated seconds.
        assert cold.splitlines()[2].split()[:8] == warm.splitlines()[2].split()[:8]

    def test_sweep_resume_without_cache_dir_fails(self, capsys):
        exit_code = main(["--scale", "0.05", "sweep", "--resume", "--datasets", "youtube"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "--cache-dir" in captured.err

    def test_sweep_process_executor_smoke(self, capsys, tmp_path):
        exit_code = main(
            [
                "--scale", "0.05",
                "sweep",
                "--datasets", "youtube",
                "--partitioners", "2d", "dc",
                "--partitions", "4",
                "--algorithms", "PR",
                "--iterations", "2",
                "--workers", "2",
                "--executor", "process",
                "--cache-dir", str(tmp_path / "cache"),
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "executor=process" in output
        assert "Best partitioner per dataset [PR @ 4]" in output

    def test_cache_info_and_clear(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        assert main(
            [
                "--scale", "0.05",
                "sweep",
                "--datasets", "youtube",
                "--partitioners", "2d",
                "--partitions", "4",
                "--algorithms", "PR",
                "--iterations", "2",
                "--cache-dir", cache_dir,
            ]
        ) == 0
        capsys.readouterr()
        assert main(["cache", "info", "--cache-dir", cache_dir]) == 0
        info = capsys.readouterr().out
        assert "placements: 1" in info
        assert "records:    1" in info
        assert main(["cache", "clear", "--cache-dir", cache_dir, "--kind", "records"]) == 0
        assert "Removed 1 artifacts (records)" in capsys.readouterr().out
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "Removed 1 artifacts (all kinds)" in capsys.readouterr().out
        assert main(["cache", "info", "--cache-dir", cache_dir]) == 0
        assert "total:      0 artifacts" in capsys.readouterr().out

    def test_sweep_sssp_matches_run_landmark_setup(self, capsys):
        # `sweep` and `run` must report identical simulated times for the
        # same SSSP cell (both use the paper's 5-landmark configuration).
        common = ["--scale", "0.05", "--seed", "3"]
        assert main(common + [
            "run", "--algorithm", "sssp", "--partitions", "4",
            "--datasets", "youtube", "--partitioners", "2d", "dc",
        ]) == 0
        run_out = capsys.readouterr().out
        assert main(common + [
            "sweep", "--algorithms", "sssp", "--partitions", "4",
            "--datasets", "youtube", "--partitioners", "2d", "dc",
        ]) == 0
        sweep_out = capsys.readouterr().out

        def seconds_of(output):
            lines = output.splitlines()
            header = next(line for line in lines if line.startswith("dataset"))
            column = header.split().index("seconds")
            row = next(line for line in lines if line.startswith("youtube"))
            return row.split()[column]

        assert seconds_of(run_out) == seconds_of(sweep_out)

    def test_advise_heuristic_mode(self, capsys):
        exit_code = main(["--scale", "0.05", "advise", "--dataset", "orkut", "--algorithm", "PR"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "[PR]" in output

    def test_advise_empirical_mode(self, capsys):
        exit_code = main(
            [
                "--scale", "0.05",
                "advise",
                "--dataset", "roadnet-pa",
                "--algorithm", "TR",
                "--partitions", "8",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "cut" in output

    def test_advise_with_backend_runs_recommendation(self, capsys):
        exit_code = main(
            [
                "--scale", "0.05",
                "advise",
                "--dataset", "youtube",
                "--algorithm", "pr",
                "--partitions", "4",
                "--backend", "vectorized",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "[PR]" in output
        assert "backend 'vectorized'" in output
        assert "at 4 partitions" in output
        assert "(default)" not in output
        assert "wall-clock" in output

    def test_advise_backend_without_partitions_states_default(self, capsys):
        # Without --partitions the backend run must say which partition
        # count it fell back to instead of silently using 16.
        exit_code = main(
            [
                "--scale", "0.05",
                "advise",
                "--dataset", "youtube",
                "--algorithm", "pr",
                "--backend", "vectorized",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "at 16 partitions (default)" in output


class TestIngestAndOutOfCore:
    def test_ingest_parser_defaults(self):
        args = build_parser().parse_args(["ingest", "--cache-dir", "store"])
        assert args.command == "ingest"
        assert args.partitioner == "Greedy"
        assert args.partitions == 128
        assert args.edge_list is None and not args.synthetic

    def test_cache_kind_accepts_shards(self):
        args = build_parser().parse_args(
            ["cache", "clear", "--cache-dir", "d", "--kind", "shards"]
        )
        assert args.kind == "shards"

    def test_ingest_then_warm_out_of_core_run(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        base = ["--scale", "0.05", "--seed", "3"]
        exit_code = main(
            base
            + [
                "ingest",
                "--dataset", "youtube",
                "--partitioner", "Greedy",
                "--partitions", "4",
                "--cache-dir", store,
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "built shard" in output

        run = base + [
            "run",
            "--algorithm", "PR",
            "--out-of-core",
            "--datasets", "youtube",
            "--partitioners", "Greedy",
            "--partitions", "4",
            "--iterations", "2",
            "--cache-dir", store,
        ]
        assert main(run) == 0
        warm = capsys.readouterr().out
        assert "Shard store: 1 disk hits, 0 misses, 0 shard builds." in warm

    def test_ingest_edge_list_file(self, tmp_path, capsys):
        path = tmp_path / "edges.txt"
        path.write_text("# header\n0 1\n1 2\n2 0\n")
        exit_code = main(
            [
                "ingest",
                str(path),
                "--dataset", "tiny",
                "--partitions", "2",
                "--cache-dir", str(tmp_path / "store"),
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Ingested 'tiny'" in output
        assert "3 edges" in output

    def test_ingest_synthetic_requires_sizes(self, capsys):
        exit_code = main(["ingest", "--synthetic", "--cache-dir", "unused"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "--vertices" in captured.err

    def test_out_of_core_requires_cache_dir(self, capsys):
        exit_code = main(["run", "--out-of-core"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "--cache-dir" in captured.err

    def test_out_of_core_rejects_triangle_counting(self, capsys):
        exit_code = main(["run", "--algorithm", "TR", "--out-of-core", "--cache-dir", "d"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "PR, CC or SSSP" in captured.err

    def test_chunk_edges_without_out_of_core_is_an_error(self, capsys):
        exit_code = main(["run", "--chunk-edges", "64"])
        assert exit_code == 2
        assert "--out-of-core" in capsys.readouterr().err

    def test_cache_info_reports_shards(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        main(
            [
                "ingest",
                "--synthetic",
                "--vertices", "50",
                "--edges", "200",
                "--partitions", "2",
                "--cache-dir", store,
            ]
        )
        capsys.readouterr()
        assert main(["cache", "info", "--cache-dir", store]) == 0
        assert "shards:     1" in capsys.readouterr().out
