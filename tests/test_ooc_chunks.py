"""Chunk sources: parsing identity, chunk-size invariance, generators."""

import numpy as np
import pytest

from repro.core.io import read_edge_list, write_edge_list
from repro.errors import GraphIOError
from repro.ooc import (
    EdgeListChunkSource,
    GraphChunkSource,
    SyntheticChunkSource,
    materialize,
)


def _collect(source):
    """Concatenate a chunk stream into (src, dst) arrays."""
    chunks = list(source.chunks())
    if not chunks:
        return np.array([], dtype=np.int64), np.array([], dtype=np.int64)
    return (
        np.concatenate([s for s, _ in chunks]),
        np.concatenate([d for _, d in chunks]),
    )


class TestEdgeListChunkSource:
    def test_matches_read_edge_list_on_round_trip(self, tmp_path, small_social_graph):
        path = tmp_path / "graph.txt"
        write_edge_list(small_social_graph, path)
        graph = read_edge_list(path)
        src, dst = _collect(EdgeListChunkSource(path, chunk_edges=37))
        np.testing.assert_array_equal(src, graph.src)
        np.testing.assert_array_equal(dst, graph.dst)

    def test_chunk_size_invariance(self, tmp_path, small_social_graph):
        path = tmp_path / "graph.txt"
        write_edge_list(small_social_graph, path)
        baseline = _collect(EdgeListChunkSource(path, chunk_edges=10_000))
        for chunk_edges in (1, 7, 64, 701):
            src, dst = _collect(EdgeListChunkSource(path, chunk_edges=chunk_edges))
            np.testing.assert_array_equal(src, baseline[0])
            np.testing.assert_array_equal(dst, baseline[1])

    def test_chunks_are_bounded(self, tmp_path, small_social_graph):
        path = tmp_path / "graph.txt"
        write_edge_list(small_social_graph, path)
        for src, dst in EdgeListChunkSource(path, chunk_edges=50).chunks():
            assert len(src) == len(dst) <= 50

    def test_num_edges_counts_data_lines(self, tmp_path):
        path = tmp_path / "snap.txt"
        path.write_text("# header\n\n% note\n0\t1\n1\t2\n2\t0\n")
        source = EdgeListChunkSource(path)
        assert source.num_edges == 3
        # Known (cached) after a full pass too.
        _collect(source)
        assert source.num_edges == 3

    def test_missing_column_message_matches_seed_reader(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1\n7\n")
        expected = f"{path}:2: expected at least two fields, got '7'"
        with pytest.raises(GraphIOError, match="expected at least two fields") as info:
            _collect(EdgeListChunkSource(path))
        assert str(info.value) == expected
        # read_edge_list is built on this source: identical diagnostics.
        with pytest.raises(GraphIOError) as seed_info:
            read_edge_list(path)
        assert str(seed_info.value) == expected

    def test_non_integer_message_matches_seed_reader(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1\n1 2\na b\n")
        expected = f"{path}:3: non-integer vertex id in 'a b'"
        with pytest.raises(GraphIOError) as info:
            _collect(EdgeListChunkSource(path, chunk_edges=2))
        assert str(info.value) == expected
        with pytest.raises(GraphIOError) as seed_info:
            read_edge_list(path)
        assert str(seed_info.value) == expected

    def test_python_int_forms_numpy_rejects_are_accepted(self, tmp_path):
        # int("1_0") == 10 but numpy's bulk parser rejects it; the
        # fallback keeps the chunked reader value-identical to the seed.
        path = tmp_path / "odd.txt"
        path.write_text("1_0 2\n+3 4\n")
        src, dst = _collect(EdgeListChunkSource(path))
        np.testing.assert_array_equal(src, [10, 3])
        np.testing.assert_array_equal(dst, [2, 4])

    def test_missing_file_raises_graph_io_error(self, tmp_path):
        with pytest.raises(GraphIOError, match="cannot read edge list"):
            _collect(EdgeListChunkSource(tmp_path / "nope.txt"))

    def test_materialize_round_trip(self, tmp_path):
        path = tmp_path / "snap.txt"
        path.write_text("0 1\n1 2\n1 2\n2 2\n")
        graph = materialize(EdgeListChunkSource(path, chunk_edges=2), name="snap")
        assert graph.name == "snap"
        assert list(zip(graph.src, graph.dst)) == [(0, 1), (1, 2), (1, 2), (2, 2)]


class TestSyntheticChunkSource:
    def test_deterministic_for_a_seed(self):
        a = _collect(SyntheticChunkSource(100, 500, seed=3))
        b = _collect(SyntheticChunkSource(100, 500, seed=3))
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])
        c = _collect(SyntheticChunkSource(100, 500, seed=4))
        assert not np.array_equal(a[0], c[0])

    def test_chunk_size_invariance(self):
        baseline = _collect(SyntheticChunkSource(64, 333, seed=9, chunk_edges=1000))
        for chunk_edges in (1, 13, 100):
            src, dst = _collect(
                SyntheticChunkSource(64, 333, seed=9, chunk_edges=chunk_edges)
            )
            np.testing.assert_array_equal(src, baseline[0])
            np.testing.assert_array_equal(dst, baseline[1])

    def test_vertex_ids_stay_in_range(self):
        src, dst = _collect(SyntheticChunkSource(50, 2000, seed=1, skew=3.0))
        assert len(src) == 2000
        for column in (src, dst):
            assert column.min() >= 0
            assert column.max() < 50

    def test_skew_concentrates_on_low_ids(self):
        skewed, _ = _collect(SyntheticChunkSource(1000, 5000, seed=2, skew=4.0))
        uniform, _ = _collect(SyntheticChunkSource(1000, 5000, seed=2, skew=1.0))
        assert np.median(skewed) < np.median(uniform)

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            SyntheticChunkSource(0, 10, seed=0)
        with pytest.raises(ValueError):
            SyntheticChunkSource(10, -1, seed=0)
        with pytest.raises(ValueError):
            SyntheticChunkSource(10, 10, seed=0, skew=0.0)


class TestGraphChunkSource:
    def test_streams_the_exact_edge_arrays(self, small_social_graph):
        source = GraphChunkSource(small_social_graph, chunk_edges=41)
        src, dst = _collect(source)
        np.testing.assert_array_equal(src, small_social_graph.src)
        np.testing.assert_array_equal(dst, small_social_graph.dst)
        assert source.num_edges == small_social_graph.num_edges
        assert source.name == small_social_graph.name

    def test_carries_the_full_vertex_id_set(self):
        from repro.core.graph import Graph

        # Vertex 99 is isolated: invisible to the edge stream alone.
        graph = Graph([0, 1], [1, 0], vertices=[0, 1, 99], name="iso")
        source = GraphChunkSource(graph)
        np.testing.assert_array_equal(source.vertex_ids, graph.vertex_ids)
        assert 99 in set(int(v) for v in source.vertex_ids)
