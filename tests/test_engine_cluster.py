"""Unit tests for the simulated cluster configuration."""

import pytest

from repro.engine.cluster import STORAGE_BANDWIDTH_BYTES, ClusterConfig, paper_cluster
from repro.errors import EngineError


class TestClusterConfig:
    def test_paper_cluster_matches_evaluation_setup(self):
        cluster = paper_cluster()
        assert cluster.num_executors == 4
        assert cluster.cores_per_executor == 32
        assert cluster.total_cores == 128
        assert cluster.network_gbps == 1.0
        assert cluster.storage == "hdd"

    def test_network_bandwidth_conversion(self):
        assert paper_cluster(network_gbps=1.0).network_bytes_per_second == pytest.approx(1.25e8)
        assert paper_cluster(network_gbps=40.0).network_bytes_per_second == pytest.approx(5e9)

    def test_storage_bandwidth_lookup(self):
        assert paper_cluster(storage="hdd").storage_bytes_per_second == STORAGE_BANDWIDTH_BYTES["hdd"]
        assert paper_cluster(storage="ssd").storage_bytes_per_second == STORAGE_BANDWIDTH_BYTES["ssd"]

    def test_partition_to_executor_round_robin(self):
        cluster = ClusterConfig(num_executors=4, cores_per_executor=2)
        assert [cluster.executor_of_partition(p) for p in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_with_network_and_storage_return_copies(self):
        base = paper_cluster()
        fast = base.with_network(40.0)
        ssd = base.with_storage("ssd")
        assert base.network_gbps == 1.0
        assert fast.network_gbps == 40.0
        assert base.storage == "hdd"
        assert ssd.storage == "ssd"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_executors": 0},
            {"cores_per_executor": 0},
            {"network_gbps": 0.0},
            {"network_gbps": -1.0},
            {"storage": "tape"},
        ],
    )
    def test_invalid_configurations_rejected(self, kwargs):
        with pytest.raises(EngineError):
            ClusterConfig(**kwargs)
