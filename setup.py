"""Setuptools shim so editable installs work without the ``wheel`` package.

All project metadata lives in ``setup.cfg``; this file only enables
``pip install -e .`` / ``python setup.py develop`` on offline environments
that lack ``bdist_wheel`` support.
"""

from setuptools import setup

setup()
