"""E-extra — Pregel supersteps: scalar per-edge loop vs array-native path.

Times the reference simulator's Pregel algorithms (PR, CC, SSSP — the
``aggregate_messages`` degree kernel rides along) under the scalar
superstep loop and under the ``ArrayMessageKernel`` path, and reports the
speedups as a JSON document in the style of ``bench_backends.py``.  Every
timed pair is also checked for *identical* results: bit-identical vertex
values and identical ``SuperstepRecord`` counters — a speedup only counts
if the array path is indistinguishable from the scalar semantics.

The acceptance bar is a >= 8x speedup for PageRank on the largest catalog
dataset (follow-dec) at the paper's 128-partition granularity.

Unlike the pytest-benchmark modules next to it, this harness is a plain
script so CI can exercise it cheaply::

    PYTHONPATH=src python benchmarks/bench_pregel_vectorized.py --quick

``--quick`` shrinks the sweep to one small dataset at a small granularity
and only requires the array path to win (>= 1x), keeping the harness —
and the equivalence checks inside it — from silently rotting.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from repro.algorithms.connected_components import connected_components
from repro.algorithms.degrees import degree_count
from repro.algorithms.pagerank import pagerank
from repro.algorithms.shortest_paths import choose_landmarks, shortest_paths
from repro.datasets.catalog import load_dataset
from repro.engine.partitioned_graph import PartitionedGraph

#: Partitioner used for every run; the superstep cost, not the placement
#: quality, is what this benchmark measures.
PARTITIONER = "2D"

#: The acceptance bar for PageRank on the largest dataset (full mode).
PAGERANK_BAR = 8.0


def _algorithm_runners(pgraph, iterations, seed):
    landmarks = choose_landmarks(pgraph, count=3, seed=seed + 7)
    return {
        "PR": lambda v: pagerank(pgraph, num_iterations=iterations, vectorized=v),
        "CC": lambda v: connected_components(pgraph, max_iterations=iterations, vectorized=v),
        "SSSP": lambda v: shortest_paths(pgraph, landmarks, vectorized=v),
        "DEG": lambda v: degree_count(pgraph, direction="both", vectorized=v),
    }


def _identical(scalar, array) -> bool:
    return (
        scalar.vertex_values == array.vertex_values
        and scalar.report.supersteps == array.report.supersteps
    )


def run_sweep(datasets, num_partitions, scale, seed, iterations):
    """Time every algorithm on every dataset under both superstep paths."""
    report = {
        "benchmark": "pregel_vectorized",
        "partitioner": PARTITIONER,
        "num_partitions": num_partitions,
        "scale": scale,
        "datasets": {},
        "results": [],
    }
    for name in datasets:
        graph = load_dataset(name, scale=scale, seed=seed)
        report["datasets"][name] = {
            "vertices": graph.num_vertices,
            "edges": graph.num_edges,
        }
        pgraph = PartitionedGraph.partition(graph, PARTITIONER, num_partitions)
        pgraph.triplets()  # shared by both paths; build outside the timings
        for algorithm, run in _algorithm_runners(pgraph, iterations, seed).items():
            started = time.perf_counter()
            scalar = run(False)
            scalar_seconds = time.perf_counter() - started
            started = time.perf_counter()
            array = run(True)
            array_seconds = time.perf_counter() - started
            assert _identical(scalar, array), (
                f"array path diverged from the scalar loop for {algorithm} on {name}"
            )
            speedup = (
                scalar_seconds / array_seconds if array_seconds > 0 else float("inf")
            )
            report["results"].append(
                {
                    "dataset": name,
                    "algorithm": algorithm,
                    "scalar_seconds": round(scalar_seconds, 6),
                    "array_seconds": round(array_seconds, 6),
                    "speedup": round(speedup, 1),
                }
            )
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Scalar vs array-native Pregel superstep benchmark"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small sweep for CI: one dataset, 16 partitions, bar is 'array wins'",
    )
    parser.add_argument("--scale", type=float, default=None, help="dataset scale factor")
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument("--partitions", type=int, default=None)
    parser.add_argument("--iterations", type=int, default=10)
    parser.add_argument(
        "--json-out", default=None, help="also write the report document to this file"
    )
    args = parser.parse_args(argv)

    if args.quick:
        datasets = ["youtube"]
        num_partitions = args.partitions or 16
        scale = args.scale if args.scale is not None else 0.2
        bar_algorithm, bar_dataset, bar = "PR", "youtube", 1.0
    else:
        datasets = ["youtube", "pokec", "orkut", "follow-jul", "follow-dec"]
        num_partitions = args.partitions or 128
        scale = args.scale if args.scale is not None else 0.35
        bar_algorithm, bar_dataset, bar = "PR", "follow-dec", PAGERANK_BAR

    report = run_sweep(datasets, num_partitions, scale, args.seed, args.iterations)
    print(json.dumps(report, indent=2))
    if args.json_out:
        with open(args.json_out, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")

    bar_row = next(
        row
        for row in report["results"]
        if row["dataset"] == bar_dataset and row["algorithm"] == bar_algorithm
    )
    print(
        f"\n{bar_dataset!r} {bar_algorithm} at {num_partitions} partitions: "
        f"{bar_row['speedup']:.1f}x (acceptance bar: {bar:.0f}x)"
    )
    if bar_row["speedup"] < bar:
        print("FAILED: array superstep path below the acceptance bar", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
