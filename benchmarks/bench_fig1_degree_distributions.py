"""E2 — Figure 1: in-degree and out-degree distributions of every dataset.

The paper plots the degree histograms on log-log axes; this benchmark
prints, per dataset, a compact summary of the same distribution (max and
mean degree, plus the counts at a few fixed degree values) and checks the
fat-tail property the figure illustrates.
"""

from __future__ import annotations

from repro.core.properties import degree_histogram
from repro.metrics.report import format_table

from bench_utils import print_header


def _distribution_row(name, graph, direction):
    histogram = degree_histogram(graph, direction=direction)
    total_vertices = sum(histogram.values())
    total_degree = sum(degree * count for degree, count in histogram.items())
    max_degree = max(histogram)
    mean_degree = total_degree / total_vertices if total_vertices else 0.0
    return {
        "dataset": name,
        "direction": direction,
        "max_deg": max_degree,
        "mean_deg": round(mean_degree, 2),
        "deg<=1": sum(c for d, c in histogram.items() if d <= 1),
        "deg>=10": sum(c for d, c in histogram.items() if d >= 10),
        "deg>=50": sum(c for d, c in histogram.items() if d >= 50),
    }


def test_fig1_degree_distributions(benchmark, all_graphs, bench_scale):
    """Reproduce the Figure 1 degree-distribution data for every dataset."""

    def build():
        rows = []
        for name, graph in all_graphs.items():
            rows.append(_distribution_row(name, graph, "in"))
            rows.append(_distribution_row(name, graph, "out"))
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)

    print_header(f"Figure 1 — degree distributions (scale={bench_scale})")
    print(format_table(rows))

    by_key = {(row["dataset"], row["direction"]): row for row in rows}
    # Social graphs have fat-tailed distributions: the maximum degree is far
    # above the mean.  Road networks are nearly regular.
    for social in ("youtube", "orkut", "pokec", "follow-jul", "follow-dec"):
        row = by_key[(social, "in")]
        assert row["max_deg"] > 8 * row["mean_deg"], social
    for road in ("roadnet-pa", "roadnet-tx", "roadnet-ca"):
        row = by_key[(road, "in")]
        assert row["max_deg"] <= 3 * row["mean_deg"], road
    # The follow crawls have large numbers of leaf vertices (degree <= 1).
    assert by_key[("follow-dec", "in")]["deg<=1"] > 0.3 * sum(
        1 for _ in all_graphs["follow-dec"].vertex_ids
    )
