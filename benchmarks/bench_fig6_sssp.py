"""E9 — Figure 6: SSSP execution time vs Communication Cost.

As in the paper, the road networks are excluded (the original evaluation
ran out of memory on them) and every measurement is the average over five
randomly chosen landmark vertices, which makes SSSP the noisiest of the
four algorithms.
"""

from __future__ import annotations

from repro.algorithms.shortest_paths import choose_landmarks, shortest_paths
from repro.analysis.results import RunRecord
from repro.partitioning.registry import PAPER_PARTITIONER_NAMES

from bench_utils import print_figure_summary
from conftest import CONFIG_I_PARTITIONS, CONFIG_II_PARTITIONS

#: Number of landmark vertices averaged per measurement (the paper uses 5).
NUM_SOURCES = 5


def _run(num_partitions, social_graphs, bench_session, bench_seed):
    records = []
    for dataset, graph in social_graphs.items():
        landmarks = choose_landmarks(graph, count=NUM_SOURCES, seed=bench_seed + 13)
        for partitioner in PAPER_PARTITIONER_NAMES:
            # Resolved through the shared session cache: figures 3-5
            # already built these placements for the social datasets.
            pgraph = bench_session.partitioned(dataset, partitioner, num_partitions)
            total_seconds = 0.0
            total_supersteps = 0
            for landmark in landmarks:
                result = shortest_paths(pgraph, landmarks=[landmark])
                total_seconds += result.simulated_seconds
                total_supersteps += result.num_supersteps
            records.append(
                RunRecord(
                    dataset=dataset,
                    partitioner=partitioner,
                    num_partitions=num_partitions,
                    algorithm="SSSP",
                    metrics=pgraph.metrics,
                    simulated_seconds=total_seconds / len(landmarks),
                    num_supersteps=total_supersteps // len(landmarks),
                )
            )
    return records


def test_fig6_sssp_config_i(benchmark, social_graphs, bench_session, bench_scale, bench_seed):
    """Figure 6, configuration (i): social datasets only, 5-source average."""
    records = benchmark.pedantic(
        _run,
        args=(CONFIG_I_PARTITIONS, social_graphs, bench_session, bench_seed),
        rounds=1,
        iterations=1,
    )
    correlations = print_figure_summary(
        f"Figure 6 (config i, {CONFIG_I_PARTITIONS} partitions) — SSSP time vs CommCost "
        f"(average of {NUM_SOURCES} sources)",
        records,
        metric="comm_cost",
    )
    assert correlations["comm_cost"] > 0.6
    assert correlations["comm_cost"] > correlations["balance"]


def test_fig6_sssp_config_ii(benchmark, social_graphs, bench_session, bench_scale, bench_seed):
    """Figure 6, configuration (ii)."""
    records = benchmark.pedantic(
        _run,
        args=(CONFIG_II_PARTITIONS, social_graphs, bench_session, bench_seed),
        rounds=1,
        iterations=1,
    )
    correlations = print_figure_summary(
        f"Figure 6 (config ii, {CONFIG_II_PARTITIONS} partitions) — SSSP time vs CommCost "
        f"(average of {NUM_SOURCES} sources)",
        records,
        metric="comm_cost",
    )
    assert correlations["comm_cost"] > 0.6
