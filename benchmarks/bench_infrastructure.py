"""E10 — Section 4 infrastructure study (configurations ii / iii / iv).

The paper upgrades the network from 1 Gbps to 40 Gbps (configuration iii)
and then moves shuffle storage from HDFS-on-HDD to local SSDs
(configuration iv), measuring PageRank on the largest dataset (follow-dec)
at 256 partitions.  It reports 15% and 20% average time reductions, and
concludes that a good partitioner matters *more* on better infrastructure.
"""

from __future__ import annotations

from repro.analysis.experiments import run_infrastructure_study
from repro.engine.cluster import paper_cluster
from repro.engine.partitioned_graph import PartitionedGraph
from repro.algorithms.pagerank import pagerank

from bench_utils import print_header
from conftest import CONFIG_II_PARTITIONS


def test_infrastructure_network_and_storage(benchmark, all_graphs, bench_scale):
    """Reproduce the configuration (ii)/(iii)/(iv) comparison for PageRank on follow-dec."""

    def run():
        return run_infrastructure_study(
            dataset="follow-dec",
            partitioner="2D",
            num_partitions=CONFIG_II_PARTITIONS,
            algorithm="PR",
            num_iterations=10,
            graph=all_graphs["follow-dec"],
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header(f"Section 4 — infrastructure study (follow-dec, scale={bench_scale})")
    baseline = results[0]
    for result in results:
        print(
            f"  {result.label:30s} {result.simulated_seconds:8.4f}s  "
            f"({result.speedup_vs(baseline) * 100:5.1f}% faster than config ii)"
        )

    config_ii, config_iii, config_iv = results
    assert config_iii.simulated_seconds < config_ii.simulated_seconds
    assert config_iv.simulated_seconds < config_iii.simulated_seconds
    assert config_iii.speedup_vs(config_ii) > 0.05
    assert config_iv.speedup_vs(config_ii) > config_iii.speedup_vs(config_ii)
    assert config_iv.speedup_vs(config_ii) < 0.6


def test_infrastructure_partitioner_gap_grows(benchmark, all_graphs):
    """On faster infrastructure the relative gap between partitioners grows.

    This is the paper's closing observation: "selecting a good partitioner
    has a bigger impact on performance for better infrastructure".
    """

    def gaps():
        graph = all_graphs["follow-dec"]
        result = {}
        for label, cluster in (
            ("1gbps-hdd", paper_cluster(network_gbps=1.0, storage="hdd")),
            ("40gbps-ssd", paper_cluster(network_gbps=40.0, storage="ssd")),
        ):
            best = PartitionedGraph.partition(graph, "2D", CONFIG_II_PARTITIONS)
            worst = PartitionedGraph.partition(graph, "RVC", CONFIG_II_PARTITIONS)
            best_time = pagerank(best, num_iterations=10, cluster=cluster).simulated_seconds
            worst_time = pagerank(worst, num_iterations=10, cluster=cluster).simulated_seconds
            result[label] = (worst_time - best_time) / worst_time
        return result

    values = benchmark.pedantic(gaps, rounds=1, iterations=1)
    print("\nRelative gap between best (2D) and worst (RVC) partitioner:")
    for label, gap in values.items():
        print(f"  {label:12s}: {gap * 100:5.1f}%")
    assert values["40gbps-ssd"] > 0.0
    assert values["1gbps-hdd"] > 0.0
