"""E5 — Table 3: partitioning metrics at 256 partitions, compared with Table 2."""

from __future__ import annotations

from repro.analysis.experiments import run_partitioning_study
from repro.metrics.report import format_metrics_table

from bench_utils import print_header
from conftest import CONFIG_I_PARTITIONS, CONFIG_II_PARTITIONS


def test_table3_partitioning_metrics_256(benchmark, all_graphs, dataset_names, bench_scale):
    """Reproduce Table 3 (configuration ii, 256 partitions) and the Table 2 -> 3 movement."""

    def build():
        return run_partitioning_study(
            num_partitions=CONFIG_II_PARTITIONS,
            datasets=dataset_names,
            graphs=all_graphs,
        )

    fine = benchmark.pedantic(build, rounds=1, iterations=1)
    coarse = run_partitioning_study(
        num_partitions=CONFIG_I_PARTITIONS, datasets=dataset_names, graphs=all_graphs
    )

    print_header(
        f"Table 3 — partitioning metrics, {CONFIG_II_PARTITIONS} partitions (scale={bench_scale})"
    )
    print(format_metrics_table(fine))

    # The appendix's observation: doubling the partition count increases
    # communication cost, but by significantly less than 2x, and raises the
    # balance factor.
    for dataset in fine:
        for coarse_metrics, fine_metrics in zip(coarse[dataset], fine[dataset]):
            assert fine_metrics.comm_cost >= coarse_metrics.comm_cost
            assert fine_metrics.comm_cost < 2 * coarse_metrics.comm_cost
    worst_balance_fine = max(m.balance for rows in fine.values() for m in rows)
    worst_balance_coarse = max(m.balance for rows in coarse.values() for m in rows)
    assert worst_balance_fine >= worst_balance_coarse
