"""Static-check execution layer: --jobs fan-out and the warm check cache.

Times ``repro check`` (the :func:`repro.devtools.engine.analyze` core)
over the repo's own ``src`` tree three ways — serial, process-pool
parallel at 2 and 4 jobs, and cold-vs-warm against a ``--cache-dir``
artifact store — and reports a JSON document in the style of the other
plain-script harnesses.  Every timed configuration is also checked for
*identical* findings: a speedup only counts when the parallel and cached
paths report exactly what serial does.

Acceptance bars:

* ``--jobs 4`` is >= 2x faster than serial, enforced only when the host
  actually has >= 4 cores (the 1-core CI fallback still runs the
  equivalence checks);
* a warm second run against the same cache re-analyses nothing: at
  least 90% of files (here: all of them) come from the cache.

Usage::

    PYTHONPATH=src python benchmarks/bench_static_check.py --quick \
        --json-out BENCH_static_check.json

``--quick`` restricts the sweep to ``src/repro/devtools`` and drops the
speedup bar (pool start-up dominates on a few dozen files).
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path
from typing import List, Optional

from repro.devtools.engine import analyze
from repro.session.store import ArtifactStore

ROOT = Path(__file__).resolve().parents[1]

#: Job counts swept against the serial baseline.
JOB_COUNTS = (2, 4)

#: The acceptance bar: --jobs 4 vs serial.
SPEEDUP_BAR = 2.0
BAR_JOBS = 4

#: The warm-cache bar: fraction of files served from the cache.
CACHE_BAR = 0.9


def _summary(report):
    return [(f.rule, f.path, f.line, f.message) for f in report.findings]


def _timed(paths, **kwargs):
    started = time.perf_counter()
    report = analyze(paths, root=ROOT, **kwargs)
    return report, time.perf_counter() - started


def _bar_enforced(jobs: int) -> bool:
    return (os.cpu_count() or 1) >= jobs


def run_bench(targets: List[Path], enforce_bar: bool) -> dict:
    document = {
        "benchmark": "static_check",
        "targets": [str(p.relative_to(ROOT)) for p in targets],
        "cpu_count": os.cpu_count(),
        "jobs": {},
        "cache": {},
    }

    serial, serial_seconds = _timed(targets)
    baseline = _summary(serial)
    document["files_checked"] = serial.files_checked
    document["findings"] = len(serial.findings)
    document["serial_seconds"] = round(serial_seconds, 6)

    for jobs in JOB_COUNTS:
        _timed(targets, jobs=jobs)  # warm-up: fork the pool once
        parallel, seconds = _timed(targets, jobs=jobs)
        assert _summary(parallel) == baseline, (
            f"--jobs {jobs} diverged from the serial findings"
        )
        speedup = serial_seconds / seconds if seconds > 0 else float("inf")
        document["jobs"][str(jobs)] = {
            "seconds": round(seconds, 6),
            "speedup": round(speedup, 2),
        }

    with tempfile.TemporaryDirectory(prefix="repro-check-cache-") as cache_dir:
        store = ArtifactStore(Path(cache_dir) / "store")
        cold, cold_seconds = _timed(targets, store=store)
        warm, warm_seconds = _timed(targets, store=store)
        assert _summary(warm) == baseline, "warm cache diverged from serial findings"
        cached_fraction = (
            warm.files_cached / warm.files_checked if warm.files_checked else 1.0
        )
        document["cache"] = {
            "cold_seconds": round(cold_seconds, 6),
            "warm_seconds": round(warm_seconds, 6),
            "cold_analyzed": cold.files_analyzed,
            "warm_cached": warm.files_cached,
            "warm_analyzed": warm.files_analyzed,
            "cached_fraction": round(cached_fraction, 4),
        }
        assert cached_fraction >= CACHE_BAR, (
            f"warm cache served only {cached_fraction:.0%} of files "
            f"(bar: {CACHE_BAR:.0%})"
        )
        assert warm.files_analyzed == 0, "unchanged tree must re-analyse nothing"

        # Invalidation: copy the smallest target aside, edit one file,
        # and confirm exactly that file is re-analysed.
        scratch = Path(cache_dir) / "scratch"
        source_tree = min(targets, key=lambda p: sum(1 for _ in p.rglob("*.py")))
        shutil.copytree(source_tree, scratch / source_tree.name)
        scratch_store = ArtifactStore(Path(cache_dir) / "scratch-store")
        analyze([scratch], root=scratch, store=scratch_store)
        victim = next((scratch / source_tree.name).rglob("*.py"))
        victim.write_text(victim.read_text() + "\n# touched by the benchmark\n")
        edited = analyze([scratch], root=scratch, store=scratch_store)
        document["cache"]["edited_reanalyzed"] = edited.files_analyzed
        assert edited.files_analyzed == 1, (
            f"editing one file re-analysed {edited.files_analyzed}"
        )

    bar_speedup = document["jobs"][str(BAR_JOBS)]["speedup"]
    enforced = enforce_bar and _bar_enforced(BAR_JOBS)
    document["bar"] = {
        "speedup": bar_speedup,
        "required": SPEEDUP_BAR,
        "enforced": enforced,
    }
    return document


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Serial vs --jobs vs --cache-dir static check benchmark"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="devtools subtree only, no speedup bar (for CI)",
    )
    parser.add_argument(
        "--json-out", default=None, help="also write the report document to this file"
    )
    args = parser.parse_args(argv)

    if args.quick:
        targets = [ROOT / "src" / "repro" / "devtools"]
    else:
        # The default `repro check` targets: the cross-file rules need the
        # tests in the index (a registry name's "has a test" leg would
        # fail spuriously against src alone).
        targets = [
            ROOT / name
            for name in ("src", "tests", "benchmarks", "examples")
            if (ROOT / name).is_dir()
        ]

    document = run_bench(targets, enforce_bar=not args.quick)
    print(json.dumps(document, indent=2))
    if args.json_out:
        with open(args.json_out, "w") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")

    bar = document["bar"]
    print(
        f"\n--jobs {BAR_JOBS} over {document['files_checked']} files: "
        f"{bar['speedup']:.2f}x"
        + (
            f" (acceptance bar: {SPEEDUP_BAR:.0f}x)"
            if bar["enforced"]
            else " (bar not enforced: "
            + ("quick mode" if args.quick else f"only {os.cpu_count()} cores")
            + ")"
        )
    )
    if bar["enforced"] and bar["speedup"] < SPEEDUP_BAR:
        print("FAILED: --jobs below the acceptance bar", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
