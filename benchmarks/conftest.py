"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The
synthetic datasets are generated once per session at ``BENCH_SCALE`` (set
the ``REPRO_BENCH_SCALE`` environment variable to change it) and shared
across benchmark modules.
"""

from __future__ import annotations

import os

import pytest

from repro import Session
from repro.datasets.catalog import PAPER_DATASET_NAMES, load_all_datasets

#: Scale factor applied to every synthetic dataset (1.0 = the catalog's
#: default analogue size).  0.35 keeps the full nine-dataset sweeps fast
#: enough to run on a laptop while preserving the paper's relationships.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.35"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "17"))

#: The two granularities of the paper's evaluation (configuration i / ii).
CONFIG_I_PARTITIONS = 128
CONFIG_II_PARTITIONS = 256


@pytest.fixture(scope="session")
def bench_scale() -> float:
    """Dataset scale factor used across the benchmark session."""
    return BENCH_SCALE


@pytest.fixture(scope="session")
def bench_seed() -> int:
    """Deterministic seed used across the benchmark session."""
    return BENCH_SEED


@pytest.fixture(scope="session")
def all_graphs(bench_scale, bench_seed):
    """All nine dataset analogues, generated once per session."""
    return load_all_datasets(scale=bench_scale, seed=bench_seed)


@pytest.fixture(scope="session")
def bench_session(all_graphs, bench_scale, bench_seed) -> Session:
    """One shared Session for the whole figure suite.

    Figures 3-6 all sweep the same (dataset, partitioner, granularity)
    triples; sharing the session's partition cache across benchmark
    modules means each triple is partitioned exactly once per pytest
    session instead of once per figure.
    """
    return Session(scale=bench_scale, seed=bench_seed, graphs=all_graphs)


@pytest.fixture(scope="session")
def social_graphs(all_graphs):
    """The six social graphs (the paper's SSSP evaluation excludes the road networks)."""
    road = {"roadnet-pa", "roadnet-tx", "roadnet-ca"}
    return {name: graph for name, graph in all_graphs.items() if name not in road}


@pytest.fixture(scope="session")
def dataset_names():
    """Dataset names in Table 1 order."""
    return list(PAPER_DATASET_NAMES)
