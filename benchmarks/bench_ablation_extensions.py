"""E12 — ablation: degree/state-aware partitioners vs the paper's six.

The paper's strategies are all stateless hash/modulo placements.  This
ablation measures how much headroom the smarter streaming strategies from
the related-work space (DBH, greedy, HDRF, Fennel-style) have on the
metrics the paper identifies as runtime predictors, and on simulated
PageRank time, quantifying the "custom implementation" gap the paper's
introduction alludes to.
"""

from __future__ import annotations

from repro.algorithms.pagerank import pagerank
from repro.engine.partitioned_graph import PartitionedGraph
from repro.metrics.report import format_table
from repro.partitioning.registry import EXTENSION_PARTITIONER_NAMES, PAPER_PARTITIONER_NAMES

from bench_utils import print_header
from conftest import CONFIG_I_PARTITIONS

DATASETS = ["youtube", "pokec", "orkut"]
#: HDRF/greedy/Fennel are quadratic in the partition count for the scoring
#: loop, so the ablation uses a smaller partition count than the main sweeps.
ABLATION_PARTITIONS = 32


def _evaluate(all_graphs, bench_seed):
    rows = []
    per_strategy_comm = {}
    per_strategy_time = {}
    for dataset in DATASETS:
        graph = all_graphs[dataset]
        for name in PAPER_PARTITIONER_NAMES + EXTENSION_PARTITIONER_NAMES:
            pgraph = PartitionedGraph.partition(graph, name, ABLATION_PARTITIONS)
            metrics = pgraph.metrics
            result = pagerank(pgraph, num_iterations=5)
            rows.append(
                {
                    "dataset": dataset,
                    "partitioner": name,
                    "kind": "paper" if name in PAPER_PARTITIONER_NAMES else "extension",
                    "comm_cost": metrics.comm_cost,
                    "cut": metrics.cut,
                    "balance": round(metrics.balance, 2),
                    "pr_seconds": round(result.simulated_seconds, 4),
                }
            )
            per_strategy_comm.setdefault(name, 0)
            per_strategy_comm[name] += metrics.comm_cost
            per_strategy_time.setdefault(name, 0.0)
            per_strategy_time[name] += result.simulated_seconds
    return rows, per_strategy_comm, per_strategy_time


def test_ablation_extension_partitioners(benchmark, all_graphs, bench_seed, bench_scale):
    """Compare the paper's six strategies against DBH/Greedy/HDRF/Fennel."""
    rows, comm, times = benchmark.pedantic(
        _evaluate, args=(all_graphs, bench_seed), rounds=1, iterations=1
    )

    print_header(
        f"Ablation — extension partitioners at {ABLATION_PARTITIONS} partitions (scale={bench_scale})"
    )
    print(format_table(rows))

    best_paper_comm = min(comm[name] for name in PAPER_PARTITIONER_NAMES)
    best_extension_comm = min(comm[name] for name in EXTENSION_PARTITIONER_NAMES)
    best_paper_time = min(times[name] for name in PAPER_PARTITIONER_NAMES)
    best_extension_time = min(times[name] for name in EXTENSION_PARTITIONER_NAMES)
    print(
        f"\nTotal CommCost   — best paper strategy: {best_paper_comm:,}, "
        f"best extension: {best_extension_comm:,}"
    )
    print(
        f"Total PR seconds — best paper strategy: {best_paper_time:.4f}, "
        f"best extension: {best_extension_time:.4f}"
    )
    # State-aware placement reduces replication (and therefore simulated
    # PageRank time) relative to the best stateless strategy.
    assert best_extension_comm < best_paper_comm
    assert best_extension_time < best_paper_time * 1.05
