"""E7 — Figure 4: Connected Components execution time vs Communication Cost.

The paper finds CommCost to be the best predictor (92%/94%) but notes that,
unlike PageRank, the active vertex set shrinks quickly, so the fine-grained
configuration (ii) performs better on the larger datasets (up to 22%).
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import ExperimentConfig, run_algorithm_study

from bench_utils import print_figure_summary
from conftest import CONFIG_I_PARTITIONS, CONFIG_II_PARTITIONS


def _run(config_partitions, bench_session, dataset_names, bench_scale, bench_seed):
    config = ExperimentConfig(
        algorithm="CC",
        num_partitions=config_partitions,
        datasets=dataset_names,
        scale=bench_scale,
        seed=bench_seed,
        num_iterations=10,
    )
    # Shared session: placements built by the other figure modules are
    # reused here instead of re-partitioned.
    return run_algorithm_study(config, session=bench_session)


def test_fig4_connected_components_config_i(
    benchmark, bench_session, dataset_names, bench_scale, bench_seed
):
    """Figure 4, configuration (i)."""
    records = benchmark.pedantic(
        _run,
        args=(CONFIG_I_PARTITIONS, bench_session, dataset_names, bench_scale, bench_seed),
        rounds=1,
        iterations=1,
    )
    correlations = print_figure_summary(
        f"Figure 4 (config i, {CONFIG_I_PARTITIONS} partitions) — Connected Components",
        records,
        metric="comm_cost",
    )
    assert correlations["comm_cost"] > 0.7
    assert correlations["comm_cost"] > correlations["balance"]


def test_fig4_connected_components_config_ii(
    benchmark, bench_session, dataset_names, bench_scale, bench_seed
):
    """Figure 4, configuration (ii)."""
    records = benchmark.pedantic(
        _run,
        args=(CONFIG_II_PARTITIONS, bench_session, dataset_names, bench_scale, bench_seed),
        rounds=1,
        iterations=1,
    )
    correlations = print_figure_summary(
        f"Figure 4 (config ii, {CONFIG_II_PARTITIONS} partitions) — Connected Components",
        records,
        metric="comm_cost",
    )
    assert correlations["comm_cost"] > 0.7


def test_fig4_active_set_shrinks(benchmark, bench_session, bench_scale, bench_seed):
    """CC converges for most vertices after a few iterations (the paper's explanation)."""
    from repro.algorithms.connected_components import connected_components

    pgraph = bench_session.partitioned("soclivejournal", "2D", CONFIG_I_PARTITIONS)

    result = benchmark.pedantic(
        lambda: connected_components(pgraph, max_iterations=10), rounds=1, iterations=1
    )
    actives = [record.active_vertices for record in result.report.supersteps]
    print(f"\nActive vertices per superstep (soclivejournal): {actives}")
    assert actives[-1] < 0.5 * actives[0]
