"""E3 — Figure 2: CDF of the out-degree to in-degree ratio.

The paper uses this CDF to show that undirected datasets sit entirely at
ratio 1, that most users of the directed social graphs have balanced in-
and out-degree, and that the Twitter follow crawls have the largest share
of "superstar" vertices (ratio far from 1).
"""

from __future__ import annotations

from repro.core.properties import degree_ratio_cdf
from repro.metrics.report import format_table

from bench_utils import print_header

#: Ratio values at which the CDF is reported (mirrors the x-axis of Figure 2).
PROBE_POINTS = [0.1, 0.5, 0.9, 1.0, 1.1, 2.0, 10.0]


def test_fig2_degree_ratio_cdf(benchmark, all_graphs, bench_scale):
    """Reproduce the Figure 2 CDF of out/in degree ratios for every dataset."""

    def build():
        return {
            name: degree_ratio_cdf(graph, points=PROBE_POINTS)
            for name, graph in all_graphs.items()
        }

    cdfs = benchmark.pedantic(build, rounds=1, iterations=1)

    print_header(f"Figure 2 — CDF of out-degree / in-degree ratio (scale={bench_scale})")
    rows = []
    for name, cdf in cdfs.items():
        row = {"dataset": name}
        for point, fraction in cdf:
            row[f"<= {point:g}"] = round(fraction, 3)
        rows.append(row)
    print(format_table(rows))

    values = {name: dict(cdf) for name, cdf in cdfs.items()}
    # Undirected graphs: every vertex has ratio exactly 1.
    for undirected in ("youtube", "orkut", "roadnet-pa", "roadnet-tx", "roadnet-ca"):
        assert values[undirected][1.0] == 1.0
        assert values[undirected][0.9] == 0.0
    # Directed social graphs: most vertices have ratios close to 1, but the
    # follow crawls keep the largest mass far from 1 ("superstar" users and
    # crawl leaves), exactly the ordering Figure 2 shows.
    follow_far = 1.0 - values["follow-dec"][2.0] + values["follow-dec"][0.5]
    journal_far = 1.0 - values["soclivejournal"][2.0] + values["soclivejournal"][0.5]
    assert follow_far > journal_far
