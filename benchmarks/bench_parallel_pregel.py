"""E-extra — Pregel supersteps: serial array path vs shared-memory workers.

Times the reference simulator's Pregel algorithms (PR, CC, SSSP) under
the serial array-native superstep path and under the shared-memory
parallel executor at 2 and 4 workers, and reports the speedups as a JSON
document in the style of ``bench_pregel_vectorized.py``.  Every timed
pair is also checked for *identical* results: bit-identical vertex
values and identical ``SuperstepRecord`` counters — a speedup only
counts if the parallel path is indistinguishable from serial semantics.

The acceptance bar is a >= 3x wall-clock speedup for PageRank at 4
workers on the largest catalog dataset (follow-dec) at the paper's
128-partition granularity.  The bar is only *enforced* when the machine
actually has the cores to back it (``os.cpu_count() >= workers + 1`` —
the parent merge thread needs a core too); on smaller hosts the numbers
are still reported and the equivalence checks still gate.

Unlike the pytest-benchmark modules next to it, this harness is a plain
script so CI can exercise it cheaply::

    PYTHONPATH=src python benchmarks/bench_parallel_pregel.py --quick \
        --json-out BENCH_parallel_pregel.json

``--quick`` shrinks the sweep to one small dataset at a small granularity
and drops the speedup bar (process-pool overheads dominate at toy scale),
keeping the harness — and the equivalence checks inside it — from
silently rotting.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

from repro.algorithms.connected_components import connected_components
from repro.algorithms.pagerank import pagerank
from repro.algorithms.shortest_paths import choose_landmarks, shortest_paths
from repro.datasets.catalog import load_dataset
from repro.engine.parallel import engine_stats, parallel_supported, reset_engine_stats
from repro.engine.partitioned_graph import PartitionedGraph

#: Partitioner used for every run; the superstep cost, not the placement
#: quality, is what this benchmark measures.
PARTITIONER = "2D"

#: Worker counts swept against the serial baseline.
WORKER_COUNTS = (2, 4)

#: The acceptance bar for PageRank at 4 workers on the largest dataset.
PAGERANK_BAR = 3.0
BAR_WORKERS = 4


def _algorithm_runners(pgraph, iterations, seed):
    landmarks = choose_landmarks(pgraph, count=3, seed=seed + 7)
    return {
        "PR": lambda w: pagerank(pgraph, num_iterations=iterations, parallel_workers=w),
        "CC": lambda w: connected_components(
            pgraph, max_iterations=iterations, parallel_workers=w
        ),
        "SSSP": lambda w: shortest_paths(pgraph, landmarks, parallel_workers=w),
    }


def _identical(serial, parallel) -> bool:
    return (
        serial.vertex_values == parallel.vertex_values
        and serial.report.supersteps == parallel.report.supersteps
    )


def _bar_enforced(workers: int) -> bool:
    """Only hold the speedup bar when the host has cores to back it."""
    cores = os.cpu_count() or 1
    return cores >= workers + 1


def run_sweep(datasets, num_partitions, scale, seed, iterations):
    """Time every algorithm on every dataset, serial vs each worker count."""
    report = {
        "benchmark": "parallel_pregel",
        "partitioner": PARTITIONER,
        "num_partitions": num_partitions,
        "scale": scale,
        "cpu_count": os.cpu_count(),
        "shared_memory_supported": parallel_supported(),
        "datasets": {},
        "results": [],
    }
    for name in datasets:
        graph = load_dataset(name, scale=scale, seed=seed)
        report["datasets"][name] = {
            "vertices": graph.num_vertices,
            "edges": graph.num_edges,
        }
        pgraph = PartitionedGraph.partition(graph, PARTITIONER, num_partitions)
        pgraph.triplets()  # shared by both paths; build outside the timings
        for algorithm, run in _algorithm_runners(pgraph, iterations, seed).items():
            started = time.perf_counter()
            serial = run(None)
            serial_seconds = time.perf_counter() - started
            row = {
                "dataset": name,
                "algorithm": algorithm,
                "serial_seconds": round(serial_seconds, 6),
                "workers": {},
            }
            for workers in WORKER_COUNTS:
                run(workers)  # warm-up: fork the pool + publish the graph once
                started = time.perf_counter()
                parallel = run(workers)
                parallel_seconds = time.perf_counter() - started
                assert _identical(serial, parallel), (
                    f"parallel path diverged from serial for {algorithm} on "
                    f"{name} at {workers} workers"
                )
                speedup = (
                    serial_seconds / parallel_seconds
                    if parallel_seconds > 0
                    else float("inf")
                )
                row["workers"][str(workers)] = {
                    "seconds": round(parallel_seconds, 6),
                    "speedup": round(speedup, 2),
                }
            report["results"].append(row)
        del pgraph  # release this dataset's executors + shm before the next
    report["engine"] = engine_stats()
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Serial vs shared-memory parallel Pregel superstep benchmark"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small sweep for CI: one dataset, 16 partitions, no speedup bar",
    )
    parser.add_argument("--scale", type=float, default=None, help="dataset scale factor")
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument("--partitions", type=int, default=None)
    parser.add_argument("--iterations", type=int, default=10)
    parser.add_argument(
        "--json-out", default=None, help="also write the report document to this file"
    )
    args = parser.parse_args(argv)

    if not parallel_supported():
        print(
            "shared memory unavailable on this platform; nothing to benchmark",
            file=sys.stderr,
        )
        return 0

    if args.quick:
        datasets = ["youtube"]
        num_partitions = args.partitions or 16
        scale = args.scale if args.scale is not None else 0.2
        bar_dataset, bar = "youtube", None
    else:
        datasets = ["youtube", "pokec", "orkut", "follow-jul", "follow-dec"]
        num_partitions = args.partitions or 128
        scale = args.scale if args.scale is not None else 0.35
        bar_dataset, bar = "follow-dec", PAGERANK_BAR

    reset_engine_stats()
    report = run_sweep(datasets, num_partitions, scale, args.seed, args.iterations)
    print(json.dumps(report, indent=2))
    if args.json_out:
        with open(args.json_out, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")

    bar_row = next(
        row
        for row in report["results"]
        if row["dataset"] == bar_dataset and row["algorithm"] == "PR"
    )
    speedup = bar_row["workers"][str(BAR_WORKERS)]["speedup"]
    enforced = bar is not None and _bar_enforced(BAR_WORKERS)
    print(
        f"\n{bar_dataset!r} PR at {num_partitions} partitions, "
        f"{BAR_WORKERS} workers: {speedup:.2f}x"
        + (
            f" (acceptance bar: {bar:.0f}x)"
            if enforced
            else " (bar not enforced: "
            + ("quick mode" if bar is None else f"only {os.cpu_count()} cores")
            + ")"
        )
    )
    if enforced and speedup < bar:
        print("FAILED: parallel superstep path below the acceptance bar", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
