"""Shared reporting helpers for the benchmark harness."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.analysis.correlation import correlation_table
from repro.analysis.results import RunRecord, best_partitioner_per_dataset, group_by_dataset
from repro.metrics.report import format_table

__all__ = ["print_header", "print_figure_summary", "records_table"]


def print_header(title: str) -> None:
    """Print a banner so each reproduced artefact is easy to find in the log."""
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)


def records_table(records: Iterable[RunRecord], metric: str) -> List[Dict[str, object]]:
    """Rows of (dataset, partitioner, metric, simulated seconds) for one figure."""
    rows = []
    for record in records:
        rows.append(
            {
                "dataset": record.dataset,
                "partitioner": record.partitioner,
                metric: int(record.metric(metric)),
                "seconds": round(record.simulated_seconds, 4),
            }
        )
    return rows


def print_figure_summary(
    title: str,
    records: Sequence[RunRecord],
    metric: str,
    extra_metrics: Sequence[str] = ("comm_cost", "cut", "balance", "part_stdev", "non_cut"),
) -> Dict[str, float]:
    """Print one figure panel: the scatter data, correlations and best strategies.

    Returns the correlation table so callers can assert on it.
    """
    print_header(title)
    print(format_table(records_table(records, metric), ["dataset", "partitioner", metric, "seconds"]))
    correlations = correlation_table(records, metrics=extra_metrics)
    print()
    print("Correlation of partitioning metrics with simulated execution time:")
    for name, value in correlations.items():
        marker = "  <-- paper's predictor" if name == metric else ""
        print(f"  {name:>12}: {value:+.3f}{marker}")
    best = best_partitioner_per_dataset(records)
    print("Best partitioner per dataset:")
    for dataset, group in group_by_dataset(records).items():
        times = {r.partitioner: r.simulated_seconds for r in group}
        ordered = sorted(times, key=times.get)
        print(f"  {dataset:>16}: {best[dataset]}  (ranking: {', '.join(ordered)})")
    return correlations
