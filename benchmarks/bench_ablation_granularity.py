"""E13 — ablation: sweeping the partition count (granularity axis).

The paper only samples two granularities (128 and 256 partitions) but
concludes that "partitioning depends on the number of partitions".  This
ablation sweeps a wider range of partition counts for a communication-bound
algorithm (PageRank) and a compute/state-bound one (Triangle Count) on one
large social analogue, locating where the cost curves bend.
"""

from __future__ import annotations

from repro.analysis.sweep import sweep_granularity
from repro.metrics.report import format_table

from bench_utils import print_header

PARTITION_COUNTS = [16, 32, 64, 128, 256]
PARTITIONERS = ["2D", "DC", "RVC"]


def test_granularity_sweep(benchmark, all_graphs, bench_scale):
    """Sweep the partition count for PageRank and Triangle Count on follow-jul."""
    graph = all_graphs["follow-jul"]

    def run():
        return {
            "PR": sweep_granularity(
                graph, PARTITION_COUNTS, partitioners=PARTITIONERS,
                algorithm="PR", num_iterations=5,
            ),
            "TR": sweep_granularity(
                graph, PARTITION_COUNTS, partitioners=PARTITIONERS, algorithm="TR",
            ),
        }

    sweeps = benchmark.pedantic(run, rounds=1, iterations=1)

    print_header(f"Granularity ablation — follow-jul (scale={bench_scale})")
    rows = []
    for algorithm, sweep in sweeps.items():
        for partitioner in PARTITIONERS:
            row = {"algorithm": algorithm, "partitioner": partitioner}
            for count, seconds in sweep.curve(partitioner, "seconds"):
                row[f"p={count}"] = round(seconds, 4)
            rows.append(row)
    print(format_table(rows))
    for algorithm, sweep in sweeps.items():
        print(f"Best strategy per granularity ({algorithm}): {sweep.crossover_points()}")

    # PageRank is communication bound: its cost grows with the partition
    # count once the partitions are plentiful (CommCost keeps growing).
    pr_curve = dict(sweeps["PR"].curve("2D", "seconds"))
    assert pr_curve[256] > pr_curve[16]
    # Triangle Count is much less sensitive to granularity than PageRank.
    tr_curve = dict(sweeps["TR"].curve("2D", "seconds"))
    pr_growth = pr_curve[256] / pr_curve[16]
    tr_growth = tr_curve[256] / tr_curve[16]
    assert tr_growth < pr_growth
    # The CommCost metric itself grows monotonically with the partition count.
    comm_curve = [value for _, value in sweeps["PR"].curve("2D", "comm_cost")]
    assert comm_curve == sorted(comm_curve)
