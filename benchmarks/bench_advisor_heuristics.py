"""E11 — the paper's conclusions as a decision procedure (advisor validation).

The paper ends with heuristics for tailoring the partitioning to the
computation (Destination Cut for smaller datasets and 2D for large ones
when the algorithm is communication bound; balanced strategies and fine
granularity for the per-vertex-state-heavy Triangle Count).  This benchmark
compares three policies over a (dataset x algorithm) grid:

* **heuristic advisor** — the paper's conclusions, as encoded by
  ``recommend_partitioner``;
* **empirical advisor** — measure the paper's predictor metric for every
  candidate and pick its minimiser (``recommend_empirically``);
* **general-purpose pick** — the single partitioner with the best total
  time across *all* algorithms, i.e. what a framework default optimised
  "for the general case" would use.

The paper's claim is that tailoring beats the general case; the benchmark
asserts that the heuristic advisor's mean loss versus the per-run optimum
is small and not worse than the general-purpose pick.
"""

from __future__ import annotations

from repro.analysis.advisor import recommend_empirically, recommend_partitioner
from repro.analysis.experiments import ExperimentConfig, run_algorithm_study
from repro.analysis.results import group_by_dataset
from repro.metrics.report import format_table

from bench_utils import print_header
from conftest import CONFIG_I_PARTITIONS

DATASETS = ["youtube", "pokec", "orkut", "soclivejournal", "follow-jul"]
ALGORITHMS = ["PR", "CC", "TR"]


def _collect_runs(all_graphs, bench_scale, bench_seed):
    graphs = {name: all_graphs[name] for name in DATASETS}
    runs = {}
    for algorithm in ALGORITHMS:
        config = ExperimentConfig(
            algorithm=algorithm,
            num_partitions=CONFIG_I_PARTITIONS,
            datasets=DATASETS,
            scale=bench_scale,
            seed=bench_seed,
            num_iterations=5,
        )
        runs[algorithm] = run_algorithm_study(config, graphs=graphs)
    return graphs, runs


def test_advisor_choices_beat_the_general_case(benchmark, all_graphs, bench_scale, bench_seed):
    """Tailoring the partitioner to the computation is close to optimal."""
    graphs, runs = benchmark.pedantic(
        _collect_runs, args=(all_graphs, bench_scale, bench_seed), rounds=1, iterations=1
    )

    print_header("Advisor validation — tailoring the partitioner to the computation")

    # The "general case" partitioner: lowest total time across every run of
    # every algorithm (what a framework default would aim for).
    totals = {}
    for records in runs.values():
        for record in records:
            totals.setdefault(record.partitioner, 0.0)
            totals[record.partitioner] += record.simulated_seconds
    general_choice = min(totals, key=totals.get)

    rows = []
    losses = {"heuristic": [], "empirical": [], "general": []}
    for algorithm, records in runs.items():
        for dataset, group in group_by_dataset(records).items():
            times = {r.partitioner: r.simulated_seconds for r in group}
            best_partitioner = min(times, key=times.get)
            best_time = times[best_partitioner]
            heuristic = recommend_partitioner(graphs[dataset], algorithm).partitioner
            empirical = recommend_empirically(
                graphs[dataset], algorithm, CONFIG_I_PARTITIONS
            ).partitioner
            cell = {
                "algorithm": algorithm,
                "dataset": dataset,
                "best": best_partitioner,
                "heuristic": heuristic,
                "empirical": empirical,
                "general": general_choice,
            }
            for label, choice in (
                ("heuristic", heuristic),
                ("empirical", empirical),
                ("general", general_choice),
            ):
                loss = times[choice] / best_time - 1.0
                losses[label].append(loss)
                cell[f"{label}_loss%"] = round(100 * loss, 2)
            rows.append(cell)
    print(format_table(rows))

    means = {label: sum(values) / len(values) for label, values in losses.items()}
    print("\nMean loss vs the per-run optimal partitioner:")
    for label, value in means.items():
        print(f"  {label:>10}: {value * 100:5.2f}%")

    # The paper's message: tailoring to the computation recovers the
    # performance a general-case default leaves on the table.
    assert means["heuristic"] <= means["general"] + 0.005
    assert means["heuristic"] < 0.05
    # Even the simple measure-the-metric policy stays within a modest band.
    assert means["empirical"] < 0.15
