"""F-extra — artifact store: cold vs warm-start grid wall-clock.

Times the same :class:`ExperimentPlan` grid twice against one shared
:class:`ArtifactStore` directory: first *cold* (an empty store — every
placement is partitioned, every algorithm cell executed, every artifact
persisted) and then *warm* in a fresh session, simulating a new process
over the same cache directory (every cell resumes from its stored
record; nothing is partitioned or executed).  The warm run's records
must be identical to the cold run's — a speedup only counts if resuming
is indistinguishable from re-running — and the session's disk counters
must prove zero partition builds.

Like ``bench_pregel_vectorized.py`` this is a plain script so CI can
exercise it cheaply::

    PYTHONPATH=src python benchmarks/bench_store_resume.py --quick

``--quick`` shrinks the grid to one small dataset at a small granularity
and only requires the warm start to win (>= 1x); the full run uses the
paper's granularities and expects a >= 5x warm-start speedup.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import tempfile
import time
from typing import List, Optional

from repro.session import Session

#: Warm-start acceptance bar of the full configuration.
FULL_BAR = 5.0


def _build_plan(session: Session, datasets, partitioners, granularities, algorithms, iterations):
    return (
        session.plan()
        .datasets(datasets)
        .partitioners(partitioners)
        .granularities(granularities)
        .algorithms(algorithms)
        .iterations(iterations)
        .landmarks(5)
    )


def _strip_wall(records):
    return [dataclasses.replace(record, wall_seconds=0.0) for record in records]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small grid, 1x bar (CI mode)")
    parser.add_argument("--scale", type=float, default=None, help="dataset scale factor")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--json-out", default=None, help="also write the report document to this file"
    )
    args = parser.parse_args(argv)

    if args.quick:
        scale = args.scale if args.scale is not None else 0.05
        datasets = ["youtube"]
        granularities = [8]
        algorithms = ["PR", "CC"]
        iterations = 2
        bar = 1.0
    else:
        scale = args.scale if args.scale is not None else 0.3
        datasets = ["youtube", "pokec", "follow-dec"]
        granularities = [128, 256]
        algorithms = ["PR", "CC", "SSSP"]
        iterations = 10
        bar = FULL_BAR
    partitioners = ["RVC", "1D", "2D", "CRVC", "SC", "DC"]

    with tempfile.TemporaryDirectory(prefix="repro-store-bench-") as root:
        cold_session = Session(scale=scale, seed=args.seed, store=root)
        plan = _build_plan(cold_session, datasets, partitioners, granularities, algorithms, iterations)
        started = time.perf_counter()
        cold_records = plan.run()
        cold_seconds = time.perf_counter() - started

        warm_session = Session(scale=scale, seed=args.seed, store=root)
        plan = _build_plan(warm_session, datasets, partitioners, granularities, algorithms, iterations)
        started = time.perf_counter()
        warm_records = plan.run()
        warm_seconds = time.perf_counter() - started

        stats = warm_session.stats
        identical = list(_strip_wall(cold_records)) == list(_strip_wall(warm_records))
        speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
        document = {
            "mode": "quick" if args.quick else "full",
            "scale": scale,
            "cells": len(cold_records),
            "cold_seconds": round(cold_seconds, 4),
            "warm_seconds": round(warm_seconds, 4),
            "speedup": round(speedup, 2),
            "bar": bar,
            "warm_partition_builds": stats.partition_builds,
            "warm_disk_record_hits": stats.disk_record_hits,
            "records_identical": identical,
        }
        print(json.dumps(document, indent=2))
        if args.json_out:
            with open(args.json_out, "w") as handle:
                json.dump(document, handle, indent=2)
                handle.write("\n")

        failures = []
        if not identical:
            failures.append("warm-start records differ from the cold run")
        if stats.partition_builds != 0:
            failures.append(f"warm start built {stats.partition_builds} placements (expected 0)")
        if stats.disk_record_hits != len(cold_records):
            failures.append(
                f"warm start resumed {stats.disk_record_hits}/{len(cold_records)} cells from disk"
            )
        if speedup < bar:
            failures.append(f"warm-start speedup {speedup:.2f}x below the {bar:.1f}x bar")
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
