"""E-extra — out-of-core pipeline: bounded-RSS ingest + PageRank over shards.

Two gates, both enforced:

1. **Bit-identity** (small graph): for every stateful streaming
   partitioner (Greedy, HDRF, Fennel), chunked ingest must produce the
   exact placements of the whole-array path, and PageRank over the
   memory-mapped shards must return bit-identical vertex values and
   ``SuperstepRecord`` counters.

2. **Bounded memory** (big graph): generate a synthetic edge stream
   whose in-memory footprint (``num_edges * 16`` bytes, the engine's
   ``estimated_size_bytes``) is at least 10x a configured budget, ingest
   it chunk by chunk and run PageRank over the shards — and the
   process's peak RSS growth (``resource.getrusage`` high-water mark
   relative to a baseline captured just before the big run) must stay
   under that budget.  ``--chunk-edges`` is the knob that makes the
   bound hold: every stage touches O(chunk) edges, never O(edges).

Unlike the pytest-benchmark modules next to it, this harness is a plain
script so CI can exercise it cheaply::

    PYTHONPATH=src python benchmarks/bench_out_of_core.py --quick \
        --json-out BENCH_out_of_core.json

``--quick`` shrinks the budget (and with it the generated graph) so the
run fits a CI minute while keeping the 10x ratio — and therefore the
claim — intact.
"""

from __future__ import annotations

import argparse
import json
import resource
import shutil
import sys
import tempfile
import time
from typing import Dict, List

from repro.algorithms.pagerank import pagerank
from repro.datasets.catalog import load_dataset
from repro.engine.partitioned_graph import PartitionedGraph
from repro.ooc import GraphChunkSource, SyntheticChunkSource, ingest_source
from repro.session.store import ArtifactStore

#: Stateful streaming partitioners covered by the bit-identity gate.
IDENTITY_PARTITIONERS = ("Greedy", "HDRF", "Fennel")

#: Partitioner for the big run; stateless, so ingest state stays O(vertices).
BIG_RUN_PARTITIONER = "2D"

#: The generated graph must be at least this many times the budget.
SIZE_RATIO = 10

#: Safety margin over the 10x floor when sizing the synthetic stream.
SIZE_SLACK = 1.05

#: Every edge costs 16 bytes in memory (two int64 columns) — keep in
#: sync with ``repro.core.properties.estimated_size_bytes``.
BYTES_PER_EDGE = 16


def _peak_rss_bytes() -> int:
    """The process's lifetime peak RSS; ru_maxrss is KiB on Linux."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def _superstep_rows(report) -> List[Dict[str, object]]:
    return [vars(record) for record in report.supersteps]


def run_identity_gate(scale: float, seed: int, chunk_edges: int) -> List[Dict[str, object]]:
    """Gate 1: chunked results == in-memory results, partitioner by partitioner."""
    graph = load_dataset("roadnet-pa", scale=scale, seed=seed)
    rows = []
    for name in IDENTITY_PARTITIONERS:
        pgraph = PartitionedGraph.partition(graph, name, 8)
        expected = pagerank(pgraph, num_iterations=5)
        workdir = tempfile.mkdtemp(prefix="repro-ooc-identity-")
        try:
            store = ArtifactStore(workdir)
            sharded, report = ingest_source(
                store,
                GraphChunkSource(graph, chunk_edges=chunk_edges),
                name,
                8,
                scale=scale,
                seed=seed,
                chunk_edges=chunk_edges,
            )
            actual = pagerank(sharded, num_iterations=5)
            placements_equal = all(
                mem.num_edges == ooc.num_edges
                and mem.local_triplets()[0].tolist() == ooc.local_triplets()[0].tolist()
                and mem.local_triplets()[1].tolist() == ooc.local_triplets()[1].tolist()
                for mem, ooc in zip(pgraph.partitions, sharded.partitions)
            )
            values_equal = actual.vertex_values == expected.vertex_values
            records_equal = _superstep_rows(actual.report) == _superstep_rows(
                expected.report
            )
            sharded.release()
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
        row = {
            "partitioner": name,
            "placements_identical": placements_equal,
            "values_identical": values_equal,
            "superstep_records_identical": records_equal,
            "ingest_seconds": round(report.elapsed_seconds, 3),
        }
        rows.append(row)
        status = "ok" if all(
            (placements_equal, values_equal, records_equal)
        ) else "MISMATCH"
        print(f"  identity {name:>7}: {status}", flush=True)
    return rows


def run_bounded_memory_gate(
    budget_mib: int, seed: int, chunk_edges: int, iterations: int
) -> Dict[str, object]:
    """Gate 2: ingest + PageRank a >= 10x-budget graph under the budget."""
    budget_bytes = budget_mib * 1024 * 1024
    num_edges = int(SIZE_RATIO * SIZE_SLACK * budget_bytes / BYTES_PER_EDGE)
    # Dense on purpose: the (vertex, partition) membership table is
    # O(vertices * partitions) and stays resident at run time by design,
    # so the bench keeps that term small and lets the *edge* volume carry
    # the 10x claim.
    num_vertices = max(1024, num_edges // 8192)
    num_partitions = 64
    source = SyntheticChunkSource(
        num_vertices,
        num_edges,
        seed=seed,
        skew=2.0,
        name="ooc-bench",
        chunk_edges=chunk_edges,
    )
    dataset_bytes = num_edges * BYTES_PER_EDGE
    print(
        f"  big run: {num_edges:,} edges ({dataset_bytes / 2**20:.0f} MiB "
        f"in-memory) vs a {budget_mib} MiB budget "
        f"({dataset_bytes / budget_bytes:.1f}x), chunk={chunk_edges:,}",
        flush=True,
    )

    baseline_rss = _peak_rss_bytes()
    workdir = tempfile.mkdtemp(prefix="repro-ooc-bench-")
    try:
        store = ArtifactStore(workdir)
        ingest_start = time.perf_counter()
        sharded, report = ingest_source(
            store,
            source,
            BIG_RUN_PARTITIONER,
            num_partitions,
            seed=seed,
            chunk_edges=chunk_edges,
        )
        ingest_seconds = time.perf_counter() - ingest_start
        run_start = time.perf_counter()
        result = pagerank(sharded, num_iterations=iterations)
        run_seconds = time.perf_counter() - run_start
        sharded.release()
        num_values = len(result.vertex_values)
        supersteps = result.num_supersteps
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    peak_rss = _peak_rss_bytes()
    growth = peak_rss - baseline_rss
    within_budget = growth <= budget_bytes
    print(
        f"  ingest {ingest_seconds:.1f}s + pagerank {run_seconds:.1f}s "
        f"({supersteps} supersteps over {num_values:,} vertices); "
        f"RSS growth {growth / 2**20:.1f} MiB vs budget {budget_mib} MiB "
        f"-> {'ok' if within_budget else 'OVER BUDGET'}",
        flush=True,
    )
    return {
        "budget_mib": budget_mib,
        "dataset_mib": round(dataset_bytes / 2**20, 1),
        "size_ratio": round(dataset_bytes / budget_bytes, 2),
        "num_edges": num_edges,
        "num_vertices": num_vertices,
        "num_partitions": num_partitions,
        "chunk_edges": chunk_edges,
        "replication_factor": round(report.replication_factor, 3),
        "ingest_seconds": round(ingest_seconds, 2),
        "pagerank_seconds": round(run_seconds, 2),
        "pagerank_supersteps": supersteps,
        "baseline_rss_mib": round(baseline_rss / 2**20, 1),
        "peak_rss_mib": round(peak_rss / 2**20, 1),
        "rss_growth_mib": round(growth / 2**20, 1),
        "within_budget": within_budget,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument(
        "--budget-mib",
        type=int,
        default=None,
        help="memory budget in MiB (default: 256, or 48 with --quick)",
    )
    parser.add_argument(
        "--chunk-edges",
        type=int,
        default=None,
        help="edges per chunk for ingest and execution "
        "(default: 131072 with --quick, 262144 otherwise)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--json-out", default=None, help="write the JSON report here")
    args = parser.parse_args(argv)

    budget_mib = args.budget_mib or (48 if args.quick else 256)
    # The knob that makes the memory bound hold: every pipeline stage is
    # O(chunk), so a tight quick budget gets a proportionally small chunk.
    chunk_edges = args.chunk_edges or (131_072 if args.quick else 262_144)
    iterations = 3 if args.quick else 5
    identity_scale = 0.3 if args.quick else 1.0

    print("bit-identity gate (chunked vs in-memory):", flush=True)
    identity_rows = run_identity_gate(identity_scale, args.seed, chunk_edges=97)
    print("bounded-memory gate:", flush=True)
    big_run = run_bounded_memory_gate(
        budget_mib, args.seed, chunk_edges, iterations
    )

    identity_ok = all(
        row["placements_identical"]
        and row["values_identical"]
        and row["superstep_records_identical"]
        for row in identity_rows
    )
    passed = identity_ok and big_run["within_budget"]
    document = {
        "benchmark": "out_of_core",
        "quick": args.quick,
        "identity": identity_rows,
        "big_run": big_run,
        "passed": passed,
    }
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json_out}", flush=True)
    if not passed:
        print("FAILED: see the gates above", file=sys.stderr, flush=True)
        return 1
    print("passed: results bit-identical, peak RSS within budget", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
