"""E4 — Table 2: partitioning metrics for every dataset x partitioner at 128 partitions."""

from __future__ import annotations

from repro.analysis.experiments import run_partitioning_study
from repro.metrics.report import format_metrics_table
from repro.partitioning.hash_partitioners import EdgePartition2D

from bench_utils import print_header
from conftest import CONFIG_I_PARTITIONS


def test_table2_partitioning_metrics_128(benchmark, all_graphs, dataset_names, bench_scale):
    """Reproduce Table 2 (configuration i, 128 partitions)."""

    def build():
        return run_partitioning_study(
            num_partitions=CONFIG_I_PARTITIONS,
            datasets=dataset_names,
            graphs=all_graphs,
        )

    table = benchmark.pedantic(build, rounds=1, iterations=1)

    print_header(
        f"Table 2 — partitioning metrics, {CONFIG_I_PARTITIONS} partitions (scale={bench_scale})"
    )
    print(format_metrics_table(table))

    bound = EdgePartition2D().max_replication(CONFIG_I_PARTITIONS)
    for dataset, rows in table.items():
        by_name = {metrics.strategy: metrics for metrics in rows}
        # Identities from Section 3.1 hold for every cell of the table.
        for metrics in rows:
            assert metrics.comm_cost + metrics.non_cut == metrics.total_replicas
        # CRVC never costs more communication than RVC (it merges the two
        # directions of reciprocated edges into one partition).
        assert by_name["CRVC"].comm_cost <= by_name["RVC"].comm_cost
        # 2D respects its replication bound.
        assert by_name["2D"].replication_factor <= bound
    # The skewed follow graphs are imbalanced under 1D/SC/DC, as in Table 2.
    follow = {m.strategy: m for m in table["follow-dec"]}
    assert follow["1D"].balance > 2.0
    assert follow["SC"].balance > 2.0
    assert follow["RVC"].balance < 1.5
