"""F-extra — serve daemon: concurrent query throughput and tail latency.

Starts the ``repro serve`` daemon as a real subprocess, then drives it
with an asyncio load generator: N concurrent keep-alive connections each
issuing a deterministic mix of queries (landmark distance estimates,
exact batched distances on a hot source set, top-k PageRank, degree and
neighborhood lookups).  Reports queries/sec plus p50/p99 latency per
query kind, and runs a dedicated *coalescing probe* — a wave of
concurrent exact-distance requests with distinct sources — whose batch
count, read back from ``/stats``, must come in below the source count:
proof that the tick-window batcher collapsed them into shared
multi-source sweeps.  The final ``/stats`` snapshot's ``engine`` section
(configured workers, live shared-memory segments, parallel superstep
fraction) is echoed into the report; pass ``--engine-workers N`` to run
the daemon's Pregel supersteps on the shared-memory pool.

Like ``bench_store_resume.py`` this is a plain script so CI can exercise
it cheaply::

    PYTHONPATH=src python benchmarks/bench_serve_throughput.py --quick

``--quick`` shrinks the load to 64 connections over a tiny graph; the
full run holds >= 1000 concurrent connections in flight.  ``--json-out
FILE`` additionally writes the report document (e.g. ``BENCH_serve.json``)
for CI artifact collection.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import random
import re
import subprocess
import sys
import time
from collections import deque
from pathlib import Path
from typing import Deque, Dict, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
_BANNER = re.compile(r"http://([\d.]+):(\d+)")

#: Share of each query kind in the generated load (out of 100).
QUERY_MIX = (
    ("estimate", 50),
    ("exact", 20),
    ("pagerank", 10),
    ("vertex", 10),
    ("neighbors", 10),
)

#: Distinct sources the "exact" queries rotate through; small on purpose
#: so repeat queries exercise the query cache, first hits the batcher.
HOT_SOURCES = 8


# ----------------------------------------------------------------------
# Server subprocess
# ----------------------------------------------------------------------
def start_server(args) -> Tuple[subprocess.Popen, str, int]:
    """Launch ``repro serve`` on an ephemeral port; returns (proc, host, port)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    command = [
        sys.executable, "-m", "repro.cli", "serve",
        "--scale", str(args.scale), "--seed", str(args.seed),
        "--datasets", args.dataset,
        "--partitions", str(args.partitions),
        "--port", "0",
        "--batch-window-ms", str(args.batch_window_ms),
        "--landmarks", str(args.landmarks),
    ]
    if args.engine_workers:
        command += ["--engine-workers", str(args.engine_workers)]
    proc = subprocess.Popen(
        command, env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True
    )
    deadline = time.monotonic() + 180.0
    startup: List[str] = []
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        startup.append(line.rstrip())
        match = _BANNER.search(line)
        if match:
            return proc, match.group(1), int(match.group(2))
    proc.kill()
    raise RuntimeError("server never printed its banner:\n" + "\n".join(startup))


# ----------------------------------------------------------------------
# Minimal asyncio HTTP client
# ----------------------------------------------------------------------
async def http_get(reader, writer, path: str, method: str = "GET"):
    writer.write(f"{method} {path} HTTP/1.1\r\nHost: bench\r\n\r\n".encode("ascii"))
    await writer.drain()
    status_line = await reader.readline()
    if not status_line:
        raise ConnectionError("server closed the connection")
    status = int(status_line.split()[1])
    content_length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            content_length = int(value)
    body = await reader.readexactly(content_length)
    return status, json.loads(body)


def build_requests(rng: random.Random, total: int, vertices: List[int]) -> List[Tuple[str, str]]:
    """A deterministic shuffled list of ``(kind, path)`` pairs."""
    hot = vertices[:HOT_SOURCES]
    kinds = [kind for kind, share in QUERY_MIX for _ in range(share)]
    requests = []
    for _ in range(total):
        kind = rng.choice(kinds)
        if kind == "estimate":
            a, b = rng.choice(vertices), rng.choice(vertices)
            path = f"/distance?source={a}&target={b}"
        elif kind == "exact":
            a, b = rng.choice(hot), rng.choice(vertices)
            path = f"/distance?source={a}&target={b}&exact=1"
        elif kind == "pagerank":
            path = f"/pagerank/top?k={rng.choice([5, 10, 25])}"
        elif kind == "vertex":
            path = f"/vertex?vertex={rng.choice(vertices)}"
        else:
            path = f"/neighbors?vertex={rng.choice(vertices)}&limit=10"
        requests.append((kind, path))
    return requests


async def run_load(
    host: str,
    port: int,
    requests: List[Tuple[str, str]],
    concurrency: int,
) -> Tuple[Dict[str, List[float]], int, float]:
    """Drive the request list through ``concurrency`` keep-alive connections.

    Returns per-kind latency samples (seconds), the number of non-200
    responses, and the wall-clock seconds of the whole run.
    """
    queue: Deque[Tuple[str, str]] = deque(requests)
    latencies: Dict[str, List[float]] = {kind: [] for kind, _ in QUERY_MIX}
    errors = 0

    async def worker() -> None:
        nonlocal errors
        reader, writer = await asyncio.open_connection(host, port)
        try:
            while True:
                try:
                    kind, path = queue.popleft()
                except IndexError:
                    return
                started = time.perf_counter()
                status, _ = await http_get(reader, writer, path)
                latencies[kind].append(time.perf_counter() - started)
                if status != 200:
                    errors += 1
        finally:
            writer.close()
            await writer.wait_closed()

    started = time.perf_counter()
    await asyncio.gather(*(worker() for _ in range(concurrency)))
    return latencies, errors, time.perf_counter() - started


async def coalescing_probe(
    host: str, port: int, sources: List[int], target: int
) -> Tuple[int, int]:
    """Fire one concurrent exact-distance request per distinct source.

    Returns the batcher's ``(queries, batches)`` deltas measured around
    the wave via ``/stats``; coalescing means batches << sources.
    """

    async def one(source: int) -> None:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            status, payload = await http_get(
                reader, writer, f"/distance?source={source}&target={target}&exact=1"
            )
            assert status == 200, payload
            assert payload["method"] == "exact", payload
        finally:
            writer.close()
            await writer.wait_closed()

    async def stats() -> Dict[str, int]:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            _, payload = await http_get(reader, writer, "/stats")
            return payload["batcher"]
        finally:
            writer.close()
            await writer.wait_closed()

    before = await stats()
    await asyncio.gather(*(one(source) for source in sources))
    after = await stats()
    return (
        after["queries"] - before["queries"],
        after["batches"] - before["batches"],
    )


def percentile(samples: List[float], q: float) -> float:
    """Exact percentile (0..100) of the client-side samples, in ms."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(round(q / 100.0 * (len(ordered) - 1)))))
    return ordered[rank] * 1000.0


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="64 connections, tiny graph (CI mode)")
    parser.add_argument("--scale", type=float, default=None, help="dataset scale factor")
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument("--dataset", default="youtube")
    parser.add_argument("--partitions", type=int, default=16)
    parser.add_argument("--landmarks", type=int, default=4)
    parser.add_argument("--batch-window-ms", type=int, default=10)
    parser.add_argument(
        "--engine-workers", type=int, default=None,
        help="shared-memory Pregel workers for the daemon's engine runs",
    )
    parser.add_argument("--concurrency", type=int, default=None, help="concurrent connections")
    parser.add_argument("--requests", type=int, default=None, help="total queries to issue")
    parser.add_argument("--json-out", default=None, help="also write the report to this file")
    args = parser.parse_args(argv)

    if args.quick:
        args.scale = args.scale if args.scale is not None else 0.05
        concurrency = args.concurrency or 64
        total = args.requests or 512
    else:
        args.scale = args.scale if args.scale is not None else 0.2
        concurrency = args.concurrency or 1000
        total = args.requests or 5000

    # The benchmark regenerates the same synthetic graph as the daemon
    # (same catalog recipe, scale and seed) to sample valid vertex ids.
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.datasets.catalog import load_dataset

    graph = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    rng = random.Random(args.seed)
    vertices = sorted(int(v) for v in graph.vertex_ids)
    requests = build_requests(rng, total, vertices)
    probe_sources = rng.sample(vertices, min(32, len(vertices)))

    proc, host, port = start_server(args)
    try:
        probe_queries, probe_batches = asyncio.run(
            coalescing_probe(host, port, probe_sources, vertices[0])
        )
        latencies, errors, seconds = asyncio.run(
            run_load(host, port, requests, concurrency)
        )

        async def finale():
            reader, writer = await asyncio.open_connection(host, port)
            try:
                _, stats = await http_get(reader, writer, "/stats")
                await http_get(reader, writer, "/shutdown", method="POST")
                return stats
            finally:
                writer.close()
                await writer.wait_closed()

        stats = asyncio.run(finale())
        returncode = proc.wait(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()

    all_samples = [sample for samples in latencies.values() for sample in samples]
    report = {
        "benchmark": "serve_throughput",
        "mode": "quick" if args.quick else "full",
        "dataset": args.dataset,
        "scale": args.scale,
        "vertices": graph.num_vertices,
        "edges": graph.num_edges,
        "concurrency": concurrency,
        "requests": len(all_samples),
        "errors": errors,
        "seconds": round(seconds, 4),
        "qps": round(len(all_samples) / seconds, 1) if seconds > 0 else 0.0,
        "latency_ms": {
            "p50": round(percentile(all_samples, 50), 3),
            "p99": round(percentile(all_samples, 99), 3),
        },
        "latency_by_kind_ms": {
            kind: {
                "count": len(samples),
                "p50": round(percentile(samples, 50), 3),
                "p99": round(percentile(samples, 99), 3),
            }
            for kind, samples in latencies.items()
        },
        "coalescing_probe": {
            "sources": len(probe_sources),
            "queries": probe_queries,
            "batches": probe_batches,
        },
        "server": {
            "returncode": returncode,
            "engine_runs": stats["engine_runs"],
            "engine": stats["engine"],
            "batcher": stats["batcher"],
            "query_cache": stats["query_cache"],
        },
    }
    print(json.dumps(report, indent=2))
    if args.json_out:
        Path(args.json_out).write_text(json.dumps(report, indent=2) + "\n")

    failures = []
    if errors:
        failures.append(f"{errors} non-200 responses")
    if len(all_samples) != total:
        failures.append(f"issued {len(all_samples)}/{total} requests")
    if probe_batches >= len(probe_sources):
        failures.append(
            f"no coalescing: {len(probe_sources)} concurrent exact queries "
            f"took {probe_batches} batches"
        )
    if returncode != 0:
        failures.append(f"server exited with code {returncode}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
