"""E8 — Figure 5: Triangle Count execution time vs Cut vertices.

The paper's findings checked here:

* the Cut metric correlates with execution time better than Communication
  Cost does (95%/97% vs 43%/34% in the paper);
* no partitioner is much better than the rest: differences stay within a
  small band (5-10% in the paper);
* the fine-grained configuration (ii) is consistently at least as fast as
  configuration (i) for this compute-heavy algorithm.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import ExperimentConfig, run_algorithm_study
from repro.analysis.results import group_by_dataset

from bench_utils import print_figure_summary
from conftest import CONFIG_I_PARTITIONS, CONFIG_II_PARTITIONS


def _run(config_partitions, bench_session, dataset_names, bench_scale, bench_seed):
    config = ExperimentConfig(
        algorithm="TR",
        num_partitions=config_partitions,
        datasets=dataset_names,
        scale=bench_scale,
        seed=bench_seed,
    )
    # Shared session: placements built by the other figure modules are
    # reused here instead of re-partitioned.
    return run_algorithm_study(config, session=bench_session)


@pytest.fixture(scope="module")
def triangle_runs(bench_session, dataset_names, bench_scale, bench_seed):
    return {
        "config-i": _run(CONFIG_I_PARTITIONS, bench_session, dataset_names, bench_scale, bench_seed),
        "config-ii": _run(CONFIG_II_PARTITIONS, bench_session, dataset_names, bench_scale, bench_seed),
    }


def test_fig5_triangle_count_config_i(benchmark, bench_session, dataset_names, bench_scale, bench_seed):
    """Figure 5, configuration (i)."""
    records = benchmark.pedantic(
        _run,
        args=(CONFIG_I_PARTITIONS, bench_session, dataset_names, bench_scale, bench_seed),
        rounds=1,
        iterations=1,
    )
    correlations = print_figure_summary(
        f"Figure 5 (config i, {CONFIG_I_PARTITIONS} partitions) — Triangle Count time vs Cut",
        records,
        metric="cut",
    )
    assert correlations["cut"] > correlations["comm_cost"]
    assert correlations["cut"] > 0.5


def test_fig5_triangle_count_config_ii(benchmark, bench_session, dataset_names, bench_scale, bench_seed):
    """Figure 5, configuration (ii)."""
    records = benchmark.pedantic(
        _run,
        args=(CONFIG_II_PARTITIONS, bench_session, dataset_names, bench_scale, bench_seed),
        rounds=1,
        iterations=1,
    )
    correlations = print_figure_summary(
        f"Figure 5 (config ii, {CONFIG_II_PARTITIONS} partitions) — Triangle Count time vs Cut",
        records,
        metric="cut",
    )
    assert correlations["cut"] > correlations["comm_cost"]


def test_fig5_partitioner_differences_track_cut(benchmark, triangle_runs):
    """Partitioner differences are small wherever the Cut metric is stable.

    The paper reports 5-10% best-to-worst differences; in this reproduction
    the differences stay in that band for every dataset whose Cut metric is
    (as in the paper) nearly identical across partitioners, and never exceed
    the relative spread of the Cut metric itself — i.e. the time differences
    that do exist are explained by the metric the paper identifies.
    """

    def spreads():
        result = {}
        for label, records in triangle_runs.items():
            for dataset, group in group_by_dataset(records).items():
                times = [r.simulated_seconds for r in group]
                cuts = [r.metric("cut") for r in group]
                time_spread = (max(times) - min(times)) / min(times)
                cut_spread = (max(cuts) - min(cuts)) / min(cuts)
                result[(label, dataset)] = (time_spread, cut_spread)
        return result

    values = benchmark.pedantic(spreads, rounds=1, iterations=1)
    print("\nRelative best-to-worst spread per dataset (time vs Cut metric):")
    for (label, dataset), (time_spread, cut_spread) in values.items():
        print(
            f"  {label} {dataset:>16}: time {time_spread * 100:5.1f}%   cut {cut_spread * 100:5.1f}%"
        )
    for (label, dataset), (time_spread, cut_spread) in values.items():
        if cut_spread < 0.05:
            assert time_spread < 0.15, (label, dataset)
        assert time_spread <= cut_spread + 0.15, (label, dataset)


def test_fig5_fine_granularity_not_much_slower(benchmark, triangle_runs):
    """Unlike PageRank, TR barely pays for finer granularity.

    The paper finds configuration (ii) consistently *faster* for TR thanks
    to better load balance on the real cluster; the cost model reproduces
    the weaker claim that finer granularity costs TR far less than it costs
    the communication-bound PageRank.
    """

    def compare():
        coarse = {(r.dataset, r.partitioner): r.simulated_seconds for r in triangle_runs["config-i"]}
        fine = {(r.dataset, r.partitioner): r.simulated_seconds for r in triangle_runs["config-ii"]}
        ratios = [fine[key] / coarse[key] for key in coarse]
        return ratios

    ratios = benchmark.pedantic(compare, rounds=1, iterations=1)
    worst = max(ratios)
    mean = sum(ratios) / len(ratios)
    print(f"\nFine/coarse TR time ratio: mean {mean:.3f}, worst {worst:.3f}")
    assert mean < 1.10
    assert worst < 1.30
