"""E1 — Table 1: characterisation of the nine datasets.

Regenerates the dataset characterisation table (vertices, edges, symmetry,
leaf-vertex percentages, triangles, connected components, diameter, size)
for the synthetic analogues, printing the paper's values alongside for the
columns the analogues are meant to track in *shape* (symmetry, component
structure, leaf fractions), not in absolute size.
"""

from __future__ import annotations

from repro.datasets.characterization import build_table1
from repro.metrics.report import format_table

from bench_utils import print_header


def test_table1_dataset_characterization(benchmark, bench_scale, bench_seed):
    """Reproduce Table 1 for every dataset analogue."""

    def build():
        return build_table1(scale=bench_scale, seed=bench_seed)

    rows = benchmark.pedantic(build, rounds=1, iterations=1)

    print_header(f"Table 1 — dataset characterisation (scale={bench_scale})")
    flat = []
    for row in rows:
        summary = row.summary
        flat.append(
            {
                "dataset": summary.name,
                "vertices": summary.num_vertices,
                "edges": summary.num_edges,
                "symm%": round(summary.symmetry_percent, 2),
                "paper_symm%": row.paper_symmetry,
                "zero_in%": round(summary.zero_in_percent, 2),
                "zero_out%": round(summary.zero_out_percent, 2),
                "triangles": summary.triangles,
                "components": summary.connected_components,
                "diameter": summary.diameter,
                "size_bytes": summary.size_bytes,
            }
        )
    print(format_table(flat))

    # Shape checks mirroring Table 1.
    by_name = {row.summary.name: row for row in rows}
    for road in ("roadnet-pa", "roadnet-tx", "roadnet-ca"):
        assert by_name[road].summary.symmetry_percent == 100.0
        assert by_name[road].summary.connected_components > 1
    assert by_name["orkut"].summary.symmetry_percent == 100.0
    assert by_name["follow-dec"].summary.zero_in_percent > 25.0
    assert by_name["follow-dec"].summary.num_vertices == max(
        row.summary.num_vertices for row in rows
    )
