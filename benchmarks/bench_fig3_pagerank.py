"""E6 — Figure 3: PageRank execution time vs Communication Cost.

Runs 10-iteration PageRank for every dataset x partitioner at the two
granularities (configurations i and ii), prints the scatter data, the
correlation of every metric with simulated time, and the best partitioner
per dataset.  The paper's findings checked here:

* Communication Cost is the best predictor of execution time (95%/96% in
  the paper; we require a strong positive correlation that beats the
  balance metrics);
* PageRank is communication bound, so the finer granularity (ii) is not
  faster than (i) for most datasets.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import ExperimentConfig, run_algorithm_study

from bench_utils import print_figure_summary
from conftest import CONFIG_I_PARTITIONS, CONFIG_II_PARTITIONS


def _run(config_partitions, bench_session, dataset_names, bench_scale, bench_seed):
    config = ExperimentConfig(
        algorithm="PR",
        num_partitions=config_partitions,
        datasets=dataset_names,
        scale=bench_scale,
        seed=bench_seed,
        num_iterations=10,
    )
    # The shared session means each (dataset, partitioner, k) triple is
    # partitioned once per pytest session across the whole figure suite.
    return run_algorithm_study(config, session=bench_session)


@pytest.fixture(scope="module")
def pagerank_runs(bench_session, dataset_names, bench_scale, bench_seed):
    return {
        "config-i": _run(CONFIG_I_PARTITIONS, bench_session, dataset_names, bench_scale, bench_seed),
        "config-ii": _run(CONFIG_II_PARTITIONS, bench_session, dataset_names, bench_scale, bench_seed),
    }


def test_fig3_pagerank_config_i(benchmark, bench_session, dataset_names, bench_scale, bench_seed):
    """Figure 3, configuration (i): 128 partitions."""
    records = benchmark.pedantic(
        _run,
        args=(CONFIG_I_PARTITIONS, bench_session, dataset_names, bench_scale, bench_seed),
        rounds=1,
        iterations=1,
    )
    correlations = print_figure_summary(
        f"Figure 3 (config i, {CONFIG_I_PARTITIONS} partitions) — PageRank time vs CommCost",
        records,
        metric="comm_cost",
    )
    assert correlations["comm_cost"] > 0.75
    assert correlations["comm_cost"] > correlations["balance"]
    assert correlations["comm_cost"] > correlations["part_stdev"]


def test_fig3_pagerank_config_ii(benchmark, bench_session, dataset_names, bench_scale, bench_seed):
    """Figure 3, configuration (ii): 256 partitions."""
    records = benchmark.pedantic(
        _run,
        args=(CONFIG_II_PARTITIONS, bench_session, dataset_names, bench_scale, bench_seed),
        rounds=1,
        iterations=1,
    )
    correlations = print_figure_summary(
        f"Figure 3 (config ii, {CONFIG_II_PARTITIONS} partitions) — PageRank time vs CommCost",
        records,
        metric="comm_cost",
    )
    assert correlations["comm_cost"] > 0.75


def test_fig3_pagerank_granularity_effect(benchmark, pagerank_runs):
    """Finer granularity increases PageRank time for most dataset/partitioner pairs."""

    def compare():
        coarse = {(r.dataset, r.partitioner): r.simulated_seconds for r in pagerank_runs["config-i"]}
        fine = {(r.dataset, r.partitioner): r.simulated_seconds for r in pagerank_runs["config-ii"]}
        slower = sum(1 for key in coarse if fine[key] > coarse[key])
        return slower, len(coarse)

    slower, total = benchmark.pedantic(compare, rounds=1, iterations=1)
    print(f"\nFiner granularity slower for {slower}/{total} (dataset, partitioner) pairs")
    assert slower >= 0.7 * total
