"""E-extra — Execution backends: reference simulator vs CSR/numpy kernels.

Times every algorithm (PR, CC, TR, SSSP) on every synthetic catalog
dataset under both registered backends and reports the speedups as a JSON
document (one record per dataset x algorithm, plus the per-dataset CSR
build cost).  The paper's cost model lives only in the ``reference``
backend; this benchmark quantifies what the ``vectorized`` backend buys
for real workloads: the acceptance bar is a >= 10x PageRank speedup on
the largest catalog dataset.  (Since the simulator's own supersteps went
array-native the margin is ~20x rather than the ~100x it enjoyed over
the scalar loop; ``bench_pregel_vectorized.py`` tracks the scalar-vs-
array gap inside the simulator itself.)
"""

from __future__ import annotations

import json
import time

import pytest

from repro.algorithms.registry import run_algorithm
from repro.algorithms.shortest_paths import choose_landmarks
from repro.engine.partitioned_graph import PartitionedGraph

from bench_utils import print_header

ALGORITHMS = ["PR", "CC", "TR", "SSSP"]

#: Partitioner/granularity used for the reference runs.  The vectorized
#: backend ignores partitioning, and the partition count only changes the
#: simulator's bookkeeping overhead, so a moderate granularity keeps the
#: sweep honest and fast.
PARTITIONER = "2D"
NUM_PARTITIONS = 32


@pytest.fixture(scope="module")
def partitioned_graphs(all_graphs):
    return {
        name: PartitionedGraph.partition(graph, PARTITIONER, NUM_PARTITIONS)
        for name, graph in all_graphs.items()
    }


def _sweep(all_graphs, partitioned_graphs, bench_seed):
    report = {
        "benchmark": "backends",
        "partitioner": PARTITIONER,
        "num_partitions": NUM_PARTITIONS,
        "datasets": {},
        "results": [],
    }
    for name, graph in all_graphs.items():
        pgraph = partitioned_graphs[name]
        started = time.perf_counter()
        graph.csr()  # build (and cache) the CSR view once, timed separately
        report["datasets"][name] = {
            "vertices": graph.num_vertices,
            "edges": graph.num_edges,
            "csr_build_seconds": round(time.perf_counter() - started, 6),
        }
        landmarks = choose_landmarks(graph, count=3, seed=bench_seed + 7)
        for algorithm in ALGORITHMS:
            kwargs = {"num_iterations": 10}
            if algorithm == "SSSP":
                kwargs["landmarks"] = landmarks
            reference = run_algorithm(algorithm, pgraph, **kwargs)
            vectorized = run_algorithm(algorithm, pgraph, backend="vectorized", **kwargs)
            assert set(vectorized.vertex_values) == set(reference.vertex_values)
            speedup = (
                reference.wall_seconds / vectorized.wall_seconds
                if vectorized.wall_seconds > 0
                else float("inf")
            )
            report["results"].append(
                {
                    "dataset": name,
                    "algorithm": algorithm,
                    "reference_seconds": round(reference.wall_seconds, 6),
                    "vectorized_seconds": round(vectorized.wall_seconds, 6),
                    "speedup": round(speedup, 1),
                }
            )
    return report


def test_backend_speedups(benchmark, all_graphs, partitioned_graphs, bench_seed):
    """Reference vs vectorized wall-clock across the full catalog."""
    report = benchmark.pedantic(
        _sweep, args=(all_graphs, partitioned_graphs, bench_seed), rounds=1, iterations=1
    )
    print_header("Backend speedups — reference simulator vs vectorized kernels")
    print(json.dumps(report, indent=2))
    benchmark.extra_info["backend_report"] = report

    largest = max(all_graphs, key=lambda name: all_graphs[name].num_edges)
    pr_largest = next(
        row
        for row in report["results"]
        if row["dataset"] == largest and row["algorithm"] == "PR"
    )
    print(
        f"\nLargest dataset {largest!r}: PageRank speedup "
        f"{pr_largest['speedup']:.0f}x (acceptance bar: 10x)"
    )
    assert pr_largest["speedup"] >= 10.0

    # Since the simulator's supersteps went array-native the backend's win
    # is no longer universal: for TR and SSSP both sides are numpy kernels
    # now, and the backend's CSR build / full-matrix relaxation rounds can
    # lose to the simulator's masked updates on some datasets.  PageRank
    # and CC must still beat the simulator everywhere (the backend skips
    # the per-superstep cost-model accounting entirely); TR and SSSP only
    # carry a same-order-of-magnitude sanity floor.
    slower = [
        row
        for row in report["results"]
        if row["speedup"] < 1.0 and row["algorithm"] in ("PR", "CC")
    ]
    assert not slower, f"vectorized slower than reference for: {slower}"
    way_slower = [row for row in report["results"] if row["speedup"] < 0.25]
    assert not way_slower, f"vectorized far behind reference for: {way_slower}"
