"""E-extra — Partitioning pipeline: seed dict path vs array-native path.

Times the replication pipeline (vertex-membership build + Section 3.1
metrics + routing-table construction) under the seed ``Dict[int,
frozenset]`` implementation and under the ``VertexMembership`` array path,
for every catalog dataset at the paper's two granularities (128 and 256
partitions), and reports the speedups as a JSON document in the style of
``bench_backends.py``.

The acceptance bar is a >= 10x speedup for ``compute_metrics`` + routing
construction on the largest catalog dataset at 256 partitions; in practice
the array path lands far above it because the seed cost is a per-edge
Python loop followed by a per-replica Python loop, while the array path is
one ``np.unique`` plus a handful of ``bincount``/mask reductions.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.engine.routing import RoutingTable
from repro.metrics.partition_metrics import (
    compute_metrics,
    compute_metrics_reference,
)
from repro.partitioning.base import EdgePartitionAssignment
from repro.partitioning.registry import make_partitioner

from bench_utils import print_header

from conftest import CONFIG_I_PARTITIONS, CONFIG_II_PARTITIONS

#: Strategy used for the placement being measured.  The pipeline cost is
#: independent of which partitioner produced the placement, so one cheap
#: hash strategy keeps the sweep focused on the metrics/routing work.
PARTITIONER = "2D"

GRANULARITIES = (CONFIG_I_PARTITIONS, CONFIG_II_PARTITIONS)


def _fresh_assignment(graph, placement, num_partitions):
    """A new assignment with no cached membership/dicts, for honest timing."""
    return EdgePartitionAssignment(
        graph=graph,
        num_partitions=num_partitions,
        partition_of=placement,
        strategy_name=PARTITIONER,
    )


def _time_dict_path(graph, placement, num_partitions):
    """Seed pipeline: per-edge dict build + per-vertex metric loop + dict routing."""
    assignment = _fresh_assignment(graph, placement, num_partitions)
    started = time.perf_counter()
    vertex_partitions = assignment.vertex_partitions_reference()
    metrics = compute_metrics_reference(assignment, vertex_partitions)
    routing = RoutingTable.from_vertex_partitions(num_partitions, vertex_partitions)
    elapsed = time.perf_counter() - started
    return metrics, routing, elapsed


def _time_array_path(graph, placement, num_partitions):
    """Array pipeline: one VertexMembership build shared by metrics + routing."""
    assignment = _fresh_assignment(graph, placement, num_partitions)
    started = time.perf_counter()
    metrics = compute_metrics(assignment)
    routing = RoutingTable.from_assignment(assignment)
    elapsed = time.perf_counter() - started
    return metrics, routing, elapsed


def _sweep(all_graphs, granularities=GRANULARITIES):
    report = {
        "benchmark": "partitioning_pipeline",
        "partitioner": PARTITIONER,
        "granularities": list(granularities),
        "datasets": {
            name: {"vertices": graph.num_vertices, "edges": graph.num_edges}
            for name, graph in all_graphs.items()
        },
        "results": [],
    }
    for name, graph in all_graphs.items():
        for num_partitions in granularities:
            placement = make_partitioner(PARTITIONER).assign(graph, num_partitions).partition_of
            dict_metrics, dict_routing, dict_seconds = _time_dict_path(
                graph, placement, num_partitions
            )
            array_metrics, array_routing, array_seconds = _time_array_path(
                graph, placement, num_partitions
            )
            # The speedup only counts if the outputs are identical.
            assert array_metrics == dict_metrics
            assert array_routing.replicas == dict_routing.replicas
            assert array_routing.masters == dict_routing.masters
            speedup = dict_seconds / array_seconds if array_seconds > 0 else float("inf")
            report["results"].append(
                {
                    "dataset": name,
                    "num_partitions": num_partitions,
                    "dict_seconds": round(dict_seconds, 6),
                    "array_seconds": round(array_seconds, 6),
                    "speedup": round(speedup, 1),
                }
            )
    return report


def test_pipeline_speedups(benchmark, all_graphs):
    """Seed dict pipeline vs array pipeline across the catalog x granularities."""
    report = benchmark.pedantic(_sweep, args=(all_graphs,), rounds=1, iterations=1)
    print_header("Partitioning pipeline — seed dict path vs VertexMembership arrays")
    print(json.dumps(report, indent=2))
    benchmark.extra_info["pipeline_report"] = report

    largest = max(all_graphs, key=lambda name: all_graphs[name].num_edges)
    bar_row = next(
        row
        for row in report["results"]
        if row["dataset"] == largest and row["num_partitions"] == CONFIG_II_PARTITIONS
    )
    print(
        f"\nLargest dataset {largest!r} at {CONFIG_II_PARTITIONS} partitions: "
        f"metrics+routing speedup {bar_row['speedup']:.0f}x (acceptance bar: 10x)"
    )
    assert bar_row["speedup"] >= 10.0

    # The array path should win on every dataset at every granularity.
    slower = [row for row in report["results"] if row["speedup"] < 1.0]
    assert not slower, f"array path slower than the seed dicts for: {slower}"


def main(argv=None) -> int:
    """Script mode for CI: the same sweep without the pytest-benchmark
    harness, with ``--quick`` shrinking it to one small dataset::

        PYTHONPATH=src python benchmarks/bench_partitioning_pipeline.py --quick
    """
    import argparse
    import sys

    from repro.datasets.catalog import load_all_datasets, load_dataset

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="one small dataset, small granularities"
    )
    parser.add_argument("--scale", type=float, default=None, help="dataset scale factor")
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument(
        "--json-out", default=None, help="also write the report document to this file"
    )
    args = parser.parse_args(argv)

    if args.quick:
        scale = args.scale if args.scale is not None else 0.1
        graphs = {"youtube": load_dataset("youtube", scale=scale, seed=args.seed)}
        granularities = (8, 16)
    else:
        scale = args.scale if args.scale is not None else 0.35
        graphs = load_all_datasets(scale=scale, seed=args.seed)
        granularities = GRANULARITIES

    report = _sweep(graphs, granularities=granularities)
    report["scale"] = scale
    print(json.dumps(report, indent=2))
    if args.json_out:
        with open(args.json_out, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")

    # _sweep already asserted output equivalence per cell; the script bar
    # is only that the array path wins everywhere (the 10x largest-dataset
    # bar stays with the pytest-benchmark entry point).
    slower = [row for row in report["results"] if row["speedup"] < 1.0]
    if slower:
        print(f"FAIL: array path slower than the seed dicts for: {slower}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
