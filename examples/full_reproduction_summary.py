"""Run the complete evaluation and print a compact paper-vs-reproduction digest.

This regenerates, in one go, the headline number behind every figure and
table of the paper (correlation coefficients, best partitioners,
granularity and infrastructure effects) and prints them next to the values
the paper reports.  It is the script used to populate EXPERIMENTS.md.

Every study runs through one shared :class:`repro.Session`, so each
(dataset, partitioner, granularity) triple is partitioned exactly once
even though four algorithm sweeps, two metric tables and the
infrastructure study all consume it; the cache accounting is printed at
the end.

Run with::

    python examples/full_reproduction_summary.py [scale]
"""

from __future__ import annotations

import sys

from repro import (
    ExperimentConfig,
    Session,
    run_algorithm_study,
    run_infrastructure_study,
    run_partitioning_study,
)
from repro.analysis import best_partitioner_per_dataset, correlation_with_time
from repro.analysis.results import group_by_dataset
from repro.datasets.catalog import PAPER_DATASET_NAMES, load_all_datasets
from repro.datasets.characterization import build_table1, format_table1

SOCIAL = ["youtube", "pokec", "orkut", "soclivejournal", "follow-jul", "follow-dec"]


def main(scale: float = 0.35, seed: int = 17) -> None:
    graphs = load_all_datasets(scale=scale, seed=seed)
    # One session for the entire evaluation: every study below shares the
    # same dataset registry and partitioned-graph cache.
    session = Session(scale=scale, seed=seed, graphs=graphs)

    print("### Table 1 — dataset characterisation")
    print(format_table1(build_table1(scale=scale, seed=seed)))
    print()

    print("### Tables 2/3 — partitioning metrics movement (128 -> 256 partitions)")
    coarse = run_partitioning_study(128, session=session)
    fine = run_partitioning_study(256, session=session)
    growth = []
    for dataset in PAPER_DATASET_NAMES:
        for c, f in zip(coarse[dataset], fine[dataset]):
            growth.append(f.comm_cost / c.comm_cost if c.comm_cost else 1.0)
    print(f"CommCost growth when doubling partitions: "
          f"min x{min(growth):.2f}, mean x{sum(growth) / len(growth):.2f}, max x{max(growth):.2f}"
          f"  (paper: increases, but significantly less than double)")
    print()

    paper_correlations = {
        ("PR", 128): 0.95, ("PR", 256): 0.96,
        ("CC", 128): 0.92, ("CC", 256): 0.94,
        ("TR", 128): 0.95, ("TR", 256): 0.97,
        ("SSSP", 128): 0.80, ("SSSP", 256): 0.86,
    }
    for algorithm, metric in (("PR", "comm_cost"), ("CC", "comm_cost"),
                              ("TR", "cut"), ("SSSP", "comm_cost")):
        datasets = SOCIAL if algorithm == "SSSP" else list(PAPER_DATASET_NAMES)
        print(f"### Figure for {algorithm} — correlation of {metric} with simulated time")
        for partitions in (128, 256):
            config = ExperimentConfig(
                algorithm=algorithm,
                num_partitions=partitions,
                datasets=datasets,
                scale=scale,
                seed=seed,
                num_iterations=10,
                landmark_count=5,
            )
            records = run_algorithm_study(config, session=session)
            value = correlation_with_time(records, metric)
            other = correlation_with_time(records, "comm_cost" if metric == "cut" else "cut")
            best = best_partitioner_per_dataset(records)
            spreads = []
            for _, group in group_by_dataset(records).items():
                times = [r.simulated_seconds for r in group]
                spreads.append((max(times) - min(times)) / min(times))
            print(f"  {partitions} partitions: corr({metric})={value:+.3f} "
                  f"[paper ~{paper_correlations[(algorithm, partitions)]:.2f}], "
                  f"corr(other)={other:+.3f}, "
                  f"best/worst spread mean {100 * sum(spreads) / len(spreads):.1f}%")
            print(f"    best partitioner per dataset: {best}")
        print()

    print("### Section 4 — infrastructure study (PR on follow-dec, 256 partitions)")
    results = run_infrastructure_study(
        dataset="follow-dec", partitioner="2D", num_partitions=256,
        num_iterations=10, session=session,
    )
    baseline = results[0]
    for result in results:
        print(f"  {result.label:30s} {result.simulated_seconds:8.4f}s "
              f"({result.speedup_vs(baseline) * 100:5.1f}% faster; paper: 15% for iii, 20% for iv)")
    print()

    stats = session.stats
    print("### Session cache accounting")
    print(f"  partition builds: {stats.partition_builds} (unique triples across every study)")
    print(f"  partition cache hits: {stats.partition_hits} "
          f"(cells served without re-partitioning)")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.35)
