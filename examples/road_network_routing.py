"""Road-network scenario: landmark shortest paths with id-locality partitioning.

Road networks are the paper's counterpoint to the social graphs: fully
symmetric, nearly planar, huge diameter and vertex ids that encode
geography.  This example shows how the modulo-based partitioners exploit
that id locality, and runs landmark distance queries (SSSP) on top.

Run with::

    python examples/road_network_routing.py
"""

from __future__ import annotations

from repro import PartitionedGraph, load_dataset, shortest_paths, summarize
from repro.algorithms import choose_landmarks
from repro.metrics.report import format_table

NUM_PARTITIONS = 32


def main() -> None:
    graph = load_dataset("roadnet-ca", scale=1.0, seed=11)
    summary = summarize(graph)
    print(f"Road network analogue: {summary.num_vertices} intersections, "
          f"{summary.num_edges} road segments, {summary.connected_components} components, "
          f"diameter {summary.diameter}")

    # Compare partitioners on the metrics that matter before running anything.
    rows = []
    pgraphs = {}
    for strategy in ("DC", "SC", "2D", "RVC"):
        pgraph = PartitionedGraph.partition(graph, strategy, NUM_PARTITIONS)
        pgraphs[strategy] = pgraph
        metrics = pgraph.metrics
        rows.append(
            {
                "partitioner": strategy,
                "comm_cost": metrics.comm_cost,
                "cut": metrics.cut,
                "balance": round(metrics.balance, 2),
                "replication": round(metrics.replication_factor, 2),
            }
        )
    print()
    print(format_table(rows))
    print("The modulo strategies (DC/SC) keep neighbouring intersections together, so their")
    print("communication cost sits well below the random vertex cut's.")

    # Landmark distance queries: 3 random landmarks, same landmarks for both runs.
    landmarks = choose_landmarks(graph, count=3, seed=5)
    print(f"\nComputing hop distances to landmarks {landmarks}...")
    comparison = []
    for strategy in ("DC", "RVC"):
        result = shortest_paths(pgraphs[strategy], landmarks=landmarks)
        reached = sum(1 for distances in result.vertex_values.values() if distances)
        comparison.append(
            {
                "partitioner": strategy,
                "supersteps": result.num_supersteps,
                "vertices_reaching_a_landmark": reached,
                "simulated_s": round(result.simulated_seconds, 4),
            }
        )
    print(format_table(comparison))

    dc_time = comparison[0]["simulated_s"]
    rvc_time = comparison[1]["simulated_s"]
    print(f"\nTailoring the partitioning to the road network saves "
          f"{(rvc_time - dc_time) / rvc_time * 100:.1f}% of the SSSP time.")


if __name__ == "__main__":
    main()
