"""Declarative experiment grids: the Session / ExperimentPlan workflow.

This is the recommended way to reproduce (slices of) the paper's
evaluation grid: open a :class:`repro.Session`, describe the grid with
the fluent planner, inspect the planned cells before paying for them,
execute with a thread pool, and post-process the returned
:class:`repro.ResultSet` — all without ever partitioning the same
(dataset, partitioner, granularity) triple twice.

Run with::

    python examples/grid_sweep.py [scale]
"""

from __future__ import annotations

import sys

from repro import Session


def main(scale: float = 0.15, seed: int = 7) -> None:
    session = Session(scale=scale, seed=seed)

    # 1. Describe the grid declaratively.  Nothing executes yet.
    plan = (
        session.plan()
        .datasets("youtube", "pokec", "roadnet-pa")
        .partitioners("2D", "DC", "CRVC")
        .granularities(16, 32)
        .algorithms("PR", "CC")
        .iterations(5)
    )

    # 2. Inspect before running: explicit cells and a cache forecast.
    preview = plan.preview()
    print(f"Planned {preview.num_cells} cells "
          f"({preview.unique_partitions} unique placements to build, "
          f"{preview.expected_cache_hits} cells served from cache).")
    first = preview.cells[0]
    print(f"First cell: {first.algorithm} on {first.dataset} / {first.partitioner} "
          f"@ {first.num_partitions} partitions via {first.backend!r}")
    print()

    # 3. Execute on a thread pool.  Records come back in cell order, so a
    #    parallel run is record-identical to a serial one.
    results = plan.run(workers=4)

    # 4. Post-process the ResultSet.
    print("Fastest strategy per (algorithm, granularity):")
    for algorithm, by_algorithm in results.group_by("algorithm").items():
        for partitions, slice_ in by_algorithm.group_by("num_partitions").items():
            best = slice_.best()
            print(f"  {algorithm:>3} @ {partitions:>3}: {best.partitioner} "
                  f"({best.simulated_seconds:.4f}s simulated)")
    print()

    pr_coarse = results.filter(algorithm="PR", num_partitions=16)
    print("PR @ 16 partitions, simulated seconds by dataset x partitioner:")
    for dataset, row in pr_coarse.pivot(value="simulated_seconds").items():
        cells = ", ".join(f"{name}={seconds:.4f}" for name, seconds in row.items())
        print(f"  {dataset:>12}: {cells}")
    print()

    # 5. Round-trip through JSON: archive the grid, re-analyse later.
    payload = results.to_json()
    restored = type(results).from_json(payload)
    assert restored == results
    print(f"Archived and restored {len(restored)} records through to_json/from_json.")

    stats = session.stats
    print(f"Session cache: {stats.partition_builds} partition builds, "
          f"{stats.partition_hits} hits "
          f"(each unique triple was partitioned exactly once).")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.15)
