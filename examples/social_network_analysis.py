"""Social-network analytics pipeline on the partitioned engine.

The scenario from the paper's introduction: a social-network analytics
pipeline that computes influencer scores (PageRank), community structure
(connected components) and clustering (triangle counts) over a follow
graph, with the partitioning tailored to each computation.

Run with::

    python examples/social_network_analysis.py
"""

from __future__ import annotations

from repro import (
    PartitionedGraph,
    connected_components,
    load_dataset,
    pagerank,
    recommend_partitioner,
    summarize,
    total_triangles,
    triangle_count,
)
from repro.metrics.report import format_table

NUM_PARTITIONS = 64


def main() -> None:
    graph = load_dataset("follow-jul", scale=0.5, seed=3)
    summary = summarize(graph)
    print(f"Follow graph analogue: {summary.num_vertices} users, {summary.num_edges} follows, "
          f"{summary.zero_in_percent:.0f}% never followed back, "
          f"{summary.connected_components} components")

    stages = []

    # ------------------------------------------------------------------
    # Stage 1: influencer scores via PageRank (communication bound -> the
    # advisor picks a CommCost-minimising strategy).
    # ------------------------------------------------------------------
    pr_reco = recommend_partitioner(graph, "PR")
    pr_graph = PartitionedGraph.partition(graph, pr_reco.partitioner, NUM_PARTITIONS)
    pr = pagerank(pr_graph, num_iterations=10)
    influencers = sorted(pr.vertex_values, key=pr.vertex_values.get, reverse=True)[:10]
    stages.append(("PageRank", pr_reco.partitioner, pr))
    print(f"\nTop influencers (vertex ids): {influencers}")

    # ------------------------------------------------------------------
    # Stage 2: community structure via connected components.
    # ------------------------------------------------------------------
    cc_reco = recommend_partitioner(graph, "CC")
    cc_graph = PartitionedGraph.partition(graph, cc_reco.partitioner, NUM_PARTITIONS)
    cc = connected_components(cc_graph)
    sizes = {}
    for label in cc.vertex_values.values():
        sizes[label] = sizes.get(label, 0) + 1
    largest = max(sizes.values())
    stages.append(("ConnectedComponents", cc_reco.partitioner, cc))
    print(f"Communities: {len(sizes)} weak components, largest covers "
          f"{100.0 * largest / summary.num_vertices:.1f}% of users")

    # ------------------------------------------------------------------
    # Stage 3: clustering via triangle counting (per-vertex state heavy ->
    # the advisor switches to a balanced strategy and the Cut metric).
    # ------------------------------------------------------------------
    tr_reco = recommend_partitioner(graph, "TR")
    tr_graph = PartitionedGraph.partition(graph, tr_reco.partitioner, NUM_PARTITIONS)
    tr = triangle_count(tr_graph)
    stages.append(("TriangleCount", tr_reco.partitioner, tr))
    print(f"Triangles: {total_triangles(tr)} total; most clustered vertex participates in "
          f"{max(tr.vertex_values.values())} triangles")

    # ------------------------------------------------------------------
    # Pipeline summary: one partitioning per computation ("cut to fit").
    # ------------------------------------------------------------------
    rows = []
    for name, partitioner, result in stages:
        rows.append(
            {
                "stage": name,
                "partitioner": partitioner,
                "supersteps": result.num_supersteps,
                "messages": result.report.total_messages,
                "simulated_s": round(result.simulated_seconds, 4),
            }
        )
    print()
    print(format_table(rows))
    total = sum(result.simulated_seconds for _, _, result in stages)
    print(f"\nEnd-to-end simulated pipeline time: {total:.3f}s")


if __name__ == "__main__":
    main()
