"""Regenerate Figure 3 of the paper (PageRank time vs Communication Cost).

Runs the full dataset x partitioner sweep for both granularities and prints
the scatter series, the correlation coefficient and the per-dataset best
strategy — the same information the paper's Figure 3 conveys.  This is the
scripted counterpart of ``pytest benchmarks/bench_fig3_pagerank.py``.

Run with::

    python examples/reproduce_figure3.py [scale]
"""

from __future__ import annotations

import sys

from repro import ExperimentConfig, Session, run_algorithm_study
from repro.analysis import best_partitioner_per_dataset, correlation_with_time
from repro.analysis.results import records_to_rows
from repro.metrics.report import format_table


def main(scale: float = 0.25) -> None:
    # One session across both configurations: the nine datasets are
    # generated once and shared (each granularity still partitions its
    # own placements — they are different triples).
    session = Session(scale=scale, seed=17)
    for label, partitions in (("configuration (i)", 128), ("configuration (ii)", 256)):
        config = ExperimentConfig(
            algorithm="PR",
            num_partitions=partitions,
            scale=scale,
            seed=17,
            num_iterations=10,
        )
        records = run_algorithm_study(config, session=session)

        print("=" * 72)
        print(f"Figure 3, {label}: PageRank, {partitions} partitions, scale={scale}")
        print("=" * 72)
        print(format_table(records_to_rows(records),
                           ["dataset", "partitioner", "comm_cost", "seconds"]))
        correlation = correlation_with_time(records, "comm_cost")
        print(f"\nPearson correlation (CommCost vs simulated time): {correlation:+.3f} "
              f"(paper reports +0.95 / +0.96)")
        print("Best partitioner per dataset:")
        for dataset, partitioner in best_partitioner_per_dataset(records).items():
            print(f"  {dataset:>16}: {partitioner}")
        print()


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.25)
