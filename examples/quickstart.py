"""Quickstart: partition a graph, run PageRank, inspect metrics and simulated time.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    PartitionedGraph,
    load_dataset,
    pagerank,
    recommend_partitioner,
    summarize,
)


def main() -> None:
    # 1. Load a dataset analogue (a synthetic stand-in for the SNAP YouTube
    #    graph; pass scale=1.0 for the full analogue size).
    graph = load_dataset("youtube", scale=0.5, seed=42)
    summary = summarize(graph)
    print(f"Loaded {summary.name}: {summary.num_vertices} vertices, "
          f"{summary.num_edges} edges, {summary.triangles} triangles")

    # 2. Ask the advisor which partitioner fits PageRank on this dataset.
    recommendation = recommend_partitioner(graph, "PR")
    print(f"Advisor says: {recommendation}")

    # 3. Partition the graph and inspect the Section 3.1 metrics.
    pgraph = PartitionedGraph.partition(graph, recommendation.partitioner, num_partitions=32)
    metrics = pgraph.metrics
    print(f"Partitioned with {metrics.strategy} into {metrics.num_partitions} parts: "
          f"balance={metrics.balance:.2f}, cut={metrics.cut}, "
          f"comm_cost={metrics.comm_cost}, replication={metrics.replication_factor:.2f}")

    # 4. Run 10 iterations of PageRank on the simulated cluster.
    result = pagerank(pgraph, num_iterations=10)
    top = sorted(result.vertex_values, key=result.vertex_values.get, reverse=True)[:5]
    print(f"PageRank finished in {result.num_supersteps} supersteps, "
          f"simulated time {result.simulated_seconds:.3f}s")
    print(f"Top-5 vertices by rank: {top}")

    # 5. Compare against the worst partitioner to see the "cut to fit" gap.
    worst = PartitionedGraph.partition(graph, "RVC", num_partitions=32)
    worst_result = pagerank(worst, num_iterations=10)
    gap = worst_result.simulated_seconds / result.simulated_seconds - 1.0
    print(f"Random vertex cut would have been {gap * 100:.1f}% slower "
          f"({worst_result.simulated_seconds:.3f}s)")


if __name__ == "__main__":
    main()
