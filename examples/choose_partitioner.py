"""Cut to fit: choose the partitioner for *your* computation and dataset.

This example walks the full decision procedure the paper advocates:

1. characterise the dataset;
2. get the heuristic recommendation (no measurement needed);
3. measure the candidate partitioners' metrics and refine the choice;
4. verify by running the actual computation with the recommended and a
   baseline strategy.

Run with::

    python examples/choose_partitioner.py [dataset] [algorithm]

e.g. ``python examples/choose_partitioner.py orkut TR``.
"""

from __future__ import annotations

import sys

from repro import (
    Session,
    load_dataset,
    recommend_empirically,
    recommend_partitioner,
    run_algorithm,
    summarize,
)
from repro.metrics.report import format_table

NUM_PARTITIONS = 64


def main(dataset: str = "soclivejournal", algorithm: str = "PR") -> None:
    graph = load_dataset(dataset, scale=0.5, seed=7)
    # One session across the advisor and the verification runs: the
    # placements the advisor measures in step 2 are reused in step 3.
    session = Session(scale=0.5, seed=7)
    summary = summarize(graph)
    print(f"Dataset {dataset}: {summary.num_vertices} vertices, {summary.num_edges} edges, "
          f"symmetry {summary.symmetry_percent:.1f}%, "
          f"{summary.connected_components} weak components")

    # Step 1: the paper's heuristics, straight from the dataset summary.
    heuristic = recommend_partitioner(summary, algorithm)
    print(f"\nHeuristic recommendation: {heuristic}")

    # Step 2: measure the cheap partitioning metrics for every candidate and
    # pick the minimiser of the metric that predicts runtime for this
    # algorithm (CommCost for PR/CC/SSSP, Cut for TR).
    empirical = recommend_empirically(graph, algorithm, NUM_PARTITIONS, session=session)
    print(f"Empirical recommendation: {empirical}")
    rows = [
        {"partitioner": name, empirical.metric: int(value)}
        for name, value in sorted(empirical.candidates.items(), key=lambda kv: kv[1])
    ]
    print(format_table(rows))

    # Step 3: verify by actually running the computation.
    print(f"\nRunning {algorithm} with three strategies at {NUM_PARTITIONS} partitions:")
    results = []
    for label, strategy in (
        ("heuristic", heuristic.partitioner),
        ("empirical", empirical.partitioner),
        ("baseline (RVC)", "RVC"),
    ):
        pgraph = session.partitioned(dataset, strategy, NUM_PARTITIONS)
        outcome = run_algorithm(algorithm, pgraph, num_iterations=10)
        results.append(
            {
                "policy": label,
                "partitioner": strategy,
                "comm_cost": pgraph.metrics.comm_cost,
                "cut": pgraph.metrics.cut,
                "seconds": round(outcome.simulated_seconds, 4),
            }
        )
    print(format_table(results))
    fastest = min(results, key=lambda row: row["seconds"])
    print(f"\nFastest policy here: {fastest['policy']} ({fastest['partitioner']})")
    stats = session.stats
    print(f"Partition cache: {stats.partition_builds} builds, "
          f"{stats.partition_hits} hits across advisor + verification runs")


if __name__ == "__main__":
    main(*sys.argv[1:3])
