"""The ``reference`` backend: the paper-faithful Pregel simulator.

This backend is a thin adapter around
:func:`repro.algorithms.registry.run_algorithm` (and
:func:`repro.algorithms.degrees.degree_count`), so its results carry the
full cost-model :class:`~repro.engine.cost_model.SimulationReport` the
evaluation correlates with the partitioning metrics.  When handed a bare
:class:`~repro.core.graph.Graph` it partitions it trivially (one
partition), which keeps the simulated semantics while making the backend
interchangeable with backends that ignore partitioning.
"""

from __future__ import annotations

from typing import List, Optional

from ..algorithms.result import AlgorithmResult
from ..engine.cluster import ClusterConfig
from ..engine.cost_model import CostParameters
from ..engine.partitioned_graph import PartitionedGraph
from .base import Backend, GraphLike

__all__ = ["ReferenceBackend"]

#: Partitioner used when the caller supplies a bare Graph.
_DEFAULT_STRATEGY = "1D"


class ReferenceBackend(Backend):
    """Dict-based BSP simulation with the calibrated cluster cost model."""

    name = "reference"
    uses_partitioning = True

    def _as_partitioned(self, graph: GraphLike) -> PartitionedGraph:
        # Duck-typed: repro.ooc.ShardedGraph carries partitions/routing/
        # membership without subclassing PartitionedGraph, and must not be
        # re-partitioned (that would materialise its mmapped edges).
        if isinstance(graph, PartitionedGraph) or hasattr(graph, "partitions"):
            return graph
        return PartitionedGraph.partition(graph, _DEFAULT_STRATEGY, 1)

    def _run(
        self,
        algorithm: str,
        graph: GraphLike,
        num_iterations: int = 10,
        landmarks: Optional[List[int]] = None,
        landmark_seed: int = 7,
        cluster: Optional[ClusterConfig] = None,
        cost_parameters: Optional[CostParameters] = None,
        engine_workers: Optional[int] = None,
    ) -> AlgorithmResult:
        from ..algorithms.registry import run_reference_algorithm

        return run_reference_algorithm(
            algorithm,
            self._as_partitioned(graph),
            num_iterations=num_iterations,
            landmarks=landmarks,
            landmark_seed=landmark_seed,
            cluster=cluster,
            cost_parameters=cost_parameters,
            engine_workers=engine_workers,
        )

    def _degrees(self, graph: GraphLike, direction: str = "out") -> AlgorithmResult:
        from ..algorithms.degrees import degree_count

        return degree_count(self._as_partitioned(graph), direction=direction)
