"""Pluggable execution backends for the paper's algorithms.

The reproduction has two execution paths for every algorithm:

``reference``
    The dict-based Pregel/BSP *simulator* (:mod:`repro.engine`), faithful
    to the paper's GraphX model.  It is the only backend that produces a
    cost-model :class:`~repro.engine.cost_model.SimulationReport`, so
    every partitioning experiment and figure reproduction uses it.

``vectorized``
    Whole-graph numpy kernels over the :class:`~repro.backends.csr.CSRGraph`
    compressed-sparse-row view (:mod:`repro.backends.vectorized`).  Orders
    of magnitude faster; produces identical vertex values (bit-exact for
    CC/TR/SSSP/degrees, floating-point-equal for PR) but no simulated
    cluster timing.  This is the path for real workloads.

Registry
--------
Backends are instances of :class:`~repro.backends.base.Backend` keyed by
name:

>>> from repro.backends import get_backend, available_backends
>>> sorted(available_backends())
['reference', 'vectorized']
>>> backend = get_backend("vectorized")

Adding a backend is two steps: subclass ``Backend`` (implement ``run``
and ``degrees``) and call :func:`register_backend` on an instance.  The
CLI ``--backend`` flag, :func:`repro.algorithms.registry.run_algorithm`'s
``backend=`` argument and the experiment harness all resolve names
through this registry, so a registered backend is immediately usable
everywhere.  :func:`validate_backends` certifies a new backend against
the reference simulator on any graph.
"""

from .base import Backend, available_backends, get_backend, register_backend
from .csr import CSRGraph
from .reference import ReferenceBackend
from .validation import validate_backends
from .vectorized import VectorizedBackend

__all__ = [
    "Backend",
    "CSRGraph",
    "REFERENCE",
    "VECTORIZED",
    "ReferenceBackend",
    "VectorizedBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "validate_backends",
]

#: The default backend instances, registered at import time.
REFERENCE = register_backend(ReferenceBackend())
VECTORIZED = register_backend(VectorizedBackend())
