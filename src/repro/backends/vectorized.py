"""The ``vectorized`` backend: whole-graph numpy kernels over the CSR view.

Each kernel reproduces the *semantics* of the corresponding simulator
algorithm (same update rule, same synchronous BSP rounds, same iteration
caps) but executes it as a handful of array operations per round instead
of millions of Python-level message sends:

* **PR** — one ``bincount`` gather/scatter per iteration of the GraphX
  ``staticPageRank`` update (unnormalised, reset probability 0.15);
* **CC** — HashMin label propagation: per round, a synchronous
  ``np.minimum.at`` in both edge directions; converges to the minimum
  vertex id of every weak component;
* **TR** — sorted-adjacency intersection on the canonical undirected
  simple view, batched over all edges with one ``searchsorted`` per
  round-trip into the row-major neighbour array;
* **SSSP** — frontier-based Bellman-Ford, relaxing all landmarks at once
  with a 2-D ``np.minimum.at`` and only touching edges whose destination
  improved in the previous round;
* **degrees** — a single ``bincount`` per direction.

The backend has no cluster model: results carry ``report=None``,
``simulated_seconds == 0.0`` and the measured ``wall_seconds`` instead.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..algorithms.result import AlgorithmResult
from ..algorithms.shortest_paths import choose_landmarks
from ..engine.cluster import ClusterConfig
from ..engine.cost_model import CostParameters
from ..errors import BackendError
from ..partitioning.membership import segment_arange
from .base import Backend, GraphLike, resolve_graph
from .csr import CSRGraph

__all__ = [
    "VectorizedBackend",
    "pagerank_kernel",
    "connected_components_kernel",
    "triangle_kernel",
    "shortest_paths_kernel",
    "degree_kernel",
]


# ----------------------------------------------------------------------
# Kernels (dense-index in, dense-index out)
# ----------------------------------------------------------------------
def pagerank_kernel(
    csr: CSRGraph, num_iterations: int = 10, reset_prob: float = 0.15
) -> np.ndarray:
    """Unnormalised static PageRank; returns one rank per dense vertex index."""
    if num_iterations < 1:
        raise BackendError("num_iterations must be >= 1")
    if not 0.0 < reset_prob < 1.0:
        raise BackendError("reset_prob must be in (0, 1)")
    n = csr.num_vertices
    ranks = np.ones(n, dtype=np.float64)
    damping = 1.0 - reset_prob
    src, dst = csr.src_idx, csr.dst_idx
    # Every vertex that appears as a source has out-degree >= 1, so the
    # per-edge contribution rank/degree never divides by zero.
    inv_degree = np.zeros(n, dtype=np.float64)
    np.divide(1.0, csr.out_degrees, out=inv_degree, where=csr.out_degrees > 0)
    for _ in range(num_iterations):
        contrib = np.bincount(dst, weights=ranks[src] * inv_degree[src], minlength=n)
        ranks = reset_prob + damping * contrib
    return ranks


def connected_components_kernel(
    csr: CSRGraph, max_iterations: Optional[int] = None
) -> Tuple[np.ndarray, int]:
    """HashMin weak-component labels (original vertex ids), capped at
    ``max_iterations`` synchronous rounds like the simulator.

    Returns ``(labels, rounds)`` where ``rounds`` counts the rounds
    actually executed, including the final no-change round that detects
    convergence (the simulator records that empty superstep too).
    """
    labels = csr.vertex_ids.astype(np.int64).copy()
    cap = max_iterations if max_iterations is not None else csr.num_vertices + 1
    src, dst = csr.src_idx, csr.dst_idx
    rounds = 0
    while rounds < cap:
        rounds += 1
        new = labels.copy()
        np.minimum.at(new, dst, labels[src])
        np.minimum.at(new, src, labels[dst])
        if np.array_equal(new, labels):
            break
        labels = new
    return labels, rounds


def triangle_kernel(csr: CSRGraph) -> np.ndarray:
    """Per-vertex triangle counts of the canonical undirected simple view.

    Uses the degree-ordered "forward" algorithm: orient every canonical
    edge from its lower- to its higher-degree endpoint, then for each
    oriented edge ``(u, v)`` intersect the oriented successor sets
    ``N+(u) ∩ N+(v)``.  Each triangle is discovered exactly once (at its
    lowest-ranked corner), and hub vertices keep only tiny successor
    sets, which bounds the wedge enumeration by O(E^1.5) instead of the
    sum of min-degrees.
    """
    n = csr.num_vertices
    counts = np.zeros(n, dtype=np.int64)
    lo, hi = csr.canonical_edges()
    if lo.size == 0:
        return counts
    undirected_degrees = np.bincount(lo, minlength=n) + np.bincount(hi, minlength=n)
    # Total order on vertices: by degree, ties by index.
    rank = np.empty(n, dtype=np.int64)
    rank[np.lexsort((np.arange(n), undirected_degrees))] = np.arange(n)
    forward = rank[lo] < rank[hi]
    eu = np.where(forward, lo, hi)  # lower-ranked endpoint
    ev = np.where(forward, hi, lo)
    # Oriented CSR keyed by the *rank* of the successor, sorted per row.
    out_deg = np.bincount(eu, minlength=n)
    order = np.lexsort((rank[ev], eu))
    succ_rank = rank[ev][order]
    succ_vertex = ev[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(out_deg, out=indptr[1:])
    # Enumerate the smaller successor set of each oriented edge and test
    # membership in the other.  Rows are sorted and rank-keys sorted within
    # each row, so (row * n + succ_rank) is globally sorted and a single
    # searchsorted answers every wedge at once.
    swap = out_deg[eu] > out_deg[ev]
    probe = np.where(swap, ev, eu)
    other = np.where(swap, eu, ev)
    probe_deg = out_deg[probe]
    total = int(probe_deg.sum())
    if total == 0:
        return counts
    edge_of = np.repeat(np.arange(eu.size, dtype=np.int64), probe_deg)
    flat = segment_arange(indptr[probe], probe_deg)
    wedge_rank = succ_rank[flat]
    wedge_vertex = succ_vertex[flat]
    keys = np.repeat(np.arange(n, dtype=np.int64), out_deg) * n + succ_rank
    queries = other[edge_of] * n + wedge_rank
    pos = np.searchsorted(keys, queries)
    hits = keys[np.minimum(pos, keys.size - 1)] == queries
    # Each hit is one distinct triangle {u, v, w}; credit all three corners.
    per_edge = np.bincount(edge_of[hits], minlength=eu.size)
    counts += np.bincount(eu, weights=per_edge, minlength=n).astype(np.int64)
    counts += np.bincount(ev, weights=per_edge, minlength=n).astype(np.int64)
    counts += np.bincount(wedge_vertex[hits], minlength=n)
    return counts


def shortest_paths_kernel(
    csr: CSRGraph, landmark_indices: np.ndarray
) -> Tuple[np.ndarray, int]:
    """Hop distances to each landmark along edge direction (``v -> ... -> l``).

    Returns ``(distances, rounds)``: an ``(num_vertices, num_landmarks)``
    float array with ``np.inf`` for unreachable landmarks, plus the number
    of frontier-relaxation rounds executed.  Messages flow from edge
    destinations back to sources, matching GraphX ``ShortestPaths``.
    """
    n = csr.num_vertices
    num_landmarks = int(landmark_indices.size)
    dist = np.full((n, num_landmarks), np.inf, dtype=np.float64)
    dist[landmark_indices, np.arange(num_landmarks)] = 0.0
    src, dst = csr.src_idx, csr.dst_idx
    changed = np.zeros(n, dtype=bool)
    changed[landmark_indices] = True
    rounds = 0
    while changed.any():
        rounds += 1
        frontier_edges = changed[dst]
        new = dist.copy()
        np.minimum.at(new, src[frontier_edges], dist[dst[frontier_edges]] + 1.0)
        changed = (new < dist).any(axis=1)
        dist = new
    return dist, rounds


def degree_kernel(csr: CSRGraph, direction: str = "out") -> np.ndarray:
    """Per-vertex degree in one direction (``out``, ``in`` or ``both``)."""
    if direction == "out":
        return csr.out_degrees.copy()
    if direction == "in":
        return csr.in_degrees.copy()
    if direction == "both":
        return csr.out_degrees + csr.in_degrees
    raise BackendError(f"direction must be 'out', 'in' or 'both', got {direction!r}")


# ----------------------------------------------------------------------
# Backend adapter
# ----------------------------------------------------------------------
class VectorizedBackend(Backend):
    """CSR + numpy execution of the paper's algorithms.

    ``num_supersteps`` on results counts synchronous kernel rounds plus
    the initialisation superstep, mirroring the simulator's accounting
    for the Pregel-style algorithms (PR, CC, SSSP).  Triangle counting is
    a single bulk pass here, so it reports 1 superstep where the
    simulator's three-phase execution reports 3.
    """

    name = "vectorized"

    def _run(
        self,
        algorithm: str,
        graph: GraphLike,
        num_iterations: int = 10,
        landmarks: Optional[List[int]] = None,
        landmark_seed: int = 7,
        cluster: Optional[ClusterConfig] = None,
        cost_parameters: Optional[CostParameters] = None,
        engine_workers: Optional[int] = None,
    ) -> AlgorithmResult:
        plain = resolve_graph(graph)
        csr = plain.csr()
        key = algorithm.upper()
        if key == "PR":
            ranks = pagerank_kernel(csr, num_iterations=num_iterations)
            return self._result("PageRank", csr, ranks.tolist(), num_iterations + 1)
        if key == "CC":
            labels, rounds = connected_components_kernel(csr, max_iterations=num_iterations)
            return self._result("ConnectedComponents", csr, labels.tolist(), rounds + 1)
        if key == "TR":
            counts = triangle_kernel(csr)
            return self._result("TriangleCount", csr, counts.tolist(), 1)
        if key == "SSSP":
            chosen = landmarks or choose_landmarks(plain, count=1, seed=landmark_seed)
            landmark_list = [int(v) for v in chosen]
            known = set(csr.vertex_ids.tolist())
            unknown = [v for v in landmark_list if v not in known]
            if unknown:
                raise BackendError(f"landmarks not present in the graph: {unknown}")
            dist, rounds = shortest_paths_kernel(csr, csr.index_of(landmark_list))
            values = []
            for row in dist:
                finite = np.isfinite(row)
                values.append(
                    {
                        landmark_list[j]: int(row[j])
                        for j in np.flatnonzero(finite)
                    }
                )
            return self._result("ShortestPaths", csr, values, rounds + 1)
        raise BackendError(
            f"unknown algorithm {algorithm!r}; expected one of ['PR', 'CC', 'TR', 'SSSP']"
        )

    def _degrees(self, graph: GraphLike, direction: str = "out") -> AlgorithmResult:
        csr = resolve_graph(graph).csr()
        values = degree_kernel(csr, direction=direction)
        return self._result(f"DegreeCount[{direction}]", csr, values.tolist(), 1)

    def _result(self, algorithm, csr, values, num_supersteps) -> AlgorithmResult:
        vertex_values: Dict[int, object] = dict(zip(csr.vertex_ids.tolist(), values))
        return AlgorithmResult(
            algorithm=algorithm,
            vertex_values=vertex_values,
            num_supersteps=num_supersteps,
            report=None,
            backend=self.name,
        )
