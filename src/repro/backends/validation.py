"""Cross-backend equivalence checking.

:func:`validate_backends` runs the same algorithm on several backends and
asserts that every backend produces the same final vertex values as the
first one (the baseline).  PageRank is compared with a relative floating
point tolerance — the reference simulator and the numpy kernels
accumulate edge contributions in different orders — while CC, TR, SSSP
and the degree kernels must match exactly.

This is both a test-suite helper and a runtime safety net: a new backend
can be certified on a sample of the real workload before being trusted.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from ..algorithms.result import AlgorithmResult
from ..errors import BackendError
from .base import GraphLike, get_backend

__all__ = ["DEFAULT_REL_TOL", "validate_backends"]

#: Relative tolerance for floating-point algorithms (PageRank).
DEFAULT_REL_TOL = 1e-9

#: Algorithms whose vertex values are floats and compared approximately.
_APPROXIMATE = {"PR"}


def _values_match(algorithm: str, expected, actual, rel_tol: float) -> bool:
    if algorithm in _APPROXIMATE:
        return math.isclose(expected, actual, rel_tol=rel_tol, abs_tol=rel_tol)
    return expected == actual


def validate_backends(
    graph: GraphLike,
    algorithms: Sequence[str] = ("PR", "CC", "TR", "SSSP"),
    backends: Sequence[str] = ("reference", "vectorized"),
    num_iterations: int = 10,
    landmarks: Optional[List[int]] = None,
    landmark_seed: int = 7,
    rel_tol: float = DEFAULT_REL_TOL,
) -> Dict[str, Dict[str, AlgorithmResult]]:
    """Assert that all ``backends`` agree on ``algorithms`` over ``graph``.

    Returns ``{algorithm: {backend_name: result}}`` on success and raises
    :class:`~repro.errors.BackendError` naming the first disagreeing
    vertex otherwise.  The first backend in ``backends`` is the baseline.
    """
    if len(backends) < 2:
        raise BackendError("validate_backends needs at least two backends to compare")
    resolved = [get_backend(name) for name in backends]

    outcomes: Dict[str, Dict[str, AlgorithmResult]] = {}
    for algorithm in algorithms:
        key = algorithm.upper()
        runs: Dict[str, AlgorithmResult] = {}
        for backend in resolved:
            runs[backend.name] = backend.run(
                key,
                graph,
                num_iterations=num_iterations,
                landmarks=landmarks,
                landmark_seed=landmark_seed,
            )
        baseline_name = resolved[0].name
        baseline = runs[baseline_name].vertex_values
        for backend_name, result in runs.items():
            if backend_name == baseline_name:
                continue
            candidate = result.vertex_values
            if set(candidate) != set(baseline):
                raise BackendError(
                    f"{key}: backend {backend_name!r} returned a different vertex set "
                    f"than {baseline_name!r} ({len(candidate)} vs {len(baseline)} vertices)"
                )
            for vertex, expected in baseline.items():
                actual = candidate[vertex]
                if not _values_match(key, expected, actual, rel_tol):
                    raise BackendError(
                        f"{key}: backends {baseline_name!r} and {backend_name!r} "
                        f"disagree at vertex {vertex}: {expected!r} != {actual!r}"
                    )
        outcomes[key] = runs
    return outcomes
