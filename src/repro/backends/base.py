"""The ``Backend`` protocol and the name-based backend registry.

A backend is an execution strategy for the paper's algorithms.  Every
backend answers the same question — "what are the final vertex values of
algorithm X on graph G?" — but may compute it very differently: the
``reference`` backend runs the faithful dict-based Pregel simulator with
its cluster cost model, while the ``vectorized`` backend runs whole-graph
numpy kernels over the CSR view.  Future scaling work (multiprocessing,
sharding, out-of-core) plugs in as further registered backends.

Backends accept either a :class:`~repro.core.graph.Graph` or a
:class:`~repro.engine.partitioned_graph.PartitionedGraph`; backends that
do not model partitioning simply use the underlying graph.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Union

from ..algorithms.result import AlgorithmResult
from ..core.graph import Graph
from ..engine.cluster import ClusterConfig
from ..engine.cost_model import CostParameters
from ..engine.partitioned_graph import PartitionedGraph
from ..errors import BackendError

__all__ = [
    "Backend",
    "GraphLike",
    "available_backends",
    "get_backend",
    "register_backend",
    "resolve_graph",
]

GraphLike = Union[Graph, PartitionedGraph]


class Backend(ABC):
    """One execution strategy for the paper's algorithms.

    Subclasses set :attr:`name` (the registry key) and implement
    :meth:`_run` for the four algorithm abbreviations (``PR``, ``CC``,
    ``TR``, ``SSSP``) plus :meth:`_degrees` for the degree kernels.  The
    public :meth:`run` / :meth:`degrees` wrappers stamp every result with
    the backend name and measured wall-clock time, so timing is uniform
    no matter how a backend is invoked.
    """

    #: Registry key; also recorded on every result this backend produces.
    name: str = ""

    #: Whether results depend on how the graph is partitioned.  The
    #: experiment harness runs partition-oblivious backends once per
    #: dataset instead of once per partitioner.
    uses_partitioning: bool = False

    def run(
        self,
        algorithm: str,
        graph: GraphLike,
        num_iterations: int = 10,
        landmarks: Optional[List[int]] = None,
        landmark_seed: int = 7,
        cluster: Optional[ClusterConfig] = None,
        cost_parameters: Optional[CostParameters] = None,
        engine_workers: Optional[int] = None,
    ) -> AlgorithmResult:
        """Run one algorithm by abbreviation and return its timed result.

        Backends that do not simulate a cluster accept (and ignore)
        ``cluster`` / ``cost_parameters`` so callers can switch backends
        without changing call sites.  Likewise ``engine_workers``: the
        partition-aware Pregel backends fan supersteps out across a
        shared-memory process pool when it is >= 2, other backends ignore
        it (results are identical either way).
        """
        started = time.perf_counter()
        result = self._run(
            algorithm,
            graph,
            num_iterations=num_iterations,
            landmarks=landmarks,
            landmark_seed=landmark_seed,
            cluster=cluster,
            cost_parameters=cost_parameters,
            engine_workers=engine_workers,
        )
        result.wall_seconds = time.perf_counter() - started
        result.backend = self.name
        return result

    def degrees(self, graph: GraphLike, direction: str = "out") -> AlgorithmResult:
        """Per-vertex in-, out- or total degrees (``direction`` in out/in/both)."""
        started = time.perf_counter()
        result = self._degrees(graph, direction=direction)
        result.wall_seconds = time.perf_counter() - started
        result.backend = self.name
        return result

    @abstractmethod
    def _run(
        self,
        algorithm: str,
        graph: GraphLike,
        num_iterations: int = 10,
        landmarks: Optional[List[int]] = None,
        landmark_seed: int = 7,
        cluster: Optional[ClusterConfig] = None,
        cost_parameters: Optional[CostParameters] = None,
        engine_workers: Optional[int] = None,
    ) -> AlgorithmResult:
        """Backend-specific execution behind :meth:`run`."""

    @abstractmethod
    def _degrees(self, graph: GraphLike, direction: str = "out") -> AlgorithmResult:
        """Backend-specific execution behind :meth:`degrees`."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"


def resolve_graph(graph: GraphLike) -> Graph:
    """The plain :class:`Graph` behind either accepted input type."""
    if isinstance(graph, PartitionedGraph):
        return graph.graph
    if isinstance(graph, Graph):
        return graph
    raise BackendError(
        f"expected a Graph or PartitionedGraph, got {type(graph).__name__}"
    )


_REGISTRY: Dict[str, Backend] = {}


def register_backend(backend: Backend) -> Backend:
    """Register a backend instance under its ``name``; returns the backend."""
    if not backend.name:
        raise BackendError("backend must define a non-empty name")
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name: str) -> Backend:
    """Look up a registered backend by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise BackendError(
            f"unknown backend {name!r}; available: {available_backends()}"
        ) from None


def available_backends() -> List[str]:
    """Names of all registered backends, in registration order."""
    return list(_REGISTRY)
