"""Compressed-sparse-row view of a :class:`~repro.core.graph.Graph`.

The dict-based :class:`Graph` accessors are convenient for the reference
Pregel simulator but far too slow for bulk execution.  :class:`CSRGraph`
compacts the (possibly sparse, 64-bit) vertex ids into dense indices
``0..n-1`` and materialises the edge list in both orientations:

* ``out_indptr`` / ``out_indices`` — successors of each vertex, i.e. the
  classic CSR of the adjacency matrix;
* ``in_indptr`` / ``in_indices`` — predecessors of each vertex (CSC of
  the same matrix, or CSR of the reversed graph).

Neighbour lists are sorted within each row, which the triangle kernel
exploits for merge-style intersections.  Duplicate edges and self-loops
are preserved exactly as :class:`Graph` stores them; kernels that need
the canonical simple undirected view use :meth:`CSRGraph.canonical_csr`.

Instances are built once per graph and cached via :meth:`Graph.csr`.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["CSRGraph"]


class CSRGraph:
    """Dense-index CSR representation of a directed multigraph."""

    def __init__(
        self,
        vertex_ids: np.ndarray,
        src_idx: np.ndarray,
        dst_idx: np.ndarray,
    ) -> None:
        self.vertex_ids = vertex_ids
        self.src_idx = src_idx
        self.dst_idx = dst_idx
        n = int(vertex_ids.size)
        self.num_vertices = n
        self.num_edges = int(src_idx.size)

        self.out_degrees = np.bincount(src_idx, minlength=n).astype(np.int64)
        self.in_degrees = np.bincount(dst_idx, minlength=n).astype(np.int64)

        order = np.lexsort((dst_idx, src_idx))
        self.out_indptr = _indptr_from_degrees(self.out_degrees)
        self.out_indices = dst_idx[order]

        order = np.lexsort((src_idx, dst_idx))
        self.in_indptr = _indptr_from_degrees(self.in_degrees)
        self.in_indices = src_idx[order]

        self._canonical: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._canonical_edges: Optional[Tuple[np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph) -> "CSRGraph":
        """Build the CSR view of ``graph`` (prefer ``graph.csr()``, which caches)."""
        ids = np.asarray(graph.vertex_ids, dtype=np.int64)
        src_idx = np.searchsorted(ids, graph.src)
        dst_idx = np.searchsorted(ids, graph.dst)
        return cls(ids, src_idx, dst_idx)

    # ------------------------------------------------------------------
    def index_of(self, vertex_ids) -> np.ndarray:
        """Map original vertex ids to dense indices."""
        return np.searchsorted(self.vertex_ids, np.asarray(vertex_ids, dtype=np.int64))

    def out_neighbors(self, index: int) -> np.ndarray:
        """Sorted dense successor indices of one vertex."""
        return self.out_indices[self.out_indptr[index] : self.out_indptr[index + 1]]

    def in_neighbors(self, index: int) -> np.ndarray:
        """Sorted dense predecessor indices of one vertex."""
        return self.in_indices[self.in_indptr[index] : self.in_indptr[index + 1]]

    def canonical_edges(self) -> Tuple[np.ndarray, np.ndarray]:
        """Distinct undirected simple edges as ``(lo, hi)`` with ``lo < hi``.

        Self-loops and duplicates are dropped — the canonicalisation
        GraphX's TriangleCount applies.  Cached.
        """
        if self._canonical_edges is None:
            lo = np.minimum(self.src_idx, self.dst_idx)
            hi = np.maximum(self.src_idx, self.dst_idx)
            keep = lo != hi
            lo, hi = lo[keep], hi[keep]
            if lo.size:
                stacked = np.unique(np.stack([lo, hi], axis=1), axis=0)
                lo, hi = stacked[:, 0], stacked[:, 1]
            self._canonical_edges = (lo, hi)
        return self._canonical_edges

    def canonical_csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """CSR of the canonical undirected simple view (cached).

        Both directions of every :meth:`canonical_edges` pair are present.
        Returns ``(indptr, indices)`` with each row sorted.
        """
        if self._canonical is None:
            lo, hi = self.canonical_edges()
            rows = np.concatenate([lo, hi])
            cols = np.concatenate([hi, lo])
            order = np.lexsort((cols, rows))
            degrees = np.bincount(rows, minlength=self.num_vertices)
            self._canonical = (_indptr_from_degrees(degrees), cols[order])
        return self._canonical

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSRGraph(vertices={self.num_vertices}, edges={self.num_edges})"


def _indptr_from_degrees(degrees: np.ndarray) -> np.ndarray:
    indptr = np.zeros(degrees.size + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    return indptr
