"""Bounded edge-chunk sources for the out-of-core pipeline.

Everything downstream of this module — the shard writer, the chunked
partition assigners, the reworked :func:`repro.core.io.read_edge_list` —
consumes edges as a stream of bounded ``(src, dst)`` int64 array pairs
instead of whole-graph arrays, so peak memory is O(chunk) no matter how
large the dataset is.

Chunk boundaries are an implementation detail: every source here yields
the *same* edge sequence for every chunk size, which is what lets the
equivalence zoo assert bit-identical placements between the chunked and
in-memory paths.
"""

from __future__ import annotations

import os
from typing import Iterator, List, Optional, Tuple, Union

import numpy as np

from ..core.graph import Graph
from ..core.io import PathLike
from ..errors import GraphIOError

__all__ = [
    "DEFAULT_CHUNK_EDGES",
    "EdgeChunkSource",
    "EdgeListChunkSource",
    "GraphChunkSource",
    "SyntheticChunkSource",
    "materialize",
]


#: Default edges per chunk.  At 16 bytes per edge pair this is ~4 MiB of
#: edge data per chunk — small enough that a handful of working arrays per
#: chunk stays far below any realistic memory budget, large enough that the
#: per-chunk numpy dispatch overhead is negligible.
DEFAULT_CHUNK_EDGES = 262_144


class EdgeChunkSource:
    """Protocol for bounded edge streams.

    Implementations expose ``name`` (dataset label), :attr:`num_edges`
    (total stream length, known before iteration so capacity-based
    partitioners can size their balance caps), optionally
    :attr:`vertex_ids` (the full vertex set when the source knows about
    isolated vertices the edge stream alone cannot reveal), and
    :meth:`chunks`, an iterator of ``(src, dst)`` int64 array pairs whose
    concatenation is the edge list.
    """

    name: str = ""

    @property
    def num_edges(self) -> int:
        raise NotImplementedError

    @property
    def vertex_ids(self) -> Optional[np.ndarray]:
        """The full sorted vertex id set, or ``None`` when only the edge
        endpoints define it (the common case for files and generators)."""
        return None

    def chunks(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        raise NotImplementedError


def _require_chunk_edges(chunk_edges: int) -> int:
    if chunk_edges < 1:
        raise ValueError(f"chunk_edges must be >= 1, got {chunk_edges}")
    return int(chunk_edges)


def _is_data_line(stripped: str) -> bool:
    return bool(stripped) and not stripped.startswith("#") and not stripped.startswith("%")


class EdgeListChunkSource(EdgeChunkSource):
    """Chunked reader for SNAP-style whitespace/`delimiter` edge lists.

    Parsing semantics are identical to the seed ``read_edge_list`` loop:
    lines starting with ``#`` or ``%`` (or blank) are skipped, each other
    line needs at least two fields, extra fields are ignored, and every
    defect raises :class:`~repro.errors.GraphIOError` with the same
    ``path:line`` message.  Each chunk is parsed with numpy's bulk string
    conversion; when numpy rejects a batch (it is stricter than Python's
    ``int()`` — e.g. ``"1_0"``), the chunk falls back to per-token Python
    ``int()`` so accepted values and raised diagnostics both match the
    line-by-line reader exactly.
    """

    def __init__(
        self,
        path: PathLike,
        delimiter: Optional[str] = None,
        name: str = "",
        chunk_edges: int = DEFAULT_CHUNK_EDGES,
    ) -> None:
        self.path = path
        self.delimiter = delimiter
        self.name = name or os.path.basename(str(path))
        self.chunk_edges = _require_chunk_edges(chunk_edges)
        self._num_edges: Optional[int] = None

    @property
    def num_edges(self) -> int:
        """Total data lines in the file (counted once, then cached).

        The counting pass only classifies lines; malformed fields are
        reported by :meth:`chunks`, which carries the line numbers.
        """
        if self._num_edges is None:
            count = 0
            try:
                with open(self.path, "r", encoding="utf-8") as handle:
                    for line in handle:
                        if _is_data_line(line.strip()):
                            count += 1
            except OSError as exc:
                raise GraphIOError(f"cannot read edge list {self.path}: {exc}") from exc
            self._num_edges = count
        return self._num_edges

    def _parse_batch(
        self,
        tokens_src: List[str],
        tokens_dst: List[str],
        line_numbers: List[int],
        stripped_lines: List[str],
    ) -> Tuple[np.ndarray, np.ndarray]:
        try:
            return (
                np.array(tokens_src, dtype=np.int64),
                np.array(tokens_dst, dtype=np.int64),
            )
        except (ValueError, OverflowError):
            pass
        # numpy rejected the batch; re-parse with Python int() to either
        # accept what the seed reader accepted or fail on its exact line.
        src: List[int] = []
        dst: List[int] = []
        for token_s, token_d, line_number, stripped in zip(
            tokens_src, tokens_dst, line_numbers, stripped_lines
        ):
            try:
                src.append(int(token_s))
                dst.append(int(token_d))
            except ValueError as exc:
                raise GraphIOError(
                    f"{self.path}:{line_number}: non-integer vertex id in {stripped!r}"
                ) from exc
        return np.array(src, dtype=np.int64), np.array(dst, dtype=np.int64)

    def chunks(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        tokens_src: List[str] = []
        tokens_dst: List[str] = []
        line_numbers: List[int] = []
        stripped_lines: List[str] = []
        total = 0

        def drain() -> Tuple[np.ndarray, np.ndarray]:
            batch = self._parse_batch(tokens_src, tokens_dst, line_numbers, stripped_lines)
            tokens_src.clear()
            tokens_dst.clear()
            line_numbers.clear()
            stripped_lines.clear()
            return batch

        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                for line_number, line in enumerate(handle, start=1):
                    stripped = line.strip()
                    if not _is_data_line(stripped):
                        continue
                    fields = stripped.split(self.delimiter)
                    if len(fields) < 2:
                        raise GraphIOError(
                            f"{self.path}:{line_number}: expected at least two fields, "
                            f"got {stripped!r}"
                        )
                    tokens_src.append(fields[0])
                    tokens_dst.append(fields[1])
                    line_numbers.append(line_number)
                    stripped_lines.append(stripped)
                    if len(tokens_src) >= self.chunk_edges:
                        total += len(tokens_src)
                        yield drain()
        except OSError as exc:
            raise GraphIOError(f"cannot read edge list {self.path}: {exc}") from exc
        if tokens_src:
            total += len(tokens_src)
            yield drain()
        self._num_edges = total


class SyntheticChunkSource(EdgeChunkSource):
    """Vectorised chunked generator for benchmark graphs far larger than RAM.

    Endpoints are drawn from a power-law-ish distribution: each uniform
    draw ``u`` maps to vertex ``floor(V * u**skew)``, so ``skew > 1``
    concentrates mass on low vertex ids (hub formation) while ``skew = 1``
    is uniform.  The stream is chunk-size invariant because edge ``i``
    always consumes uniform draws ``2i`` and ``2i + 1`` from the seeded
    generator, regardless of how the stream is chunked.
    """

    def __init__(
        self,
        num_vertices: int,
        num_edges: int,
        seed: int,
        skew: float = 2.0,
        name: str = "",
        chunk_edges: int = DEFAULT_CHUNK_EDGES,
    ) -> None:
        if num_vertices < 1:
            raise ValueError(f"num_vertices must be >= 1, got {num_vertices}")
        if num_edges < 0:
            raise ValueError(f"num_edges must be non-negative, got {num_edges}")
        if skew <= 0:
            raise ValueError(f"skew must be positive, got {skew}")
        self.num_vertices = int(num_vertices)
        self.seed = int(seed)
        self.skew = float(skew)
        self.name = name or f"synthetic-{num_vertices}v-{num_edges}e-s{seed}"
        self.chunk_edges = _require_chunk_edges(chunk_edges)
        self._num_edges = int(num_edges)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def chunks(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        rng = np.random.default_rng(self.seed)
        remaining = self._num_edges
        while remaining > 0:
            count = min(remaining, self.chunk_edges)
            # Row i holds draws (2i, 2i+1) of the global stream: reshaping
            # keeps the draw->edge mapping independent of the chunk size.
            draws = rng.random(2 * count).reshape(count, 2)
            src = (self.num_vertices * draws[:, 0] ** self.skew).astype(np.int64)
            dst = (self.num_vertices * draws[:, 1] ** self.skew).astype(np.int64)
            # Drop the float draws before yielding: the generator frame
            # stays alive while the consumer processes the chunk, and the
            # draw buffer is twice the size of the chunk it produced.
            del draws
            yield src, dst
            remaining -= count


class GraphChunkSource(EdgeChunkSource):
    """Adapter that streams an in-memory :class:`Graph` as bounded chunks.

    Yields zero-copy views into the graph's edge arrays; used when a
    catalog graph is sharded so the chunked and in-memory paths consume
    literally the same values.  Carries the graph's full vertex id set so
    isolated vertices survive the round trip through shards.
    """

    def __init__(self, graph: Graph, chunk_edges: int = DEFAULT_CHUNK_EDGES) -> None:
        self.graph = graph
        self.name = graph.name
        self.chunk_edges = _require_chunk_edges(chunk_edges)

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    @property
    def vertex_ids(self) -> Optional[np.ndarray]:
        return self.graph.vertex_ids

    def chunks(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        src = self.graph.src
        dst = self.graph.dst
        for start in range(0, len(src), self.chunk_edges):
            stop = start + self.chunk_edges
            yield src[start:stop], dst[start:stop]


def materialize(source: EdgeChunkSource, name: str = "") -> Graph:
    """Collect a chunk stream into an in-memory :class:`Graph`.

    This is the bridge for small graphs (``read_edge_list``, tests); the
    out-of-core path proper never calls it.
    """
    src_chunks: List[np.ndarray] = []
    dst_chunks: List[np.ndarray] = []
    for src, dst in source.chunks():
        src_chunks.append(src)
        dst_chunks.append(dst)
    if src_chunks:
        src = np.concatenate(src_chunks)
        dst = np.concatenate(dst_chunks)
    else:
        src = np.empty(0, dtype=np.int64)
        dst = np.empty(0, dtype=np.int64)
    vertices = source.vertex_ids
    return Graph(
        src,
        dst,
        vertices=None if vertices is None else vertices,
        name=name or source.name,
    )
