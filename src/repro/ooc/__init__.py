"""Out-of-core graph processing: chunked ingest, shard artifacts, mmap runs.

The pipeline, layer by layer:

1. :mod:`repro.ooc.chunks` — bounded ``(src, dst)`` chunk sources (SNAP
   edge-list files, synthetic generators, in-memory graphs);
2. :mod:`repro.ooc.shards` — stream a chunk source through a partition
   strategy's chunk assigner into a content-addressed shard artifact;
3. :mod:`repro.ooc.mmap_graph` — serve a shard as a partitioned graph
   whose edges are read-only ``np.load(mmap_mode="r")`` views;
4. :mod:`repro.ooc.pregel_stream` — run Pregel supersteps one partition
   chunk at a time, bit-identical to the in-memory array engine;
5. :mod:`repro.ooc.ingest` — the driver gluing 1-4 behind one call.

Results over shards are bit-identical to the in-memory path: same
placements, same vertex values, same ``SuperstepRecord`` counters.
"""

from .chunks import (
    DEFAULT_CHUNK_EDGES,
    EdgeChunkSource,
    EdgeListChunkSource,
    GraphChunkSource,
    SyntheticChunkSource,
    materialize,
)
from .ingest import IngestReport, ingest_source
from .mmap_graph import ShardEdgePartition, ShardedGraph, load_sharded_graph
from .pregel_stream import pregel_stream_supersteps
from .shards import PartitionShardWriter, write_shards

__all__ = [
    "DEFAULT_CHUNK_EDGES",
    "EdgeChunkSource",
    "EdgeListChunkSource",
    "GraphChunkSource",
    "SyntheticChunkSource",
    "materialize",
    "IngestReport",
    "ingest_source",
    "ShardEdgePartition",
    "ShardedGraph",
    "load_sharded_graph",
    "pregel_stream_supersteps",
    "PartitionShardWriter",
    "write_shards",
]
