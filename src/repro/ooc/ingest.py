"""The out-of-core ingestion driver: chunk source -> shard -> mmapped graph.

One call ties the layers together: resolve the partition strategy, build
the content-addressed shard key, serve the shard from the store when it is
already there (a counted disk hit), otherwise stream the source through
:class:`~repro.ooc.shards.PartitionShardWriter` (a counted miss) and load
what was just written.  ``repro ingest`` and
:meth:`repro.session.session.Session.sharded_partition` are both thin
wrappers over :func:`ingest_source`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Tuple, Union

from ..errors import GraphIOError
from ..partitioning.base import PartitionStrategy
from ..partitioning.registry import canonical_partitioner_name, make_partitioner
from ..session.store import ArtifactStore
from .chunks import DEFAULT_CHUNK_EDGES, EdgeChunkSource
from .mmap_graph import ShardedGraph, load_sharded_graph
from .shards import write_shards

__all__ = ["IngestReport", "ingest_source"]


@dataclass(frozen=True)
class IngestReport:
    """What one :func:`ingest_source` call did."""

    dataset: str
    partitioner: str
    num_partitions: int
    num_edges: int
    num_vertices: int
    num_replicas: int
    reused: bool
    elapsed_seconds: float

    @property
    def replication_factor(self) -> float:
        """Mean vertex replicas per placed vertex (the paper's RF metric)."""
        placed = self.num_vertices
        return self.num_replicas / placed if placed else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "dataset": self.dataset,
            "partitioner": self.partitioner,
            "num_partitions": self.num_partitions,
            "num_edges": self.num_edges,
            "num_vertices": self.num_vertices,
            "num_replicas": self.num_replicas,
            "replication_factor": self.replication_factor,
            "reused": self.reused,
            "elapsed_seconds": self.elapsed_seconds,
        }


def ingest_source(
    store: ArtifactStore,
    source: EdgeChunkSource,
    strategy: Union[str, PartitionStrategy],
    num_partitions: int,
    scale: float = 1.0,
    seed: int = 0,
    chunk_edges: int = DEFAULT_CHUNK_EDGES,
    force: bool = False,
) -> Tuple[ShardedGraph, IngestReport]:
    """Serve (or build) the shard for ``source`` and return its mmapped graph.

    ``scale``/``seed`` namespace the shard key exactly like placement keys,
    so a session's shards coexist with its placements in one store.
    ``force`` skips the disk lookup and rebuilds unconditionally (counted
    as a miss — the shard genuinely was not served from disk).
    """
    if isinstance(strategy, str):
        partitioner_label = canonical_partitioner_name(strategy)
        strategy = make_partitioner(partitioner_label)
    else:
        partitioner_label = strategy.name
    key = ArtifactStore.shard_key(
        source.name, partitioner_label, num_partitions, scale, seed
    )

    start = time.perf_counter()
    graph = None
    if force:
        store.count_shard(False)
    else:
        graph = load_sharded_graph(store, key, chunk_edges=chunk_edges)
    reused = graph is not None
    if graph is None:
        write_shards(store, key, strategy, num_partitions, source)
        # Not a cache lookup: the shard was written one line up, so a
        # failure here is store corruption, never a plain miss.
        graph = load_sharded_graph(store, key, chunk_edges=chunk_edges, count=False)
        if graph is None:
            raise GraphIOError(
                f"shard for {source.name!r} failed validation immediately after "
                f"ingest; the artifact store at {store.root} may be corrupt"
            )

    report = IngestReport(
        dataset=source.name,
        partitioner=partitioner_label,
        num_partitions=int(num_partitions),
        num_edges=graph.graph.num_edges,
        num_vertices=graph.graph.num_vertices,
        num_replicas=graph.membership.num_pairs,
        reused=reused,
        elapsed_seconds=time.perf_counter() - start,
    )
    return graph, report
