"""Partition-at-a-time Pregel supersteps over memory-mapped shards.

The in-memory array engine (:func:`repro.engine.pregel._pregel_array`)
materialises the whole graph as flat triplet arrays and masks them every
superstep — O(edges) resident memory.  This executor produces **bit
identical** results (vertex values, every ``SuperstepRecord`` field) while
holding only one bounded edge chunk in RAM at a time: it walks the shard
partitions in ascending id, streams each partition's mmapped triplets in
``chunk_edges`` slices, and folds messages into per-partition dense
accumulators.

Why that is exact, not approximate
----------------------------------
The serial array path folds messages in two ``ufunc.at`` passes: first
into ``(partition, target)`` outbox slots in emission order, then slot
aggregates per target in ascending-partition order.  Because the scanned
edge arrays are partition-major, a partition's messages are contiguous in
emission order — so folding them into a per-partition dense accumulator
chunk by chunk performs the *same sequence* of merge operations per slot,
and merging the accumulators into a global dense array in ascending
partition order replays pass 2 exactly.  All counters are per-partition
``count * unit`` products, identical term by term; shuffle route counts
decompose by partition into the same integer sums.  The one requirement is
that the kernel's ``send_message_array`` is elementwise (a subsequence of
edges yields the subsequence of messages), which holds for every shipped
kernel — it is the same property the shared-memory parallel executor
relies on.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..engine.cluster import ClusterConfig
from ..engine.cost_model import CostModel, SimulationReport
from ..engine.messaging import ArrayMessageKernel, active_edge_mask
from ..engine.pregel import (
    PregelResult,
    _broadcast_updates,
    _MESSAGE_SERIALIZE_UNITS,
)
from ..partitioning.membership import master_partition_array
from .chunks import DEFAULT_CHUNK_EDGES

__all__ = ["pregel_stream_supersteps"]


def pregel_stream_supersteps(
    pgraph,
    initial_values: Dict[int, Any],
    kernel: ArrayMessageKernel,
    max_iterations: int,
    active_direction: str,
    cluster: ClusterConfig,
    model: CostModel,
    report: SimulationReport,
    edge_compute_units: float,
    vertex_compute_units: float,
    always_active: bool,
) -> PregelResult:
    """Run the array-native superstep loop one partition chunk at a time."""
    vertex_ids = pgraph.graph.vertex_ids
    num_vertices = int(vertex_ids.size)
    num_partitions = int(pgraph.num_partitions)
    master_of = master_partition_array(vertex_ids, num_partitions)
    executor_of = cluster.executor_map(num_partitions)
    vertex_units_per_master = (
        np.bincount(master_of, minlength=num_partitions) * vertex_compute_units
    )
    chunk_edges = max(1, int(getattr(pgraph, "chunk_edges", DEFAULT_CHUNK_EDGES)))

    state = kernel.encode(vertex_ids, initial_values)

    # ------------------------------------------------------------------
    # Superstep 0: vertex program everywhere with the initial message.
    # ------------------------------------------------------------------
    partition_units = np.zeros(num_partitions, dtype=np.float64)
    state = kernel.initial_program(state)
    partition_units += vertex_units_per_master
    sync_remote, sync_local = _broadcast_updates(
        pgraph, cluster, vertex_ids, partition_units
    )
    model.record_superstep(
        report,
        superstep=0,
        partition_units=partition_units,
        messages_remote=sync_remote,
        messages_local=sync_local,
        active_vertices=num_vertices,
        edges_scanned=0,
    )

    active = np.ones(num_vertices, dtype=bool)
    supersteps = 0

    if always_active:
        all_edge_units = (
            np.array([p.num_edges for p in pgraph.partitions], dtype=np.int64)
            * edge_compute_units
        )
        all_sync_units = np.zeros(num_partitions, dtype=np.float64)
        all_sync_remote, all_sync_local = _broadcast_updates(
            pgraph, cluster, vertex_ids, all_sync_units
        )

    # ------------------------------------------------------------------
    # Message-exchange supersteps.
    # ------------------------------------------------------------------
    while active.any() and supersteps < max_iterations:
        supersteps += 1
        partition_units = np.zeros(num_partitions, dtype=np.float64)
        if always_active:
            partition_units += all_edge_units
        merged_dense = kernel.identity_array(num_vertices)
        received = np.zeros(num_vertices, dtype=bool)
        edges_scanned = 0
        shuffle_remote = 0
        shuffle_local = 0

        for partition in pgraph.partitions:
            if partition.num_edges == 0:
                continue
            pid = partition.partition_id
            mirror_to_global = np.searchsorted(vertex_ids, partition.vertex_ids)
            local_src, local_dst = partition.local_triplets()
            # This partition's outbox, folded densely: slot (pid, t) of the
            # serial plan is element t here, seeded with the same identity.
            acc = kernel.identity_array(num_vertices)
            received_p = np.zeros(num_vertices, dtype=bool)
            scanned_in_partition = 0

            for start in range(0, partition.num_edges, chunk_edges):
                stop = min(start + chunk_edges, partition.num_edges)
                src_idx = mirror_to_global[local_src[start:stop]]
                dst_idx = mirror_to_global[local_dst[start:stop]]
                if not always_active:
                    mask = active_edge_mask(
                        active, src_idx, dst_idx, active_direction
                    )
                    src_idx = src_idx[mask]
                    dst_idx = dst_idx[mask]
                count = int(src_idx.size)
                scanned_in_partition += count
                if count == 0:
                    continue
                _positions, target_idx, messages = kernel.send_message_array(
                    src_idx, dst_idx, state
                )
                if target_idx.size:
                    # Emission-order left fold: per slot this is the exact
                    # operation sequence of the serial outbox pass.
                    kernel.merge_ufunc.at(acc, target_idx, messages)
                    received_p[target_idx] = True

            edges_scanned += scanned_in_partition
            if not always_active:
                partition_units[pid] += scanned_in_partition * edge_compute_units

            p_targets = np.flatnonzero(received_p)
            if p_targets.size:
                partition_units[pid] += p_targets.size * _MESSAGE_SERIALIZE_UNITS
                masters_p = master_of[p_targets]
                shipped = masters_p != pid
                if shipped.any():
                    remote = int(
                        (executor_of[pid] != executor_of[masters_p[shipped]]).sum()
                    )
                    shuffle_remote += remote
                    shuffle_local += int(shipped.sum()) - remote
                # Ascending-partition merge into the global accumulator:
                # pass 2 of the serial fold (slots are partition-major).
                kernel.merge_ufunc.at(merged_dense, p_targets, acc[p_targets])
                received |= received_p
            partition.release()

        targets = np.flatnonzero(received)
        merged = merged_dense[targets]

        if not targets.size and not always_active:
            # The scan itself still happened; account for it, then stop.
            model.record_superstep(
                report,
                superstep=supersteps,
                partition_units=partition_units,
                messages_remote=shuffle_remote,
                messages_local=shuffle_local,
                active_vertices=0,
                edges_scanned=edges_scanned,
            )
            active = np.zeros(num_vertices, dtype=bool)
            break

        if always_active:
            state = kernel.apply_messages_all(state, targets, merged)
            partition_units += vertex_units_per_master
            partition_units += all_sync_units
            sync_remote, sync_local = all_sync_remote, all_sync_local
            num_updated = num_vertices
        else:
            state = kernel.apply_messages(state, targets, merged)
            partition_units += (
                np.bincount(master_of[targets], minlength=num_partitions)
                * vertex_compute_units
            )
            num_updated = int(targets.size)
            sync_remote, sync_local = _broadcast_updates(
                pgraph, cluster, vertex_ids[targets], partition_units
            )
        model.record_superstep(
            report,
            superstep=supersteps,
            partition_units=partition_units,
            messages_remote=shuffle_remote + sync_remote,
            messages_local=shuffle_local + sync_local,
            active_vertices=num_updated,
            edges_scanned=edges_scanned,
        )
        if not always_active:
            active = np.zeros(num_vertices, dtype=bool)
            active[targets] = True

    return PregelResult(
        vertex_values=kernel.decode(vertex_ids, state),
        num_supersteps=report.num_supersteps,
        report=report,
    )
