"""Memory-mapped partitioned graphs served from shard artifacts.

:class:`ShardedGraph` is the out-of-core counterpart of
:class:`~repro.engine.partitioned_graph.PartitionedGraph`: the same facade
(``graph`` vertex table, ``partitions``, ``routing``, ``triplets()``,
``dataset_bytes``) built from a shard artifact instead of in-memory edge
arrays.  Only the vertex-scale state lives in RAM — vertex ids, degrees
and the replication membership, exactly the state GraphX keeps in its
vertex RDD — while every partition's edges stay on disk and are served as
``np.load(mmap_mode="r")`` read-only views, so the Pregel engine touches
at most one partition's pages at a time.

Because :class:`ShardEdgePartition` exposes the same ``local_triplets()``
/ ``vertex_ids`` / ``num_edges`` surface as
:class:`~repro.engine.edge_partition.EdgePartition`, the existing array
engine (``build_triplets`` and everything behind it) runs on a sharded
graph unchanged; :attr:`ShardedGraph.stream_supersteps` additionally opts
it into the partition-at-a-time superstep executor in
:mod:`repro.ooc.pregel_stream`.
"""

from __future__ import annotations

import mmap
import zipfile
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.properties import estimated_size_bytes
from ..engine.messaging import TripletArrays, build_triplets
from ..engine.routing import RoutingTable
from ..partitioning.membership import VertexMembership
from ..session.store import ArtifactStore
from .chunks import DEFAULT_CHUNK_EDGES
from .shards import partition_member_name

__all__ = ["ShardEdgePartition", "ShardedGraph", "load_sharded_graph"]


class _ShardVertexTable:
    """The vertex-scale view of a sharded graph (the ``.graph`` facade).

    Quacks like :class:`~repro.core.graph.Graph` for everything the
    algorithms and the engine read from ``pgraph.graph`` — vertex ids,
    counts and degree maps — without ever materialising an edge array.
    """

    def __init__(
        self,
        name: str,
        vertex_ids: np.ndarray,
        out_degree: np.ndarray,
        in_degree: np.ndarray,
        num_edges: int,
    ) -> None:
        self.name = name
        self._vertex_ids = np.asarray(vertex_ids, dtype=np.int64)
        self._out_degree = np.asarray(out_degree, dtype=np.int64)
        self._in_degree = np.asarray(in_degree, dtype=np.int64)
        self._num_edges = int(num_edges)
        self._degree_maps: Dict[str, dict] = {}

    @property
    def vertex_ids(self) -> np.ndarray:
        """Sorted array of all vertex ids."""
        return self._vertex_ids

    @property
    def num_vertices(self) -> int:
        return int(self._vertex_ids.size)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def _degree_map(self, key: str, degrees: np.ndarray) -> dict:
        cached = self._degree_maps.get(key)
        if cached is None:
            cached = dict(zip(self._vertex_ids.tolist(), degrees.tolist()))
            self._degree_maps[key] = cached
        return dict(cached)

    def out_degrees(self) -> dict:
        """``{vertex_id: out-degree}`` for every vertex (zeros included)."""
        return self._degree_map("out", self._out_degree)

    def in_degrees(self) -> dict:
        """``{vertex_id: in-degree}`` for every vertex (zeros included)."""
        return self._degree_map("in", self._in_degree)

    def degrees(self) -> dict:
        """``{vertex_id: total degree}`` (in + out) for every vertex."""
        out = self.out_degrees()
        for vertex, degree in self.in_degrees().items():
            out[vertex] += degree
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"_ShardVertexTable(name={self.name!r}, vertices={self.num_vertices}, "
            f"edges={self.num_edges})"
        )


class ShardEdgePartition:
    """One partition's edges, memory-mapped from its shard sidecar.

    ``local_triplets()`` returns the on-disk ``(2, edges)`` array's rows as
    read-only views straight out of ``np.load(mmap_mode="r")`` — the pages
    are faulted in as the engine scans them and dropped again by
    :meth:`release`, so resident memory never exceeds the pages of the
    partition currently being processed.
    """

    def __init__(
        self,
        partition_id: int,
        path: Optional[str],
        num_edges: int,
        vertex_ids: np.ndarray,
    ) -> None:
        self.partition_id = int(partition_id)
        self.path = path
        self._num_edges = int(num_edges)
        self.vertex_ids = np.asarray(vertex_ids, dtype=np.int64)
        self._mapped: Optional[np.ndarray] = None

    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def num_vertices(self) -> int:
        return int(self.vertex_ids.size)

    def local_triplets(self) -> Tuple[np.ndarray, np.ndarray]:
        """The partition's edges as indices into its ``vertex_ids`` mirror list.

        Same contract as :meth:`EdgePartition.local_triplets`, served from
        the memory-mapped sidecar: read-only, stable across calls until
        :meth:`release`.
        """
        if self._num_edges == 0 or self.path is None:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        if self._mapped is None:
            self._mapped = np.load(self.path, mmap_mode="r")
        return self._mapped[0], self._mapped[1]

    def release(self) -> None:
        """Drop the mapping (and ask the kernel to evict its pages)."""
        mapped = self._mapped
        self._mapped = None
        if mapped is None:
            return
        base = getattr(mapped, "_mmap", None)
        if base is not None:
            try:
                base.madvise(mmap.MADV_DONTNEED)
            except (AttributeError, OSError, ValueError):  # pragma: no cover
                pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardEdgePartition(id={self.partition_id}, edges={self.num_edges}, "
            f"vertices={self.num_vertices})"
        )


class ShardedGraph:
    """A partitioned graph whose edges live in a shard artifact.

    Drop-in for :class:`~repro.engine.partitioned_graph.PartitionedGraph`
    wherever the engine and the algorithms are concerned.  The
    :attr:`stream_supersteps` flag routes :func:`repro.engine.pregel.pregel`
    to the partition-at-a-time executor; flipping it to ``False`` on an
    instance forces the ordinary in-memory array path over the same mmap
    views (the equivalence tests exercise both).
    """

    #: Checked by ``pregel`` to select the out-of-core superstep executor.
    stream_supersteps = True

    def __init__(
        self,
        vertex_table: _ShardVertexTable,
        partitions: List[ShardEdgePartition],
        membership: VertexMembership,
        strategy_name: str,
        chunk_edges: int = DEFAULT_CHUNK_EDGES,
    ) -> None:
        self.graph = vertex_table
        self.partitions = partitions
        self.membership = membership
        self.num_partitions = int(membership.num_partitions)
        self.strategy_name = strategy_name
        self.chunk_edges = int(chunk_edges)
        self._routing: Optional[RoutingTable] = None
        self._triplets: Optional[TripletArrays] = None

    @property
    def routing(self) -> RoutingTable:
        """The vertex routing table, rebuilt from the persisted membership."""
        if self._routing is None:
            self._routing = RoutingTable(
                num_partitions=self.num_partitions,
                membership=self.membership,
                all_vertex_ids=self.graph.vertex_ids,
            )
        return self._routing

    def triplets(self) -> TripletArrays:
        """Dense triplet arrays — materialises every partition in RAM.

        Only meaningful with :attr:`stream_supersteps` disabled (the
        equivalence tests' in-memory reference); the streaming executor
        never calls it.
        """
        if self._triplets is None:
            self._triplets = build_triplets(self)
        return self._triplets

    @property
    def dataset_bytes(self) -> int:
        """Estimated on-disk size of the underlying edge list."""
        return estimated_size_bytes(self.graph)

    def non_empty_partitions(self) -> List[ShardEdgePartition]:
        """Partitions that hold at least one edge."""
        return [p for p in self.partitions if p.num_edges > 0]

    def out_degrees(self) -> dict:
        """Out-degree of every vertex (convenience passthrough)."""
        return self.graph.out_degrees()

    def release(self) -> None:
        """Release every partition's mapping."""
        for partition in self.partitions:
            partition.release()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedGraph(strategy={self.strategy_name!r}, "
            f"partitions={self.num_partitions}, edges={self.graph.num_edges})"
        )


def _validated_partition_path(
    store: ArtifactStore,
    key: Dict[str, object],
    partition_id: int,
    expected_edges: int,
) -> Optional[str]:
    """Header-check one partition sidecar; ``None`` when missing/corrupt."""
    path = store.shard_member_path(key, partition_member_name(partition_id))
    try:
        mapped = np.load(path, mmap_mode="r")
    except (OSError, ValueError):
        return None
    ok = (
        mapped.dtype == np.int64
        and mapped.ndim == 2
        and mapped.shape[0] == 2
        and mapped.shape[1] == expected_edges
    )
    del mapped
    return path if ok else None


def load_sharded_graph(
    store: ArtifactStore,
    key: Dict[str, object],
    chunk_edges: int = DEFAULT_CHUNK_EDGES,
    count: bool = True,
) -> Optional[ShardedGraph]:
    """Load the shard stored under ``key``; ``None`` (a counted miss) if absent.

    The loader owns the hit/miss verdict: a shard only counts as a hit when
    the manifest, the vertex table and **every** partition sidecar it
    references are present and structurally sound (dtype, shape and edge
    counts all match the manifest).  Anything less — a truncated ``.npy``,
    a vertex table that does not decompress, a missing sidecar — is a miss,
    so callers rebuild instead of serving a corrupt graph.  ``count=False``
    skips the store's hit/miss accounting (the ingest driver's
    load-after-build verification is not a cache lookup).
    """

    def verdict(hit: bool) -> None:
        if count:
            store.count_shard(hit)

    manifest = store.load_shard_manifest(key)
    if manifest is None:
        verdict(False)
        return None
    try:
        num_partitions = int(manifest["num_partitions"])
        num_edges = int(manifest["num_edges"])
        edge_counts = [int(c) for c in manifest["edge_counts"]]
        partition_members = dict(manifest["members"]["partitions"])
        vertex_member = str(manifest["members"]["vertex_table"])
        dataset = str(manifest.get("dataset", ""))
        strategy_name = str(manifest.get("strategy_name", ""))
    except (KeyError, TypeError, ValueError):
        verdict(False)
        return None
    if len(edge_counts) != num_partitions or sum(edge_counts) != num_edges:
        verdict(False)
        return None

    try:
        with np.load(store.shard_member_path(key, vertex_member)) as payload:
            vertex_ids = payload["vertex_ids"].astype(np.int64, copy=False)
            out_degree = payload["out_degree"].astype(np.int64, copy=False)
            in_degree = payload["in_degree"].astype(np.int64, copy=False)
            pair_vertex = payload["pair_vertex"].astype(np.int64, copy=False)
            pair_partition = payload["pair_partition"].astype(np.int64, copy=False)
    except (OSError, KeyError, ValueError, zipfile.BadZipFile, EOFError):
        verdict(False)
        return None
    if (
        out_degree.size != vertex_ids.size
        or in_degree.size != vertex_ids.size
        or pair_vertex.size != pair_partition.size
    ):
        verdict(False)
        return None

    membership = VertexMembership(pair_vertex, pair_partition, num_partitions)
    partitions: List[ShardEdgePartition] = []
    for pid in range(num_partitions):
        expected = edge_counts[pid]
        path: Optional[str] = None
        if expected > 0:
            if partition_members.get(str(pid)) != partition_member_name(pid):
                verdict(False)
                return None
            path = _validated_partition_path(store, key, pid, expected)
            if path is None:
                verdict(False)
                return None
        partitions.append(
            ShardEdgePartition(
                partition_id=pid,
                path=path,
                num_edges=expected,
                vertex_ids=membership.vertices_of_partition(pid),
            )
        )

    verdict(True)
    vertex_table = _ShardVertexTable(
        name=dataset,
        vertex_ids=vertex_ids,
        out_degree=out_degree,
        in_degree=in_degree,
        num_edges=num_edges,
    )
    return ShardedGraph(
        vertex_table=vertex_table,
        partitions=partitions,
        membership=membership,
        strategy_name=strategy_name,
        chunk_edges=chunk_edges,
    )
