"""Spill-to-store partition sharding: the out-of-core ingest engine.

:class:`PartitionShardWriter` consumes an
:class:`~repro.ooc.chunks.EdgeChunkSource` one bounded chunk at a time,
drives a partition strategy through its
:meth:`~repro.partitioning.base.PartitionStrategy.begin_stream` chunk
assigner (so Greedy/HDRF/Fennel place edges with the exact scoring state
a whole-graph ``assign`` would have), appends each partition's edges to a
per-partition spill file, and finalises everything as one content-
addressed **shard** artifact in the
:class:`~repro.session.store.ArtifactStore`:

* ``<digest>.json`` — the manifest (written last: the commit point);
* ``<digest>.vtx.npz`` — the vertex table: sorted vertex ids, degrees and
  the membership pair arrays (O(vertices + replicas): this is the part of
  the graph that stays in RAM at run time);
* ``<digest>.pNNNNN.npy`` — one raw ``(2, edges)`` int64 array of
  partition-local triplet indices per non-empty partition, saved as plain
  ``.npy`` (not ``.npz``) so the engine can serve it with
  ``np.load(mmap_mode="r")``.

Peak writer memory is O(chunk + vertices + replicas): the placement loop
touches one chunk at a time and nothing else, and finalisation re-reads
the spill files in bounded blocks — first to derive each partition's
mirror vertex set (and from those the membership pairs and degree
tables), then to translate global ids to partition-local indices while
streaming each ``.npy`` straight to disk through
:meth:`~repro.session.store.ArtifactStore.open_shard_member`.  No stage
ever materialises a whole partition, let alone the whole edge set.
"""

from __future__ import annotations

import io
import os
import shutil
from typing import Dict, IO, Iterator

import numpy as np

from ..errors import PartitioningError
from ..partitioning.base import PartitionStrategy
from ..partitioning.membership import VertexMembership, _unique_pairs
from ..session.store import STORE_FORMAT_VERSION, ArtifactStore
from .chunks import EdgeChunkSource

__all__ = [
    "FINALIZE_BLOCK_EDGES",
    "PartitionShardWriter",
    "partition_member_name",
    "write_shards",
]

#: Edges per block when finalisation streams a spill file back in; each
#: block is ``16 * FINALIZE_BLOCK_EDGES`` bytes of resident memory.
FINALIZE_BLOCK_EDGES = 262_144


def partition_member_name(partition_id: int) -> str:
    """Sidecar member name of one partition's edge file."""
    return f"p{partition_id:05d}.npy"


def _iter_spill_blocks(spill_path: str, count: int) -> Iterator[np.ndarray]:
    """Yield one spill file as bounded ``(block, 2)`` int64 arrays, in
    the exact order the edges were spilled."""
    block_bytes = FINALIZE_BLOCK_EDGES * 16
    with open(spill_path, "rb") as handle:
        remaining = count
        while remaining > 0:
            data = handle.read(min(block_bytes, remaining * 16))
            if not data:
                break
            block = np.frombuffer(data, dtype=np.int64).reshape(-1, 2)
            remaining -= block.shape[0]
            yield block


class PartitionShardWriter:
    """Stream a chunk source through a partitioner into a shard artifact."""

    def __init__(
        self,
        store: ArtifactStore,
        key: Dict[str, object],
        strategy: PartitionStrategy,
        num_partitions: int,
    ) -> None:
        self.store = store
        self.key = key
        self.strategy = strategy
        self.num_partitions = int(num_partitions)

    # ------------------------------------------------------------------
    def ingest(self, source: EdgeChunkSource) -> Dict[str, object]:
        """Partition ``source`` chunk by chunk and publish the shard.

        Returns the manifest that was written.  The spill directory lives
        next to the shard files and is removed on every exit path; the
        manifest is written only after every sidecar has been published, so
        an interrupted ingest can never leave a loadable-but-wrong shard.

        The chunk loop does nothing but place, spill and count — all
        per-vertex bookkeeping (membership, degrees) is derived from the
        spill files afterwards, so no O(vertices) table is rebuilt per
        chunk.
        """
        num_edges = source.num_edges
        assigner = self.strategy.begin_stream(self.num_partitions, num_edges)

        shards_dir = os.path.join(self.store.root, "shards")
        os.makedirs(shards_dir, exist_ok=True)
        spill_dir = os.path.join(
            shards_dir, f".ingest-{os.getpid()}-{os.urandom(6).hex()}"
        )
        os.makedirs(spill_dir)
        spill_handles: Dict[int, IO[bytes]] = {}

        edge_counts = np.zeros(self.num_partitions, dtype=np.int64)
        total_edges = 0

        try:
            for src, dst in source.chunks():
                src = np.asarray(src, dtype=np.int64)
                dst = np.asarray(dst, dtype=np.int64)
                if src.shape != dst.shape or src.ndim != 1:
                    raise PartitioningError(
                        "chunk source must yield matching 1-D (src, dst) arrays"
                    )
                if src.size == 0:
                    continue
                placement = np.asarray(
                    assigner.assign_chunk(src, dst), dtype=np.int64
                )
                if placement.shape != src.shape:
                    raise PartitioningError(
                        f"{self.strategy.name}: assign_chunk returned "
                        f"{placement.shape[0] if placement.ndim else 'scalar'} "
                        f"placements for {src.size} edges"
                    )
                if placement.size and (
                    int(placement.min()) < 0
                    or int(placement.max()) >= self.num_partitions
                ):
                    raise PartitioningError(
                        f"{self.strategy.name}: assign_chunk produced partition ids "
                        f"outside [0, {self.num_partitions})"
                    )
                total_edges += int(src.size)

                self._spill_chunk(spill_dir, spill_handles, src, dst, placement)
                edge_counts += np.bincount(placement, minlength=self.num_partitions)

            assigner.finish()
            for handle in spill_handles.values():
                handle.close()
            spill_handles.clear()

            return self._finalize(source, spill_dir, edge_counts, total_edges)
        finally:
            for handle in spill_handles.values():
                try:
                    handle.close()
                except OSError:
                    pass
            shutil.rmtree(spill_dir, ignore_errors=True)

    # ------------------------------------------------------------------
    def _spill_chunk(
        self,
        spill_dir: str,
        spill_handles: Dict[int, IO[bytes]],
        src: np.ndarray,
        dst: np.ndarray,
        placement: np.ndarray,
    ) -> None:
        """Append this chunk's edges to their partitions' spill files.

        The stable sort preserves stream order within each partition, so a
        finalised partition holds its edges in exactly the order the
        in-memory ``PartitionedGraph.partitions`` grouping produces.
        """
        order = np.argsort(placement, kind="stable")
        sorted_pids = placement[order]
        bounds = np.searchsorted(sorted_pids, np.arange(self.num_partitions + 1))
        interleaved = np.empty((src.size, 2), dtype=np.int64)
        interleaved[:, 0] = src[order]
        interleaved[:, 1] = dst[order]
        for pid in np.unique(sorted_pids).tolist():
            handle = spill_handles.get(pid)
            if handle is None:
                handle = open(os.path.join(spill_dir, f"part-{pid:05d}.bin"), "ab")
                spill_handles[pid] = handle
            handle.write(interleaved[bounds[pid]:bounds[pid + 1]])

    def _mirror_sets(
        self, spill_dir: str, edge_counts: np.ndarray
    ) -> Dict[int, np.ndarray]:
        """Pass 1: each non-empty partition's sorted unique endpoint set,
        gathered block by block from its spill file."""
        mirrors: Dict[int, np.ndarray] = {}
        for pid in range(self.num_partitions):
            count = int(edge_counts[pid])
            if count == 0:
                continue
            spill_path = os.path.join(spill_dir, f"part-{pid:05d}.bin")
            on_disk = os.path.getsize(spill_path) // 16
            if on_disk != count:
                raise PartitioningError(
                    f"spill file for partition {pid} holds {on_disk} edges, "
                    f"expected {count}"
                )
            mirror = np.empty(0, dtype=np.int64)
            for block in _iter_spill_blocks(spill_path, count):
                mirror = np.union1d(mirror, block)
            mirrors[pid] = mirror
        return mirrors

    def _finalize(
        self,
        source: EdgeChunkSource,
        spill_dir: str,
        edge_counts: np.ndarray,
        total_edges: int,
    ) -> Dict[str, object]:
        mirrors = self._mirror_sets(spill_dir, edge_counts)

        # Every (vertex, partition) pair, sorted by vertex then partition.
        # Pairs from different partitions are already distinct, so the one
        # _unique_pairs call is a pure lexsort — the per-chunk merges this
        # replaces dominated ingest time on multi-ten-million-edge runs.
        if mirrors:
            pair_vertex, pair_partition = _unique_pairs(
                np.concatenate(list(mirrors.values())),
                np.concatenate(
                    [
                        np.full(mirror.size, pid, dtype=np.int64)
                        for pid, mirror in mirrors.items()
                    ]
                ),
                self.num_partitions,
            )
        else:
            pair_vertex = np.empty(0, dtype=np.int64)
            pair_partition = np.empty(0, dtype=np.int64)
        membership = VertexMembership(
            pair_vertex, pair_partition, self.num_partitions
        )

        # The graph's vertex set: every placed endpoint, plus any isolated
        # vertices the source knows about (GraphChunkSource round trips).
        vertex_ids = membership.vertices
        source_vertices = source.vertex_ids
        if source_vertices is not None:
            vertex_ids = np.union1d(
                vertex_ids, np.asarray(source_vertices, dtype=np.int64)
            )
        out_degree = np.zeros(vertex_ids.size, dtype=np.int64)
        in_degree = np.zeros(vertex_ids.size, dtype=np.int64)

        # Clear any previous shard under this key before publishing new
        # sidecars, so stale partition files from a differently-shaped
        # predecessor can never be referenced again.
        self.store.discard_shard(self.key)

        # Pass 2: translate each partition's spill to local indices and
        # stream the (2, count) ``.npy`` straight to its published path —
        # row 0 (src) then row 1 (dst), one bounded block at a time.
        # Degrees fall out of the same translated blocks for free.
        partition_members: Dict[str, str] = {}
        for pid in range(self.num_partitions):
            count = int(edge_counts[pid])
            if count == 0:
                continue
            spill_path = os.path.join(spill_dir, f"part-{pid:05d}.bin")
            mirror = mirrors[pid]
            member = partition_member_name(pid)
            local_degrees = [
                np.zeros(mirror.size, dtype=np.int64),
                np.zeros(mirror.size, dtype=np.int64),
            ]
            with self.store.open_shard_member(self.key, member) as handle:
                np.lib.format.write_array_header_1_0(
                    handle,
                    {"descr": "<i8", "fortran_order": False, "shape": (2, count)},
                )
                for column in (0, 1):
                    for block in _iter_spill_blocks(spill_path, count):
                        local = np.searchsorted(mirror, block[:, column]).astype(
                            np.int64, copy=False
                        )
                        local_degrees[column] += np.bincount(
                            local, minlength=mirror.size
                        )
                        handle.write(np.ascontiguousarray(local))
            where = np.searchsorted(vertex_ids, mirror)
            out_degree[where] += local_degrees[0]
            in_degree[where] += local_degrees[1]
            partition_members[str(pid)] = member
            os.remove(spill_path)

        vertex_buffer = io.BytesIO()
        np.savez_compressed(
            vertex_buffer,
            vertex_ids=vertex_ids,
            out_degree=out_degree,
            in_degree=in_degree,
            pair_vertex=membership.pair_vertex,
            pair_partition=membership.pair_partition,
        )
        self.store.save_shard_member(self.key, "vtx.npz", vertex_buffer.getvalue())

        manifest: Dict[str, object] = {
            "format_version": STORE_FORMAT_VERSION,
            "dataset": source.name,
            "strategy_name": self.strategy.name,
            "num_partitions": self.num_partitions,
            "num_edges": int(total_edges),
            "num_vertices": int(vertex_ids.size),
            "edge_counts": [int(c) for c in edge_counts.tolist()],
            "members": {
                "vertex_table": "vtx.npz",
                "partitions": partition_members,
            },
        }
        self.store.save_shard_manifest(self.key, manifest)
        return manifest


def write_shards(
    store: ArtifactStore,
    key: Dict[str, object],
    strategy: PartitionStrategy,
    num_partitions: int,
    source: EdgeChunkSource,
) -> Dict[str, object]:
    """Convenience wrapper: ingest ``source`` into a shard under ``key``."""
    writer = PartitionShardWriter(store, key, strategy, num_partitions)
    return writer.ingest(source)
