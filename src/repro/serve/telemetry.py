"""Request telemetry: per-endpoint counters and latency histograms.

Latencies land in fixed geometric buckets (50µs .. 30s), so recording is
O(1) per request, memory is constant, and percentiles are computed on
demand by walking the cumulative counts with linear interpolation inside
the winning bucket — the classic load-balancer histogram trade-off:
cheap writes, approximate (but bounded-error) reads.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

__all__ = ["LatencyHistogram", "EndpointStats", "ServerTelemetry"]

#: Bucket upper bounds in milliseconds (geometric, ~x2.2 steps), plus an
#: implicit overflow bucket for anything slower than the last bound.
_BUCKET_BOUNDS_MS: List[float] = [
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0, 30000.0,
]


class LatencyHistogram:
    """Fixed-bucket latency histogram with interpolated percentiles."""

    def __init__(self) -> None:
        self._counts = [0] * (len(_BUCKET_BOUNDS_MS) + 1)
        self.count = 0
        self.total_ms = 0.0
        self.max_ms = 0.0

    def record(self, seconds: float) -> None:
        ms = seconds * 1000.0
        slot = len(_BUCKET_BOUNDS_MS)
        for i, bound in enumerate(_BUCKET_BOUNDS_MS):
            if ms <= bound:
                slot = i
                break
        self._counts[slot] += 1
        self.count += 1
        self.total_ms += ms
        if ms > self.max_ms:
            self.max_ms = ms

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0..100) in milliseconds, interpolated
        within the winning bucket; 0.0 when nothing was recorded."""
        if self.count == 0:
            return 0.0
        rank = q / 100.0 * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self._counts):
            if bucket_count == 0:
                continue
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank:
                lower = 0.0 if i == 0 else _BUCKET_BOUNDS_MS[i - 1]
                upper = _BUCKET_BOUNDS_MS[i] if i < len(_BUCKET_BOUNDS_MS) else self.max_ms
                if upper < lower:
                    upper = lower
                fraction = (rank - previous) / bucket_count
                # Interpolating toward the bucket bound can overshoot the
                # largest sample actually seen; the true value never does.
                return min(lower + (upper - lower) * fraction, self.max_ms)
        return self.max_ms

    def as_dict(self) -> Dict[str, float]:
        mean = self.total_ms / self.count if self.count else 0.0
        return {
            "count": self.count,
            "mean_ms": round(mean, 3),
            "p50_ms": round(self.percentile(50), 3),
            "p90_ms": round(self.percentile(90), 3),
            "p99_ms": round(self.percentile(99), 3),
            "max_ms": round(self.max_ms, 3),
        }


class EndpointStats:
    """Request count, error count and latency histogram of one endpoint."""

    def __init__(self) -> None:
        self.requests = 0
        self.errors = 0
        self.histogram = LatencyHistogram()

    def record(self, seconds: float, status: int) -> None:
        self.requests += 1
        if status >= 400:
            self.errors += 1
        self.histogram.record(seconds)

    def as_dict(self) -> Dict[str, object]:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "latency": self.histogram.as_dict(),
        }


class ServerTelemetry:
    """Thread-safe registry of per-endpoint stats for ``/stats``."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._endpoints: Dict[str, EndpointStats] = {}
        self.started_monotonic = time.monotonic()
        self.started_unix = time.time()

    def record(self, endpoint: str, seconds: float, status: int) -> None:
        with self._lock:
            stats = self._endpoints.get(endpoint)
            if stats is None:
                stats = self._endpoints[endpoint] = EndpointStats()
            stats.record(seconds, status)

    def endpoint(self, name: str) -> Optional[EndpointStats]:
        with self._lock:
            return self._endpoints.get(name)

    @property
    def total_requests(self) -> int:
        with self._lock:
            return sum(stats.requests for stats in self._endpoints.values())

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            endpoints = {
                name: stats.as_dict() for name, stats in sorted(self._endpoints.items())
            }
        return {
            "uptime_seconds": round(time.monotonic() - self.started_monotonic, 3),
            "requests_total": sum(e["requests"] for e in endpoints.values()),
            "endpoints": endpoints,
        }
