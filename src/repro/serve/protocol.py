"""JSON-over-HTTP wire protocol of the ``repro serve`` daemon.

The server speaks a deliberately small dialect: every response body is a
JSON object, every error is a JSON object of the shape
``{"error": {"status": ..., "message": ...}}``, and request inputs
arrive as URL query parameters.  This module owns the pieces shared by
the server loop and the router — typed parameter extraction (bad input
raises :class:`ServeError`, which the router turns into a 4xx response
instead of a daemon crash) and HTTP response formatting.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from ..errors import ReproError

__all__ = [
    "ServeError",
    "HTTP_REASONS",
    "error_payload",
    "render_response",
    "get_str",
    "require_int",
    "get_int",
    "get_flag",
]

#: Reason phrases for the status codes the daemon emits.
HTTP_REASONS: Dict[int, str] = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ServeError(ReproError):
    """A request-level failure carrying the HTTP status to report.

    Raised by parameter extraction and query handlers for *client*
    mistakes (missing vertex, unknown dataset, malformed integer); the
    router maps it to a JSON error response, so a bad request can never
    take the daemon down.
    """

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = int(status)


def error_payload(status: int, message: str) -> Dict[str, object]:
    """The canonical JSON error body."""
    return {"error": {"status": int(status), "message": str(message)}}


def render_response(
    status: int, payload: Dict[str, object], keep_alive: bool = True
) -> bytes:
    """Serialise one complete HTTP/1.1 response with a JSON body."""
    body = json.dumps(payload).encode("utf-8")
    reason = HTTP_REASONS.get(status, "Unknown")
    connection = "keep-alive" if keep_alive else "close"
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {connection}\r\n"
        f"\r\n"
    )
    return head.encode("ascii") + body


# ----------------------------------------------------------------------
# Typed query-parameter extraction
# ----------------------------------------------------------------------
def get_str(params: Dict[str, str], name: str, default: Optional[str] = None) -> Optional[str]:
    """The raw string value of ``name`` (or ``default``)."""
    value = params.get(name)
    if value is None or value == "":
        return default
    return value


def require_int(params: Dict[str, str], name: str) -> int:
    """The integer value of a mandatory parameter (400 when absent or bad)."""
    raw = params.get(name)
    if raw is None or raw == "":
        raise ServeError(f"missing required parameter {name!r}")
    try:
        return int(raw)
    except ValueError:
        raise ServeError(f"parameter {name!r} must be an integer, got {raw!r}")


def get_int(
    params: Dict[str, str],
    name: str,
    default: int,
    minimum: Optional[int] = None,
    maximum: Optional[int] = None,
) -> int:
    """The integer value of an optional parameter, range-checked."""
    raw = params.get(name)
    if raw is None or raw == "":
        value = int(default)
    else:
        try:
            value = int(raw)
        except ValueError:
            raise ServeError(f"parameter {name!r} must be an integer, got {raw!r}")
    if minimum is not None and value < minimum:
        raise ServeError(f"parameter {name!r} must be >= {minimum}, got {value}")
    if maximum is not None and value > maximum:
        raise ServeError(f"parameter {name!r} must be <= {maximum}, got {value}")
    return value


def get_flag(params: Dict[str, str], name: str, default: bool = False) -> bool:
    """A boolean parameter: ``1/true/yes/on`` are truthy, ``0/false/no/off`` falsy."""
    raw = params.get(name)
    if raw is None or raw == "":
        return default
    lowered = raw.strip().lower()
    if lowered in ("1", "true", "yes", "on"):
        return True
    if lowered in ("0", "false", "no", "off"):
        return False
    raise ServeError(f"parameter {name!r} must be a boolean flag, got {raw!r}")
