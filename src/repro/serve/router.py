"""Request routing and instrumentation for the serve daemon.

The :class:`Router` maps ``(method, path)`` pairs onto async handlers,
times every dispatch into the shared
:class:`~repro.serve.telemetry.ServerTelemetry`, and converts failures
into JSON error responses: :class:`~repro.serve.protocol.ServeError`
keeps its status (the 4xx family), any other
:class:`~repro.errors.ReproError` is a 400, and an unexpected exception
becomes a 500 — in every case the daemon keeps serving.

Endpoints
---------
========================  ====================================================
``GET /health``           liveness + preloaded datasets
``GET /distance``         SSSP distance: landmark estimate, exact on demand
``GET /pagerank/top``     top-k PageRank vertices
``GET /component``        weakly-connected component of a vertex
``GET /vertex``           in/out degree of a vertex
``GET /neighbors``        successor/predecessor list of a vertex
``GET /stats``            endpoint counters, latency histograms, cache/batcher
``POST /shutdown``        clean daemon shutdown
========================  ====================================================
"""

from __future__ import annotations

import asyncio
import time
import traceback
from typing import Awaitable, Callable, Dict, Optional, Tuple

from ..errors import ReproError
from .batcher import BatchingScheduler
from .cache import QueryCache
from .protocol import (
    ServeError,
    error_payload,
    get_flag,
    get_int,
    get_str,
    require_int,
)
from .service import GraphService
from .telemetry import ServerTelemetry

__all__ = ["Handler", "Router"]

Handler = Callable[[Dict[str, str]], Awaitable[Dict[str, object]]]


class Router:
    """Dispatch table plus per-endpoint telemetry for the HTTP front."""

    def __init__(
        self,
        service: GraphService,
        batcher: BatchingScheduler,
        top_k_default: int = 10,
        neighbor_limit_default: int = 100,
        shutdown_event: Optional[asyncio.Event] = None,
    ) -> None:
        self.service = service
        self.batcher = batcher
        self.cache: QueryCache = service.cache
        self.telemetry = ServerTelemetry()
        self.top_k_default = int(top_k_default)
        self.neighbor_limit_default = int(neighbor_limit_default)
        self.shutdown_event = shutdown_event or asyncio.Event()
        self._routes: Dict[Tuple[str, str], Handler] = {
            ("GET", "/health"): self._health,
            ("GET", "/distance"): self._distance,
            ("GET", "/pagerank/top"): self._pagerank_top,
            ("GET", "/component"): self._component,
            ("GET", "/vertex"): self._vertex,
            ("GET", "/neighbors"): self._neighbors,
            ("GET", "/stats"): self._stats,
            ("POST", "/shutdown"): self._shutdown,
        }

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def dispatch(
        self, method: str, path: str, params: Dict[str, str]
    ) -> Tuple[int, Dict[str, object]]:
        """Route one request; always returns ``(status, payload)``."""
        handler = self._routes.get((method, path))
        if handler is None:
            known_paths = {route_path for _, route_path in self._routes}
            if path in known_paths:
                status, payload = 405, error_payload(
                    405, f"method {method} not allowed for {path}"
                )
            else:
                status, payload = 404, error_payload(404, f"unknown endpoint {path!r}")
            self.telemetry.record(path, 0.0, status)
            return status, payload

        started = time.perf_counter()
        try:
            payload = await handler(params)
            status = 200
        except ServeError as error:
            status, payload = error.status, error_payload(error.status, str(error))
        except ReproError as error:
            status, payload = 400, error_payload(400, str(error))
        except Exception as error:  # noqa: BLE001 - the daemon must not die
            traceback.print_exc()
            status, payload = 500, error_payload(
                500, f"internal error: {type(error).__name__}: {error}"
            )
        self.telemetry.record(path, time.perf_counter() - started, status)
        return status, payload

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    async def _health(self, params: Dict[str, str]) -> Dict[str, object]:
        return {
            "status": "ok",
            "datasets": self.service.datasets,
            "uptime_seconds": round(
                time.monotonic() - self.telemetry.started_monotonic, 3
            ),
        }

    async def _distance(self, params: Dict[str, str]) -> Dict[str, object]:
        dataset = self.service.resolve(get_str(params, "dataset"))
        source = require_int(params, "source")
        target = require_int(params, "target")
        want_exact = get_flag(params, "exact", default=False)

        # Validate both endpoints up front so bad vertices are a 404, not
        # a wasted engine run.
        matrix = self.service.matrix(dataset)
        try:
            matrix.index_of(source)
            matrix.index_of(target)
        except ReproError as exc:
            raise ServeError(str(exc), status=404) from None

        payload: Dict[str, object] = {
            "dataset": dataset,
            "source": source,
            "target": target,
        }

        exact_key = self.service.exact_map_key(dataset, source)
        hit, exact_map = self.cache.lookup(exact_key)
        if hit:
            distance = exact_map.get(target)
            payload.update(
                method="exact", cached=True, distance=distance,
                reachable=distance is not None,
            )
            return payload

        if not want_exact:
            estimate = self.service.estimate_distance(dataset, source, target)
            if estimate is not None:
                payload.update(
                    method="estimate", cached=False, distance=estimate,
                    reachable=True, landmarks=matrix.num_landmarks,
                )
                return payload
            # No landmark connects the pair: fall through to the exact
            # path so "unreachable" is an answer, not a guess.
            payload["estimate_fallback"] = True

        exact_map = await self.batcher.submit((dataset, source))
        distance = exact_map.get(target)
        payload.update(
            method="exact", cached=False, distance=distance,
            reachable=distance is not None,
        )
        return payload

    async def _pagerank_top(self, params: Dict[str, str]) -> Dict[str, object]:
        dataset = self.service.resolve(get_str(params, "dataset"))
        k = get_int(params, "k", default=self.top_k_default, minimum=1, maximum=10000)
        key = QueryCache.key(
            kind="pagerank-top",
            dataset=dataset,
            k=k,
            iterations=self.service.pagerank_iterations,
        )
        hit, top = self.cache.lookup(key)
        if not hit:
            loop = asyncio.get_running_loop()
            top = await loop.run_in_executor(
                None, self.service.top_pagerank, dataset, k
            )
            self.cache.put(key, top)
        return {
            "dataset": dataset,
            "k": k,
            "iterations": self.service.pagerank_iterations,
            "cached": hit,
            "top": top,
        }

    async def _component(self, params: Dict[str, str]) -> Dict[str, object]:
        dataset = self.service.resolve(get_str(params, "dataset"))
        vertex = require_int(params, "vertex")
        loop = asyncio.get_running_loop()
        payload = await loop.run_in_executor(
            None, self.service.component_of, dataset, vertex
        )
        payload["dataset"] = dataset
        return payload

    async def _vertex(self, params: Dict[str, str]) -> Dict[str, object]:
        dataset = self.service.resolve(get_str(params, "dataset"))
        vertex = require_int(params, "vertex")
        payload = self.service.vertex_info(dataset, vertex)
        payload["dataset"] = dataset
        return payload

    async def _neighbors(self, params: Dict[str, str]) -> Dict[str, object]:
        dataset = self.service.resolve(get_str(params, "dataset"))
        vertex = require_int(params, "vertex")
        direction = get_str(params, "direction", "out")
        limit = get_int(
            params, "limit", default=self.neighbor_limit_default, minimum=1
        )
        payload = self.service.neighbors(dataset, vertex, direction, limit)
        payload["dataset"] = dataset
        return payload

    async def _stats(self, params: Dict[str, str]) -> Dict[str, object]:
        snapshot = self.telemetry.snapshot()
        snapshot.update(
            {
                "datasets": self.service.graph_summaries(),
                "query_cache": self.cache.stats(),
                "batcher": dict(
                    self.batcher.stats.as_dict(),
                    window_ms=round(self.batcher.window_seconds * 1000.0, 3),
                    max_batch=self.batcher.max_batch,
                ),
                "engine_runs": self.service.engine_runs,
                "engine": self.service.engine_summary(),
                "session": self.service.session.stats.as_dict(),
            }
        )
        return snapshot

    async def _shutdown(self, params: Dict[str, str]) -> Dict[str, object]:
        self.shutdown_event.set()
        return {"status": "shutting down"}
