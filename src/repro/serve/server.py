"""The long-lived HTTP daemon behind ``repro serve``.

A deliberately small HTTP/1.1 server on raw ``asyncio`` streams (stdlib
only, no new dependencies): request line + headers + optional
``Content-Length`` body in, JSON out, keep-alive by default so a load
generator can hold thousands of concurrent connections without paying
per-request handshakes.  Anything unparseable is answered with a 400
JSON error and the connection is closed — a malformed request can never
take the daemon down.

:func:`serve_forever` is the blocking entry point the CLI uses: it binds
the socket, prints the serving banner, and runs until SIGINT/SIGTERM or
a ``POST /shutdown`` fires the router's shutdown event.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
import sys
from typing import Dict, Optional, TextIO, Tuple
from urllib.parse import parse_qsl, urlsplit

from .batcher import BatchingScheduler
from .protocol import error_payload, render_response
from .router import Router
from .service import GraphService

__all__ = [
    "GraphQueryServer",
    "IDLE_TIMEOUT_SECONDS",
    "MAX_BODY_BYTES",
    "MAX_LINE_BYTES",
    "serve_forever",
]

#: Seconds an idle keep-alive connection may sit before the server closes it.
IDLE_TIMEOUT_SECONDS = 120.0
#: Hard cap on request-line/header sizes (bytes); beyond this is a 400.
MAX_LINE_BYTES = 16384
#: Hard cap on request bodies (the protocol has no body-carrying endpoint
#: that needs more).
MAX_BODY_BYTES = 1 << 20


class GraphQueryServer:
    """Asyncio HTTP front over a :class:`~repro.serve.router.Router`."""

    def __init__(self, router: Router, host: str = "127.0.0.1", port: int = 8080) -> None:
        self.router = router
        self.host = host
        self.port = int(port)
        self._server: Optional[asyncio.base_events.Server] = None

    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the actual ``(host, port)``
        (useful when constructed with port 0)."""
        self._server = await asyncio.start_server(
            self._handle_client, host=self.host, port=self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], int(sockname[1])
        return self.host, self.port

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.router.batcher.close()

    async def serve_until_shutdown(self) -> None:
        """Run until the router's shutdown event fires, then close."""
        if self._server is None:
            await self.start()
        await self.router.shutdown_event.wait()
        await self.close()

    # ------------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                keep_alive = await self._handle_one_request(reader, writer)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _handle_one_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        """Serve one request; returns whether to keep the connection open."""
        try:
            request_line = await asyncio.wait_for(
                reader.readline(), timeout=IDLE_TIMEOUT_SECONDS
            )
        except asyncio.TimeoutError:
            return False
        if not request_line:
            return False  # clean EOF between requests
        if len(request_line) > MAX_LINE_BYTES:
            await self._respond(writer, 400, "request line too long", close=True)
            return False

        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            await self._respond(writer, 400, "malformed request line", close=True)
            return False
        method, raw_target, version = parts[0].upper(), parts[1], parts[2]

        headers, ok = await self._read_headers(reader)
        if not ok:
            await self._respond(writer, 400, "malformed headers", close=True)
            return False

        # Drain (and bound) any body so keep-alive framing stays intact.
        length_text = headers.get("content-length", "0")
        try:
            content_length = int(length_text)
        except ValueError:
            await self._respond(writer, 400, "bad Content-Length", close=True)
            return False
        if content_length < 0 or content_length > MAX_BODY_BYTES:
            await self._respond(writer, 400, "unacceptable Content-Length", close=True)
            return False
        if content_length:
            try:
                await reader.readexactly(content_length)
            except asyncio.IncompleteReadError:
                return False

        split = urlsplit(raw_target)
        params: Dict[str, str] = dict(parse_qsl(split.query, keep_blank_values=True))

        status, payload = await self.router.dispatch(method, split.path, params)

        wants_close = (
            headers.get("connection", "").lower() == "close" or version == "HTTP/1.0"
        )
        writer.write(render_response(status, payload, keep_alive=not wants_close))
        await writer.drain()
        return not wants_close

    @staticmethod
    async def _read_headers(
        reader: asyncio.StreamReader,
    ) -> Tuple[Dict[str, str], bool]:
        headers: Dict[str, str] = {}
        while True:
            line = await asyncio.wait_for(reader.readline(), timeout=IDLE_TIMEOUT_SECONDS)
            if not line or len(line) > MAX_LINE_BYTES or len(headers) > 100:
                return headers, False
            text = line.decode("latin-1").rstrip("\r\n")
            if not text:
                return headers, True
            name, separator, value = text.partition(":")
            if not separator:
                return headers, False
            headers[name.strip().lower()] = value.strip()

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter, status: int, message: str, close: bool = False
    ) -> None:
        writer.write(
            render_response(status, error_payload(status, message), keep_alive=not close)
        )
        await writer.drain()


def serve_forever(
    service: GraphService,
    host: str = "127.0.0.1",
    port: int = 8080,
    batch_window_ms: int = 25,
    max_batch: int = 256,
    top_k_default: int = 10,
    stream: Optional[TextIO] = None,
) -> Dict[str, object]:
    """Blocking entry point: preloaded ``service`` -> daemon until shutdown.

    Returns a final summary (requests served, uptime) after a clean
    shutdown via signal or ``POST /shutdown``.
    """
    out = stream if stream is not None else sys.stdout

    async def _main() -> Dict[str, object]:
        batcher = BatchingScheduler(
            service.run_batch,
            window_seconds=batch_window_ms / 1000.0,
            max_batch=max_batch,
        )
        router = Router(service, batcher, top_k_default=top_k_default)
        server = GraphQueryServer(router, host=host, port=port)
        bound_host, bound_port = await server.start()

        loop = asyncio.get_running_loop()
        for signal_number in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.add_signal_handler(signal_number, router.shutdown_event.set)

        print(
            f"serving {', '.join(service.datasets)} on "
            f"http://{bound_host}:{bound_port} (POST /shutdown or Ctrl+C to stop)",
            file=out,
            flush=True,
        )
        await server.serve_until_shutdown()
        summary = {
            "requests_total": router.telemetry.total_requests,
            "engine_runs": service.engine_runs,
            "query_cache": router.cache.stats(),
            "batcher": router.batcher.stats.as_dict(),
        }
        print(
            f"shutdown: served {summary['requests_total']} requests, "
            f"{summary['engine_runs']} engine runs, "
            f"{summary['batcher']['batches']} batched sweeps",
            file=out,
            flush=True,
        )
        return summary

    return asyncio.run(_main())
