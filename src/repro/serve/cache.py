"""LRU cache for hot query results, keyed like store artifacts.

Keys follow the :class:`~repro.session.store.ArtifactStore` addressing
idiom: the logical identity of a query is a flat JSON-serialisable
mapping, canonicalised (sorted keys, no whitespace drift) and hashed
with SHA-256.  Two queries share a cache slot exactly when their
canonical payloads are byte-identical, and the digest keeps arbitrary
payload sizes out of the dict keys.

The cache is shared between the asyncio request handlers and the engine
worker thread that publishes batched SSSP results, so every operation is
lock-protected.  Hit/miss/eviction counters feed the ``/stats``
endpoint.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from ..errors import AnalysisError

__all__ = ["QueryCache"]

#: Sentinel distinguishing "cached None" from "not cached".
_MISSING = object()


class QueryCache:
    """A bounded least-recently-used mapping with hit/miss accounting."""

    def __init__(self, max_entries: int = 1024) -> None:
        if int(max_entries) < 1:
            raise AnalysisError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @staticmethod
    def key(**fields: object) -> str:
        """The content-addressed cache key of a query identity.

        Same idiom as the artifact store: canonical JSON payload,
        SHA-256 digest as the address.
        """
        payload = json.dumps(fields, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def lookup(self, key: str) -> Tuple[bool, Any]:
        """``(hit, value)`` for ``key``; a hit refreshes its recency."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self._misses += 1
                return False, None
            self._entries.move_to_end(key)
            self._hits += 1
            return True, value

    def put(self, key: str, value: Any) -> None:
        """Insert (or refresh) ``key``, evicting the least recent overflow."""
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1

    def peek(self, key: str) -> Optional[Any]:
        """The cached value without touching recency or counters."""
        with self._lock:
            return self._entries.get(key)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, int]:
        """Counters for the ``/stats`` endpoint."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "entries": len(self._entries),
                "max_entries": self.max_entries,
            }
