"""Long-lived graph query service: daemon, router, batching, caching.

The serving layer answers point queries (distances, top-k PageRank,
components, degrees/neighborhoods) over graphs partitioned and preloaded
through a :class:`~repro.session.Session`.  Its centrepiece is the
batching scheduler: concurrent exact-SSSP requests inside one tick
window collapse into a single multi-source Pregel sweep.
"""

from .batcher import BatchStats, BatchingScheduler
from .cache import QueryCache
from .protocol import ServeError
from .router import Router
from .server import GraphQueryServer, serve_forever
from .service import GraphService
from .telemetry import LatencyHistogram, ServerTelemetry

__all__ = [
    "BatchStats",
    "BatchingScheduler",
    "GraphQueryServer",
    "GraphService",
    "LatencyHistogram",
    "QueryCache",
    "Router",
    "ServeError",
    "ServerTelemetry",
    "serve_forever",
]
