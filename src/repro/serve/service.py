"""Query execution behind the serve daemon: preloaded graphs + handlers.

A :class:`GraphService` owns everything query handlers need and nothing
HTTP-shaped: the :class:`~repro.session.Session` (whose
:class:`~repro.session.store.ArtifactStore` makes restarts warm), the
preloaded :class:`~repro.engine.partitioned_graph.PartitionedGraph` per
dataset, the precomputed :class:`~repro.algorithms.shortest_paths.LandmarkMatrix`
for triangle-inequality distance estimates, and lazily-computed full
PageRank / connected-components results that point lookups slice into.

All methods are synchronous and thread-safe; the router calls the cheap
ones directly on the event loop and ships the engine-bound ones
(:meth:`run_batch`, the lazy PR/CC builds) to worker threads.
"""

from __future__ import annotations

import heapq
import threading
import time
from collections import Counter
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..algorithms.connected_components import connected_components
from ..algorithms.pagerank import pagerank
from ..algorithms.shortest_paths import LandmarkMatrix, multi_source_distances
from ..engine.partitioned_graph import PartitionedGraph
from ..errors import EngineError
from ..session.session import Session
from .cache import QueryCache
from .protocol import ServeError

__all__ = ["GraphService", "SSSP_KIND"]

#: Queries whose per-source exact-distance maps land in the query cache.
SSSP_KIND = "sssp-exact"


class GraphService:
    """Preloaded graph state plus the point-query handlers of the daemon."""

    def __init__(
        self,
        session: Session,
        datasets: Sequence[str],
        partitioner: str,
        num_partitions: int,
        landmark_count: int = 5,
        landmark_seed: Optional[int] = None,
        pagerank_iterations: int = 10,
        cache: Optional[QueryCache] = None,
        engine_workers: Optional[int] = None,
    ) -> None:
        if not datasets:
            raise EngineError("at least one dataset is required")
        if engine_workers is not None and int(engine_workers) < 1:
            raise EngineError("engine_workers must be >= 1")
        self.session = session
        self.datasets = [str(name) for name in datasets]
        self.partitioner = partitioner
        self.num_partitions = int(num_partitions)
        self.landmark_count = int(landmark_count)
        self.landmark_seed = landmark_seed
        self.pagerank_iterations = int(pagerank_iterations)
        self.engine_workers = None if engine_workers is None else int(engine_workers)
        self.cache = cache if cache is not None else QueryCache()
        self._pgraphs: Dict[str, PartitionedGraph] = {}
        self._matrices: Dict[str, LandmarkMatrix] = {}
        self._pagerank: Dict[str, Dict[int, float]] = {}
        self._components: Dict[str, Tuple[Dict[int, int], Dict[int, int]]] = {}
        self._lazy_locks: Dict[Tuple[str, str], threading.Lock] = {}
        self._state_lock = threading.Lock()
        self._engine_runs = 0

    # ------------------------------------------------------------------
    # Preloading
    # ------------------------------------------------------------------
    def preload(self) -> List[Dict[str, object]]:
        """Load, partition and landmark-index every configured dataset.

        Returns one summary row per dataset (vertex/edge counts, landmark
        count, matrix bytes, wall seconds) for startup logging.  With a
        session store attached, placements and landmark choices come off
        disk on warm restarts.
        """
        summaries = []
        for name in self.datasets:
            started = time.perf_counter()
            pgraph = self.session.partitioned(
                name, self.partitioner, self.num_partitions, engine_ready=True
            )
            matrix = self.session.landmark_matrix(
                name,
                self.partitioner,
                self.num_partitions,
                count=self.landmark_count,
                seed=self.landmark_seed,
            )
            if self.engine_workers is not None and self.engine_workers > 1:
                # Publish the graph into the shared-memory registry now —
                # the executor's worker pool forks here, on the main
                # thread, before the server's event loop and batcher
                # threads start, and every exact-SSSP batch sweep then
                # attaches instead of paying first-query setup latency.
                from ..engine.parallel import ParallelPregelExecutor, parallel_supported

                if parallel_supported():
                    ParallelPregelExecutor.for_graph(pgraph, self.engine_workers)
            with self._state_lock:
                self._pgraphs[name] = pgraph
                self._matrices[name] = matrix
                self._engine_runs += 2  # one backward + one forward sweep
            summaries.append(
                {
                    "dataset": name,
                    "vertices": pgraph.graph.num_vertices,
                    "edges": pgraph.graph.num_edges,
                    "partitioner": pgraph.strategy_name,
                    "num_partitions": pgraph.num_partitions,
                    "landmarks": matrix.num_landmarks,
                    "matrix_bytes": matrix.nbytes,
                    "seconds": round(time.perf_counter() - started, 3),
                }
            )
        return summaries

    # ------------------------------------------------------------------
    # Shared lookups
    # ------------------------------------------------------------------
    @property
    def default_dataset(self) -> str:
        return self.datasets[0]

    @property
    def engine_runs(self) -> int:
        """How many Pregel/aggregate engine invocations the service has made."""
        with self._state_lock:
            return self._engine_runs

    def _count_engine_run(self) -> None:
        with self._state_lock:
            self._engine_runs += 1

    def resolve(self, dataset: Optional[str]) -> str:
        """Map an optional ``dataset`` query parameter to a preloaded name."""
        if dataset is None:
            return self.default_dataset
        if dataset not in self._pgraphs:
            raise ServeError(
                f"dataset {dataset!r} is not served (loaded: {self.datasets})",
                status=404,
            )
        return dataset

    def pgraph(self, dataset: str) -> PartitionedGraph:
        try:
            return self._pgraphs[dataset]
        except KeyError:
            raise ServeError(f"dataset {dataset!r} is not served", status=404)

    def matrix(self, dataset: str) -> LandmarkMatrix:
        return self._matrices[self.resolve(dataset)]

    def _vertex_index(self, dataset: str, vertex: int) -> int:
        """Dense CSR index of ``vertex`` (404 when unknown).

        The landmark matrix and the CSR view index the same sorted
        ``vertex_ids`` array, so one lookup serves both.
        """
        try:
            return self.matrix(dataset).index_of(vertex)
        except EngineError:
            raise ServeError(
                f"vertex {vertex} is not in dataset {dataset!r}", status=404
            ) from None

    def _lazy_lock(self, dataset: str, what: str) -> threading.Lock:
        key = (dataset, what)
        with self._state_lock:
            return self._lazy_locks.setdefault(key, threading.Lock())

    def graph_summaries(self) -> Dict[str, Dict[str, object]]:
        """Per-dataset descriptors for the ``/stats`` payload."""
        out = {}
        for name, pgraph in self._pgraphs.items():
            matrix = self._matrices[name]
            out[name] = {
                "vertices": pgraph.graph.num_vertices,
                "edges": pgraph.graph.num_edges,
                "partitioner": pgraph.strategy_name,
                "num_partitions": pgraph.num_partitions,
                "landmarks": matrix.num_landmarks,
                "replication_factor": round(pgraph.metrics.replication_factor, 3),
            }
        return out

    def engine_summary(self) -> Dict[str, object]:
        """Parallel-engine telemetry for the ``/stats`` payload.

        Reports the configured worker count plus the process-wide
        :func:`~repro.engine.parallel.engine_stats` snapshot (live
        executors, shared-memory segments/bytes, and the fraction of
        supersteps that actually fanned out).
        """
        from ..engine.parallel import engine_stats

        summary = engine_stats()
        summary["configured_workers"] = self.engine_workers or 1
        return summary

    # ------------------------------------------------------------------
    # Distance queries
    # ------------------------------------------------------------------
    def estimate_distance(self, dataset: str, source: int, target: int) -> Optional[int]:
        """Triangle-inequality upper bound over the landmark matrix (no
        engine work), or None when no landmark connects the pair."""
        matrix = self.matrix(dataset)
        try:
            return matrix.estimate(source, target)
        except EngineError as exc:
            raise ServeError(str(exc), status=404) from None

    def exact_map_key(self, dataset: str, source: int) -> str:
        """Cache key of the exact per-source distance map."""
        return QueryCache.key(
            kind=SSSP_KIND,
            dataset=dataset,
            source=int(source),
            partitioner=self.partitioner,
            num_partitions=self.num_partitions,
        )

    def run_batch(self, keys: List[Hashable]) -> Dict[Hashable, Dict[int, int]]:
        """Resolve a batch of ``(dataset, source)`` keys with one
        multi-source frontier sweep per dataset.

        This is the ``run_batch`` callable of the
        :class:`~repro.serve.batcher.BatchingScheduler`; it runs on the
        batcher's engine thread.  Every computed per-source map is also
        published to the query cache so repeat queries skip the engine
        entirely.
        """
        by_dataset: Dict[str, List[int]] = {}
        for dataset, source in keys:
            by_dataset.setdefault(dataset, []).append(int(source))
        results: Dict[Hashable, Dict[int, int]] = {}
        for dataset, sources in by_dataset.items():
            pgraph = self.pgraph(dataset)
            known = set(pgraph.graph.vertex_ids.tolist())
            valid = [s for s in sources if s in known]
            missing = [s for s in sources if s not in known]
            if valid:
                sweep = multi_source_distances(
                    pgraph, valid, parallel_workers=self.engine_workers
                )
                self._count_engine_run()
                per_source: Dict[int, Dict[int, int]] = {s: {} for s in valid}
                for vertex, distances in sweep.vertex_values.items():
                    for source, distance in distances.items():
                        per_source[source][vertex] = distance
                for source, mapping in per_source.items():
                    results[(dataset, source)] = mapping
                    self.cache.put(self.exact_map_key(dataset, source), mapping)
            for source in missing:
                # Resolved per-key by the router as a 404; an exception here
                # would fail the whole batch.
                results[(dataset, source)] = {}
        return results

    def exact_distances(self, dataset: str, source: int) -> Dict[int, int]:
        """The exact distance map of one source, bypassing the batcher
        (used by tests and by synchronous callers)."""
        result = self.run_batch([(dataset, int(source))])
        return result[(dataset, int(source))]

    # ------------------------------------------------------------------
    # PageRank / components
    # ------------------------------------------------------------------
    def pagerank_ranks(self, dataset: str) -> Dict[int, float]:
        """The full PageRank vector (computed once per dataset, cached)."""
        dataset = self.resolve(dataset)
        with self._lazy_lock(dataset, "pagerank"):
            ranks = self._pagerank.get(dataset)
            if ranks is None:
                result = pagerank(
                    self.pgraph(dataset),
                    num_iterations=self.pagerank_iterations,
                    parallel_workers=self.engine_workers,
                )
                self._count_engine_run()
                ranks = self._pagerank[dataset] = result.vertex_values
        return ranks

    def top_pagerank(self, dataset: str, k: int) -> List[Dict[str, object]]:
        """The ``k`` highest-ranked vertices, best first."""
        ranks = self.pagerank_ranks(dataset)
        top = heapq.nlargest(int(k), ranks.items(), key=lambda kv: (kv[1], -kv[0]))
        return [{"vertex": vertex, "rank": round(rank, 6)} for vertex, rank in top]

    def _component_state(self, dataset: str) -> Tuple[Dict[int, int], Dict[int, int]]:
        dataset = self.resolve(dataset)
        with self._lazy_lock(dataset, "components"):
            state = self._components.get(dataset)
            if state is None:
                pgraph = self.pgraph(dataset)
                result = connected_components(
                    pgraph,
                    max_iterations=pgraph.graph.num_vertices + 1,
                    parallel_workers=self.engine_workers,
                )
                self._count_engine_run()
                labels = {v: int(c) for v, c in result.vertex_values.items()}
                sizes = dict(Counter(labels.values()))
                state = self._components[dataset] = (labels, sizes)
        return state

    def component_of(self, dataset: str, vertex: int) -> Dict[str, object]:
        """The weakly-connected component label (and size) of ``vertex``."""
        labels, sizes = self._component_state(dataset)
        if vertex not in labels:
            raise ServeError(
                f"vertex {vertex} is not in dataset {dataset!r}", status=404
            )
        component = labels[vertex]
        return {
            "vertex": int(vertex),
            "component": component,
            "component_size": sizes[component],
            "num_components": len(sizes),
        }

    # ------------------------------------------------------------------
    # Degrees and neighborhoods
    # ------------------------------------------------------------------
    def vertex_info(self, dataset: str, vertex: int) -> Dict[str, object]:
        """Degrees of one vertex (CSR lookups, no dict materialisation)."""
        dataset = self.resolve(dataset)
        index = self._vertex_index(dataset, vertex)
        csr = self.pgraph(dataset).graph.csr()
        out_degree = int(csr.out_degrees[index])
        in_degree = int(csr.in_degrees[index])
        return {
            "vertex": int(vertex),
            "out_degree": out_degree,
            "in_degree": in_degree,
            "degree": out_degree + in_degree,
        }

    def neighbors(
        self, dataset: str, vertex: int, direction: str = "out", limit: int = 100
    ) -> Dict[str, object]:
        """Successors/predecessors of one vertex, truncated to ``limit``."""
        if direction not in ("out", "in"):
            raise ServeError(f"direction must be 'out' or 'in', got {direction!r}")
        dataset = self.resolve(dataset)
        index = self._vertex_index(dataset, vertex)
        csr = self.pgraph(dataset).graph.csr()
        dense = csr.out_neighbors(index) if direction == "out" else csr.in_neighbors(index)
        ids = csr.vertex_ids[dense]
        total = int(ids.size)
        return {
            "vertex": int(vertex),
            "direction": direction,
            "degree": total,
            "truncated": total > int(limit),
            "neighbors": [int(v) for v in ids[: int(limit)].tolist()],
        }
