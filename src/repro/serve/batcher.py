"""Tick-window batching scheduler for exact SSSP point queries.

Concurrent requests arriving within one tick window are coalesced into a
single engine invocation: the first submission arms a flush timer, later
submissions pile onto the pending set (duplicate keys attach to the same
slot), and when the window elapses — or the pending set reaches
``max_batch`` — the whole set ships to ``run_batch`` as one call.  For
the serving layer, ``run_batch`` is one multi-source frontier sweep per
dataset (see :meth:`GraphService.run_batch
<repro.serve.service.GraphService.run_batch>`), so N concurrent
single-source queries cost one Pregel run instead of N.

The engine call is CPU-bound, so it runs on a dedicated single-thread
executor: the event loop keeps accepting requests (which accumulate into
the *next* batch) while a batch computes, and batches can never overlap
on the engine.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, Hashable, List, Optional

from ..errors import EngineError

__all__ = ["BatchStats", "BatchingScheduler"]


class BatchStats:
    """Lock-protected coalescing counters for the ``/stats`` endpoint."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.queries = 0
        self.batches = 0
        self.batched_keys = 0
        self.largest_batch = 0

    def count_query(self) -> None:
        with self._lock:
            self.queries += 1

    def count_batch(self, num_keys: int) -> None:
        with self._lock:
            self.batches += 1
            self.batched_keys += num_keys
            if num_keys > self.largest_batch:
                self.largest_batch = num_keys

    def as_dict(self) -> Dict[str, int]:
        with self._lock:
            return {
                "queries": self.queries,
                "batches": self.batches,
                "batched_keys": self.batched_keys,
                # Queries answered by riding along an already-pending key
                # or sharing a flush with other keys.
                "coalesced_queries": self.queries - self.batches,
                "largest_batch": self.largest_batch,
            }


class BatchingScheduler:
    """Coalesce concurrent ``submit`` calls into windowed ``run_batch`` calls.

    ``run_batch(keys)`` must return a mapping with an entry per requested
    key; it runs on a private executor thread.  All other state is only
    touched from the event loop, so no extra locking is needed there.
    """

    def __init__(
        self,
        run_batch: Callable[[List[Hashable]], Dict[Hashable, Any]],
        window_seconds: float = 0.025,
        max_batch: int = 256,
    ) -> None:
        if window_seconds < 0:
            raise EngineError(f"window_seconds must be >= 0, got {window_seconds}")
        if max_batch < 1:
            raise EngineError(f"max_batch must be >= 1, got {max_batch}")
        self._run_batch = run_batch
        self.window_seconds = float(window_seconds)
        self.max_batch = int(max_batch)
        self.stats = BatchStats()
        self._pending: Dict[Hashable, List[asyncio.Future]] = {}
        self._timer: Optional[asyncio.Task] = None
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-batch"
        )
        self._closed = False

    async def submit(self, key: Hashable) -> Any:
        """Enqueue ``key`` and wait for its slice of the next batch result."""
        if self._closed:
            raise EngineError("batching scheduler is closed")
        self.stats.count_query()
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.setdefault(key, []).append(future)
        if len(self._pending) >= self.max_batch:
            self._cancel_timer()
            asyncio.ensure_future(self._flush())
        elif self._timer is None:
            self._timer = loop.create_task(self._tick())
        return await future

    async def _tick(self) -> None:
        try:
            await asyncio.sleep(self.window_seconds)
        except asyncio.CancelledError:  # pragma: no cover - flushed early
            return
        self._timer = None
        await self._flush()

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    async def _flush(self) -> None:
        pending, self._pending = self._pending, {}
        if not pending:
            return
        keys = list(pending)
        self.stats.count_batch(len(keys))
        loop = asyncio.get_running_loop()
        try:
            results = await loop.run_in_executor(self._executor, self._run_batch, keys)
        except Exception as exc:
            for futures in pending.values():
                for future in futures:
                    if not future.done():
                        future.set_exception(exc)
            return
        for key, futures in pending.items():
            for future in futures:
                if future.done():
                    continue
                if key in results:
                    future.set_result(results[key])
                else:
                    future.set_exception(
                        EngineError(f"batch runner returned no result for {key!r}")
                    )

    async def close(self) -> None:
        """Refuse new work, fail whatever is still pending, stop the worker."""
        self._closed = True
        self._cancel_timer()
        pending, self._pending = self._pending, {}
        for futures in pending.values():
            for future in futures:
                if not future.done():
                    future.set_exception(EngineError("batching scheduler is closing"))
        self._executor.shutdown(wait=False)
