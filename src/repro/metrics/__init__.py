"""Partitioning-quality metrics (Balance, NonCut, Cut, CommCost, PartStDev)."""

from .partition_metrics import (
    METRIC_NAMES,
    PartitioningMetrics,
    compute_metrics,
    master_partition,
)
from .report import format_metrics_table, format_table, metrics_table_rows

__all__ = [
    "METRIC_NAMES",
    "PartitioningMetrics",
    "compute_metrics",
    "master_partition",
    "format_metrics_table",
    "format_table",
    "metrics_table_rows",
]
