"""Partitioning-quality metrics (Balance, NonCut, Cut, CommCost, PartStDev)."""

from .partition_metrics import (
    METRIC_NAMES,
    PartitioningMetrics,
    compute_metrics,
    compute_metrics_reference,
    master_partition,
    master_partition_array,
)
from .report import format_metrics_table, format_table, metrics_table_rows

__all__ = [
    "METRIC_NAMES",
    "PartitioningMetrics",
    "compute_metrics",
    "compute_metrics_reference",
    "master_partition",
    "master_partition_array",
    "format_metrics_table",
    "format_table",
    "metrics_table_rows",
]
