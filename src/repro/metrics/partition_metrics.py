"""The partitioning-quality metrics of Section 3.1 of the paper.

Given an :class:`~repro.partitioning.base.EdgePartitionAssignment` this
module computes:

* **Balance** — edges in the largest partition over the mean edges per
  partition.
* **NonCut** — vertices that live in exactly one partition.
* **Cut** — vertices replicated into two or more partitions.
* **CommCost** — total number of copies of cut vertices, i.e. the number of
  per-superstep synchronisation messages of a BSP computation that keeps
  fixed-size state on every vertex.
* **PartStDev** — standard deviation of the edges-per-partition counts.

plus the auxiliary quantities used in the appendix and by the engine:
replication factor, vertices-to-same / vertices-to-other (the alternative
breakdown of the replica count mentioned in Section 3.1), and
largest-partition ratios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..partitioning.base import EdgePartitionAssignment
from ..partitioning.membership import master_partition_array

__all__ = [
    "PartitioningMetrics",
    "compute_metrics",
    "compute_metrics_reference",
    "master_partition",
    "master_partition_array",
    "METRIC_NAMES",
]

#: The metric columns reported in Tables 2-3, in paper order.
METRIC_NAMES = ["balance", "non_cut", "cut", "comm_cost", "part_stdev"]


def master_partition(vertex_id: int, num_partitions: int) -> int:
    """Partition that owns the master copy of ``vertex_id``.

    GraphX hash-partitions the vertex RDD independently of the edge
    placement; we mirror that with a salted 64-bit mix so masters are
    uncorrelated with any edge partitioner's placement.  This is the
    scalar form of
    :func:`~repro.partitioning.membership.master_partition_array`.
    """
    return int(master_partition_array(np.uint64(vertex_id), num_partitions))


@dataclass(frozen=True)
class PartitioningMetrics:
    """All partitioning metrics for one (graph, strategy, #partitions) triple."""

    strategy: str
    num_partitions: int
    num_vertices: int
    num_edges: int
    balance: float
    non_cut: int
    cut: int
    comm_cost: int
    part_stdev: float
    total_replicas: int
    replication_factor: float
    vertices_to_same: int
    vertices_to_other: int
    max_partition_edges: int
    mean_partition_edges: float
    max_partition_vertices: int
    largest_edge_fraction: float
    largest_vertex_fraction: float

    def value(self, metric: str) -> float:
        """Look up a metric by its snake_case name (raises ``KeyError`` if unknown)."""
        if not hasattr(self, metric):
            raise KeyError(f"unknown metric {metric!r}")
        return float(getattr(self, metric))

    def as_row(self) -> Dict[str, object]:
        """Return the Table 2/3 columns as a flat dict."""
        return {
            "partitioner": self.strategy,
            "balance": round(self.balance, 2),
            "non_cut": self.non_cut,
            "cut": self.cut,
            "comm_cost": self.comm_cost,
            "part_stdev": round(self.part_stdev, 2),
        }


def compute_metrics(assignment: EdgePartitionAssignment) -> PartitioningMetrics:
    """Compute every partitioning metric for ``assignment``.

    All replication accounting runs on the flat arrays of
    :meth:`~repro.partitioning.base.EdgePartitionAssignment.membership`
    (``bincount`` + boolean masks); no per-vertex Python loop is involved.
    The result is identical to :func:`compute_metrics_reference`, the seed
    dict implementation kept for the equivalence tests.
    """
    num_partitions = assignment.num_partitions
    graph = assignment.graph

    edges_per_partition = assignment.edges_per_partition()
    num_edges = int(edges_per_partition.sum())
    mean_edges = num_edges / num_partitions if num_partitions else 0.0
    max_edges = int(edges_per_partition.max()) if edges_per_partition.size else 0
    balance = (max_edges / mean_edges) if mean_edges > 0 else 1.0
    part_stdev = float(np.std(edges_per_partition)) if edges_per_partition.size else 0.0

    membership = assignment.membership()
    counts = membership.counts
    total_replicas = int(counts.sum())
    non_cut = int((counts == 1).sum())
    cut = int(counts.size - non_cut)
    comm_cost = int(counts[counts > 1].sum())
    vertices_per_partition = membership.vertices_per_partition()
    # A replica sits on its vertex's master partition iff its pair row
    # matches the per-vertex master expanded over the replica segments.
    vertices_to_same = int(
        (membership.pair_partition == np.repeat(membership.masters, counts)).sum()
    )
    vertices_to_other = total_replicas - vertices_to_same

    placed_vertices = non_cut + cut
    replication_factor = (total_replicas / placed_vertices) if placed_vertices else 0.0
    max_partition_vertices = int(vertices_per_partition.max()) if num_partitions else 0
    largest_edge_fraction = (max_edges / num_edges) if num_edges else 0.0
    largest_vertex_fraction = (
        max_partition_vertices / placed_vertices if placed_vertices else 0.0
    )

    return PartitioningMetrics(
        strategy=assignment.strategy_name,
        num_partitions=num_partitions,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        balance=float(balance),
        non_cut=non_cut,
        cut=cut,
        comm_cost=comm_cost,
        part_stdev=part_stdev,
        total_replicas=total_replicas,
        replication_factor=float(replication_factor),
        vertices_to_same=vertices_to_same,
        vertices_to_other=vertices_to_other,
        max_partition_edges=max_edges,
        mean_partition_edges=float(mean_edges),
        max_partition_vertices=max_partition_vertices,
        largest_edge_fraction=float(largest_edge_fraction),
        largest_vertex_fraction=float(largest_vertex_fraction),
    )


def compute_metrics_reference(
    assignment: EdgePartitionAssignment,
    vertex_partitions: Optional[Dict[int, frozenset]] = None,
) -> PartitioningMetrics:
    """Seed per-vertex-loop implementation of :func:`compute_metrics`.

    Kept as the ground truth the equivalence tests compare against and as
    the "dict path" timed by ``benchmarks/bench_partitioning_pipeline.py``.
    Walks a :meth:`vertex_partitions_reference` dict, exactly as the seed
    code did; pass ``vertex_partitions`` to share one dict build across the
    metric and routing computations, as the seed's caching effectively did.
    """
    num_partitions = assignment.num_partitions
    graph = assignment.graph

    edges_per_partition = assignment.edges_per_partition()
    num_edges = int(edges_per_partition.sum())
    mean_edges = num_edges / num_partitions if num_partitions else 0.0
    max_edges = int(edges_per_partition.max()) if edges_per_partition.size else 0
    balance = (max_edges / mean_edges) if mean_edges > 0 else 1.0
    part_stdev = float(np.std(edges_per_partition)) if edges_per_partition.size else 0.0

    if vertex_partitions is None:
        vertex_partitions = assignment.vertex_partitions_reference()

    non_cut = 0
    cut = 0
    comm_cost = 0
    total_replicas = 0
    vertices_to_same = 0
    vertices_to_other = 0
    vertices_per_partition = np.zeros(num_partitions, dtype=np.int64)

    for vertex, parts in vertex_partitions.items():
        count = len(parts)
        if count == 0:
            continue  # isolated vertex: never materialised in any partition
        total_replicas += count
        if count == 1:
            non_cut += 1
        else:
            cut += 1
            comm_cost += count
        master = master_partition(vertex, num_partitions)
        for part in parts:
            vertices_per_partition[part] += 1
            if part == master:
                vertices_to_same += 1
            else:
                vertices_to_other += 1

    placed_vertices = non_cut + cut
    replication_factor = (total_replicas / placed_vertices) if placed_vertices else 0.0
    max_partition_vertices = int(vertices_per_partition.max()) if num_partitions else 0
    largest_edge_fraction = (max_edges / num_edges) if num_edges else 0.0
    largest_vertex_fraction = (
        max_partition_vertices / placed_vertices if placed_vertices else 0.0
    )

    return PartitioningMetrics(
        strategy=assignment.strategy_name,
        num_partitions=num_partitions,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        balance=float(balance),
        non_cut=non_cut,
        cut=cut,
        comm_cost=comm_cost,
        part_stdev=part_stdev,
        total_replicas=total_replicas,
        replication_factor=float(replication_factor),
        vertices_to_same=vertices_to_same,
        vertices_to_other=vertices_to_other,
        max_partition_edges=max_edges,
        mean_partition_edges=float(mean_edges),
        max_partition_vertices=max_partition_vertices,
        largest_edge_fraction=float(largest_edge_fraction),
        largest_vertex_fraction=float(largest_vertex_fraction),
    )
