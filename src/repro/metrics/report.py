"""Tabulation helpers for partitioning metrics (Tables 2 and 3)."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from .partition_metrics import PartitioningMetrics

__all__ = ["format_table", "metrics_table_rows", "format_metrics_table"]


def format_table(rows: Sequence[Dict[str, object]], columns: Optional[Sequence[str]] = None) -> str:
    """Render a list of dict rows as a fixed-width text table."""
    if not rows:
        return "(empty table)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {col: len(str(col)) for col in columns}
    for row in rows:
        for col in columns:
            widths[col] = max(widths[col], len(_fmt(row.get(col, ""))))
    header = "  ".join(str(col).ljust(widths[col]) for col in columns)
    separator = "  ".join("-" * widths[col] for col in columns)
    lines = [header, separator]
    for row in rows:
        lines.append("  ".join(_fmt(row.get(col, "")).ljust(widths[col]) for col in columns))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:,.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def metrics_table_rows(
    per_dataset: Dict[str, Iterable[PartitioningMetrics]],
) -> List[Dict[str, object]]:
    """Flatten ``{dataset: [metrics, ...]}`` into Table 2/3-style rows."""
    rows: List[Dict[str, object]] = []
    for dataset, metric_list in per_dataset.items():
        for metrics in metric_list:
            row = {"dataset": dataset}
            row.update(metrics.as_row())
            rows.append(row)
    return rows


def format_metrics_table(per_dataset: Dict[str, Iterable[PartitioningMetrics]]) -> str:
    """Render Table 2/3 (dataset x partitioner metric rows) as text."""
    rows = metrics_table_rows(per_dataset)
    columns = ["dataset", "partitioner", "balance", "non_cut", "cut", "comm_cost", "part_stdev"]
    return format_table(rows, columns)
