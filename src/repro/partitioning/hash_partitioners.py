"""The four GraphX hash-based partitioners evaluated in the paper.

* :class:`RandomVertexCut` (RVC) hashes the ordered ``(src, dst)`` pair, so
  all same-direction parallel edges land in the same partition.
* :class:`CanonicalRandomVertexCut` (CRVC) hashes the pair in a canonical
  order, so ``(u, v)`` and ``(v, u)`` always land together.
* :class:`EdgePartition1D` (1D) hashes only the source, collocating each
  vertex's out-edges.
* :class:`EdgePartition2D` (2D) arranges partitions in a
  ``ceil(sqrt(N)) x ceil(sqrt(N))`` grid and picks the cell from the source
  (column) and destination (row) hashes, bounding vertex replication by
  ``2 * sqrt(N)`` when ``N`` is a perfect square.
"""

from __future__ import annotations

import math

import numpy as np

from .base import PartitionStrategy
from .hashing import hash_pair, mix64

__all__ = [
    "RandomVertexCut",
    "CanonicalRandomVertexCut",
    "EdgePartition1D",
    "EdgePartition2D",
]


class RandomVertexCut(PartitionStrategy):
    """Assign an edge by hashing the ordered ``(src, dst)`` pair (GraphX RVC)."""

    name = "RVC"

    def partition_edge(self, src: int, dst: int, num_partitions: int) -> int:
        return int(hash_pair(src, dst) % np.uint64(num_partitions))

    def assign_array(self, src: np.ndarray, dst: np.ndarray, num_partitions: int) -> np.ndarray:
        return (hash_pair(src, dst) % np.uint64(num_partitions)).astype(np.int64)


class CanonicalRandomVertexCut(PartitionStrategy):
    """Assign an edge by hashing the endpoint pair in canonical order (GraphX CRVC).

    Both directions of an edge between ``u`` and ``v`` are guaranteed to be
    collocated, which halves the replication caused by reciprocated edges.
    """

    name = "CRVC"

    def partition_edge(self, src: int, dst: int, num_partitions: int) -> int:
        lo, hi = (src, dst) if src < dst else (dst, src)
        return int(hash_pair(lo, hi) % np.uint64(num_partitions))

    def assign_array(self, src: np.ndarray, dst: np.ndarray, num_partitions: int) -> np.ndarray:
        lo = np.minimum(src, dst)
        hi = np.maximum(src, dst)
        return (hash_pair(lo, hi) % np.uint64(num_partitions)).astype(np.int64)


class EdgePartition1D(PartitionStrategy):
    """Assign an edge by hashing only its source vertex (GraphX EdgePartition1D).

    All out-edges of a vertex are collocated; highly skewed out-degree
    distributions therefore produce imbalanced partitions, exactly the
    behaviour Tables 2-3 of the paper show for the "follow" graphs.
    """

    name = "1D"

    def partition_edge(self, src: int, dst: int, num_partitions: int) -> int:
        return int(mix64(src) % np.uint64(num_partitions))

    def assign_array(self, src: np.ndarray, dst: np.ndarray, num_partitions: int) -> np.ndarray:
        return (mix64(src) % np.uint64(num_partitions)).astype(np.int64)


class EdgePartition2D(PartitionStrategy):
    """Grid-based partitioner bounding replication by ``2 * sqrt(N)`` (GraphX 2D).

    Partitions are laid out on a ``ceil(sqrt(N))``-sided square matrix; the
    column is chosen by the source hash and the row by the destination
    hash.  When ``N`` is not a perfect square the grid index is folded back
    into ``[0, N)`` with a modulo, which can create imbalance — the paper
    calls this out explicitly.
    """

    name = "2D"

    @staticmethod
    def _grid_side(num_partitions: int) -> int:
        return int(math.ceil(math.sqrt(num_partitions)))

    def partition_edge(self, src: int, dst: int, num_partitions: int) -> int:
        side = self._grid_side(num_partitions)
        col = int(mix64(src) % np.uint64(side))
        row = int(mix64(dst) % np.uint64(side))
        return (col * side + row) % num_partitions

    def assign_array(self, src: np.ndarray, dst: np.ndarray, num_partitions: int) -> np.ndarray:
        side = self._grid_side(num_partitions)
        col = (mix64(src) % np.uint64(side)).astype(np.int64)
        row = (mix64(dst) % np.uint64(side)).astype(np.int64)
        return ((col * side + row) % num_partitions).astype(np.int64)

    def max_replication(self, num_partitions: int) -> int:
        """Upper bound on the number of copies of any vertex.

        For a perfect-square partition count this is ``2 * sqrt(N) - 1``
        (one row plus one column of the grid); otherwise the bound uses the
        next-larger grid side.
        """
        side = self._grid_side(num_partitions)
        return 2 * side - 1
