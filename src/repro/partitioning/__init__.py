"""Vertex-cut edge-placement strategies (the paper's six plus extensions)."""

from .base import ChunkAssigner, EdgePartitionAssignment, PartitionStrategy
from .greedy import DegreeBasedHashing, GreedyVertexCut, HdrfPartitioner
from .hash_partitioners import (
    CanonicalRandomVertexCut,
    EdgePartition1D,
    EdgePartition2D,
    RandomVertexCut,
)
from .hashing import MIXING_PRIME, hash_pair, mix64
from .hybrid import HybridCut
from .membership import VertexMembership, master_partition_array
from .modulo_partitioners import DestinationCut, SourceCut
from .registry import (
    EXTENSION_PARTITIONER_NAMES,
    PAPER_PARTITIONER_NAMES,
    available_partitioners,
    canonical_partitioner_name,
    extension_partitioners,
    make_partitioner,
    paper_partitioners,
)
from .streaming import FennelEdgePartitioner

__all__ = [
    "ChunkAssigner",
    "EdgePartitionAssignment",
    "PartitionStrategy",
    "VertexMembership",
    "master_partition_array",
    "RandomVertexCut",
    "CanonicalRandomVertexCut",
    "EdgePartition1D",
    "EdgePartition2D",
    "SourceCut",
    "DestinationCut",
    "DegreeBasedHashing",
    "GreedyVertexCut",
    "HdrfPartitioner",
    "FennelEdgePartitioner",
    "HybridCut",
    "MIXING_PRIME",
    "hash_pair",
    "mix64",
    "PAPER_PARTITIONER_NAMES",
    "EXTENSION_PARTITIONER_NAMES",
    "available_partitioners",
    "canonical_partitioner_name",
    "extension_partitioners",
    "make_partitioner",
    "paper_partitioners",
]
