"""Hybrid cut: differentiated placement for low- and high-degree vertices.

PowerLyra's hybrid-cut (referenced via Verma et al. in the paper's related
work) treats low-degree and high-degree vertices differently: edges whose
destination has low in-degree are grouped by destination (like the paper's
DC strategy, giving those vertices a single reduction site), while edges
pointing at high-degree "superstar" vertices are hashed by source so the
hub's load spreads over many partitions.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.graph import Graph
from ..core.validation import require_positive_partitions
from ..errors import PartitioningError
from .base import ChunkAssigner, EdgePartitionAssignment, PartitionStrategy
from .degrees import DegreeLookup
from .hashing import mix64

__all__ = ["HybridCut"]


class HybridCut(PartitionStrategy):
    """Degree-threshold hybrid of destination grouping and source hashing.

    Parameters
    ----------
    threshold:
        In-degree above which a destination vertex counts as high-degree.
        ``None`` (default) picks ``4 x`` the graph's average in-degree at
        ``assign`` time, which adapts the split point to the dataset.
    """

    name = "Hybrid"

    def __init__(self, threshold: Optional[int] = None) -> None:
        if threshold is not None and threshold < 1:
            raise ValueError("threshold must be >= 1 when given")
        self.threshold = threshold
        self._in_degrees: Optional[DegreeLookup] = None
        self._effective_threshold: float = float("inf")

    def partition_edge(self, src: int, dst: int, num_partitions: int) -> int:
        degree = self._in_degrees.get(dst) if self._in_degrees else 0
        if degree > self._effective_threshold:
            return int(mix64(src) % np.uint64(num_partitions))
        return int(mix64(dst) % np.uint64(num_partitions))

    def assign_array(self, src: np.ndarray, dst: np.ndarray, num_partitions: int) -> np.ndarray:
        if self._in_degrees is None:
            in_degree = np.zeros(len(dst), dtype=np.int64)
        else:
            in_degree = self._in_degrees.gather(dst)
        anchor = np.where(in_degree > self._effective_threshold, src, dst)
        return (mix64(anchor) % np.uint64(num_partitions)).astype(np.int64)

    def begin_stream(self, num_partitions: int, num_edges: int) -> ChunkAssigner:
        raise PartitioningError(
            "Hybrid splits on each destination's final in-degree, which needs "
            "the whole graph before the first placement; it cannot stream over "
            "bounded chunks"
        )

    def assign(self, graph: Graph, num_partitions: int) -> EdgePartitionAssignment:
        require_positive_partitions(num_partitions)
        self._in_degrees = DegreeLookup.count(graph.vertex_ids, graph.dst)
        if self.threshold is not None:
            self._effective_threshold = float(self.threshold)
        elif graph.num_vertices:
            average = graph.num_edges / graph.num_vertices
            self._effective_threshold = max(1.0, 4.0 * average)
        else:
            self._effective_threshold = float("inf")
        try:
            return super().assign(graph, num_partitions)
        finally:
            self._in_degrees = None
            self._effective_threshold = float("inf")
