"""Shared degree-context table for the degree-aware partitioners.

DBH anchors edges by total endpoint degree and HybridCut splits on
destination in-degree; both need the same machinery — a bincount over
sorted vertex ids, a vectorised gather for ``assign_array`` and a scalar
lookup (with a zero default for unknown vertices) for ``partition_edge``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DegreeLookup"]


class DegreeLookup:
    """Degree of every vertex, keyed by position in a sorted id array."""

    def __init__(self, vertex_ids: np.ndarray, degrees: np.ndarray) -> None:
        self.vertex_ids = vertex_ids
        self.degrees = degrees

    @classmethod
    def count(cls, vertex_ids: np.ndarray, endpoints: np.ndarray) -> "DegreeLookup":
        """Count how often each vertex appears in ``endpoints``.

        ``vertex_ids`` must be sorted and cover every endpoint (which
        ``Graph.vertex_ids`` guarantees for the graph's own edge arrays).
        """
        positions = np.searchsorted(vertex_ids, endpoints)
        degrees = np.bincount(positions, minlength=vertex_ids.size).astype(np.int64)
        return cls(vertex_ids, degrees)

    def get(self, vertex: int) -> int:
        """Degree of one vertex; 0 when the vertex is unknown."""
        idx = int(np.searchsorted(self.vertex_ids, vertex))
        if idx < self.vertex_ids.size and self.vertex_ids[idx] == vertex:
            return int(self.degrees[idx])
        return 0

    def gather(self, vertices: np.ndarray) -> np.ndarray:
        """Degrees of an array of vertices (every entry must be known)."""
        return self.degrees[np.searchsorted(self.vertex_ids, vertices)]
