"""Array-native vertex replication model.

The paper's replication accounting (replication factor, CommCost,
vertices-to-same/other, routing tables) all derive from one relation: the
set of ``(vertex, partition)`` pairs induced by an edge placement.  The
seed implementation materialised that relation as ``Dict[int, frozenset]``
with a per-edge Python loop, which dominates the cost of every
partitioning study at the paper's granularities (128/256 partitions).

:class:`VertexMembership` stores the same relation as flat, deduplicated
numpy arrays in CSR form:

* ``pair_vertex`` / ``pair_partition`` — the distinct ``(vertex,
  partition)`` pairs, sorted by vertex then partition;
* ``vertices`` — the distinct *placed* vertices (vertices touching at
  least one edge), sorted ascending;
* ``offsets`` — ``offsets[i]:offsets[i+1]`` slices the pair arrays to the
  partitions holding a copy of ``vertices[i]``.

Everything downstream (metrics, routing, edge-partition mirror lists, the
engine's replica broadcasts) reduces to ``bincount`` / boolean-mask /
segment operations over these arrays.  The dict-returning seed APIs are
kept as thin shims that expand this representation on demand.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from .hashing import mix64

__all__ = [
    "MASTER_SALT",
    "VertexMembership",
    "master_partition_array",
    "segment_arange",
]

#: Salt applied before hashing so the vertex-master placement is independent
#: of the hash values the edge partitioners use (GraphX partitions the
#: vertex RDD with a separate HashPartitioner; without the salt, strategies
#: that reuse the vertex hash would get an artificial co-location bonus).
MASTER_SALT = 0x9E3779B97F4A7C15


def master_partition_array(vertex_ids: np.ndarray, num_partitions: int) -> np.ndarray:
    """Master partition of every vertex in ``vertex_ids`` (vectorised).

    Elementwise identical to
    :func:`repro.metrics.partition_metrics.master_partition`.
    """
    salted = np.asarray(vertex_ids, dtype=np.uint64) ^ np.uint64(MASTER_SALT)
    return (mix64(salted) % np.uint64(num_partitions)).astype(np.int64)


def segment_arange(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Flatten CSR-style segments into one position array.

    Returns the concatenation of ``starts[i] + arange(counts[i])`` for
    every segment — the standard segment-arange expansion used by the
    membership CSR, the engine's triplet probes and the triangle kernels.
    """
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    return np.repeat(starts, counts) + (
        np.arange(total, dtype=np.int64)
        - np.repeat(np.cumsum(counts) - counts, counts)
    )


def _unique_pairs(vertex: np.ndarray, partition: np.ndarray, num_partitions: int):
    """Distinct ``(vertex, partition)`` pairs sorted by vertex then partition."""
    if vertex.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    # Encode each pair as vertex * P + partition so one 1-D np.unique both
    # deduplicates and sorts lexicographically; fall back to the slower
    # 2-column unique only when the encoding could overflow int64.
    max_vertex = int(vertex.max())
    if max_vertex <= (np.iinfo(np.int64).max - (num_partitions - 1)) // num_partitions:
        keys = np.unique(vertex * np.int64(num_partitions) + partition)
        pair_vertex = keys // num_partitions
        pair_partition = keys - pair_vertex * num_partitions
        return pair_vertex, pair_partition
    stacked = np.unique(np.stack([vertex, partition], axis=1), axis=0)
    return np.ascontiguousarray(stacked[:, 0]), np.ascontiguousarray(stacked[:, 1])


class VertexMembership:
    """CSR view of the vertex -> {partitions holding a copy} relation."""

    def __init__(
        self,
        pair_vertex: np.ndarray,
        pair_partition: np.ndarray,
        num_partitions: int,
    ) -> None:
        self.pair_vertex = pair_vertex
        self.pair_partition = pair_partition
        self.num_partitions = int(num_partitions)
        if pair_vertex.size:
            change = np.empty(pair_vertex.size, dtype=bool)
            change[0] = True
            np.not_equal(pair_vertex[1:], pair_vertex[:-1], out=change[1:])
            starts = np.flatnonzero(change)
            self.vertices = pair_vertex[starts]
            self.offsets = np.append(starts, pair_vertex.size).astype(np.int64)
        else:
            self.vertices = np.empty(0, dtype=np.int64)
            self.offsets = np.zeros(1, dtype=np.int64)
        self._masters: Optional[np.ndarray] = None
        self._by_partition = None  # (sorted vertices, offsets) grouped by partition

    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        src: np.ndarray,
        dst: np.ndarray,
        partition_of: np.ndarray,
        num_partitions: int,
    ) -> "VertexMembership":
        """Build the membership relation of one edge placement."""
        vertex = np.concatenate([src, dst]).astype(np.int64, copy=False)
        partition = np.concatenate([partition_of, partition_of]).astype(np.int64, copy=False)
        pair_vertex, pair_partition = _unique_pairs(vertex, partition, num_partitions)
        return cls(pair_vertex, pair_partition, num_partitions)

    # ------------------------------------------------------------------
    @property
    def num_pairs(self) -> int:
        """Total number of vertex replicas across all partitions."""
        return int(self.pair_vertex.size)

    @property
    def num_placed_vertices(self) -> int:
        """Number of vertices materialised in at least one partition."""
        return int(self.vertices.size)

    @property
    def counts(self) -> np.ndarray:
        """Replication count of every placed vertex (aligned with ``vertices``)."""
        return np.diff(self.offsets)

    @property
    def masters(self) -> np.ndarray:
        """Master partition of every placed vertex (aligned with ``vertices``)."""
        if self._masters is None:
            self._masters = master_partition_array(self.vertices, self.num_partitions)
        return self._masters

    # ------------------------------------------------------------------
    def indices_of(self, vertex_ids: np.ndarray) -> np.ndarray:
        """Positions of ``vertex_ids`` in ``vertices`` (-1 where not placed)."""
        vertex_ids = np.asarray(vertex_ids, dtype=np.int64)
        if self.vertices.size == 0:
            return np.full(vertex_ids.shape, -1, dtype=np.int64)
        idx = np.searchsorted(self.vertices, vertex_ids)
        np.clip(idx, 0, self.vertices.size - 1, out=idx)
        idx[self.vertices[idx] != vertex_ids] = -1
        return idx

    def partitions_of(self, vertex: int) -> np.ndarray:
        """Sorted partitions holding a copy of ``vertex`` (empty if unplaced)."""
        idx = int(np.searchsorted(self.vertices, vertex))
        if idx >= self.vertices.size or self.vertices[idx] != vertex:
            return np.empty(0, dtype=np.int64)
        return self.pair_partition[self.offsets[idx]:self.offsets[idx + 1]]

    def expand(self, indices: np.ndarray):
        """Flatten the pair slices of placed-vertex ``indices``.

        Returns ``(pair_positions, counts)`` where ``pair_positions`` indexes
        the pair arrays and ``counts[i]`` replicas belong to ``indices[i]``
        (the standard CSR segment-arange expansion).
        """
        starts = self.offsets[indices]
        counts = self.offsets[indices + 1] - starts
        return segment_arange(starts, counts), counts

    def vertices_per_partition(self) -> np.ndarray:
        """Number of distinct vertices mirrored into each partition."""
        return np.bincount(self.pair_partition, minlength=self.num_partitions).astype(np.int64)

    def vertices_of_partition(self, partition_id: int) -> np.ndarray:
        """Sorted distinct vertices mirrored into ``partition_id``."""
        if self._by_partition is None:
            order = np.argsort(self.pair_partition, kind="stable")
            grouped = self.pair_vertex[order]
            bounds = np.searchsorted(
                self.pair_partition[order], np.arange(self.num_partitions + 1)
            )
            self._by_partition = (grouped, bounds)
        grouped, bounds = self._by_partition
        return grouped[bounds[partition_id]:bounds[partition_id + 1]]

    # ------------------------------------------------------------------
    def to_dict(self, all_vertex_ids: np.ndarray, factory: type = frozenset) -> Dict[int, frozenset]:
        """Expand to the seed ``{vertex: frozenset(partitions)}`` mapping.

        ``all_vertex_ids`` supplies the key set (isolated vertices map to an
        empty collection, exactly as the seed implementation produced).
        ``factory`` wraps each vertex's partition-id slice — the slices are
        already sorted ascending, so ``factory=tuple`` yields the routing
        table's sorted replica tuples without re-sorting.
        """
        parts = self.pair_partition.tolist()
        offsets = self.offsets.tolist()
        placed = {
            int(v): factory(parts[offsets[i]:offsets[i + 1]])
            for i, v in enumerate(self.vertices.tolist())
        }
        empty = factory(())
        return {int(v): placed.get(int(v), empty) for v in np.asarray(all_vertex_ids).tolist()}
