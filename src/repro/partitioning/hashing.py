"""Deterministic 64-bit hashing used by the hash-based partitioners.

GraphX's partitioners rely on Scala's ``hashCode`` mixed with a large
prime.  We use the splitmix64 finaliser instead: it is deterministic,
platform independent, cheap to vectorise with numpy, and gives uniform
placement, which is all the paper's strategies require.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = ["MIXING_PRIME", "mix64", "hash_pair"]

#: The mixing prime GraphX uses in its ``PartitionStrategy`` implementations.
MIXING_PRIME = np.uint64(1125899906842597)

_MASK = np.uint64(0xFFFFFFFFFFFFFFFF)


def mix64(values: Union[int, np.ndarray]) -> np.ndarray:
    """Apply the splitmix64 finaliser to an integer or array of integers."""
    x = np.asarray(values, dtype=np.uint64)
    with np.errstate(over="ignore"):
        x = (x + np.uint64(0x9E3779B97F4A7C15)) & _MASK
        x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9) & _MASK
        x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB) & _MASK
        x = x ^ (x >> np.uint64(31))
    return x


def hash_pair(first: Union[int, np.ndarray], second: Union[int, np.ndarray]) -> np.ndarray:
    """Hash a pair of vertex ids into a single 64-bit value.

    The combination is order sensitive: ``hash_pair(u, v)`` differs from
    ``hash_pair(v, u)`` in general, which is exactly what distinguishes the
    RandomVertexCut from the CanonicalRandomVertexCut strategy.
    """
    a = np.asarray(first, dtype=np.uint64)
    b = np.asarray(second, dtype=np.uint64)
    with np.errstate(over="ignore"):
        combined = (mix64(a) * MIXING_PRIME + mix64(b)) & _MASK
    return mix64(combined)
