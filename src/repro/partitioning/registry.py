"""Name-based registry of partitioning strategies.

``PAPER_PARTITIONER_NAMES`` preserves the order the paper uses in
Tables 2-3 (RVC, 1D, 2D, CRVC, SC, DC); ``EXTENSION_PARTITIONER_NAMES``
lists the ablation strategies this reproduction adds on top.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..errors import PartitioningError
from .base import PartitionStrategy
from .greedy import DegreeBasedHashing, GreedyVertexCut, HdrfPartitioner
from .hash_partitioners import (
    CanonicalRandomVertexCut,
    EdgePartition1D,
    EdgePartition2D,
    RandomVertexCut,
)
from .hybrid import HybridCut
from .modulo_partitioners import DestinationCut, SourceCut
from .streaming import FennelEdgePartitioner

__all__ = [
    "PAPER_PARTITIONER_NAMES",
    "EXTENSION_PARTITIONER_NAMES",
    "available_partitioners",
    "canonical_partitioner_name",
    "make_partitioner",
    "paper_partitioners",
    "extension_partitioners",
]

_FACTORIES: Dict[str, Callable[[], PartitionStrategy]] = {
    "RVC": RandomVertexCut,
    "1D": EdgePartition1D,
    "2D": EdgePartition2D,
    "CRVC": CanonicalRandomVertexCut,
    "SC": SourceCut,
    "DC": DestinationCut,
    "DBH": DegreeBasedHashing,
    "Greedy": GreedyVertexCut,
    "HDRF": HdrfPartitioner,
    "Fennel": FennelEdgePartitioner,
    "Hybrid": HybridCut,
}

#: The six strategies evaluated by the paper, in Table 2/3 order.
PAPER_PARTITIONER_NAMES: List[str] = ["RVC", "1D", "2D", "CRVC", "SC", "DC"]

#: Additional strategies implemented for the ablation study.
EXTENSION_PARTITIONER_NAMES: List[str] = ["DBH", "Greedy", "HDRF", "Fennel", "Hybrid"]


def available_partitioners() -> List[str]:
    """Names of every registered strategy."""
    return list(_FACTORIES)


def canonical_partitioner_name(name: str) -> str:
    """Resolve a case-insensitive strategy name to its registry spelling.

    ``"rvc"``, ``"Rvc"`` and ``"RVC"`` all resolve to ``"RVC"``; unknown
    names raise :class:`~repro.errors.PartitioningError`.
    """
    for key in _FACTORIES:
        if key.lower() == name.lower():
            return key
    raise PartitioningError(
        f"unknown partitioner {name!r}; available: {', '.join(_FACTORIES)}"
    )


def make_partitioner(name: str) -> PartitionStrategy:
    """Instantiate a strategy by name (case-insensitive)."""
    return _FACTORIES[canonical_partitioner_name(name)]()


def paper_partitioners() -> List[PartitionStrategy]:
    """Fresh instances of the paper's six strategies, in Table 2/3 order."""
    return [make_partitioner(name) for name in PAPER_PARTITIONER_NAMES]


def extension_partitioners() -> List[PartitionStrategy]:
    """Fresh instances of the ablation strategies."""
    return [make_partitioner(name) for name in EXTENSION_PARTITIONER_NAMES]
