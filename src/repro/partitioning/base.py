"""Partitioning strategy interface and the assignment result object.

A partitioning strategy maps every edge of a graph to one of ``N``
partitions (a *vertex cut*: vertices that have edges in several partitions
are replicated, exactly as in GraphX).  Strategies are pure functions of
the edge endpoints and the partition count unless documented otherwise.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..core.graph import Graph
from ..core.validation import require_positive_partitions
from ..errors import PartitioningError
from .membership import VertexMembership

__all__ = [
    "ChunkAssigner",
    "PartitionStrategy",
    "EdgePartitionAssignment",
    "parts_index_array",
]


class ChunkAssigner:
    """Incremental edge placement over one bounded-chunk stream.

    Obtained from :meth:`PartitionStrategy.begin_stream`; callers feed the
    edge stream *in order* as bounded ``(src, dst)`` chunks and concatenate
    the returned placements.  The result is identical, edge for edge, to
    :meth:`PartitionStrategy.assign` on the whole graph — stateful
    strategies carry their scoring state (loads, vertex membership, partial
    degrees) across chunks, so chunk boundaries never influence placement.
    """

    def assign_chunk(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """Place the next ``len(src)`` edges of the stream; returns int64 ids."""
        raise NotImplementedError

    def finish(self) -> None:
        """Hook called once after the last chunk; the default does nothing."""


class _StatelessChunkAssigner(ChunkAssigner):
    """Chunk adapter for strategies that are pure functions of the endpoints."""

    def __init__(self, strategy: "PartitionStrategy", num_partitions: int) -> None:
        self._strategy = strategy
        self._num_partitions = num_partitions

    def assign_chunk(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.size == 0:
            return np.empty(0, dtype=np.int64)
        return self._strategy.assign_array(src, dst, self._num_partitions)


def parts_index_array(parts: set) -> np.ndarray:
    """A vertex's partition set as an index array for vectorised scoring.

    Shared by the streaming strategies (Greedy, HDRF, Fennel), which keep
    sparse per-vertex partition sets but score partitions with numpy
    fancy indexing.
    """
    return np.fromiter(parts, dtype=np.int64, count=len(parts))


@dataclass
class EdgePartitionAssignment:
    """The result of partitioning a graph's edges.

    Attributes
    ----------
    graph:
        The graph that was partitioned.
    num_partitions:
        Number of partitions requested.
    partition_of:
        ``int64`` array of length ``graph.num_edges``; entry ``i`` is the
        partition id of edge ``i``.
    strategy_name:
        Name of the strategy that produced this assignment.
    """

    graph: Graph
    num_partitions: int
    partition_of: np.ndarray
    strategy_name: str = ""
    _membership: Optional[VertexMembership] = field(default=None, repr=False, compare=False)
    _vertex_partitions: Optional[Dict[int, frozenset]] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self.partition_of = np.asarray(self.partition_of, dtype=np.int64)
        if self.partition_of.shape[0] != self.graph.num_edges:
            raise PartitioningError(
                "partition_of must have one entry per edge "
                f"({self.partition_of.shape[0]} != {self.graph.num_edges})"
            )
        if self.partition_of.size:
            low, high = int(self.partition_of.min()), int(self.partition_of.max())
            if low < 0 or high >= self.num_partitions:
                raise PartitioningError(
                    f"partition ids must be in [0, {self.num_partitions}), got [{low}, {high}]"
                )

    # ------------------------------------------------------------------
    def edges_per_partition(self) -> np.ndarray:
        """Number of edges assigned to each partition (length ``num_partitions``)."""
        return np.bincount(self.partition_of, minlength=self.num_partitions).astype(np.int64)

    def edge_ids_of_partition(self, partition_id: int) -> np.ndarray:
        """Indices of the edges placed in ``partition_id``."""
        return np.nonzero(self.partition_of == partition_id)[0]

    def membership(self) -> VertexMembership:
        """The array-native vertex replication relation (built once, cached).

        This is the representation the metrics, routing tables and engine
        consume; the dict-returning accessors below are shims kept for API
        compatibility with the seed implementation.
        """
        if self._membership is None:
            self._membership = VertexMembership.from_edges(
                self.graph.src, self.graph.dst, self.partition_of, self.num_partitions
            )
        return self._membership

    def vertex_partitions(self) -> Dict[int, frozenset]:
        """Map every vertex to the set of partitions that contain a copy of it.

        A vertex is present in a partition whenever at least one of its
        edges is assigned there.  Isolated vertices map to an empty set.

        .. deprecated::
            This dict expansion is a compatibility shim over
            :meth:`membership`; new code should consume the
            :class:`~repro.partitioning.membership.VertexMembership` arrays
            directly.  The result is cached.
        """
        if self._vertex_partitions is None:
            self._vertex_partitions = self.membership().to_dict(self.graph.vertex_ids)
        return self._vertex_partitions

    def vertex_partitions_reference(self) -> Dict[int, frozenset]:
        """Seed per-edge dict implementation of :meth:`vertex_partitions`.

        Kept (uncached) as the ground truth for the equivalence tests and
        the ``bench_partitioning_pipeline`` seed-vs-array comparison.
        """
        membership: Dict[int, set] = {int(v): set() for v in self.graph.vertex_ids.tolist()}
        src = self.graph.src.tolist()
        dst = self.graph.dst.tolist()
        parts = self.partition_of.tolist()
        for s, d, p in zip(src, dst, parts):
            membership[s].add(p)
            membership[d].add(p)
        return {v: frozenset(ps) for v, ps in membership.items()}

    def replication_counts(self) -> Dict[int, int]:
        """Map every vertex to its number of copies across partitions."""
        return {v: len(parts) for v, parts in self.vertex_partitions().items()}


class PartitionStrategy(abc.ABC):
    """Base class for all edge-placement (vertex-cut) strategies."""

    #: Short name used in tables and the registry (e.g. ``"RVC"``).
    name: str = "abstract"

    @abc.abstractmethod
    def partition_edge(self, src: int, dst: int, num_partitions: int) -> int:
        """Return the partition id for one edge ``src -> dst``."""

    def assign_array(self, src: np.ndarray, dst: np.ndarray, num_partitions: int) -> np.ndarray:
        """Vectorised edge placement; the default falls back to the scalar method.

        The fallback deliberately calls :meth:`partition_edge` once per edge
        in stream order — subclasses may be stateful — so it stays scalar;
        every registry strategy overrides either this method with true array
        placement or :meth:`assign` wholesale, making this purely the
        compatibility path for third-party strategies.
        """
        return np.fromiter(
            (self.partition_edge(int(s), int(d), num_partitions) for s, d in zip(src, dst)),
            dtype=np.int64,
            count=len(src),
        )

    def begin_stream(self, num_partitions: int, num_edges: int) -> ChunkAssigner:
        """Start a chunked placement stream over ``num_edges`` total edges.

        The default adapter re-dispatches each chunk through
        :meth:`assign_array`, which is correct for every strategy that is a
        pure function of the endpoints and the partition count.  Stateful
        streaming strategies (Greedy, HDRF, Fennel) override this with
        assigners that carry scoring state across chunks; strategies whose
        placement depends on *whole-graph* degree context (DBH, Hybrid)
        override it to raise :class:`~repro.errors.PartitioningError`.

        ``num_edges`` is the total stream length — capacity-based strategies
        need it up front to size their balance caps exactly as
        :meth:`assign` does.
        """
        require_positive_partitions(num_partitions)
        if num_edges < 0:
            raise PartitioningError(f"num_edges must be non-negative, got {num_edges}")
        return _StatelessChunkAssigner(self, num_partitions)

    def assign(self, graph: Graph, num_partitions: int) -> EdgePartitionAssignment:
        """Partition all edges of ``graph`` into ``num_partitions`` parts."""
        require_positive_partitions(num_partitions)
        if graph.num_edges == 0:
            placement = np.empty(0, dtype=np.int64)
        else:
            placement = self.assign_array(graph.src, graph.dst, num_partitions)
        return EdgePartitionAssignment(
            graph=graph,
            num_partitions=num_partitions,
            partition_of=placement,
            strategy_name=self.name,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
