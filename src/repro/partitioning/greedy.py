"""Degree- and state-aware vertex-cut strategies (extension partitioners).

These are not part of the paper's six strategies; they come from the
related-work space the paper cites (PowerGraph's greedy placement, DBH,
HDRF) and are used by the ablation benchmark to quantify how much headroom
a smarter, non-hash partitioner has over the paper's best pick.

The streaming strategies are inherently sequential (each placement feeds
the next), so the edge loop stays in Python; but the per-partition inner
work — candidate filtering, load comparisons, HDRF scoring — runs on flat
numpy arrays (per-endpoint partition-index arrays plus a load vector)
instead of per-partition Python loops.  Vertex membership stays sparse
(one set per placed vertex, exactly the seed's ``where`` map), so memory
is O(total replicas) rather than O(vertices x partitions) even at 1024+
partitions.  The placements are identical to the seed implementation,
tie-breaking included; ``tests/test_array_equivalence.py`` asserts that
edge for edge against re-implementations of the seed loops.

Both streaming strategies expose their loops through
:meth:`~repro.partitioning.base.PartitionStrategy.begin_stream`: the
scoring state (loads, ``where`` membership, HDRF partial degrees) lives on
a :class:`~repro.partitioning.base.ChunkAssigner` that survives across
bounded chunks, so the out-of-core ingestion path places edges identically
to a whole-graph :meth:`assign` — which is itself implemented as a
single-chunk stream.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

import numpy as np

from ..core.graph import Graph
from ..core.validation import require_positive_partitions
from ..errors import PartitioningError
from .base import ChunkAssigner, EdgePartitionAssignment, PartitionStrategy, parts_index_array
from .degrees import DegreeLookup
from .hashing import mix64

__all__ = ["DegreeBasedHashing", "GreedyVertexCut", "HdrfPartitioner"]


class DegreeBasedHashing(PartitionStrategy):
    """Degree-Based Hashing (DBH): hash the lower-degree endpoint of each edge.

    High-degree "superstar" vertices get cut (replicated) while low-degree
    vertices stay whole, which lowers the total replication factor on
    power-law graphs compared to RVC.
    """

    name = "DBH"

    def __init__(self) -> None:
        self._degrees: Optional[DegreeLookup] = None

    def partition_edge(self, src: int, dst: int, num_partitions: int) -> int:
        deg_src = self._degrees.get(src) if self._degrees else 0
        deg_dst = self._degrees.get(dst) if self._degrees else 0
        anchor = src if deg_src <= deg_dst else dst
        return int(mix64(anchor) % np.uint64(num_partitions))

    def assign_array(self, src: np.ndarray, dst: np.ndarray, num_partitions: int) -> np.ndarray:
        if self._degrees is None:
            # No degree context: every degree reads as zero and the tie rule
            # anchors the source, exactly like the scalar method.
            anchor = np.asarray(src, dtype=np.int64)
        else:
            deg_src = self._degrees.gather(src)
            deg_dst = self._degrees.gather(dst)
            anchor = np.where(deg_src <= deg_dst, src, dst)
        return (mix64(anchor) % np.uint64(num_partitions)).astype(np.int64)

    def begin_stream(self, num_partitions: int, num_edges: int) -> ChunkAssigner:
        raise PartitioningError(
            "DBH anchors each edge at its lower-degree endpoint, which needs "
            "every vertex's final degree before the first placement; it cannot "
            "stream over bounded chunks"
        )

    def assign(self, graph: Graph, num_partitions: int) -> EdgePartitionAssignment:
        require_positive_partitions(num_partitions)
        self._degrees = DegreeLookup.count(
            graph.vertex_ids, np.concatenate([graph.src, graph.dst])
        )
        try:
            return super().assign(graph, num_partitions)
        finally:
            self._degrees = None


class _GreedyChunkAssigner(ChunkAssigner):
    """The PowerGraph greedy loop with its state lifted out of ``assign``."""

    def __init__(self, num_partitions: int, num_edges: int, balance_slack: float) -> None:
        self._loads = np.zeros(num_partitions, dtype=np.int64)
        self._capacity = max(1.0, balance_slack * num_edges / num_partitions)
        self._where: Dict[int, Set[int]] = {}

    def assign_chunk(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        loads = self._loads
        capacity = self._capacity
        where = self._where
        placement = np.empty(len(src), dtype=np.int64)

        def pick(candidates: np.ndarray) -> int:
            # The seed's min(candidates, key=(load, id)) tie-break: the
            # lowest-numbered partition among the least loaded candidates.
            candidate_loads = loads[candidates]
            least = candidates[candidate_loads == candidate_loads.min()]
            return int(least.min())

        for index, (s, d) in enumerate(
            zip(np.asarray(src).tolist(), np.asarray(dst).tolist())
        ):
            parts_src = where.get(s, set())
            parts_dst = where.get(d, set())
            choice = -1
            for parts in (parts_src & parts_dst, parts_src | parts_dst):
                if not parts:
                    continue
                candidates = parts_index_array(parts)
                candidates = candidates[loads[candidates] < capacity]
                if candidates.size:
                    choice = pick(candidates)
                    break
            if choice < 0:
                # No (non-full) endpoint partition: globally least loaded,
                # lowest id first (np.argmin returns the first minimum).
                choice = int(np.argmin(loads))
            placement[index] = choice
            loads[choice] += 1
            where.setdefault(s, set()).add(choice)
            where.setdefault(d, set()).add(choice)
        return placement


class GreedyVertexCut(PartitionStrategy):
    """PowerGraph-style greedy ("oblivious") streaming vertex cut.

    Edges are processed in order; each edge goes to a partition chosen by
    the classic greedy rules, subject to a capacity cap that keeps the
    partitions balanced:

    1. if both endpoints already live in a common (non-full) partition,
       pick the least loaded of those;
    2. else if one endpoint is placed in a non-full partition, pick its
       least loaded partition;
    3. else pick the globally least loaded partition.

    A partition is "full" once it holds ``balance_slack`` times its fair
    share of edges; full partitions are skipped so the affinity rules
    cannot collapse the whole graph into one partition.
    """

    name = "Greedy"

    def __init__(self, balance_slack: float = 1.1) -> None:
        if balance_slack < 1.0:
            raise ValueError("balance_slack must be >= 1.0")
        self.balance_slack = balance_slack

    def partition_edge(self, src: int, dst: int, num_partitions: int) -> int:
        raise NotImplementedError(
            "GreedyVertexCut is stateful; use assign() on a whole graph instead"
        )

    def begin_stream(self, num_partitions: int, num_edges: int) -> ChunkAssigner:
        require_positive_partitions(num_partitions)
        if num_edges < 0:
            raise PartitioningError(f"num_edges must be non-negative, got {num_edges}")
        return _GreedyChunkAssigner(num_partitions, num_edges, self.balance_slack)

    def assign(self, graph: Graph, num_partitions: int) -> EdgePartitionAssignment:
        assigner = self.begin_stream(num_partitions, graph.num_edges)
        return EdgePartitionAssignment(
            graph=graph,
            num_partitions=num_partitions,
            partition_of=assigner.assign_chunk(graph.src, graph.dst),
            strategy_name=self.name,
        )


class _HdrfChunkAssigner(ChunkAssigner):
    """The HDRF scoring loop with its state lifted out of ``assign``."""

    def __init__(self, num_partitions: int, balance_weight: float) -> None:
        self._num_partitions = num_partitions
        self._balance_weight = balance_weight
        self._loads = np.zeros(num_partitions, dtype=np.float64)
        self._partial_degree: Dict[int, int] = {}
        self._where: Dict[int, Set[int]] = {}

    def assign_chunk(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        num_partitions = self._num_partitions
        balance_weight = self._balance_weight
        loads = self._loads
        partial_degree = self._partial_degree
        where = self._where
        placement = np.empty(len(src), dtype=np.int64)

        for index, (s, d) in enumerate(
            zip(np.asarray(src).tolist(), np.asarray(dst).tolist())
        ):
            partial_degree[s] = partial_degree.get(s, 0) + 1
            partial_degree[d] = partial_degree.get(d, 0) + 1
            deg_src = partial_degree[s]
            deg_dst = partial_degree[d]
            total = deg_src + deg_dst
            theta_src = deg_src / total
            theta_dst = deg_dst / total
            max_load = loads.max()
            min_load = loads.min()
            spread = (max_load - min_load) + 1.0

            # rep is built sparsely, then the balance vector is added, so the
            # per-partition float additions happen in the seed's order
            # ((rep_src + rep_dst) + bal) and the scores stay bit-identical.
            score = np.zeros(num_partitions, dtype=np.float64)
            parts_src = where.get(s)
            if parts_src:
                score[parts_index_array(parts_src)] += 1.0 + (1.0 - theta_src)
            parts_dst = where.get(d)
            if parts_dst:
                score[parts_index_array(parts_dst)] += 1.0 + (1.0 - theta_dst)
            score += balance_weight * (max_load - loads) / spread
            # argmax keeps the first maximum, matching the seed's strict-">"
            # scan over partition ids.
            best_part = int(np.argmax(score))
            placement[index] = best_part
            loads[best_part] += 1.0
            where.setdefault(s, set()).add(best_part)
            where.setdefault(d, set()).add(best_part)
        return placement


class HdrfPartitioner(PartitionStrategy):
    """High-Degree (are) Replicated First (HDRF) streaming vertex cut.

    Scores every partition for every incoming edge with the standard HDRF
    objective ``C_rep(p) + lambda * C_bal(p)`` where the replication term
    prefers partitions that already hold an endpoint (weighted toward
    replicating the higher-degree endpoint) and the balance term penalises
    loaded partitions.
    """

    name = "HDRF"

    def __init__(self, balance_weight: float = 1.0) -> None:
        if balance_weight < 0:
            raise ValueError("balance_weight must be non-negative")
        self.balance_weight = balance_weight

    def partition_edge(self, src: int, dst: int, num_partitions: int) -> int:
        raise NotImplementedError(
            "HdrfPartitioner is stateful; use assign() on a whole graph instead"
        )

    def begin_stream(self, num_partitions: int, num_edges: int) -> ChunkAssigner:
        require_positive_partitions(num_partitions)
        if num_edges < 0:
            raise PartitioningError(f"num_edges must be non-negative, got {num_edges}")
        return _HdrfChunkAssigner(num_partitions, self.balance_weight)

    def assign(self, graph: Graph, num_partitions: int) -> EdgePartitionAssignment:
        assigner = self.begin_stream(num_partitions, graph.num_edges)
        return EdgePartitionAssignment(
            graph=graph,
            num_partitions=num_partitions,
            partition_of=assigner.assign_chunk(graph.src, graph.dst),
            strategy_name=self.name,
        )
