"""Streaming, single-pass edge placement in the spirit of Fennel / LDG.

Fennel and Stanton-Kliot's streaming heuristics were designed for
edge-cut partitioning of the vertex set; here we adapt the same
"greedy with a balance penalty" idea to edge placement so it can be
compared head-to-head with the paper's vertex-cut strategies in the
ablation benchmark.
"""

from __future__ import annotations

from typing import Dict, Set

import numpy as np

from ..core.graph import Graph
from ..core.validation import require_positive_partitions
from .base import EdgePartitionAssignment, PartitionStrategy, parts_index_array

__all__ = ["FennelEdgePartitioner"]


class FennelEdgePartitioner(PartitionStrategy):
    """Single-pass edge placement with a Fennel-style balance penalty.

    For each edge the score of partition ``p`` is the number of endpoints
    already present in ``p`` minus ``gamma * (load_p / capacity)``; the
    highest-scoring partition wins.  ``capacity`` is the average number of
    edges per partition, so the penalty grows as a partition fills beyond
    its fair share.
    """

    name = "Fennel"

    def __init__(self, gamma: float = 1.5) -> None:
        if gamma < 0:
            raise ValueError("gamma must be non-negative")
        self.gamma = gamma

    def partition_edge(self, src: int, dst: int, num_partitions: int) -> int:
        raise NotImplementedError(
            "FennelEdgePartitioner is stateful; use assign() on a whole graph instead"
        )

    def assign(self, graph: Graph, num_partitions: int) -> EdgePartitionAssignment:
        require_positive_partitions(num_partitions)
        capacity = max(1.0, graph.num_edges / num_partitions)
        loads = np.zeros(num_partitions, dtype=np.float64)
        # The edge loop is sequential by construction (every placement feeds
        # the next); vertex membership stays sparse (one set per vertex, the
        # seed's map) while the per-partition affinity/penalty scoring runs
        # on num_partitions-length arrays instead of a Python loop.
        where: Dict[int, Set[int]] = {}
        placement = np.empty(graph.num_edges, dtype=np.int64)

        for index, (src, dst) in enumerate(graph.edge_pairs()):
            score = np.zeros(num_partitions, dtype=np.float64)
            parts_src = where.get(src)
            if parts_src:
                score[parts_index_array(parts_src)] += 1.0
            parts_dst = where.get(dst)
            if parts_dst:
                score[parts_index_array(parts_dst)] += 1.0
            score -= self.gamma * loads / capacity
            # argmax keeps the first maximum — the seed's strict-">" scan.
            best_part = int(np.argmax(score))
            placement[index] = best_part
            loads[best_part] += 1.0
            where.setdefault(src, set()).add(best_part)
            where.setdefault(dst, set()).add(best_part)

        return EdgePartitionAssignment(
            graph=graph,
            num_partitions=num_partitions,
            partition_of=placement,
            strategy_name=self.name,
        )
