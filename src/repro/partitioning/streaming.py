"""Streaming, single-pass edge placement in the spirit of Fennel / LDG.

Fennel and Stanton-Kliot's streaming heuristics were designed for
edge-cut partitioning of the vertex set; here we adapt the same
"greedy with a balance penalty" idea to edge placement so it can be
compared head-to-head with the paper's vertex-cut strategies in the
ablation benchmark.

The scoring loop lives on a chunk assigner (see
:meth:`~repro.partitioning.base.PartitionStrategy.begin_stream`) so the
out-of-core ingestion path can feed bounded chunks through the same state
and land every edge exactly where a whole-graph :meth:`assign` would.
"""

from __future__ import annotations

from typing import Dict, Set

import numpy as np

from ..core.graph import Graph
from ..core.validation import require_positive_partitions
from ..errors import PartitioningError
from .base import ChunkAssigner, EdgePartitionAssignment, PartitionStrategy, parts_index_array

__all__ = ["FennelEdgePartitioner"]


class _FennelChunkAssigner(ChunkAssigner):
    """The Fennel scoring loop with its state lifted out of ``assign``."""

    def __init__(self, num_partitions: int, num_edges: int, gamma: float) -> None:
        self._num_partitions = num_partitions
        self._gamma = gamma
        self._capacity = max(1.0, num_edges / num_partitions)
        self._loads = np.zeros(num_partitions, dtype=np.float64)
        # The edge loop is sequential by construction (every placement feeds
        # the next); vertex membership stays sparse (one set per vertex, the
        # seed's map) while the per-partition affinity/penalty scoring runs
        # on num_partitions-length arrays instead of a Python loop.
        self._where: Dict[int, Set[int]] = {}

    def assign_chunk(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        num_partitions = self._num_partitions
        gamma = self._gamma
        capacity = self._capacity
        loads = self._loads
        where = self._where
        placement = np.empty(len(src), dtype=np.int64)

        for index, (s, d) in enumerate(
            zip(np.asarray(src).tolist(), np.asarray(dst).tolist())
        ):
            score = np.zeros(num_partitions, dtype=np.float64)
            parts_src = where.get(s)
            if parts_src:
                score[parts_index_array(parts_src)] += 1.0
            parts_dst = where.get(d)
            if parts_dst:
                score[parts_index_array(parts_dst)] += 1.0
            score -= gamma * loads / capacity
            # argmax keeps the first maximum — the seed's strict-">" scan.
            best_part = int(np.argmax(score))
            placement[index] = best_part
            loads[best_part] += 1.0
            where.setdefault(s, set()).add(best_part)
            where.setdefault(d, set()).add(best_part)
        return placement


class FennelEdgePartitioner(PartitionStrategy):
    """Single-pass edge placement with a Fennel-style balance penalty.

    For each edge the score of partition ``p`` is the number of endpoints
    already present in ``p`` minus ``gamma * (load_p / capacity)``; the
    highest-scoring partition wins.  ``capacity`` is the average number of
    edges per partition, so the penalty grows as a partition fills beyond
    its fair share.
    """

    name = "Fennel"

    def __init__(self, gamma: float = 1.5) -> None:
        if gamma < 0:
            raise ValueError("gamma must be non-negative")
        self.gamma = gamma

    def partition_edge(self, src: int, dst: int, num_partitions: int) -> int:
        raise NotImplementedError(
            "FennelEdgePartitioner is stateful; use assign() on a whole graph instead"
        )

    def begin_stream(self, num_partitions: int, num_edges: int) -> ChunkAssigner:
        require_positive_partitions(num_partitions)
        if num_edges < 0:
            raise PartitioningError(f"num_edges must be non-negative, got {num_edges}")
        return _FennelChunkAssigner(num_partitions, num_edges, self.gamma)

    def assign(self, graph: Graph, num_partitions: int) -> EdgePartitionAssignment:
        assigner = self.begin_stream(num_partitions, graph.num_edges)
        return EdgePartitionAssignment(
            graph=graph,
            num_partitions=num_partitions,
            partition_of=assigner.assign_chunk(graph.src, graph.dst),
            strategy_name=self.name,
        )
