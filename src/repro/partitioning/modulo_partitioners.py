"""The two partitioners proposed by the paper: SourceCut and DestinationCut.

Both replace the uniform hash of EdgePartition1D with a plain modulo on the
raw vertex id.  When vertex ids encode locality (road networks numbered by
geography, crawl order, community id, ...) the modulo keeps nearby vertices
together at the cost of worse load balance — the trade-off Section 3 of the
paper describes.
"""

from __future__ import annotations

import numpy as np

from .base import PartitionStrategy

__all__ = ["SourceCut", "DestinationCut"]


class SourceCut(PartitionStrategy):
    """Assign each edge to ``src % num_partitions`` (paper's SC strategy)."""

    name = "SC"

    def partition_edge(self, src: int, dst: int, num_partitions: int) -> int:
        return int(src % num_partitions)

    def assign_array(self, src: np.ndarray, dst: np.ndarray, num_partitions: int) -> np.ndarray:
        return (src % num_partitions).astype(np.int64)


class DestinationCut(PartitionStrategy):
    """Assign each edge to ``dst % num_partitions`` (paper's DC strategy)."""

    name = "DC"

    def partition_edge(self, src: int, dst: int, num_partitions: int) -> int:
        return int(dst % num_partitions)

    def assign_array(self, src: np.ndarray, dst: np.ndarray, num_partitions: int) -> np.ndarray:
        return (dst % num_partitions).astype(np.int64)
