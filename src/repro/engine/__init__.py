"""GraphX-like BSP execution substrate with a simulated cluster cost model."""

from .cluster import STORAGE_BANDWIDTH_BYTES, ClusterConfig, paper_cluster
from .cost_model import CostModel, CostParameters, SimulationReport, SuperstepRecord
from .edge_partition import EdgePartition
from .messaging import ArrayMessageKernel, TripletArrays
from .parallel import ParallelPregelExecutor, engine_stats, parallel_supported
from .partitioned_graph import PartitionedGraph
from .pregel import PregelResult, aggregate_messages, pregel
from .routing import RoutingTable
from .shm_registry import ShmRegistry, shared_memory_available

__all__ = [
    "ClusterConfig",
    "paper_cluster",
    "STORAGE_BANDWIDTH_BYTES",
    "CostModel",
    "CostParameters",
    "SimulationReport",
    "SuperstepRecord",
    "ArrayMessageKernel",
    "EdgePartition",
    "PartitionedGraph",
    "TripletArrays",
    "ParallelPregelExecutor",
    "PregelResult",
    "RoutingTable",
    "ShmRegistry",
    "aggregate_messages",
    "engine_stats",
    "parallel_supported",
    "pregel",
    "shared_memory_available",
]
