"""GraphX-like BSP execution substrate with a simulated cluster cost model."""

from .cluster import STORAGE_BANDWIDTH_BYTES, ClusterConfig, paper_cluster
from .cost_model import CostModel, CostParameters, SimulationReport, SuperstepRecord
from .edge_partition import EdgePartition
from .messaging import ArrayMessageKernel, TripletArrays
from .partitioned_graph import PartitionedGraph
from .pregel import PregelResult, aggregate_messages, pregel
from .routing import RoutingTable

__all__ = [
    "ClusterConfig",
    "paper_cluster",
    "STORAGE_BANDWIDTH_BYTES",
    "CostModel",
    "CostParameters",
    "SimulationReport",
    "SuperstepRecord",
    "ArrayMessageKernel",
    "EdgePartition",
    "PartitionedGraph",
    "TripletArrays",
    "PregelResult",
    "RoutingTable",
    "aggregate_messages",
    "pregel",
]
