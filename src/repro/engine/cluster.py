"""Simulated cluster topology.

The paper runs on a 5-node Spark cluster (1 driver + 4 executors, 32 cores
and 220 GB each) connected by 1 Gbps Ethernet, with two infrastructure
variants: a 40 Gbps network (configuration iii) and local SSD storage
(configuration iv).  :class:`ClusterConfig` captures exactly those knobs so
the cost model can reproduce the relative effects.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache

import numpy as np

from ..errors import EngineError

__all__ = ["ClusterConfig", "paper_cluster", "STORAGE_BANDWIDTH_BYTES"]

#: Sequential read bandwidth per storage medium, bytes/second.
STORAGE_BANDWIDTH_BYTES = {
    "hdd": 150e6,
    "ssd": 500e6,
    "nvme": 2000e6,
}


@dataclass(frozen=True)
class ClusterConfig:
    """Static description of the simulated Spark cluster."""

    num_executors: int = 4
    cores_per_executor: int = 32
    memory_gb_per_executor: float = 220.0
    network_gbps: float = 1.0
    storage: str = "hdd"
    name: str = "paper-cluster"

    def __post_init__(self) -> None:
        if self.num_executors < 1:
            raise EngineError("num_executors must be >= 1")
        if self.cores_per_executor < 1:
            raise EngineError("cores_per_executor must be >= 1")
        if self.network_gbps <= 0:
            raise EngineError("network_gbps must be positive")
        if self.storage not in STORAGE_BANDWIDTH_BYTES:
            raise EngineError(
                f"unknown storage medium {self.storage!r}; "
                f"expected one of {sorted(STORAGE_BANDWIDTH_BYTES)}"
            )

    @property
    def total_cores(self) -> int:
        """Total executor cores in the cluster."""
        return self.num_executors * self.cores_per_executor

    @property
    def network_bytes_per_second(self) -> float:
        """Point-to-point network bandwidth in bytes per second."""
        return self.network_gbps * 1e9 / 8.0

    @property
    def storage_bytes_per_second(self) -> float:
        """Sequential storage read bandwidth in bytes per second."""
        return STORAGE_BANDWIDTH_BYTES[self.storage]

    def executor_of_partition(self, partition_id: int) -> int:
        """Executor that hosts a given partition (round-robin placement)."""
        return partition_id % self.num_executors

    def executor_map(self, num_partitions: int) -> np.ndarray:
        """Executor of every partition id in ``[0, num_partitions)`` as an array.

        Cached per (cluster, partition count) so the engine's vectorised
        counters can index it every superstep for free.
        """
        return _executor_map(self.num_executors, num_partitions)

    def with_network(self, network_gbps: float) -> "ClusterConfig":
        """Return a copy of this cluster with a different network speed."""
        return replace(self, network_gbps=network_gbps, name=f"{self.name}-{network_gbps:g}gbps")

    def with_storage(self, storage: str) -> "ClusterConfig":
        """Return a copy of this cluster with a different storage medium."""
        return replace(self, storage=storage, name=f"{self.name}-{storage}")


@lru_cache(maxsize=64)
def _executor_map(num_executors: int, num_partitions: int) -> np.ndarray:
    executors = np.arange(num_partitions, dtype=np.int64) % num_executors
    executors.setflags(write=False)
    return executors


def paper_cluster(network_gbps: float = 1.0, storage: str = "hdd") -> ClusterConfig:
    """The 4-executor, 128-core cluster used throughout the paper's evaluation."""
    return ClusterConfig(
        num_executors=4,
        cores_per_executor=32,
        memory_gb_per_executor=220.0,
        network_gbps=network_gbps,
        storage=storage,
        name="paper-cluster",
    )
