"""Shared-memory parallel Pregel: multi-core supersteps over attached partitions.

PR 5 parallelised *across* grid cells; this module shards **one** Pregel
run across a persistent :class:`~concurrent.futures.ProcessPoolExecutor`.
Edge partitions are the unit of work, exactly as in the paper: the
partition-major triplet arrays (built from every
:class:`~repro.engine.edge_partition.EdgePartition`'s cached
``local_triplets()``) and the membership-derived per-partition outbox
offsets are published **once** into ``multiprocessing.shared_memory``
segments through :class:`~repro.engine.shm_registry.ShmRegistry`, and
worker processes *attach* zero-copy ``np.ndarray`` views instead of
unpickling graph data per superstep.

Each superstep runs two fan-out rounds:

1. **scan + pass-1 fold** — every worker handles a set of partitions:
   it masks the partition's triplets against the shared ``active`` array,
   calls the kernel's ``send_message_array`` on them, left-folds the
   messages into per-``(partition, target)`` outbox slots with
   ``ufunc.at`` (the scalar outbox pre-aggregation) and writes the slot
   targets/values into the partition's region of the shared outbox;
2. **pass-2 merge** — the parent unions the slot targets, then workers
   fold disjoint *target ranges* across all partitions in ascending
   partition order (the scalar ``_route_and_merge`` master-side merge).

Because a partition's slots are exactly the serial
:func:`~repro.engine.messaging.plan_fold` slots restricted to that
partition (the global slot order is partition-major) and both folds
apply the same ``ufunc.at`` left folds in the same order, every merged
message — and therefore every ``SuperstepRecord`` counter and final
vertex value — is **bit-identical** to the serial array path.  The
equivalence zoo in ``tests/test_pregel_array_equivalence.py`` asserts
this across every registered partitioner at ``workers`` ∈ {1, 2, 4}.

Supersteps whose active frontier is small run serially in the parent
(dispatch latency would dominate); the results are identical either way
and the parallel/serial split is surfaced via :func:`engine_stats` for
``repro serve /stats``.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import pickle
import threading
import weakref
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import EngineError
from ..partitioning.membership import segment_arange
from .messaging import (
    ArrayMessageKernel,
    active_edge_mask,
    fold_messages,
    plan_fold,
    route_counts,
)
from .shm_registry import (
    ShmRegistry,
    attach_array,
    set_attach_unregister,
    shared_memory_available,
)

__all__ = [
    "ParallelPregelExecutor",
    "engine_stats",
    "parallel_supported",
    "pregel_array_parallel",
    "reset_engine_stats",
]

#: Below this many active vertices a data-driven superstep runs serially in
#: the parent — worker dispatch latency would exceed the superstep's work.
#: ``always_active`` algorithms (full scans every superstep) always fan out.
_DEFAULT_MIN_PARALLEL_ACTIVE = 2048

#: Environment override for the threshold (tests set it to 0 so tiny zoo
#: graphs still exercise the worker rounds).
_MIN_ACTIVE_ENV = "REPRO_PARALLEL_MIN_ACTIVE"

_SHM_PROBED: Optional[bool] = None

_STATS_LOCK = threading.Lock()
_STATS = {"runs": 0, "supersteps_parallel": 0, "supersteps_serial": 0}

#: executor cache: PartitionedGraph -> {workers: executor}.  Weak keys so a
#: collected graph tears its executor (pool + static segments) down with it.
_EXECUTOR_CACHE: "weakref.WeakKeyDictionary[Any, Dict[int, ParallelPregelExecutor]]" = (
    weakref.WeakKeyDictionary()
)
_EXECUTOR_CACHE_LOCK = threading.Lock()

_RUN_IDS = itertools.count(1)


def parallel_supported() -> bool:
    """Whether this platform can run shared-memory parallel supersteps."""
    global _SHM_PROBED
    if _SHM_PROBED is None:
        _SHM_PROBED = shared_memory_available()
    return _SHM_PROBED


def _min_parallel_active() -> int:
    raw = os.environ.get(_MIN_ACTIVE_ENV)
    if raw is None:
        return _DEFAULT_MIN_PARALLEL_ACTIVE
    try:
        return max(0, int(raw))
    except ValueError:
        return _DEFAULT_MIN_PARALLEL_ACTIVE


def reset_engine_stats() -> None:
    """Zero the run/superstep counters (test isolation)."""
    with _STATS_LOCK:
        for key in _STATS:
            _STATS[key] = 0


def engine_stats() -> Dict[str, object]:
    """Process-wide parallel-engine telemetry for ``/stats`` and benches."""
    from .shm_registry import live_segment_stats

    with _EXECUTOR_CACHE_LOCK:
        executors = [
            executor
            for per_graph in _EXECUTOR_CACHE.values()
            for executor in per_graph.values()
            if not executor.closed
        ]
    segments, total_bytes = live_segment_stats()
    with _STATS_LOCK:
        snapshot = dict(_STATS)
    total = snapshot["supersteps_parallel"] + snapshot["supersteps_serial"]
    return {
        "executors": len(executors),
        "workers": sum(executor.workers for executor in executors),
        "shared_memory": {"segments": segments, "bytes": total_bytes},
        "runs": snapshot["runs"],
        "supersteps": {
            "parallel": snapshot["supersteps_parallel"],
            "serial": snapshot["supersteps_serial"],
            "parallel_fraction": (
                round(snapshot["supersteps_parallel"] / total, 4) if total else 0.0
            ),
        },
    }


def _count_run(parallel_steps: int, serial_steps: int) -> None:
    with _STATS_LOCK:
        _STATS["runs"] += 1
        _STATS["supersteps_parallel"] += parallel_steps
        _STATS["supersteps_serial"] += serial_steps


# ----------------------------------------------------------------------
# Worker side.  Everything below the parent/worker line communicates via
# shared-memory views; task arguments are limited to manifests (segment
# names + small metadata) and per-superstep scalars.
# ----------------------------------------------------------------------
class _StaticContext:
    """Worker-side attachment of one executor's immutable graph segments."""

    def __init__(self, manifest: Dict[str, object]) -> None:
        self.key = manifest["key"]
        self._handles = []
        for name in ("src", "dst", "master_of"):
            shm, view = attach_array(manifest[name])
            view.flags.writeable = False
            self._handles.append(shm)
            setattr(self, name, view)
        self.edge_bounds = np.asarray(manifest["edge_bounds"], dtype=np.int64)
        self.outbox_offsets = np.asarray(manifest["outbox_offsets"], dtype=np.int64)


class _RunContext:
    """Worker-side attachment of one run's mutable segments + kernel."""

    def __init__(self, manifest: Dict[str, object]) -> None:
        self.run_id = manifest["run_id"]
        self._handles = []
        kernel_shm, kernel_buf = attach_array(manifest["kernel"])
        self._handles.append(kernel_shm)
        self.kernel = pickle.loads(kernel_buf.tobytes())
        for name in ("state", "active", "out_targets", "out_values", "targets", "merged"):
            shm, view = attach_array(manifest[name])
            self._handles.append(shm)
            setattr(self, name, view)
        self.always_active = bool(manifest["always_active"])
        self.active_direction = str(manifest["active_direction"])
        self.executor_of = np.asarray(manifest["executor_of"], dtype=np.int64)
        # pid -> (unique inverse, slot count): the superstep-invariant fold
        # structure of static-message-structure kernels (PageRank).
        self.fold_cache: Dict[int, Tuple[np.ndarray, int]] = {}


#: Per-worker caches (size 1: a worker pool belongs to one executor, and
#: the executor serialises runs).  Keyed so a stale entry is replaced.
_worker_static: Dict[object, _StaticContext] = {}
_worker_runs: Dict[object, _RunContext] = {}


def _worker_init(start_method: str) -> None:
    """Pool initializer: tune tracker behaviour to the start method."""
    set_attach_unregister(start_method != "fork")


def _static_context(manifest: Dict[str, object]) -> _StaticContext:
    context = _worker_static.get(manifest["key"])
    if context is None:
        _worker_static.clear()
        context = _StaticContext(manifest)
        _worker_static[manifest["key"]] = context
    return context


def _run_context(manifest: Dict[str, object]) -> _RunContext:
    context = _worker_runs.get(manifest["run_id"])
    if context is None:
        _worker_runs.clear()
        context = _RunContext(manifest)
        _worker_runs[manifest["run_id"]] = context
    return context


def _worker_scan_fold(
    static_manifest: Dict[str, object],
    run_manifest: Dict[str, object],
    pids: Sequence[int],
    cache_structure: bool,
    need_route: bool,
) -> Tuple[np.ndarray, np.ndarray, int, int]:
    """Round 1 for a set of partitions: scan, send, pass-1 fold, write outbox.

    Returns ``(slot_counts, scanned_counts, remote, local)`` aligned with
    ``pids``; the routing counters are only computed when ``need_route``
    (the parent caches them for static message structures).
    """
    static = _static_context(static_manifest)
    run = _run_context(run_manifest)
    kernel = run.kernel
    slot_counts = np.zeros(len(pids), dtype=np.int64)
    scanned_counts = np.zeros(len(pids), dtype=np.int64)
    remote = 0
    local = 0
    for i, pid in enumerate(pids):
        begin = int(static.edge_bounds[pid])
        end = int(static.edge_bounds[pid + 1])
        src = static.src[begin:end]
        dst = static.dst[begin:end]
        if run.always_active:
            scanned_src, scanned_dst = src, dst
            scanned_counts[i] = end - begin
        else:
            picked = np.flatnonzero(
                active_edge_mask(run.active, src, dst, run.active_direction)
            )
            scanned_src, scanned_dst = src[picked], dst[picked]
            scanned_counts[i] = picked.size
        _, target_idx, messages = kernel.send_message_array(
            scanned_src, scanned_dst, run.state
        )
        offset = int(static.outbox_offsets[pid])
        capacity = int(static.outbox_offsets[pid + 1]) - offset
        cached = run.fold_cache.get(pid) if cache_structure else None
        if cached is None:
            slot_targets, inverse = np.unique(target_idx, return_inverse=True)
            num_slots = int(slot_targets.size)
            if num_slots > capacity:  # pragma: no cover - membership invariant
                raise EngineError(
                    f"partition {pid} produced {num_slots} outbox slots but its "
                    f"mirror set only holds {capacity} vertices"
                )
            run.out_targets[offset:offset + num_slots] = slot_targets
            if cache_structure:
                run.fold_cache[pid] = (inverse, num_slots)
        else:
            inverse, num_slots = cached
        outbox = kernel.identity_array(num_slots)
        kernel.merge_ufunc.at(outbox, inverse, messages)
        run.out_values[offset:offset + num_slots] = outbox
        slot_counts[i] = num_slots
        if need_route and num_slots:
            # Mirrors messaging.route_counts for the slots of this partition
            # (slot_pid is constant here, so the masks collapse to scalars).
            masters = static.master_of[run.out_targets[offset:offset + num_slots]]
            shipped = masters != pid
            if shipped.any():
                crossed = int(
                    (run.executor_of[pid] != run.executor_of[masters[shipped]]).sum()
                )
                remote += crossed
                local += int(shipped.sum()) - crossed
    return slot_counts, scanned_counts, remote, local


def _worker_merge(
    static_manifest: Dict[str, object],
    run_manifest: Dict[str, object],
    slot_counts: np.ndarray,
    lo: int,
    hi: int,
    num_targets: int,
) -> int:
    """Round 2 for the target range ``[lo, hi)``: pass-2 fold across partitions.

    Folds every partition's slot aggregates for the range's targets in
    ascending partition order — the scalar master-side merge order — and
    writes the merged rows into the shared ``merged`` buffer.
    """
    static = _static_context(static_manifest)
    run = _run_context(run_manifest)
    kernel = run.kernel
    span = run.targets[lo:hi]
    merged = kernel.identity_array(hi - lo)
    first, last = span[0], span[-1]
    num_partitions = static.outbox_offsets.size - 1
    for pid in range(num_partitions):
        count = int(slot_counts[pid])
        if not count:
            continue
        offset = int(static.outbox_offsets[pid])
        slot_targets = run.out_targets[offset:offset + count]
        a = int(np.searchsorted(slot_targets, first, side="left"))
        b = int(np.searchsorted(slot_targets, last, side="right"))
        if a == b:
            continue
        local_idx = np.searchsorted(span, slot_targets[a:b])
        kernel.merge_ufunc.at(merged, local_idx, run.out_values[offset + a:offset + b])
    run.merged[lo:hi] = merged
    return hi - lo


# ----------------------------------------------------------------------
# Parent side.
# ----------------------------------------------------------------------
def _assign_partition_chunks(edge_counts: np.ndarray, workers: int) -> List[List[int]]:
    """Greedy LPT assignment of partitions to ``workers`` round-1 tasks."""
    order = np.argsort(edge_counts, kind="stable")[::-1]
    num_bins = max(1, min(workers, int(edge_counts.size)))
    bins: List[List[int]] = [[] for _ in range(num_bins)]
    loads = [0] * num_bins
    for pid in order.tolist():
        target = loads.index(min(loads))
        bins[target].append(int(pid))
        loads[target] += int(edge_counts[pid]) + 1
    return [chunk for chunk in bins if chunk]


def _target_ranges(num_targets: int, workers: int) -> List[Tuple[int, int]]:
    """Split ``[0, num_targets)`` into up to ``workers`` contiguous ranges."""
    num_ranges = max(1, min(workers, num_targets))
    edges = [int(round(num_targets * i / num_ranges)) for i in range(num_ranges + 1)]
    return [(a, b) for a, b in zip(edges, edges[1:]) if b > a]


class ParallelPregelExecutor:
    """A persistent worker pool attached to one graph's shared segments.

    Created once per :class:`~repro.engine.partitioned_graph.PartitionedGraph`
    (see :meth:`for_graph`) and reused across runs and algorithms: the
    triplet/membership segments are published at construction, every run
    only creates its small mutable segments (state, active mask, outbox,
    merge buffers).  Runs are serialised with a lock so concurrent serve
    threads share the pool safely.
    """

    def __init__(self, pgraph, workers: int) -> None:
        if int(workers) < 1:
            raise EngineError(f"parallel workers must be >= 1, got {workers!r}")
        trip = pgraph.triplets()
        if trip.num_edges == 0 or trip.num_vertices == 0:
            raise EngineError("parallel execution requires a non-empty graph")
        self.workers = int(workers)
        self.num_partitions = trip.num_partitions
        self.num_vertices = trip.num_vertices
        self.num_edges = trip.num_edges
        membership = pgraph.assignment.membership()
        per_partition = membership.vertices_per_partition()
        self.outbox_offsets = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(per_partition, dtype=np.int64)]
        )
        self.outbox_capacity = int(self.outbox_offsets[-1])
        self.edge_bounds = np.searchsorted(
            trip.edge_pid, np.arange(self.num_partitions + 1)
        ).astype(np.int64)
        edge_counts = np.diff(self.edge_bounds)
        self._chunks = _assign_partition_chunks(edge_counts, self.workers)

        self._static = ShmRegistry(label="graph")
        self._static.publish_array("src", trip.src)
        self._static.publish_array("dst", trip.dst)
        self._static.publish_array("master_of", trip.master_of)
        self._static_manifest: Dict[str, object] = {
            "key": f"{os.getpid()}-{id(self)}",
            "src": self._static.entry("src"),
            "dst": self._static.entry("dst"),
            "master_of": self._static.entry("master_of"),
            "edge_bounds": self.edge_bounds.tolist(),
            "outbox_offsets": self.outbox_offsets.tolist(),
        }

        methods = multiprocessing.get_all_start_methods()
        context = (
            multiprocessing.get_context("fork")
            if "fork" in methods
            else multiprocessing.get_context()
        )
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=context,
            initializer=_worker_init,
            initargs=(context.get_start_method(),),
        )
        self._run_lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    @classmethod
    def for_graph(cls, pgraph, workers: int) -> "ParallelPregelExecutor":
        """The cached executor of ``pgraph`` at this worker count.

        The executor (pool + static segments) lives exactly as long as the
        graph: a ``weakref.finalize`` tears it down when the graph is
        collected, and the cache entry disappears with the weak key.
        """
        workers = int(workers)
        with _EXECUTOR_CACHE_LOCK:
            per_graph = _EXECUTOR_CACHE.get(pgraph)
            if per_graph is None:
                per_graph = {}
                _EXECUTOR_CACHE[pgraph] = per_graph
            executor = per_graph.get(workers)
            if executor is None or executor.closed:
                executor = cls(pgraph, workers)
                per_graph[workers] = executor
                weakref.finalize(pgraph, executor.close)
            return executor

    def close(self) -> None:
        """Shut the pool down and unlink the static segments.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        try:
            self._pool.shutdown(wait=True, cancel_futures=True)
        except Exception:  # pragma: no cover - interpreter teardown
            pass
        self._static.close()

    def __enter__(self) -> "ParallelPregelExecutor":
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return None

    # ------------------------------------------------------------------
    def run(
        self,
        pgraph,
        initial_values: Dict[int, Any],
        kernel: ArrayMessageKernel,
        *,
        max_iterations: int,
        active_direction: str,
        cluster,
        model,
        report,
        edge_compute_units: float,
        vertex_compute_units: float,
        always_active: bool,
    ):
        """Run one kernelised Pregel computation on the attached graph.

        Same contract (and bit-identical output) as the serial
        ``_pregel_array`` loop; see the module docstring for the argument.
        """
        if self._closed:
            raise EngineError("executor is closed")
        with self._run_lock:
            return self._run_locked(
                pgraph,
                initial_values,
                kernel,
                max_iterations=max_iterations,
                active_direction=active_direction,
                cluster=cluster,
                model=model,
                report=report,
                edge_compute_units=edge_compute_units,
                vertex_compute_units=vertex_compute_units,
                always_active=always_active,
            )

    def _run_locked(
        self,
        pgraph,
        initial_values,
        kernel,
        *,
        max_iterations,
        active_direction,
        cluster,
        model,
        report,
        edge_compute_units,
        vertex_compute_units,
        always_active,
    ):
        # Imported here (not at module top) to avoid a circular import:
        # pregel.py pulls this module in lazily for dispatch.
        from .pregel import _MESSAGE_SERIALIZE_UNITS, PregelResult, _broadcast_updates

        trip = pgraph.triplets()
        num_vertices = trip.num_vertices
        num_partitions = trip.num_partitions
        master_of = trip.master_of
        executor_of = cluster.executor_map(num_partitions)
        vertex_units_per_master = (
            np.bincount(master_of, minlength=num_partitions) * vertex_compute_units
        )
        min_active = _min_parallel_active()
        static_structure = always_active and kernel.static_message_structure

        # ``encode`` may set kernel-side state (PageRank's degrees), so the
        # kernel is pickled for the workers only afterwards.
        initial_state = kernel.encode(trip.vertex_ids, initial_values)
        width = kernel.message_width
        message_shape = (
            (self.outbox_capacity,) if width is None else (self.outbox_capacity, width)
        )
        merged_shape = (num_vertices,) if width is None else (num_vertices, width)

        parallel_steps = 0
        serial_steps = 0
        registry = ShmRegistry(label="pregel-run")
        try:
            state = registry.create_array("state", initial_state.shape, initial_state.dtype)
            state[...] = initial_state
            active = registry.create_array("active", (num_vertices,), np.bool_)
            registry.create_array("out_targets", (self.outbox_capacity,), np.int64)
            registry.create_array("out_values", message_shape, kernel.message_dtype)
            targets_buffer = registry.create_array("targets", (num_vertices,), np.int64)
            merged_buffer = registry.create_array("merged", merged_shape, kernel.message_dtype)
            registry.publish_bytes("kernel", pickle.dumps(kernel))
            out_targets = registry.array("out_targets")
            run_manifest: Dict[str, object] = {
                "run_id": f"{os.getpid()}-{next(_RUN_IDS)}",
                "always_active": always_active,
                "active_direction": active_direction,
                "executor_of": executor_of.tolist(),
            }
            for key in ("kernel", "state", "active", "out_targets", "out_values", "targets", "merged"):
                run_manifest[key] = registry.entry(key)

            # ----------------------------------------------------------
            # Superstep 0 (parent only): vertex program everywhere.
            # ----------------------------------------------------------
            partition_units = np.zeros(num_partitions, dtype=np.float64)
            result = kernel.initial_program(state)
            if result is not state:
                state[...] = result
            partition_units += vertex_units_per_master
            sync_remote, sync_local = _broadcast_updates(
                pgraph, cluster, trip.vertex_ids, partition_units
            )
            model.record_superstep(
                report,
                superstep=0,
                partition_units=partition_units,
                messages_remote=sync_remote,
                messages_local=sync_local,
                active_vertices=num_vertices,
                edges_scanned=0,
            )

            active[...] = True
            active_count = num_vertices
            supersteps = 0

            if always_active:
                all_edge_units = (
                    np.bincount(trip.edge_pid, minlength=num_partitions)
                    * edge_compute_units
                )
                all_sync_units = np.zeros(num_partitions, dtype=np.float64)
                all_sync_remote, all_sync_local = _broadcast_updates(
                    pgraph, cluster, trip.vertex_ids, all_sync_units
                )
            cached_targets = None
            cached_slot_counts = None
            cached_serialize_units = None
            cached_shuffle = None

            # ----------------------------------------------------------
            # Message-exchange supersteps.
            # ----------------------------------------------------------
            while active.any() and supersteps < max_iterations:
                supersteps += 1
                partition_units = np.zeros(num_partitions, dtype=np.float64)
                fan_out = always_active or active_count >= min_active

                if fan_out:
                    parallel_steps += 1
                    need_route = cached_shuffle is None
                    futures = [
                        self._pool.submit(
                            _worker_scan_fold,
                            self._static_manifest,
                            run_manifest,
                            chunk,
                            static_structure,
                            need_route,
                        )
                        for chunk in self._chunks
                    ]
                    slot_counts = np.zeros(num_partitions, dtype=np.int64)
                    scanned_counts = np.zeros(num_partitions, dtype=np.int64)
                    shuffle_remote = 0
                    shuffle_local = 0
                    for chunk, future in zip(self._chunks, futures):
                        counts, scanned, remote, local = future.result()
                        slot_counts[chunk] = counts
                        scanned_counts[chunk] = scanned
                        shuffle_remote += remote
                        shuffle_local += local
                    edges_scanned = int(scanned_counts.sum())
                    if always_active:
                        partition_units += all_edge_units
                    else:
                        partition_units += scanned_counts * edge_compute_units
                    if cached_shuffle is not None:
                        partition_units += cached_serialize_units
                        shuffle_remote, shuffle_local = cached_shuffle
                        target_idx = cached_targets
                        slot_counts = cached_slot_counts
                    else:
                        serialize_units = slot_counts * _MESSAGE_SERIALIZE_UNITS
                        partition_units += serialize_units
                        used = segment_arange(self.outbox_offsets[:-1], slot_counts)
                        target_idx = np.unique(out_targets[used])
                        if static_structure:
                            cached_serialize_units = serialize_units
                            cached_shuffle = (shuffle_remote, shuffle_local)
                            cached_targets = target_idx
                            cached_slot_counts = slot_counts
                    num_targets = int(target_idx.size)
                    if num_targets:
                        targets_buffer[:num_targets] = target_idx
                        merge_futures = [
                            self._pool.submit(
                                _worker_merge,
                                self._static_manifest,
                                run_manifest,
                                slot_counts,
                                lo,
                                hi,
                                num_targets,
                            )
                            for lo, hi in _target_ranges(num_targets, self.workers)
                        ]
                        for future in merge_futures:
                            future.result()
                        merged = merged_buffer[:num_targets]
                    else:
                        merged = kernel.identity_array(0)
                else:
                    # Small frontier: run the serial array superstep in the
                    # parent (identical results, no dispatch latency).
                    serial_steps += 1
                    scanned = np.flatnonzero(
                        active_edge_mask(active, trip.src, trip.dst, active_direction)
                    )
                    edges_scanned = int(scanned.size)
                    scanned_pid = trip.edge_pid[scanned]
                    partition_units += (
                        np.bincount(scanned_pid, minlength=num_partitions)
                        * edge_compute_units
                    )
                    positions, msg_targets, messages = kernel.send_message_array(
                        trip.src[scanned], trip.dst[scanned], state
                    )
                    plan = plan_fold(scanned_pid[positions], msg_targets, num_vertices)
                    partition_units += (
                        np.bincount(plan.slot_pid, minlength=num_partitions)
                        * _MESSAGE_SERIALIZE_UNITS
                    )
                    shuffle_remote, shuffle_local = route_counts(
                        plan, master_of, executor_of
                    )
                    merged = fold_messages(kernel, plan, messages)
                    target_idx = plan.target_idx
                    num_targets = int(target_idx.size)

                if not num_targets and not always_active:
                    model.record_superstep(
                        report,
                        superstep=supersteps,
                        partition_units=partition_units,
                        messages_remote=shuffle_remote,
                        messages_local=shuffle_local,
                        active_vertices=0,
                        edges_scanned=edges_scanned,
                    )
                    active[...] = False
                    break

                if always_active:
                    result = kernel.apply_messages_all(state, target_idx, merged)
                    if result is not state:
                        state[...] = result
                    partition_units += vertex_units_per_master
                    partition_units += all_sync_units
                    sync_remote, sync_local = all_sync_remote, all_sync_local
                    num_updated = num_vertices
                else:
                    result = kernel.apply_messages(state, target_idx, merged)
                    if result is not state:
                        state[...] = result
                    partition_units += (
                        np.bincount(master_of[target_idx], minlength=num_partitions)
                        * vertex_compute_units
                    )
                    num_updated = num_targets
                    sync_remote, sync_local = _broadcast_updates(
                        pgraph, cluster, trip.vertex_ids[target_idx], partition_units
                    )
                model.record_superstep(
                    report,
                    superstep=supersteps,
                    partition_units=partition_units,
                    messages_remote=shuffle_remote + sync_remote,
                    messages_local=shuffle_local + sync_local,
                    active_vertices=num_updated,
                    edges_scanned=edges_scanned,
                )
                if not always_active:
                    active[...] = False
                    active[target_idx] = True
                    active_count = num_targets

            final_state = np.array(state, copy=True)
        finally:
            registry.close()
        _count_run(parallel_steps, serial_steps)
        return PregelResult(
            vertex_values=kernel.decode(trip.vertex_ids, final_state),
            num_supersteps=report.num_supersteps,
            report=report,
        )


def pregel_array_parallel(
    pgraph,
    initial_values: Dict[int, Any],
    kernel: ArrayMessageKernel,
    *,
    workers: int,
    max_iterations: int,
    active_direction: str,
    cluster,
    model,
    report,
    edge_compute_units: float,
    vertex_compute_units: float,
    always_active: bool,
):
    """Entry point of the parallel array path (called by :func:`pregel`)."""
    executor = ParallelPregelExecutor.for_graph(pgraph, workers)
    return executor.run(
        pgraph,
        initial_values,
        kernel,
        max_iterations=max_iterations,
        active_direction=active_direction,
        cluster=cluster,
        model=model,
        report=report,
        edge_compute_units=edge_compute_units,
        vertex_compute_units=vertex_compute_units,
        always_active=always_active,
    )
