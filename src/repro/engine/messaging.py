"""Array-native message plane for the Pregel engine.

The scalar Pregel loop scans every edge triplet with a Python loop and
merges messages through per-target dict folds.  That loop is the last big
scalar hot path of the simulator: it dominates every ``run_algorithm_study``
sweep because it runs once per superstep per edge.

This module provides the vectorised replacement.  An algorithm may hand
the engine an :class:`ArrayMessageKernel` describing its messages as flat
numpy arrays; the engine then computes active-edge masks, per-target
message aggregation, master routing and remote/local message counts
entirely with array operations over the partition triplet arrays cached
on :class:`~repro.engine.edge_partition.EdgePartition`.

Bit-identical folds
-------------------
The scalar engine folds messages strictly left-to-right: first within a
partition's outbox in edge-scan order, then across partitions in
partition-id order.  To reproduce its results *bit for bit* (floating
point included) the aggregation here uses ``ufunc.at`` — an unbuffered,
in-order left fold — rather than ``ufunc.reduceat``/``bincount``, whose
pairwise summation reassociates long segments.  The fold starts from the
kernel's ``merge_identity`` (``0.0`` for ``np.add``, ``+inf``/``INT64_MAX``
for ``np.minimum``), which is exact for the shipped merge operators.

The per-partition compute counters are computed as ``count * unit``
products instead of the scalar path's repeated additions; the two agree
bit-for-bit whenever the unit costs are dyadic rationals (0.25, 0.5, 1.0,
…), which holds for every unit cost in this code base.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..errors import EngineError
from ..partitioning.membership import master_partition_array

__all__ = [
    "ArrayMessageKernel",
    "TripletArrays",
    "build_triplets",
    "active_edge_mask",
    "FoldPlan",
    "plan_fold",
    "fold_messages",
    "route_counts",
]


class ArrayMessageKernel:
    """Vectorised message kernel an algorithm hands to :func:`pregel`.

    A kernel replaces the scalar ``vertex_program`` / ``send_message`` /
    ``merge_message`` callables with array equivalents over a dense vertex
    index (position in the graph's sorted ``vertex_ids`` array).  The
    contract is strict observational equivalence with the scalar triple:
    identical vertex values (bit for bit) and identical message sets.

    Subclasses set the class attributes below and implement the methods
    that their execution mode needs (:meth:`apply_messages_all` only for
    ``always_active`` algorithms, :meth:`decode_messages` only for
    ``aggregate_messages`` users).
    """

    #: ufunc combining two messages for the same target; must be the exact
    #: array counterpart of the scalar ``merge_message`` (np.add, np.minimum).
    merge_ufunc: Optional[np.ufunc] = None
    #: Identity element of ``merge_ufunc`` used to seed the left fold.
    merge_identity: Any = None
    #: dtype of one message (float64 ranks, int64 labels, ...).
    message_dtype = np.float64
    #: Row width for matrix-valued messages (``None`` = scalar messages).
    message_width: Optional[int] = None
    #: ``True`` when the *structure* of the messages (which edges emit, to
    #: which targets) is the same every superstep even though the payloads
    #: change — e.g. PageRank, which always sends along every out-edge.
    #: Lets the engine compute the fold plan and routing counters once.
    static_message_structure = False

    # -- state codec ----------------------------------------------------
    def encode(self, vertex_ids: np.ndarray, values: Dict[int, Any]):
        """Encode the scalar per-vertex values into dense array state."""
        raise NotImplementedError

    def decode(self, vertex_ids: np.ndarray, state) -> Dict[int, Any]:
        """Decode array state back into the scalar ``vertex_values`` dict.

        Payloads must be bit-identical to what the scalar path produces.
        """
        raise NotImplementedError

    # -- superstep hooks ------------------------------------------------
    def initial_program(self, state):
        """Superstep 0: the vertex program applied with the initial message.

        Every shipped algorithm leaves its values untouched in superstep 0,
        so the default is the identity.
        """
        return state

    def send_message_array(
        self, src_idx: np.ndarray, dst_idx: np.ndarray, state
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Messages for the scanned triplets ``(src_idx[i], dst_idx[i])``.

        Returns ``(edge_positions, target_idx, messages)`` where
        ``edge_positions`` indexes the scanned-edge arrays (so the engine
        can attribute each message to its partition), ``target_idx`` is the
        dense index of each recipient and ``messages`` the payload array.
        When ``merge_ufunc`` is inexact (float add) the messages must be
        emitted in scanned-edge order so the engine's left fold reproduces
        the scalar outbox fold exactly.
        """
        raise NotImplementedError

    def apply_messages(self, state, target_idx: np.ndarray, messages):
        """Vertex program for the data-driven loop: update only receivers."""
        raise NotImplementedError

    def apply_messages_all(self, state, target_idx: np.ndarray, messages):
        """Vertex program for ``always_active`` algorithms.

        Runs on *every* vertex; non-receivers see the algorithm's default
        message (the kernel owns that substitution).
        """
        raise NotImplementedError

    # -- aggregate_messages ---------------------------------------------
    def decode_messages(self, target_ids: np.ndarray, messages) -> Dict[int, Any]:
        """Decode merged messages for :func:`aggregate_messages` users."""
        raise NotImplementedError

    # -- helpers --------------------------------------------------------
    def identity_array(self, count: int) -> np.ndarray:
        """A fresh fold accumulator of ``count`` identity messages."""
        shape = (count,) if self.message_width is None else (count, self.message_width)
        return np.full(shape, self.merge_identity, dtype=self.message_dtype)


@dataclass
class TripletArrays:
    """The whole partitioned graph as flat, partition-major triplet arrays.

    ``src``/``dst`` are dense vertex indices (positions in ``vertex_ids``);
    ``edge_pid`` is the owning edge partition of every triplet.  ``master_of``
    maps every dense vertex index to its master partition.
    """

    vertex_ids: np.ndarray
    edge_pid: np.ndarray
    src: np.ndarray
    dst: np.ndarray
    master_of: np.ndarray
    num_partitions: int

    @property
    def num_vertices(self) -> int:
        return int(self.vertex_ids.size)

    @property
    def num_edges(self) -> int:
        return int(self.src.size)


def build_triplets(pgraph) -> TripletArrays:
    """Materialise the partition-major triplet arrays of a partitioned graph.

    Composes each partition's cached local triplets (indices into the
    partition's mirror list) with one ``searchsorted`` of the mirror list
    into the graph's global vertex table — the same two-level indexing
    GraphX's ``EdgePartition`` uses.
    """
    vertex_ids = pgraph.graph.vertex_ids
    num_partitions = pgraph.num_partitions
    pid_chunks, src_chunks, dst_chunks = [], [], []
    for partition in pgraph.partitions:
        if not partition.num_edges:
            continue
        local_src, local_dst = partition.local_triplets()
        global_of_mirror = np.searchsorted(vertex_ids, partition.vertex_ids)
        pid_chunks.append(
            np.full(partition.num_edges, partition.partition_id, dtype=np.int64)
        )
        src_chunks.append(global_of_mirror[local_src])
        dst_chunks.append(global_of_mirror[local_dst])
    if pid_chunks:
        edge_pid = np.concatenate(pid_chunks)
        src = np.concatenate(src_chunks)
        dst = np.concatenate(dst_chunks)
    else:
        edge_pid = np.empty(0, dtype=np.int64)
        src = np.empty(0, dtype=np.int64)
        dst = np.empty(0, dtype=np.int64)
    return TripletArrays(
        vertex_ids=vertex_ids,
        edge_pid=edge_pid,
        src=src,
        dst=dst,
        master_of=master_partition_array(vertex_ids, num_partitions),
        num_partitions=num_partitions,
    )


def active_edge_mask(
    active: np.ndarray,
    src_idx: np.ndarray,
    dst_idx: np.ndarray,
    active_direction: str,
) -> np.ndarray:
    """Boolean mask of the triplets the scalar loop would scan."""
    if active_direction == "either":
        return active[src_idx] | active[dst_idx]
    if active_direction == "out":
        return active[src_idx]
    if active_direction == "in":
        return active[dst_idx]
    if active_direction == "both":
        return active[src_idx] & active[dst_idx]
    raise EngineError(
        f"active_direction must be 'either', 'out', 'in' or 'both', got {active_direction!r}"
    )


@dataclass
class FoldPlan:
    """The structure of one superstep's two-level message fold.

    ``slot_pid``/``slot_target`` identify the per-partition outbox entries
    (one slot per distinct ``(partition, target)`` pair, partition-major);
    ``target_idx`` the distinct recipients.  The plan depends only on which
    edges emitted to which targets, so ``always_active`` algorithms with a
    static message structure reuse it (and its routing counters) across
    supersteps.
    """

    slot_of_message: np.ndarray
    slot_pid: np.ndarray
    slot_target: np.ndarray
    target_of_slot: np.ndarray
    target_idx: np.ndarray

    @property
    def num_outbox_entries(self) -> int:
        return int(self.slot_pid.size)


def plan_fold(msg_pid: np.ndarray, target_idx: np.ndarray, num_vertices: int) -> FoldPlan:
    """Group the emitted messages by ``(partition, target)`` and by target."""
    slot_key = msg_pid * np.int64(num_vertices) + target_idx
    slots, slot_of_message = np.unique(slot_key, return_inverse=True)
    slot_pid = slots // num_vertices
    slot_target = slots - slot_pid * num_vertices
    targets, target_of_slot = np.unique(slot_target, return_inverse=True)
    return FoldPlan(
        slot_of_message=slot_of_message,
        slot_pid=slot_pid,
        slot_target=slot_target,
        target_of_slot=target_of_slot,
        target_idx=targets,
    )


def fold_messages(
    kernel: ArrayMessageKernel, plan: FoldPlan, messages: np.ndarray
) -> np.ndarray:
    """Reproduce the scalar outbox + shuffle fold with two ``ufunc.at`` passes.

    Pass 1 folds messages into their ``(partition, target)`` outbox slot in
    emission order (the scalar per-partition pre-aggregation); pass 2 folds
    the slot aggregates per target in ascending-partition order (``slots``
    are partition-major), exactly like the scalar ``_route_and_merge``
    master-side merge.  Returns the merged messages aligned with
    ``plan.target_idx``.
    """
    outbox = kernel.identity_array(plan.slot_pid.size)
    kernel.merge_ufunc.at(outbox, plan.slot_of_message, messages)
    merged = kernel.identity_array(plan.target_idx.size)
    kernel.merge_ufunc.at(merged, plan.target_of_slot, outbox)
    return merged


def route_counts(
    plan: FoldPlan,
    master_of: np.ndarray,
    executor_of: np.ndarray,
) -> Tuple[int, int]:
    """Remote/local shuffle message counts for one superstep's outboxes.

    Mirrors the scalar ``_route_and_merge`` accounting: one message per
    outbox entry whose target's master lives in a different partition;
    remote when that partition sits on a different executor.
    """
    masters = master_of[plan.slot_target]
    shipped = masters != plan.slot_pid
    if not shipped.any():
        return 0, 0
    remote = int(
        (executor_of[plan.slot_pid[shipped]] != executor_of[masters[shipped]]).sum()
    )
    return remote, int(shipped.sum()) - remote
