"""Vertex routing tables: where the master and the replicas of a vertex live.

GraphX keeps a routing table next to the vertex RDD describing which edge
partitions hold a copy of every vertex; the BSP engine uses it both to ship
aggregated messages to masters and to broadcast updated vertex state back
to replicas.  The number of those broadcasts is exactly the paper's
Communication Cost metric.

The table is array-native: it shares the CSR pair arrays of
:class:`~repro.partitioning.membership.VertexMembership` and a vectorised
master assignment, so constructing it costs one ``np.unique`` + one hash
pass instead of the seed implementation's per-vertex dict build.  The
``replicas`` / ``masters`` dict attributes of the seed API survive as
lazily-expanded shims.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..partitioning.base import EdgePartitionAssignment
from ..partitioning.membership import VertexMembership, master_partition_array

__all__ = ["RoutingTable"]


class RoutingTable:
    """Replica locations and master assignment for every vertex."""

    def __init__(
        self,
        num_partitions: int,
        membership: VertexMembership,
        all_vertex_ids: np.ndarray,
    ) -> None:
        self.num_partitions = num_partitions
        self.membership = membership
        self._all_vertex_ids = np.asarray(all_vertex_ids, dtype=np.int64)
        #: Master partition of every placed vertex, aligned with
        #: ``membership.vertices`` (computed eagerly: it is the half of the
        #: table the seed implementation hashed vertex-by-vertex).
        self.master_of_placed = membership.masters
        self._replicas: Optional[Dict[int, Tuple[int, ...]]] = None
        self._masters: Optional[Dict[int, int]] = None

    @classmethod
    def from_assignment(cls, assignment: EdgePartitionAssignment) -> "RoutingTable":
        """Build the routing table implied by an edge partition assignment."""
        return cls(
            num_partitions=assignment.num_partitions,
            membership=assignment.membership(),
            all_vertex_ids=assignment.graph.vertex_ids,
        )

    @classmethod
    def from_vertex_partitions(
        cls,
        num_partitions: int,
        vertex_partitions: Dict[int, frozenset],
    ) -> "RoutingTable":
        """Seed dict-walking constructor, kept for equivalence tests/benchmarks.

        Builds the ``replicas`` / ``masters`` dicts exactly as the seed
        ``from_assignment`` did, then wraps them in the array representation.
        """
        from ..metrics.partition_metrics import master_partition

        replicas = {
            vertex: tuple(sorted(parts)) for vertex, parts in vertex_partitions.items()
        }
        masters = {vertex: master_partition(vertex, num_partitions) for vertex in replicas}
        all_ids = np.array(sorted(replicas), dtype=np.int64)
        pair_vertex = np.array(
            [v for v, parts in sorted(replicas.items()) for _ in parts], dtype=np.int64
        )
        pair_partition = np.array(
            [p for _, parts in sorted(replicas.items()) for p in parts], dtype=np.int64
        )
        table = cls(num_partitions, VertexMembership(pair_vertex, pair_partition, num_partitions), all_ids)
        table._replicas = replicas
        table._masters = masters
        return table

    # ------------------------------------------------------------------
    # Dict shims (deprecated): the seed API expanded on demand.
    # ------------------------------------------------------------------
    @property
    def replicas(self) -> Dict[int, Tuple[int, ...]]:
        """``{vertex: sorted partitions holding a copy}`` for every graph vertex.

        .. deprecated:: compatibility shim over the CSR arrays; prefer
           :attr:`membership` (``partitions_of`` / ``expand``) or the bulk
           accessors :meth:`replica_sync_pairs` / :meth:`sync_message_counts`.
        """
        if self._replicas is None:
            self._replicas = self.membership.to_dict(self._all_vertex_ids, factory=tuple)
        return self._replicas

    @property
    def masters(self) -> Dict[int, int]:
        """``{vertex: master partition}`` for every graph vertex (shim)."""
        if self._masters is None:
            masters_all = master_partition_array(self._all_vertex_ids, self.num_partitions)
            self._masters = dict(
                zip(self._all_vertex_ids.tolist(), masters_all.tolist())
            )
        return self._masters

    # ------------------------------------------------------------------
    # Scalar accessors (seed API, unchanged semantics).
    # ------------------------------------------------------------------
    def replica_partitions(self, vertex: int) -> Tuple[int, ...]:
        """Partitions that hold a copy of ``vertex`` (empty for isolated vertices)."""
        return tuple(self.membership.partitions_of(vertex).tolist())

    def master_of(self, vertex: int) -> int:
        """Partition that owns the master copy of ``vertex``.

        Goes through the cached :attr:`masters` dict (built once, then O(1)
        per call) because callers like the triangle-count simulation query
        it per cut vertex; raises ``KeyError`` for unknown vertices, as the
        seed dict did.
        """
        return self.masters[vertex]

    def replication_count(self, vertex: int) -> int:
        """Number of partitions holding a copy of ``vertex``."""
        return int(self.membership.partitions_of(vertex).size)

    def sync_message_count(self, vertex: int) -> int:
        """Messages needed to push the master value of ``vertex`` to its replicas.

        The master partition does not need to message itself, so the count
        is the number of replica partitions different from the master.
        """
        parts = self.membership.partitions_of(vertex)
        if not parts.size:
            return 0
        master = master_partition_array(np.int64(vertex), self.num_partitions)
        return int((parts != master).sum())

    # ------------------------------------------------------------------
    # Array-native accessors used by the engine and the metrics.
    # ------------------------------------------------------------------
    def sync_message_counts(self) -> np.ndarray:
        """Per-placed-vertex replica broadcast counts (aligned with
        ``membership.vertices``); summing this is the engine-side CommCost."""
        membership = self.membership
        non_master = membership.pair_partition != np.repeat(
            self.master_of_placed, membership.counts
        )
        segments = np.repeat(
            np.arange(membership.num_placed_vertices), membership.counts
        )
        return np.bincount(
            segments[non_master], minlength=membership.num_placed_vertices
        ).astype(np.int64)

    def replica_sync_pairs(self, vertex_ids: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """``(replica_partition, master_partition)`` rows for every non-master
        replica of ``vertex_ids`` — the per-superstep broadcast plan.

        Vertices that are not placed in any partition contribute no rows.
        """
        membership = self.membership
        idx = membership.indices_of(vertex_ids)
        idx = idx[idx >= 0]
        if not idx.size:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        positions, counts = membership.expand(idx)
        parts = membership.pair_partition[positions]
        masters = np.repeat(self.master_of_placed[idx], counts)
        keep = parts != masters
        return parts[keep], masters[keep]
