"""Vertex routing tables: where the master and the replicas of a vertex live.

GraphX keeps a routing table next to the vertex RDD describing which edge
partitions hold a copy of every vertex; the BSP engine uses it both to ship
aggregated messages to masters and to broadcast updated vertex state back
to replicas.  The number of those broadcasts is exactly the paper's
Communication Cost metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..metrics.partition_metrics import master_partition
from ..partitioning.base import EdgePartitionAssignment

__all__ = ["RoutingTable"]


@dataclass
class RoutingTable:
    """Replica locations and master assignment for every vertex."""

    num_partitions: int
    replicas: Dict[int, Tuple[int, ...]]
    masters: Dict[int, int]

    @classmethod
    def from_assignment(cls, assignment: EdgePartitionAssignment) -> "RoutingTable":
        """Build the routing table implied by an edge partition assignment."""
        num_partitions = assignment.num_partitions
        replicas = {
            vertex: tuple(sorted(parts))
            for vertex, parts in assignment.vertex_partitions().items()
        }
        masters = {
            vertex: master_partition(vertex, num_partitions) for vertex in replicas
        }
        return cls(num_partitions=num_partitions, replicas=replicas, masters=masters)

    def replica_partitions(self, vertex: int) -> Tuple[int, ...]:
        """Partitions that hold a copy of ``vertex`` (empty for isolated vertices)."""
        return self.replicas.get(vertex, ())

    def master_of(self, vertex: int) -> int:
        """Partition that owns the master copy of ``vertex``."""
        return self.masters[vertex]

    def replication_count(self, vertex: int) -> int:
        """Number of partitions holding a copy of ``vertex``."""
        return len(self.replicas.get(vertex, ()))

    def sync_message_count(self, vertex: int) -> int:
        """Messages needed to push the master value of ``vertex`` to its replicas.

        The master partition does not need to message itself, so the count
        is the number of replica partitions different from the master.
        """
        master = self.masters.get(vertex)
        parts = self.replicas.get(vertex, ())
        return sum(1 for p in parts if p != master)
