"""A graph distributed over edge partitions, ready for BSP execution."""

from __future__ import annotations

from typing import Dict, List, Optional, Union

import numpy as np

from ..core.graph import Graph
from ..core.properties import estimated_size_bytes
from ..errors import EngineError
from ..metrics.partition_metrics import PartitioningMetrics, compute_metrics
from ..partitioning.base import EdgePartitionAssignment, PartitionStrategy
from ..partitioning.registry import make_partitioner
from .edge_partition import EdgePartition
from .messaging import TripletArrays, build_triplets
from .routing import RoutingTable

__all__ = ["PartitionedGraph"]


class PartitionedGraph:
    """The distributed representation GraphX builds from an edge placement.

    Holds the per-partition edge lists, the vertex routing table and the
    partitioning metrics of Section 3.1, and is the input type of every
    algorithm in :mod:`repro.algorithms`.
    """

    def __init__(self, assignment: EdgePartitionAssignment) -> None:
        self.assignment = assignment
        self.graph = assignment.graph
        self.num_partitions = assignment.num_partitions
        self.strategy_name = assignment.strategy_name
        self._partitions: Optional[List[EdgePartition]] = None
        self._routing: Optional[RoutingTable] = None
        self._metrics: Optional[PartitioningMetrics] = None
        self._triplets: Optional[TripletArrays] = None

    # ------------------------------------------------------------------
    @classmethod
    def partition(
        cls,
        graph: Graph,
        strategy: Union[str, PartitionStrategy],
        num_partitions: int,
    ) -> "PartitionedGraph":
        """Partition ``graph`` with ``strategy`` into ``num_partitions`` parts.

        ``strategy`` may be a strategy instance or a registry name such as
        ``"2D"`` or ``"CRVC"``.
        """
        if isinstance(strategy, str):
            strategy = make_partitioner(strategy)
        if not isinstance(strategy, PartitionStrategy):
            raise EngineError(
                f"strategy must be a PartitionStrategy or name, got {type(strategy).__name__}"
            )
        assignment = strategy.assign(graph, num_partitions)
        return cls(assignment)

    # ------------------------------------------------------------------
    @property
    def partitions(self) -> List[EdgePartition]:
        """The edge partitions (built lazily, cached).

        One stable argsort groups the edge arrays by partition (preserving
        the original edge order inside each partition, as the seed's bucket
        loop did); the per-partition vertex mirror lists come straight from
        the assignment's :class:`VertexMembership` instead of a per-partition
        ``np.unique`` over the endpoints.
        """
        if self._partitions is None:
            partition_of = self.assignment.partition_of
            order = np.argsort(partition_of, kind="stable")
            src_sorted = self.graph.src[order]
            dst_sorted = self.graph.dst[order]
            bounds = np.searchsorted(
                partition_of[order], np.arange(self.num_partitions + 1)
            )
            membership = self.assignment.membership()
            self._partitions = [
                EdgePartition(
                    partition_id=pid,
                    src=src_sorted[bounds[pid]:bounds[pid + 1]],
                    dst=dst_sorted[bounds[pid]:bounds[pid + 1]],
                    vertex_ids=membership.vertices_of_partition(pid),
                )
                for pid in range(self.num_partitions)
            ]
        return self._partitions

    @property
    def routing(self) -> RoutingTable:
        """The vertex routing table (built lazily, cached)."""
        if self._routing is None:
            self._routing = RoutingTable.from_assignment(self.assignment)
        return self._routing

    @property
    def metrics(self) -> PartitioningMetrics:
        """Partitioning metrics of Section 3.1 for this placement (cached)."""
        if self._metrics is None:
            self._metrics = compute_metrics(self.assignment)
        return self._metrics

    def triplets(self) -> TripletArrays:
        """Partition-major dense triplet arrays (built lazily, cached).

        The input representation of the engine's array-native superstep
        path: every partition's cached local triplets composed with the
        graph's global vertex table.
        """
        if self._triplets is None:
            self._triplets = build_triplets(self)
        return self._triplets

    @property
    def dataset_bytes(self) -> int:
        """Estimated on-disk size of the underlying edge list."""
        return estimated_size_bytes(self.graph)

    # ------------------------------------------------------------------
    def non_empty_partitions(self) -> List[EdgePartition]:
        """Partitions that hold at least one edge."""
        return [p for p in self.partitions if p.num_edges > 0]

    def out_degrees(self) -> Dict[int, int]:
        """Out-degree of every vertex (convenience passthrough)."""
        return self.graph.out_degrees()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PartitionedGraph(strategy={self.strategy_name!r}, "
            f"partitions={self.num_partitions}, edges={self.graph.num_edges})"
        )
