"""GraphX-style Pregel (BSP) execution over a partitioned graph.

The loop mirrors ``org.apache.spark.graphx.Pregel``:

1. every vertex runs the vertex program once with the initial message;
2. each superstep scans the edge triplets whose endpoints are *active*
   (received a message in the previous superstep), produces messages,
   pre-aggregates them per edge partition, ships them to the vertex
   masters, applies the vertex program there and finally broadcasts the
   updated vertex values back to every partition that mirrors the vertex;
3. the computation stops when no messages are produced or the iteration
   cap is reached.

Every shuffle and broadcast is counted and priced by the
:class:`~repro.engine.cost_model.CostModel`, producing the simulated
execution time the evaluation benchmarks correlate with the partitioning
metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..errors import EngineError
from .cluster import ClusterConfig, paper_cluster
from .cost_model import CostModel, CostParameters, SimulationReport
from .messaging import (
    ArrayMessageKernel,
    active_edge_mask,
    fold_messages,
    plan_fold,
    route_counts,
)
from .partitioned_graph import PartitionedGraph

__all__ = [
    "MergeMessage",
    "PregelResult",
    "SendMessage",
    "VertexProgram",
    "pregel",
    "aggregate_messages",
]

VertexProgram = Callable[[int, Any, Any], Any]
SendMessage = Callable[[int, Any, int, Any], Iterable[Tuple[int, Any]]]
MergeMessage = Callable[[Any, Any], Any]

#: Compute units charged for serialising one shuffled message.
_MESSAGE_SERIALIZE_UNITS = 0.25
#: Compute units charged for applying one replica synchronisation.
_SYNC_APPLY_UNITS = 0.1


@dataclass
class PregelResult:
    """Outcome of a Pregel run: final vertex values plus the simulation report."""

    vertex_values: Dict[int, Any]
    num_supersteps: int
    report: SimulationReport

    @property
    def simulated_seconds(self) -> float:
        """End-to-end simulated execution time."""
        return self.report.total_seconds


def _check_direction(active_direction: str) -> None:
    if active_direction not in ("either", "out", "in", "both"):
        raise EngineError(
            f"active_direction must be 'either', 'out', 'in' or 'both', got {active_direction!r}"
        )


def _edge_lists(pgraph: PartitionedGraph) -> List[List[Tuple[int, int]]]:
    """Materialise each partition's edges once as Python tuples."""
    result = []
    for partition in pgraph.partitions:
        src, dst = partition.edge_pairs()
        result.append(list(zip(src, dst)))
    return result


def _route_and_merge(
    pgraph: PartitionedGraph,
    cluster: ClusterConfig,
    outboxes: List[Dict[int, Any]],
    merge_message: MergeMessage,
    partition_units: List[float],
) -> Tuple[Dict[int, Any], int, int]:
    """Ship per-partition pre-aggregated messages to vertex masters.

    Returns ``(merged_messages, remote_count, local_count)``.
    """
    # One dict materialisation per PartitionedGraph (cached on the routing
    # table); the per-message loop below is inherently scalar because the
    # message payloads are arbitrary Python objects.
    masters = pgraph.routing.masters
    merged: Dict[int, Any] = {}
    remote = 0
    local = 0
    for partition_id, outbox in enumerate(outboxes):
        if not outbox:
            continue
        from_executor = cluster.executor_of_partition(partition_id)
        for target, message in outbox.items():
            master = masters.get(target)
            if master is None:
                raise EngineError(
                    f"send_message targeted unknown vertex {target!r} from partition "
                    f"{partition_id}; messages may only address vertices of the graph"
                )
            partition_units[partition_id] += _MESSAGE_SERIALIZE_UNITS
            if master != partition_id:
                if cluster.executor_of_partition(master) != from_executor:
                    remote += 1
                else:
                    local += 1
            if target in merged:
                merged[target] = merge_message(merged[target], message)
            else:
                merged[target] = message
    return merged, remote, local


def _broadcast_updates(
    pgraph: PartitionedGraph,
    cluster: ClusterConfig,
    updated_vertices: Iterable[int],
    partition_units: List[float],
) -> Tuple[int, int]:
    """Push updated master values to every replica partition.

    Returns ``(remote_count, local_count)``.  The volume of this broadcast
    is what the CommCost metric approximates.  The plan is computed as one
    array pass over the routing table's replication CSR rather than a
    per-vertex Python loop.
    """
    routing = pgraph.routing
    if isinstance(updated_vertices, np.ndarray):
        vertices = updated_vertices.astype(np.int64, copy=False)
    else:
        vertices = np.fromiter(updated_vertices, dtype=np.int64)
    parts, masters = routing.replica_sync_pairs(vertices)
    if not parts.size:
        return 0, 0
    executor_of = cluster.executor_map(routing.num_partitions)
    remote = int((executor_of[parts] != executor_of[masters]).sum())
    local = int(parts.size - remote)
    sync_units = np.bincount(parts, minlength=len(partition_units))
    for partition in np.flatnonzero(sync_units).tolist():
        partition_units[partition] += _SYNC_APPLY_UNITS * int(sync_units[partition])
    return remote, local


def pregel(
    pgraph: PartitionedGraph,
    initial_values: Dict[int, Any],
    initial_message: Any,
    vertex_program: VertexProgram,
    send_message: SendMessage,
    merge_message: MergeMessage,
    max_iterations: int = 20,
    active_direction: str = "either",
    cluster: Optional[ClusterConfig] = None,
    cost_parameters: Optional[CostParameters] = None,
    edge_compute_units: float = 1.0,
    vertex_compute_units: float = 1.0,
    always_active: bool = False,
    default_message: Any = None,
    message_kernel: Optional[ArrayMessageKernel] = None,
    parallel_workers: Optional[int] = None,
) -> PregelResult:
    """Run a Pregel computation on ``pgraph`` and simulate its execution time.

    Parameters
    ----------
    pgraph:
        The partitioned graph to compute on.
    initial_values:
        Initial value for every vertex id of the graph.
    initial_message:
        Message delivered to every vertex in superstep 0.
    vertex_program:
        ``(vertex, value, message) -> new_value``.
    send_message:
        ``(src, src_value, dst, dst_value) -> iterable of (target, message)``;
        called once per scanned edge triplet.
    merge_message:
        Commutative, associative combiner for messages to the same vertex.
    max_iterations:
        Maximum number of message-exchange supersteps.
    active_direction:
        Which endpoint must be active for a triplet to be scanned:
        ``"either"`` (default), ``"out"`` (source active), ``"in"``
        (destination active) or ``"both"``.
    cluster, cost_parameters:
        Simulated cluster topology and unit costs; defaults to the paper's
        4-executor cluster with default calibration.
    edge_compute_units, vertex_compute_units:
        Abstract compute charged per scanned triplet and per vertex-program
        invocation; algorithms use these to express how compute-heavy they
        are relative to their communication.
    always_active:
        When ``True`` the computation behaves like GraphX's *static*
        algorithms: every vertex stays active, the vertex program runs on
        every vertex every superstep (vertices that received no message get
        ``default_message``) and the loop runs exactly ``max_iterations``
        supersteps.
    default_message:
        Message handed to vertices that received nothing when
        ``always_active`` is set.
    message_kernel:
        Optional :class:`~repro.engine.messaging.ArrayMessageKernel`.  When
        given, the superstep loop runs array-natively over the cached
        partition triplet arrays, producing bit-identical vertex values and
        identical superstep counters to the scalar loop; the scalar loop
        remains the path for arbitrary Python payloads.
    parallel_workers:
        With a ``message_kernel`` and ``parallel_workers >= 2``, supersteps
        fan out across a persistent process pool attached to shared-memory
        copies of the partition triplets (see
        :mod:`repro.engine.parallel`).  Results — vertex values and every
        ``SuperstepRecord`` — are bit-identical to the serial kernel path.
        ``None``/1 runs serially; the scalar path (no kernel) ignores it;
        platforms without working shared memory fall back to serial.
    """
    _check_direction(active_direction)
    if max_iterations < 0:
        raise EngineError("max_iterations must be non-negative")
    if parallel_workers is not None and int(parallel_workers) < 1:
        raise EngineError(
            f"parallel_workers must be >= 1, got {parallel_workers!r}"
        )
    missing = [v for v in pgraph.graph.vertex_ids.tolist() if v not in initial_values]
    if missing:
        raise EngineError(
            f"initial_values is missing {len(missing)} vertices (e.g. {missing[:3]})"
        )

    cluster = cluster or paper_cluster()
    model = CostModel(cluster, cost_parameters)
    report = model.new_report()
    report.load_seconds = model.load_seconds(pgraph.dataset_bytes)

    if message_kernel is not None:
        if getattr(pgraph, "stream_supersteps", False):
            # Out-of-core graphs opt into the partition-at-a-time executor,
            # which never materialises the global triplet arrays.
            from ..ooc.pregel_stream import pregel_stream_supersteps

            return pregel_stream_supersteps(
                pgraph,
                initial_values,
                message_kernel,
                max_iterations=max_iterations,
                active_direction=active_direction,
                cluster=cluster,
                model=model,
                report=report,
                edge_compute_units=edge_compute_units,
                vertex_compute_units=vertex_compute_units,
                always_active=always_active,
            )
        workers = 1 if parallel_workers is None else int(parallel_workers)
        if (
            workers > 1
            and pgraph.graph.num_edges > 0
            and pgraph.graph.num_vertices > 0
        ):
            from .parallel import parallel_supported, pregel_array_parallel

            if parallel_supported():
                return pregel_array_parallel(
                    pgraph,
                    initial_values,
                    message_kernel,
                    workers=workers,
                    max_iterations=max_iterations,
                    active_direction=active_direction,
                    cluster=cluster,
                    model=model,
                    report=report,
                    edge_compute_units=edge_compute_units,
                    vertex_compute_units=vertex_compute_units,
                    always_active=always_active,
                )
        return _pregel_array(
            pgraph,
            initial_values,
            message_kernel,
            max_iterations=max_iterations,
            active_direction=active_direction,
            cluster=cluster,
            model=model,
            report=report,
            edge_compute_units=edge_compute_units,
            vertex_compute_units=vertex_compute_units,
            always_active=always_active,
        )

    if getattr(pgraph, "stream_supersteps", False):
        raise EngineError(
            "out-of-core graphs require an array message kernel; the scalar "
            "Pregel loop would materialise every partition's edges in memory"
        )

    values: Dict[int, Any] = dict(initial_values)
    num_partitions = pgraph.num_partitions
    edge_lists = _edge_lists(pgraph)

    # ------------------------------------------------------------------
    # Superstep 0: run the vertex program everywhere with the initial
    # message, then materialise the replicated vertex view.
    # ------------------------------------------------------------------
    partition_units = [0.0] * num_partitions
    routing = pgraph.routing
    for vertex in values:
        values[vertex] = vertex_program(vertex, values[vertex], initial_message)
        master = routing.masters.get(vertex)
        if master is not None:
            partition_units[master] += vertex_compute_units
    sync_remote, sync_local = _broadcast_updates(pgraph, cluster, values.keys(), partition_units)
    model.record_superstep(
        report,
        superstep=0,
        partition_units=partition_units,
        messages_remote=sync_remote,
        messages_local=sync_local,
        active_vertices=len(values),
        edges_scanned=0,
    )

    active = set(values.keys())
    supersteps = 0

    # ------------------------------------------------------------------
    # Message-exchange supersteps.
    # ------------------------------------------------------------------
    while active and supersteps < max_iterations:
        supersteps += 1
        partition_units = [0.0] * num_partitions
        outboxes: List[Dict[int, Any]] = [dict() for _ in range(num_partitions)]
        edges_scanned = 0

        for partition_id, edges in enumerate(edge_lists):
            outbox = outboxes[partition_id]
            units = 0.0
            for src, dst in edges:
                if active_direction == "either":
                    is_active = src in active or dst in active
                elif active_direction == "out":
                    is_active = src in active
                elif active_direction == "in":
                    is_active = dst in active
                else:  # both
                    is_active = src in active and dst in active
                if not is_active:
                    continue
                edges_scanned += 1
                units += edge_compute_units
                for target, message in send_message(src, values[src], dst, values[dst]):
                    if target in outbox:
                        outbox[target] = merge_message(outbox[target], message)
                    else:
                        outbox[target] = message
            partition_units[partition_id] += units

        merged, shuffle_remote, shuffle_local = _route_and_merge(
            pgraph, cluster, outboxes, merge_message, partition_units
        )

        if not merged and not always_active:
            # The scan itself still happened; account for it, then stop.
            model.record_superstep(
                report,
                superstep=supersteps,
                partition_units=partition_units,
                messages_remote=shuffle_remote,
                messages_local=shuffle_local,
                active_vertices=0,
                edges_scanned=edges_scanned,
            )
            active = set()
            break

        if always_active:
            updated = list(values.keys())
            for vertex in updated:
                message = merged.get(vertex, default_message)
                values[vertex] = vertex_program(vertex, values[vertex], message)
                master = routing.masters.get(vertex)
                if master is not None:
                    partition_units[master] += vertex_compute_units
        else:
            updated = list(merged.keys())
            for vertex in updated:
                values[vertex] = vertex_program(vertex, values[vertex], merged[vertex])
                master = routing.masters.get(vertex)
                if master is not None:
                    partition_units[master] += vertex_compute_units

        sync_remote, sync_local = _broadcast_updates(pgraph, cluster, updated, partition_units)

        model.record_superstep(
            report,
            superstep=supersteps,
            partition_units=partition_units,
            messages_remote=shuffle_remote + sync_remote,
            messages_local=shuffle_local + sync_local,
            active_vertices=len(updated),
            edges_scanned=edges_scanned,
        )
        active = set(values.keys()) if always_active else set(merged.keys())

    return PregelResult(
        vertex_values=values,
        num_supersteps=report.num_supersteps,
        report=report,
    )


def _pregel_array(
    pgraph: PartitionedGraph,
    initial_values: Dict[int, Any],
    kernel: ArrayMessageKernel,
    max_iterations: int,
    active_direction: str,
    cluster: ClusterConfig,
    model: CostModel,
    report: SimulationReport,
    edge_compute_units: float,
    vertex_compute_units: float,
    always_active: bool,
) -> PregelResult:
    """The array-native superstep loop (same observable behaviour as the
    scalar loop above, computed with masks/folds over the triplet arrays)."""
    trip = pgraph.triplets()
    num_vertices = trip.num_vertices
    num_partitions = trip.num_partitions
    master_of = trip.master_of
    executor_of = cluster.executor_map(num_partitions)
    vertex_units_per_master = (
        np.bincount(master_of, minlength=num_partitions) * vertex_compute_units
    )

    state = kernel.encode(trip.vertex_ids, initial_values)

    # ------------------------------------------------------------------
    # Superstep 0: vertex program everywhere with the initial message.
    # ------------------------------------------------------------------
    partition_units = np.zeros(num_partitions, dtype=np.float64)
    state = kernel.initial_program(state)
    partition_units += vertex_units_per_master
    sync_remote, sync_local = _broadcast_updates(
        pgraph, cluster, trip.vertex_ids, partition_units
    )
    model.record_superstep(
        report,
        superstep=0,
        partition_units=partition_units,
        messages_remote=sync_remote,
        messages_local=sync_local,
        active_vertices=num_vertices,
        edges_scanned=0,
    )

    active = np.ones(num_vertices, dtype=bool)
    supersteps = 0

    # ``always_active`` loops scan every edge, update every vertex and
    # broadcast every master each superstep, so those plans (and their
    # counters) are computed once and reused.
    if always_active:
        all_edge_units = (
            np.bincount(trip.edge_pid, minlength=num_partitions) * edge_compute_units
        )
        all_sync_units = np.zeros(num_partitions, dtype=np.float64)
        all_sync_remote, all_sync_local = _broadcast_updates(
            pgraph, cluster, trip.vertex_ids, all_sync_units
        )
    cached_plan = None
    cached_serialize_units = None
    cached_shuffle = None

    # ------------------------------------------------------------------
    # Message-exchange supersteps.
    # ------------------------------------------------------------------
    while active.any() and supersteps < max_iterations:
        supersteps += 1
        partition_units = np.zeros(num_partitions, dtype=np.float64)

        if always_active:
            # Every vertex is active: the scan covers every triplet.
            scanned_src, scanned_dst = trip.src, trip.dst
            scanned_pid = trip.edge_pid
            edges_scanned = trip.num_edges
            partition_units += all_edge_units
        else:
            scan_mask = active_edge_mask(active, trip.src, trip.dst, active_direction)
            scanned = np.flatnonzero(scan_mask)
            edges_scanned = int(scanned.size)
            scanned_src, scanned_dst = trip.src[scanned], trip.dst[scanned]
            scanned_pid = trip.edge_pid[scanned]
            partition_units += (
                np.bincount(scanned_pid, minlength=num_partitions) * edge_compute_units
            )

        positions, target_idx, messages = kernel.send_message_array(
            scanned_src, scanned_dst, state
        )
        if cached_plan is not None:
            plan = cached_plan
            partition_units += cached_serialize_units
            shuffle_remote, shuffle_local = cached_shuffle
        else:
            plan = plan_fold(scanned_pid[positions], target_idx, num_vertices)
            serialize_units = (
                np.bincount(plan.slot_pid, minlength=num_partitions)
                * _MESSAGE_SERIALIZE_UNITS
            )
            partition_units += serialize_units
            shuffle_remote, shuffle_local = route_counts(plan, master_of, executor_of)
            if always_active and kernel.static_message_structure:
                cached_plan = plan
                cached_serialize_units = serialize_units
                cached_shuffle = (shuffle_remote, shuffle_local)
        merged = fold_messages(kernel, plan, messages)

        if not plan.target_idx.size and not always_active:
            # The scan itself still happened; account for it, then stop.
            model.record_superstep(
                report,
                superstep=supersteps,
                partition_units=partition_units,
                messages_remote=shuffle_remote,
                messages_local=shuffle_local,
                active_vertices=0,
                edges_scanned=edges_scanned,
            )
            active = np.zeros(num_vertices, dtype=bool)
            break

        if always_active:
            state = kernel.apply_messages_all(state, plan.target_idx, merged)
            partition_units += vertex_units_per_master
            partition_units += all_sync_units
            sync_remote, sync_local = all_sync_remote, all_sync_local
            num_updated = num_vertices
        else:
            state = kernel.apply_messages(state, plan.target_idx, merged)
            updated_idx = plan.target_idx
            partition_units += (
                np.bincount(master_of[updated_idx], minlength=num_partitions)
                * vertex_compute_units
            )
            num_updated = int(updated_idx.size)
            sync_remote, sync_local = _broadcast_updates(
                pgraph, cluster, trip.vertex_ids[updated_idx], partition_units
            )
        model.record_superstep(
            report,
            superstep=supersteps,
            partition_units=partition_units,
            messages_remote=shuffle_remote + sync_remote,
            messages_local=shuffle_local + sync_local,
            active_vertices=num_updated,
            edges_scanned=edges_scanned,
        )
        if not always_active:
            active = np.zeros(num_vertices, dtype=bool)
            active[updated_idx] = True

    return PregelResult(
        vertex_values=kernel.decode(trip.vertex_ids, state),
        num_supersteps=report.num_supersteps,
        report=report,
    )


def aggregate_messages(
    pgraph: PartitionedGraph,
    vertex_values: Dict[int, Any],
    send_message: SendMessage,
    merge_message: MergeMessage,
    cluster: Optional[ClusterConfig] = None,
    cost_parameters: Optional[CostParameters] = None,
    report: Optional[SimulationReport] = None,
    edge_compute_units: float = 1.0,
    message_kernel: Optional[ArrayMessageKernel] = None,
) -> Tuple[Dict[int, Any], SimulationReport]:
    """One-shot ``aggregateMessages``: scan every triplet once and merge per target.

    Used by algorithms that are not naturally iterative (degree computation,
    neighbourhood collection for triangle counting).  When ``report`` is
    given, the superstep is appended to it; otherwise a fresh report is
    created.  ``message_kernel`` selects the array-native scan, with the
    same observable results as the scalar loop.
    """
    cluster = cluster or paper_cluster()
    model = CostModel(cluster, cost_parameters)
    if report is None:
        report = model.new_report()
        report.load_seconds = model.load_seconds(pgraph.dataset_bytes)

    if message_kernel is not None:
        return _aggregate_messages_array(
            pgraph, vertex_values, message_kernel, cluster, model, report,
            edge_compute_units,
        )

    num_partitions = pgraph.num_partitions
    partition_units = [0.0] * num_partitions
    outboxes: List[Dict[int, Any]] = [dict() for _ in range(num_partitions)]
    edges_scanned = 0

    for partition_id, partition in enumerate(pgraph.partitions):
        outbox = outboxes[partition_id]
        src_list, dst_list = partition.edge_pairs()
        for src, dst in zip(src_list, dst_list):
            edges_scanned += 1
            partition_units[partition_id] += edge_compute_units
            for target, message in send_message(
                src, vertex_values.get(src), dst, vertex_values.get(dst)
            ):
                if target in outbox:
                    outbox[target] = merge_message(outbox[target], message)
                else:
                    outbox[target] = message

    merged, remote, local = _route_and_merge(
        pgraph, cluster, outboxes, merge_message, partition_units
    )
    model.record_superstep(
        report,
        superstep=report.num_supersteps,
        partition_units=partition_units,
        messages_remote=remote,
        messages_local=local,
        active_vertices=len(merged),
        edges_scanned=edges_scanned,
    )
    return merged, report


def _aggregate_messages_array(
    pgraph: PartitionedGraph,
    vertex_values: Dict[int, Any],
    kernel: ArrayMessageKernel,
    cluster: ClusterConfig,
    model: CostModel,
    report: SimulationReport,
    edge_compute_units: float,
) -> Tuple[Dict[int, Any], SimulationReport]:
    """Array-native one-shot scan behind :func:`aggregate_messages`."""
    trip = pgraph.triplets()
    num_partitions = trip.num_partitions
    state = kernel.encode(trip.vertex_ids, vertex_values)

    partition_units = (
        np.bincount(trip.edge_pid, minlength=num_partitions).astype(np.float64)
        * edge_compute_units
    )
    positions, target_idx, messages = kernel.send_message_array(
        trip.src, trip.dst, state
    )
    plan = plan_fold(trip.edge_pid[positions], target_idx, trip.num_vertices)
    merged = fold_messages(kernel, plan, messages)
    partition_units += (
        np.bincount(plan.slot_pid, minlength=num_partitions) * _MESSAGE_SERIALIZE_UNITS
    )
    remote, local = route_counts(
        plan, trip.master_of, cluster.executor_map(num_partitions)
    )
    model.record_superstep(
        report,
        superstep=report.num_supersteps,
        partition_units=partition_units,
        messages_remote=remote,
        messages_local=local,
        active_vertices=int(plan.target_idx.size),
        edges_scanned=trip.num_edges,
    )
    return kernel.decode_messages(trip.vertex_ids[plan.target_idx], merged), report
