"""Shared-memory segment registry for the parallel Pregel executor.

A :class:`ShmRegistry` owns a set of named ``multiprocessing.shared_memory``
segments holding numpy arrays.  The parent process *publishes* arrays once
(graph triplets, membership CSR offsets, per-run state/outbox buffers) and
worker processes *attach* zero-copy ``np.ndarray`` views over the same
pages, so no graph data is ever pickled per superstep.

Lifecycle hygiene is the whole point of this module:

* every registry is a context manager whose :meth:`close` unlinks all of
  its segments, and close is idempotent;
* all registries created by a process are tracked so an ``atexit`` hook
  and a chained ``SIGTERM`` handler unlink anything still live when the
  process dies (guarded by owner pid — a forked worker inheriting the
  table must never unlink its parent's segments);
* segment names carry the :data:`SEGMENT_PREFIX` and the owner pid, so
  tests can scan ``/dev/shm`` for leaks and attribute them;
* the attach side works around the CPython < 3.13 resource-tracker bug
  (attaching registers the segment *again*, so a worker exiting would
  prematurely destroy it) by unregistering after attach.
"""

from __future__ import annotations

import atexit
import os
import signal
import threading
import uuid
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from ..errors import EngineError

__all__ = [
    "SEGMENT_PREFIX",
    "ShmRegistry",
    "attach_array",
    "cleanup_all",
    "live_segment_stats",
    "set_attach_unregister",
    "shared_memory_available",
]

#: Prefix of every segment name this package creates; leak tests scan
#: ``/dev/shm`` for it.
SEGMENT_PREFIX = "repro-shm"

#: Whether :func:`attach_array` drops the attach-side resource-tracker
#: registration.  Needed for *spawn* workers (their own tracker would tear
#: the owner's segment down when the worker exits); harmful for *fork*
#: workers (they share the owner's tracker, whose registration set dedupes
#: — unregistering there orphans the owner's entry and the eventual unlink
#: spews KeyError tracebacks from the tracker daemon).  The pool owner
#: configures this in each worker via :func:`set_attach_unregister`.
_UNREGISTER_ON_ATTACH = True

#: All registries created by this process (owner side only), keyed by id.
_LIVE: Dict[int, "ShmRegistry"] = {}
_LIVE_LOCK = threading.Lock()
_HOOKS_INSTALLED = False
_PREVIOUS_SIGTERM = None


def _segment_name(key: str) -> str:
    # /dev/shm names are limited (NAME_MAX 255, and macOS caps POSIX shm
    # names far lower); keep them short, unique and attributable.
    token = uuid.uuid4().hex[:8]
    safe = "".join(ch if ch.isalnum() else "-" for ch in key)[:24]
    return f"{SEGMENT_PREFIX}-{os.getpid()}-{token}-{safe}"


def _unregister_tracker(name: str) -> None:
    """Drop one resource-tracker registration of segment ``name``.

    Safe to call when the registration does not exist (the tracker treats
    unregister of an unknown resource as a no-op).
    """
    try:
        resource_tracker.unregister(f"/{name}", "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary by version
        pass


def cleanup_all() -> int:
    """Unlink every live segment owned by *this* process.

    Called from ``atexit`` and ``SIGTERM``; forked children share the
    module table but must not destroy their parent's segments, hence the
    owner-pid guard inside :meth:`ShmRegistry.close`.  Returns the number
    of registries closed.
    """
    with _LIVE_LOCK:
        registries = list(_LIVE.values())
    closed = 0
    for registry in registries:
        if registry.owner_pid == os.getpid():
            registry.close()
            closed += 1
    return closed


def _handle_sigterm(signum, frame):  # pragma: no cover - exercised in a subprocess
    cleanup_all()
    previous = _PREVIOUS_SIGTERM
    if callable(previous):
        previous(signum, frame)
    else:
        signal.signal(signum, signal.SIG_DFL)
        os.kill(os.getpid(), signum)


def _install_hooks() -> None:
    global _HOOKS_INSTALLED, _PREVIOUS_SIGTERM
    if _HOOKS_INSTALLED:
        return
    _HOOKS_INSTALLED = True
    atexit.register(cleanup_all)
    # Signal handlers can only be installed from the main thread; a
    # registry created on a worker thread still gets the atexit hook.
    if threading.current_thread() is threading.main_thread():
        try:
            _PREVIOUS_SIGTERM = signal.getsignal(signal.SIGTERM)
            signal.signal(signal.SIGTERM, _handle_sigterm)
        except (ValueError, OSError):  # pragma: no cover - exotic platforms
            _PREVIOUS_SIGTERM = None


def shared_memory_available() -> bool:
    """Whether POSIX shared memory actually works on this platform."""
    try:
        probe = shared_memory.SharedMemory(create=True, size=16)
    except Exception:
        return False
    try:
        probe.buf[0] = 1
    except Exception:  # pragma: no cover - readonly mounts
        probe.close()
        return False
    probe.close()
    try:
        probe.unlink()
    except Exception:  # pragma: no cover
        pass
    return True


def set_attach_unregister(enabled: bool) -> None:
    """Configure whether attaches drop their resource-tracker registration.

    Called from the worker-pool initializer: ``False`` for fork pools
    (shared tracker), ``True`` for spawn pools (per-process trackers).
    """
    global _UNREGISTER_ON_ATTACH
    _UNREGISTER_ON_ATTACH = bool(enabled)


def attach_array(entry: Dict[str, object]) -> Tuple[shared_memory.SharedMemory, np.ndarray]:
    """Attach a manifest entry in a worker: ``(handle, zero-copy view)``.

    The caller must keep the returned handle alive for as long as the view
    is used.  The attach-side resource-tracker registration is dropped so
    a worker exiting does not tear the segment down under the owner.
    """
    shm = shared_memory.SharedMemory(name=str(entry["name"]))
    if _UNREGISTER_ON_ATTACH:
        _unregister_tracker(shm.name)
    shape = tuple(entry["shape"])
    view = np.ndarray(shape, dtype=np.dtype(str(entry["dtype"])), buffer=shm.buf)
    return shm, view


class ShmRegistry:
    """A named set of shared-memory-backed numpy arrays owned by one process."""

    def __init__(self, label: str = "run") -> None:
        self.label = label
        self.owner_pid = os.getpid()
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._entries: Dict[str, Dict[str, object]] = {}
        self._arrays: Dict[str, np.ndarray] = {}
        self._closed = False
        _install_hooks()
        with _LIVE_LOCK:
            _LIVE[id(self)] = self

    # ------------------------------------------------------------------
    def create_array(self, key: str, shape, dtype) -> np.ndarray:
        """Allocate an uninitialised shared array and return the owner view."""
        if self._closed:
            raise EngineError(f"registry {self.label!r} is closed")
        if key in self._segments:
            raise EngineError(f"segment {key!r} already exists in registry {self.label!r}")
        shape = tuple(int(n) for n in np.atleast_1d(shape)) if not isinstance(shape, tuple) else shape
        dtype = np.dtype(dtype)
        size = max(1, int(np.prod(shape, dtype=np.int64)) * dtype.itemsize)
        shm = shared_memory.SharedMemory(create=True, name=_segment_name(key), size=size)
        view = np.ndarray(shape, dtype=dtype, buffer=shm.buf)
        self._segments[key] = shm
        self._entries[key] = {"name": shm.name, "shape": tuple(shape), "dtype": dtype.str}
        self._arrays[key] = view
        return view

    def publish_array(self, key: str, array: np.ndarray) -> np.ndarray:
        """Copy ``array`` into a new shared segment; returns the owner view."""
        array = np.ascontiguousarray(array)
        view = self.create_array(key, array.shape, array.dtype)
        view[...] = array
        return view

    def publish_bytes(self, key: str, payload: bytes) -> None:
        """Publish an opaque byte string (e.g. a pickled kernel)."""
        view = self.create_array(key, (len(payload),), np.uint8)
        if payload:
            view[:] = np.frombuffer(payload, dtype=np.uint8)
        self._entries[key]["kind"] = "bytes"

    # ------------------------------------------------------------------
    def array(self, key: str) -> np.ndarray:
        """The owner-side view of segment ``key``."""
        return self._arrays[key]

    def entry(self, key: str) -> Dict[str, object]:
        """The manifest entry (name/shape/dtype) of segment ``key``."""
        return self._entries[key]

    def manifest(self) -> Dict[str, Dict[str, object]]:
        """All manifest entries, for shipping to workers with each task."""
        return dict(self._entries)

    @property
    def num_segments(self) -> int:
        return len(self._segments)

    @property
    def total_bytes(self) -> int:
        return sum(shm.size for shm in self._segments.values())

    def __iter__(self) -> Iterator[str]:
        return iter(self._segments)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Unlink and release every segment.  Idempotent; owner-pid guarded."""
        if self._closed:
            return
        self._closed = True
        is_owner = self.owner_pid == os.getpid()
        for shm in self._segments.values():
            try:
                shm.close()
            except Exception:  # pragma: no cover - double close
                pass
            if is_owner:
                try:
                    shm.unlink()
                except FileNotFoundError:
                    pass
                except Exception:  # pragma: no cover
                    pass
        self._segments.clear()
        self._arrays.clear()
        with _LIVE_LOCK:
            _LIVE.pop(id(self), None)

    def __enter__(self) -> "ShmRegistry":
        return self

    def __exit__(self, exc_type, exc, tb) -> Optional[bool]:
        self.close()
        return None

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass


def live_segment_stats() -> Tuple[int, int]:
    """``(segment_count, total_bytes)`` across this process's live registries."""
    with _LIVE_LOCK:
        registries = [r for r in _LIVE.values() if r.owner_pid == os.getpid()]
    return (
        sum(r.num_segments for r in registries),
        sum(r.total_bytes for r in registries),
    )
