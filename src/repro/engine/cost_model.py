"""Deterministic cost model that turns engine counters into simulated time.

The paper measures wall-clock time on a real Spark cluster.  This
reproduction replaces the cluster with an analytical model: every BSP
superstep reports, per partition, how much compute it performed and how
many bytes/messages it exchanged, and the model converts those counters
into seconds using the cluster topology (executors, cores, network
bandwidth, storage medium).  Absolute values are not meant to match the
paper; the *relative* behaviour across partitioners, datasets and
granularities is what the model is calibrated to preserve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from .cluster import ClusterConfig

__all__ = [
    "CostParameters",
    "SuperstepRecord",
    "SimulationReport",
    "CostModel",
]


@dataclass(frozen=True)
class CostParameters:
    """Unit costs used to convert engine counters into seconds.

    The defaults are calibrated so that, on the synthetic datasets shipped
    with the library, communication dominates for PageRank/CC/SSSP-style
    computations on a 1 Gbps network (as in the paper) while per-vertex
    compute dominates for Triangle Count.
    """

    #: Seconds of CPU work per abstract compute unit (one unit ~ one edge visit).
    seconds_per_compute_unit: float = 2.0e-7
    #: Fixed scheduling overhead per task (one task = one partition per superstep).
    task_overhead_seconds: float = 2.0e-4
    #: Fixed driver-side barrier cost per superstep.
    superstep_overhead_seconds: float = 1.0e-3
    #: Serialisation + envelope cost per remote message.
    remote_message_overhead_seconds: float = 6.0e-7
    #: Cost per message exchanged between partitions on the same executor.
    local_message_overhead_seconds: float = 6.0e-8
    #: Payload size of one vertex-state message, in bytes.
    bytes_per_message: int = 64
    #: Fraction of shuffled bytes that are spilled to (and re-read from)
    #: local storage during the exchange, as Spark does for large shuffles.
    spill_fraction: float = 0.3
    #: Fixed job submission overhead (driver, DAG scheduling).
    job_overhead_seconds: float = 0.01

    def compute_seconds(self, units: float) -> float:
        """CPU seconds for ``units`` abstract compute units on one core."""
        return units * self.seconds_per_compute_unit


@dataclass
class SuperstepRecord:
    """Per-superstep accounting produced by the engine."""

    superstep: int
    active_vertices: int
    edges_scanned: int
    messages_remote: int
    messages_local: int
    bytes_remote: int
    bytes_local: int
    compute_seconds: float
    network_seconds: float
    total_seconds: float


@dataclass
class SimulationReport:
    """Aggregate simulation outcome for one algorithm run."""

    cluster: ClusterConfig
    parameters: CostParameters
    load_seconds: float = 0.0
    supersteps: List[SuperstepRecord] = field(default_factory=list)

    @property
    def num_supersteps(self) -> int:
        """Number of BSP supersteps executed."""
        return len(self.supersteps)

    @property
    def total_messages(self) -> int:
        """Total messages exchanged (remote + local) over the whole run."""
        return sum(s.messages_remote + s.messages_local for s in self.supersteps)

    @property
    def total_remote_messages(self) -> int:
        """Messages that crossed executor boundaries."""
        return sum(s.messages_remote for s in self.supersteps)

    @property
    def total_bytes(self) -> int:
        """Total bytes shuffled over the network."""
        return sum(s.bytes_remote for s in self.supersteps)

    @property
    def compute_seconds(self) -> float:
        """Simulated seconds spent in compute across all supersteps."""
        return sum(s.compute_seconds for s in self.supersteps)

    @property
    def network_seconds(self) -> float:
        """Simulated seconds spent in communication across all supersteps."""
        return sum(s.network_seconds for s in self.supersteps)

    @property
    def total_seconds(self) -> float:
        """End-to-end simulated execution time (load + job overhead + supersteps)."""
        return (
            self.load_seconds
            + self.parameters.job_overhead_seconds
            + sum(s.total_seconds for s in self.supersteps)
        )


class CostModel:
    """Converts per-superstep counters into simulated seconds."""

    def __init__(self, cluster: ClusterConfig, parameters: Optional[CostParameters] = None) -> None:
        self.cluster = cluster
        self.parameters = parameters or CostParameters()

    def new_report(self) -> SimulationReport:
        """Create an empty report bound to this model's cluster and parameters."""
        return SimulationReport(cluster=self.cluster, parameters=self.parameters)

    # ------------------------------------------------------------------
    def load_seconds(self, dataset_bytes: int) -> float:
        """Time to load the edge list from storage, split across executors."""
        per_executor = dataset_bytes / self.cluster.num_executors
        return per_executor / self.cluster.storage_bytes_per_second

    def executor_compute_seconds(self, partition_units: Sequence[float]) -> float:
        """Slowest-executor compute time for one superstep.

        Each partition is one task; tasks are spread round-robin over the
        executors.  Within an executor the tasks are list-scheduled on
        ``cores_per_executor`` cores, so the makespan is approximated by
        ``max(total_work / cores, largest_task)`` plus a per-task
        scheduling overhead.  The ``largest_task`` term is what makes
        imbalanced partitionings (and coarse granularities) slower, exactly
        the effect the paper observes for configurations (i) vs (ii).
        """
        params = self.parameters
        units = np.asarray(partition_units, dtype=np.float64)
        if not units.size:
            return 0.0
        executors = self.cluster.executor_map(units.size)
        num_executors = self.cluster.num_executors
        per_executor_units = np.bincount(executors, weights=units, minlength=num_executors)
        per_executor_max = np.zeros(num_executors, dtype=np.float64)
        np.maximum.at(per_executor_max, executors, units)
        per_executor_tasks = np.bincount(executors, minlength=num_executors)
        active = per_executor_tasks > 0
        cores = self.cluster.cores_per_executor
        makespan_units = np.maximum(per_executor_units / cores, per_executor_max)
        seconds = params.compute_seconds(makespan_units)
        seconds += params.task_overhead_seconds * per_executor_tasks / cores
        return float(seconds[active].max()) if active.any() else 0.0

    def network_seconds(self, messages_remote: int, messages_local: int, bytes_remote: int) -> float:
        """Communication time for one superstep (network transfer + shuffle spill)."""
        params = self.parameters
        transfer = bytes_remote / self.cluster.network_bytes_per_second
        spill = params.spill_fraction * bytes_remote / self.cluster.storage_bytes_per_second
        envelope = (
            messages_remote * params.remote_message_overhead_seconds
            + messages_local * params.local_message_overhead_seconds
        )
        return transfer + spill + envelope

    def superstep_seconds(
        self,
        partition_units: Sequence[float],
        messages_remote: int,
        messages_local: int,
        bytes_remote: int,
    ) -> float:
        """Total simulated duration of one superstep (compute + network + barrier)."""
        return (
            self.executor_compute_seconds(partition_units)
            + self.network_seconds(messages_remote, messages_local, bytes_remote)
            + self.parameters.superstep_overhead_seconds
        )

    def record_superstep(
        self,
        report: SimulationReport,
        superstep: int,
        partition_units: Sequence[float],
        messages_remote: int,
        messages_local: int,
        active_vertices: int,
        edges_scanned: int,
    ) -> SuperstepRecord:
        """Compute a :class:`SuperstepRecord`, append it to ``report`` and return it."""
        params = self.parameters
        bytes_remote = messages_remote * params.bytes_per_message
        bytes_local = messages_local * params.bytes_per_message
        compute = self.executor_compute_seconds(partition_units)
        network = self.network_seconds(messages_remote, messages_local, bytes_remote)
        total = compute + network + params.superstep_overhead_seconds
        record = SuperstepRecord(
            superstep=superstep,
            active_vertices=active_vertices,
            edges_scanned=edges_scanned,
            messages_remote=messages_remote,
            messages_local=messages_local,
            bytes_remote=bytes_remote,
            bytes_local=bytes_local,
            compute_seconds=compute,
            network_seconds=network,
            total_seconds=total,
        )
        report.supersteps.append(record)
        return record
