"""A single edge partition: the unit of work of the BSP engine.

Mirrors GraphX's ``EdgePartition``: the edges assigned to the partition
plus the list of vertices that are referenced by those edges (the local
vertex mirror set).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

__all__ = ["EdgePartition"]


@dataclass
class EdgePartition:
    """Edges and mirrored vertices of one partition."""

    partition_id: int
    src: np.ndarray
    dst: np.ndarray
    vertex_ids: Optional[np.ndarray] = field(default=None)

    def __post_init__(self) -> None:
        self.src = np.asarray(self.src, dtype=np.int64)
        self.dst = np.asarray(self.dst, dtype=np.int64)
        if self.vertex_ids is None:
            endpoints = (
                np.concatenate([self.src, self.dst]) if self.src.size else np.empty(0, np.int64)
            )
            self.vertex_ids = np.unique(endpoints)
        else:
            self.vertex_ids = np.asarray(self.vertex_ids, dtype=np.int64)
        # Derived triplet views are cached: the edge arrays are immutable
        # after construction, so recomputation can never change the answer.
        self._edge_pairs: Optional[Tuple[tuple, tuple]] = None
        self._local_triplets: Optional[Tuple[np.ndarray, np.ndarray]] = None

    @property
    def num_edges(self) -> int:
        """Number of edges stored in this partition."""
        return int(self.src.size)

    @property
    def num_vertices(self) -> int:
        """Number of distinct vertices mirrored into this partition."""
        return int(self.vertex_ids.size)

    def edge_pairs(self) -> Tuple[tuple, tuple]:
        """Return the partition's edges as two sequences ``(src, dst)``.

        Materialised once and cached — callers iterate these every
        superstep — as tuples, so no caller can corrupt the shared view.
        """
        if self._edge_pairs is None:
            self._edge_pairs = (tuple(self.src.tolist()), tuple(self.dst.tolist()))
        return self._edge_pairs

    def local_triplets(self) -> Tuple[np.ndarray, np.ndarray]:
        """The partition's edges as indices into its ``vertex_ids`` mirror list.

        This is GraphX's ``EdgePartition`` encoding: triplets reference the
        partition-local vertex table, and the engine composes the local
        table with the global one.  Built once and cached; the arrays are
        the vectorised counterpart of :meth:`edge_pairs` and are returned
        read-only — every later superstep (and the shared-memory parallel
        executor) folds over the same cached views, so a caller mutating
        them would silently corrupt all subsequent results.
        """
        if self._local_triplets is None:
            local_src = np.searchsorted(self.vertex_ids, self.src)
            local_dst = np.searchsorted(self.vertex_ids, self.dst)
            local_src.flags.writeable = False
            local_dst.flags.writeable = False
            self._local_triplets = (local_src, local_dst)
        return self._local_triplets

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EdgePartition(id={self.partition_id}, edges={self.num_edges}, "
            f"vertices={self.num_vertices})"
        )
