"""Catalog of the paper's nine datasets and their synthetic analogues.

Each :class:`DatasetSpec` records the structural targets taken from Table 1
of the paper (vertex/edge counts, symmetry, leaf-vertex fractions,
component count) and a generator recipe that reproduces that *shape* at a
laptop-friendly scale.  ``scale`` multiplies the analogue's size; the
default scale keeps the full nine-dataset sweep fast enough for the
benchmark harness.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..core.graph import Graph
from ..errors import DatasetError
from .generators import road_network, social_graph

__all__ = [
    "DatasetSpec",
    "PAPER_DATASET_NAMES",
    "dataset_names",
    "get_spec",
    "load_dataset",
    "load_all_datasets",
]


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one dataset analogue plus the paper's reference values."""

    name: str
    description: str
    kind: str  # "road" or "social"
    builder: Callable[[float, int], Graph] = field(repr=False)
    paper_vertices: int = 0
    paper_edges: int = 0
    paper_symmetry: float = 100.0
    paper_components: int = 1
    paper_diameter: Optional[float] = None

    def build(self, scale: float = 1.0, seed: int = 0) -> Graph:
        """Generate the analogue at the requested scale and seed."""
        if scale <= 0:
            raise DatasetError("scale must be positive")
        graph = self.builder(scale, seed)
        graph.name = self.name
        return graph


def _scaled(value: int, scale: float, minimum: int = 2) -> int:
    return max(minimum, int(round(value * scale)))


def _road(rows: int, cols: int, components: int, diagonal_prob: float, name: str):
    def build(scale: float, seed: int) -> Graph:
        factor = scale ** 0.5
        return road_network(
            rows=_scaled(rows, factor),
            cols=_scaled(cols, factor),
            num_components=components,
            diagonal_prob=diagonal_prob,
            seed=seed,
            name=name,
        )

    return build


def _social(name: str, vertices: int, edges: int, **kwargs):
    def build(scale: float, seed: int) -> Graph:
        return social_graph(
            num_vertices=_scaled(vertices, scale),
            num_edges=_scaled(edges, scale),
            seed=seed,
            name=name,
            **kwargs,
        )

    return build


_SPECS: Dict[str, DatasetSpec] = {}


def _register(spec: DatasetSpec) -> None:
    _SPECS[spec.name] = spec


_register(
    DatasetSpec(
        name="roadnet-pa",
        description="Pennsylvania road network analogue: 3 grid components, id locality",
        kind="road",
        builder=_road(rows=14, cols=14, components=3, diagonal_prob=0.02, name="roadnet-pa"),
        paper_vertices=1_088_092,
        paper_edges=3_083_796,
        paper_symmetry=100.0,
        paper_components=1052,
        paper_diameter=float("inf"),
    )
)
_register(
    DatasetSpec(
        name="youtube",
        description="YouTube social graph analogue: undirected, one component, communities",
        kind="social",
        builder=_social(
            "youtube",
            vertices=640,
            edges=2300,
            exponent=2.3,
            undirected=True,
            triadic_closure=0.35,
            connect=True,
            num_components=1,
            shuffle_ids=True,
        ),
        paper_vertices=1_134_890,
        paper_edges=2_987_624,
        paper_symmetry=100.0,
        paper_components=1,
        paper_diameter=20.0,
    )
)
_register(
    DatasetSpec(
        name="roadnet-tx",
        description="Texas road network analogue: 4 grid components, id locality",
        kind="road",
        builder=_road(rows=14, cols=14, components=4, diagonal_prob=0.02, name="roadnet-tx"),
        paper_vertices=1_379_917,
        paper_edges=3_843_320,
        paper_symmetry=100.0,
        paper_components=1766,
        paper_diameter=float("inf"),
    )
)
_register(
    DatasetSpec(
        name="pokec",
        description="Pokec analogue: directed, ~54% reciprocity, dense, one component",
        kind="social",
        builder=_social(
            "pokec",
            vertices=900,
            edges=14000,
            exponent=2.4,
            reciprocity=0.40,
            triadic_closure=0.4,
            zero_in_fraction=0.07,
            zero_out_fraction=0.12,
            connect=True,
            num_components=1,
            shuffle_ids=True,
        ),
        paper_vertices=1_632_803,
        paper_edges=30_622_564,
        paper_symmetry=54.34,
        paper_components=1,
        paper_diameter=11.0,
    )
)
_register(
    DatasetSpec(
        name="roadnet-ca",
        description="California road network analogue: 3 grid components, id locality",
        kind="road",
        builder=_road(rows=19, cols=19, components=3, diagonal_prob=0.02, name="roadnet-ca"),
        paper_vertices=1_965_206,
        paper_edges=5_533_214,
        paper_symmetry=100.0,
        paper_components=1052,
        paper_diameter=float("inf"),
    )
)
_register(
    DatasetSpec(
        name="orkut",
        description="Orkut analogue: undirected, very dense, triangle heavy, one component",
        kind="social",
        builder=_social(
            "orkut",
            vertices=1600,
            edges=36000,
            exponent=2.2,
            undirected=True,
            triadic_closure=0.5,
            connect=True,
            num_components=1,
            shuffle_ids=True,
        ),
        paper_vertices=3_072_441,
        paper_edges=117_185_083,
        paper_symmetry=100.0,
        paper_components=1,
        paper_diameter=9.0,
    )
)
_register(
    DatasetSpec(
        name="soclivejournal",
        description="socLiveJournal analogue: directed, 75% reciprocity, a few components",
        kind="social",
        builder=_social(
            "soclivejournal",
            vertices=2700,
            edges=22000,
            exponent=2.3,
            reciprocity=0.68,
            triadic_closure=0.3,
            zero_in_fraction=0.074,
            zero_out_fraction=0.111,
            connect=True,
            num_components=4,
            shuffle_ids=True,
        ),
        paper_vertices=4_847_571,
        paper_edges=68_993_773,
        paper_symmetry=75.03,
        paper_components=1876,
        paper_diameter=float("inf"),
    )
)
_register(
    DatasetSpec(
        name="follow-jul",
        description="Twitter follow crawl (July) analogue: low reciprocity, superstars, many leaves",
        kind="social",
        builder=_social(
            "follow-jul",
            vertices=6500,
            edges=30000,
            exponent=2.1,
            reciprocity=0.30,
            triadic_closure=0.25,
            zero_in_fraction=0.45,
            zero_out_fraction=0.25,
            superstar_count=12,
            superstar_boost=40.0,
            connect=True,
            num_components=12,
            shuffle_ids=True,
        ),
        paper_vertices=17_172_142,
        paper_edges=136_772_349,
        paper_symmetry=37.57,
        paper_components=52,
        paper_diameter=float("inf"),
    )
)
_register(
    DatasetSpec(
        name="follow-dec",
        description="Twitter follow crawl (December) analogue: the largest dataset",
        kind="social",
        builder=_social(
            "follow-dec",
            vertices=9500,
            edges=42000,
            exponent=2.1,
            reciprocity=0.30,
            triadic_closure=0.25,
            zero_in_fraction=0.52,
            zero_out_fraction=0.18,
            superstar_count=16,
            superstar_boost=45.0,
            connect=True,
            num_components=11,
            shuffle_ids=True,
        ),
        paper_vertices=26_339_971,
        paper_edges=204_912_922,
        paper_symmetry=37.57,
        paper_components=47,
        paper_diameter=float("inf"),
    )
)

#: All nine datasets, ordered by paper vertex count as in Table 1.
PAPER_DATASET_NAMES: List[str] = [
    "roadnet-pa",
    "youtube",
    "roadnet-tx",
    "pokec",
    "roadnet-ca",
    "orkut",
    "soclivejournal",
    "follow-jul",
    "follow-dec",
]


def dataset_names() -> List[str]:
    """Names of every dataset in the catalog, in Table 1 order."""
    return list(PAPER_DATASET_NAMES)


#: Deprecated spellings still accepted (case-insensitively) by :func:`get_spec`.
#: The SNAP dataset is Pokec; early versions of this catalog misspelled it.
_DEPRECATED_ALIASES: Dict[str, str] = {"pocek": "pokec"}


def get_spec(name: str) -> DatasetSpec:
    """Look up a dataset specification by name (case-insensitive).

    Deprecated aliases (e.g. the historical ``"pocek"`` misspelling of
    ``"pokec"``) resolve to their canonical entry with a
    :class:`DeprecationWarning`.
    """
    lowered = name.lower()
    canonical = _DEPRECATED_ALIASES.get(lowered)
    if canonical is not None:
        warnings.warn(
            f"dataset name {name!r} is a deprecated alias; use {canonical!r}",
            DeprecationWarning,
            stacklevel=2,
        )
        lowered = canonical
    for key, spec in _SPECS.items():
        if key.lower() == lowered:
            return spec
    raise DatasetError(f"unknown dataset {name!r}; available: {', '.join(_SPECS)}")


def load_dataset(name: str, scale: float = 1.0, seed: int = 0) -> Graph:
    """Generate the analogue of a paper dataset at the requested scale."""
    return get_spec(name).build(scale=scale, seed=seed)


def load_all_datasets(scale: float = 1.0, seed: int = 0) -> Dict[str, Graph]:
    """Generate every paper dataset analogue, keyed by name, in Table 1 order."""
    return {name: load_dataset(name, scale=scale, seed=seed) for name in PAPER_DATASET_NAMES}
