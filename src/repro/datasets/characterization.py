"""Dataset characterisation: rebuilding Table 1 and Figures 1-2 of the paper."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.graph import Graph
from ..core.properties import GraphSummary, degree_histogram, degree_ratio_cdf, summarize
from ..metrics.report import format_table
from .catalog import PAPER_DATASET_NAMES, get_spec, load_dataset

__all__ = [
    "DatasetCharacterization",
    "characterize",
    "build_table1",
    "format_table1",
    "degree_distributions",
    "degree_ratio_distributions",
]


@dataclass
class DatasetCharacterization:
    """One Table-1 row of the reproduction, with the paper's values alongside."""

    summary: GraphSummary
    paper_vertices: int
    paper_edges: int
    paper_symmetry: float
    paper_components: int

    def as_row(self) -> Dict[str, object]:
        """Flatten to a dict for tabulation."""
        row = self.summary.as_row()
        row["paper_vertices"] = self.paper_vertices
        row["paper_edges"] = self.paper_edges
        row["paper_symm_pct"] = self.paper_symmetry
        row["paper_components"] = self.paper_components
        return row


def characterize(graph: Graph, name: Optional[str] = None) -> GraphSummary:
    """Characterise one graph (vertices, edges, symmetry, triangles, ...)."""
    return summarize(graph, name=name)


def build_table1(scale: float = 1.0, seed: int = 0) -> List[DatasetCharacterization]:
    """Characterise every dataset analogue, pairing it with the paper's numbers."""
    rows = []
    for name in PAPER_DATASET_NAMES:
        spec = get_spec(name)
        graph = load_dataset(name, scale=scale, seed=seed)
        rows.append(
            DatasetCharacterization(
                summary=characterize(graph, name=name),
                paper_vertices=spec.paper_vertices,
                paper_edges=spec.paper_edges,
                paper_symmetry=spec.paper_symmetry,
                paper_components=spec.paper_components,
            )
        )
    return rows


def format_table1(rows: List[DatasetCharacterization]) -> str:
    """Render the reproduced Table 1 as text."""
    flat = [row.as_row() for row in rows]
    columns = [
        "dataset",
        "vertices",
        "edges",
        "symm_pct",
        "zero_in_pct",
        "zero_out_pct",
        "triangles",
        "components",
        "diameter",
        "size_bytes",
    ]
    return format_table(flat, columns)


def degree_distributions(
    graphs: Dict[str, Graph],
) -> Dict[str, Dict[str, Dict[int, int]]]:
    """In- and out-degree histograms for every graph (the data behind Figure 1)."""
    return {
        name: {
            "in": degree_histogram(graph, direction="in"),
            "out": degree_histogram(graph, direction="out"),
        }
        for name, graph in graphs.items()
    }


def degree_ratio_distributions(graphs: Dict[str, Graph]) -> Dict[str, list]:
    """Out/in degree-ratio CDFs for every graph (the data behind Figure 2)."""
    return {name: degree_ratio_cdf(graph) for name, graph in graphs.items()}
