"""Synthetic analogues of the paper's datasets and their characterisation."""

from .catalog import (
    PAPER_DATASET_NAMES,
    DatasetSpec,
    dataset_names,
    get_spec,
    load_all_datasets,
    load_dataset,
)
from .characterization import (
    DatasetCharacterization,
    build_table1,
    characterize,
    degree_distributions,
    degree_ratio_distributions,
    format_table1,
)
from .generators import ring_of_cliques, road_network, social_graph

__all__ = [
    "PAPER_DATASET_NAMES",
    "DatasetSpec",
    "DatasetCharacterization",
    "build_table1",
    "characterize",
    "dataset_names",
    "degree_distributions",
    "degree_ratio_distributions",
    "format_table1",
    "get_spec",
    "load_all_datasets",
    "load_dataset",
    "ring_of_cliques",
    "road_network",
    "social_graph",
]
