"""Deterministic synthetic graph generators.

The paper evaluates on SNAP datasets (road networks, YouTube, Pokec,
Orkut, socLiveJournal) and on two private Twitter "follow" crawls.  Those
inputs are either too large for a laptop-scale simulation or not publicly
available, so this module generates scaled-down synthetic analogues that
preserve the structural properties the paper's analysis relies on:

* **road networks** — near-planar grids with locality-preserving vertex
  ids, 100% edge symmetry, several connected components, negligible
  triangle density and a very large diameter;
* **social networks** — heavy-tailed degree distributions with tunable
  reciprocity, "leaf" vertices (zero in- or out-degree, an artefact of
  forest-fire crawling), triadic closure for triangle density, optional
  "superstar" hubs and randomised vertex ids (no id locality).

All generators are pure functions of their parameters and the seed.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..core.graph import Graph
from ..errors import DatasetError

__all__ = ["road_network", "social_graph", "ring_of_cliques"]


def road_network(
    rows: int,
    cols: int,
    num_components: int = 1,
    diagonal_prob: float = 0.03,
    seed: int = 0,
    name: str = "road",
) -> Graph:
    """Generate a road-network analogue: ``num_components`` rectangular grids.

    Vertex ids are assigned row-major inside each component, so nearby
    intersections have nearby ids — the id locality the paper's SC/DC
    partitioners are designed to exploit.  Every edge is reciprocated
    (100% symmetry) and a small fraction of diagonal shortcuts provides a
    non-zero but low triangle count, matching the RoadNet datasets.
    """
    if rows < 2 or cols < 2:
        raise DatasetError("road_network needs rows >= 2 and cols >= 2")
    if num_components < 1:
        raise DatasetError("num_components must be >= 1")
    if not 0.0 <= diagonal_prob <= 1.0:
        raise DatasetError("diagonal_prob must be in [0, 1]")

    rng = random.Random(seed)
    src: List[int] = []
    dst: List[int] = []

    def add_undirected(u: int, v: int) -> None:
        src.append(u)
        dst.append(v)
        src.append(v)
        dst.append(u)

    component_size = rows * cols
    for component in range(num_components):
        offset = component * component_size
        for r in range(rows):
            for c in range(cols):
                vertex = offset + r * cols + c
                if c + 1 < cols:
                    add_undirected(vertex, vertex + 1)
                if r + 1 < rows:
                    add_undirected(vertex, vertex + cols)
                if c + 1 < cols and r + 1 < rows and rng.random() < diagonal_prob:
                    add_undirected(vertex, vertex + cols + 1)
    return Graph(src, dst, name=name)


def _powerlaw_weights(n: int, exponent: float, superstar_count: int, superstar_boost: float) -> List[float]:
    """Zipf-like vertex weights with an optional boosted head of superstars."""
    weights = [(i + 1) ** (-1.0 / (exponent - 1.0)) for i in range(n)]
    for i in range(min(superstar_count, n)):
        weights[i] *= superstar_boost
    return weights


def _weighted_sampler(weights: List[float], rng: random.Random):
    """Return a function sampling an index proportionally to ``weights``."""
    cumulative = []
    total = 0.0
    for w in weights:
        total += w
        cumulative.append(total)

    def sample() -> int:
        target = rng.random() * total
        lo, hi = 0, len(cumulative) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < target:
                lo = mid + 1
            else:
                hi = mid
        return lo

    return sample


def social_graph(
    num_vertices: int,
    num_edges: int,
    exponent: float = 2.3,
    reciprocity: float = 0.4,
    triadic_closure: float = 0.2,
    zero_in_fraction: float = 0.0,
    zero_out_fraction: float = 0.0,
    superstar_count: int = 0,
    superstar_boost: float = 20.0,
    connect: bool = True,
    num_components: int = 1,
    undirected: bool = False,
    shuffle_ids: bool = True,
    seed: int = 0,
    name: str = "social",
) -> Graph:
    """Generate a social-network analogue with a heavy-tailed degree distribution.

    Parameters
    ----------
    num_vertices, num_edges:
        Target sizes.  ``num_edges`` counts directed arcs; reciprocated and
        triadic-closure arcs are generated on top of the base arcs until
        the target is (approximately) reached.
    exponent:
        Power-law exponent of the attachment weights (2.1-2.6 covers the
        paper's datasets).
    reciprocity:
        Probability that a generated arc is immediately reciprocated;
        drives the Table 1 "Symm" column.
    triadic_closure:
        Probability that, after adding ``u -> v``, an extra arc closes a
        triangle through one of ``v``'s existing neighbours; drives the
        triangle count.
    zero_in_fraction, zero_out_fraction:
        Fraction of vertices that never receive (respectively never emit)
        arcs — the "leaf" vertices created by forest-fire crawling.
    superstar_count, superstar_boost:
        Number of hub vertices and the factor applied to their attachment
        weight; models the "superstar" users of the Twitter follow graphs.
    connect:
        When true, chain the vertices of each component with a few extra
        arcs so the graph has exactly ``num_components`` weak components.
    num_components:
        Number of weakly connected components to build.
    undirected:
        When true every arc is reciprocated (YouTube / Orkut analogues).
    shuffle_ids:
        Randomly permute vertex ids so they carry no locality (social
        graphs); road networks keep locality instead.
    """
    if num_vertices < 2:
        raise DatasetError("social_graph needs at least 2 vertices")
    if num_edges < 1:
        raise DatasetError("social_graph needs at least 1 edge")
    if exponent <= 1.0:
        raise DatasetError("exponent must be > 1")
    for fraction, label in (
        (reciprocity, "reciprocity"),
        (triadic_closure, "triadic_closure"),
        (zero_in_fraction, "zero_in_fraction"),
        (zero_out_fraction, "zero_out_fraction"),
    ):
        if not 0.0 <= fraction <= 1.0:
            raise DatasetError(f"{label} must be in [0, 1]")
    if zero_in_fraction + zero_out_fraction >= 0.9:
        raise DatasetError("zero_in_fraction + zero_out_fraction must be < 0.9")
    if num_components < 1:
        raise DatasetError("num_components must be >= 1")

    rng = random.Random(seed)
    if undirected:
        reciprocity = 1.0

    # The graph is one big "crawled" component plus (num_components - 1)
    # tiny satellite components, mirroring the structure of the follow and
    # socLiveJournal datasets (a giant component and a long tail of
    # fragments).
    satellite_count = num_components - 1
    satellite_size = 3
    main_vertices = num_vertices - satellite_count * satellite_size
    while satellite_count and main_vertices < max(2, num_vertices // 2):
        satellite_size = 2
        main_vertices = num_vertices - satellite_count * satellite_size
        if main_vertices < max(2, num_vertices // 2):
            satellite_count = max(0, (num_vertices // 4) // satellite_size)
            main_vertices = num_vertices - satellite_count * satellite_size
    if main_vertices < 2:
        raise DatasetError("num_components is too large for the requested num_vertices")

    # Roles: leaves-in never receive arcs, leaves-out never emit arcs.
    # Leaf roles are drawn from outside the high-weight "core" (the head of
    # the power law), as crawl leaves are overwhelmingly low-degree users.
    core_size = max(superstar_count, main_vertices // 10)
    candidate_indices = list(range(core_size, main_vertices))
    rng.shuffle(candidate_indices)
    num_zero_in = min(int(zero_in_fraction * main_vertices), len(candidate_indices))
    num_zero_out = min(
        int(zero_out_fraction * main_vertices),
        max(0, len(candidate_indices) - num_zero_in),
    )
    zero_in_set = set(candidate_indices[:num_zero_in])
    zero_out_set = set(candidate_indices[num_zero_in:num_zero_in + num_zero_out])

    weights = _powerlaw_weights(main_vertices, exponent, superstar_count, superstar_boost)
    # Receivers must not be zero-in vertices; emitters must not be zero-out.
    receiver_weights = [0.0 if i in zero_in_set else w for i, w in enumerate(weights)]
    emitter_weights = [0.0 if i in zero_out_set else w for i, w in enumerate(weights)]
    sample_receiver = _weighted_sampler(receiver_weights, rng)
    sample_emitter = _weighted_sampler(emitter_weights, rng)

    arcs = set()
    out_neighbours: Dict[int, List[int]] = {}

    def add_arc(u: int, v: int) -> bool:
        if u == v or (u, v) in arcs:
            return False
        if u in zero_out_set or v in zero_in_set:
            return False
        arcs.add((u, v))
        out_neighbours.setdefault(u, []).append(v)
        return True

    max_attempts = num_edges * 20
    attempts = 0
    while len(arcs) < num_edges and attempts < max_attempts:
        attempts += 1
        u = sample_emitter()
        v = sample_receiver()
        if not add_arc(u, v):
            continue
        if rng.random() < reciprocity:
            add_arc(v, u)
        if rng.random() < triadic_closure and out_neighbours.get(v):
            w = rng.choice(out_neighbours[v])
            if add_arc(u, w) and rng.random() < reciprocity:
                add_arc(w, u)

    # Stitch the main component together so that it is weakly connected.
    if connect:
        anchor = None
        for member in range(main_vertices):
            if member in zero_out_set and member in zero_in_set:
                continue
            if anchor is not None:
                added = False
                if member not in zero_in_set and anchor not in zero_out_set:
                    added = add_arc(anchor, member)
                elif member not in zero_out_set and anchor not in zero_in_set:
                    added = add_arc(member, anchor)
                if added and rng.random() < reciprocity:
                    add_arc(member, anchor)
                    add_arc(anchor, member)
            anchor = member

    # Add the satellite components (small directed paths).
    for satellite in range(satellite_count):
        base = main_vertices + satellite * satellite_size
        for offset in range(satellite_size - 1):
            arcs.add((base + offset, base + offset + 1))
            if rng.random() < reciprocity:
                arcs.add((base + offset + 1, base + offset))

    # Optionally hide id locality behind a random permutation.
    permutation = list(range(num_vertices))
    if shuffle_ids:
        rng.shuffle(permutation)

    ordered_arcs = sorted(arcs)
    src = [permutation[u] for u, _ in ordered_arcs]
    dst = [permutation[v] for _, v in ordered_arcs]
    return Graph(src, dst, name=name)


def ring_of_cliques(num_cliques: int, clique_size: int, seed: int = 0, name: str = "cliques") -> Graph:
    """Small utility graph: cliques joined in a ring (useful in tests and examples)."""
    if num_cliques < 1 or clique_size < 2:
        raise DatasetError("need num_cliques >= 1 and clique_size >= 2")
    src: List[int] = []
    dst: List[int] = []

    def add_undirected(u: int, v: int) -> None:
        src.append(u)
        dst.append(v)
        src.append(v)
        dst.append(u)

    for clique in range(num_cliques):
        offset = clique * clique_size
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                add_undirected(offset + i, offset + j)
        next_offset = ((clique + 1) % num_cliques) * clique_size
        if num_cliques > 1:
            add_undirected(offset, next_offset)
    return Graph(src, dst, name=name)
