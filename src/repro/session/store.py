"""Persistent on-disk artifact store: the session cache's L2.

A :class:`Session`'s in-memory caches die with the process, so every new
``repro sweep`` invocation used to rebuild all of the grid's partition
placements from scratch.  The :class:`ArtifactStore` persists the three
expensive artefact kinds across processes:

* **placements** — the ``partition_of`` array of an
  :class:`~repro.partitioning.base.EdgePartitionAssignment`, saved as a
  compressed ``.npz`` keyed by ``(dataset, partitioner, num_partitions,
  scale, seed)``;
* **landmarks** — deterministic SSSP landmark choices keyed by
  ``(dataset, count, seed, scale, session_seed)``;
* **records** — completed :class:`~repro.analysis.results.RunRecord`
  cells of an :class:`~repro.session.plan.ExperimentPlan` grid, which is
  what makes interrupted sweeps resumable.
* **shards** — out-of-core partition shards (see :mod:`repro.ooc`): a
  JSON manifest plus sidecar files — a ``.vtx.npz`` vertex table and one
  plain ``.pNNNNN.npy`` per partition that the engine memory-maps at run
  time (``.npz`` members cannot be mmapped, so the edge data ships as raw
  ``.npy``).  The manifest is written *last*, so a crashed ingest never
  publishes a shard; hit/miss is decided by the shard loader after it has
  verified every sidecar (see :meth:`ArtifactStore.count_shard`).
* **checks** — per-file ``repro check`` results (module index record plus
  findings) keyed by (display path, file SHA-256, rule-set fingerprint,
  engine version), which is what makes warm ``--cache-dir`` runs
  re-analyze only changed files.

Design rules, in order of importance:

1. **A bad artifact is a miss, never a crash.**  Loads tolerate
   truncated files, foreign JSON, version bumps and key-hash collisions
   by returning ``None``; the caller rebuilds and overwrites.
2. **Writes are atomic.**  Every artifact is written to a temporary
   sibling and ``os.replace``-d into place, so concurrent writers (the
   process-parallel executor) and killed processes can never publish a
   half-written file.
3. **Keys are content-addressed.**  The filename is a SHA-256 of the
   canonical key payload; the payload itself is stored *inside* the
   artifact and verified on load, so a hash collision degrades to a miss
   instead of serving the wrong placement.

Artifacts embed :data:`STORE_FORMAT_VERSION`; bumping it (because the
placement semantics or the record schema changed) invalidates every old
artifact at load time without any migration code.
"""

from __future__ import annotations

import contextlib
import hashlib
import io
import json
import os
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.io import PathLike, atomic_write_bytes
from ..errors import AnalysisError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analysis.results import RunRecord

__all__ = ["STORE_FORMAT_VERSION", "DiskStats", "StoreInfo", "ArtifactStore", "as_store"]

#: Bump when the on-disk layout, the placement semantics, or the record
#: schema changes; every artifact written under another version is a miss.
STORE_FORMAT_VERSION = 1

#: Sub-directory per artifact kind.
_KINDS = ("placements", "landmarks", "records", "shards", "checks")


def _canonical_key(key: Dict[str, object]) -> str:
    """The canonical JSON payload of a key (sorted, no whitespace drift)."""
    return json.dumps(key, sort_keys=True, separators=(",", ":"))


def _digest(payload: str) -> str:
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _write_artifact(path: str, data: bytes) -> None:
    try:
        atomic_write_bytes(path, data, make_parents=True)
    except OSError as exc:
        raise AnalysisError(f"cannot write artifact {path}: {exc}") from exc


@dataclass(frozen=True)
class DiskStats:
    """Hit/miss accounting of one artifact kind (a *miss* includes loads
    rejected for corruption, version mismatch, or key collision)."""

    hits: int = 0
    misses: int = 0


@dataclass(frozen=True)
class StoreInfo:
    """A snapshot of the store's contents: artifact counts and bytes per kind."""

    root: str
    placements: int
    landmarks: int
    records: int
    total_bytes: int
    #: Shard manifests (one per ingested shard artifact; the sidecar
    #: ``.npy``/``.vtx.npz`` files count toward ``total_bytes`` only).
    shards: int = 0
    #: Cached per-file static-analysis results (``repro check --cache-dir``).
    checks: int = 0

    @property
    def total_artifacts(self) -> int:
        return self.placements + self.landmarks + self.records + self.shards + self.checks

    def as_dict(self) -> Dict[str, object]:
        return {
            "root": self.root,
            "placements": self.placements,
            "landmarks": self.landmarks,
            "records": self.records,
            "shards": self.shards,
            "checks": self.checks,
            "total_artifacts": self.total_artifacts,
            "total_bytes": self.total_bytes,
        }


class ArtifactStore:
    """Content-addressed persistence for placements, landmarks and records.

    The store is safe to share between threads and between processes: all
    mutation happens through atomic renames, counters are lock-protected,
    and loads never trust file contents (see the module docstring).
    """

    def __init__(self, root: PathLike) -> None:
        self.root = os.fspath(root)
        if os.path.exists(self.root) and not os.path.isdir(self.root):
            raise AnalysisError(f"artifact store root {self.root!r} is not a directory")
        self._lock = threading.Lock()
        self._hits: Dict[str, int] = {kind: 0 for kind in _KINDS}
        self._misses: Dict[str, int] = {kind: 0 for kind in _KINDS}

    # ------------------------------------------------------------------
    # Paths and accounting
    # ------------------------------------------------------------------
    def _path(self, kind: str, key: Dict[str, object], suffix: str) -> str:
        return os.path.join(self.root, kind, _digest(_canonical_key(key)) + suffix)

    def _count(self, kind: str, hit: bool) -> None:
        with self._lock:
            if hit:
                self._hits[kind] += 1
            else:
                self._misses[kind] += 1

    def stats(self, kind: str) -> DiskStats:
        """Hit/miss counters for one artifact kind (``"placements"``,
        ``"landmarks"``, ``"records"`` or ``"shards"``)."""
        if kind not in _KINDS:
            raise AnalysisError(f"unknown artifact kind {kind!r}; expected one of {_KINDS}")
        with self._lock:
            return DiskStats(hits=self._hits[kind], misses=self._misses[kind])

    # ------------------------------------------------------------------
    # Placements
    # ------------------------------------------------------------------
    @staticmethod
    def placement_key(
        dataset: str,
        partitioner: str,
        num_partitions: int,
        scale: float,
        seed: int,
    ) -> Dict[str, object]:
        """The canonical placement key payload (partitioner name as given;
        callers should canonicalise it first)."""
        return {
            "kind": "placement",
            "version": STORE_FORMAT_VERSION,
            "dataset": str(dataset),
            "partitioner": str(partitioner),
            "num_partitions": int(num_partitions),
            "scale": float(scale),
            "seed": int(seed),
        }

    def save_placement(
        self,
        key: Dict[str, object],
        partition_of: np.ndarray,
        strategy_name: str,
    ) -> None:
        """Persist one placement array atomically (last writer wins)."""
        buffer = io.BytesIO()
        np.savez_compressed(
            buffer,
            partition_of=np.asarray(partition_of, dtype=np.int64),
            key=np.frombuffer(_canonical_key(key).encode("utf-8"), dtype=np.uint8),
            strategy_name=np.frombuffer(strategy_name.encode("utf-8"), dtype=np.uint8),
        )
        _write_artifact(self._path("placements", key, ".npz"), buffer.getvalue())

    def load_placement(
        self, key: Dict[str, object]
    ) -> Optional[Tuple[np.ndarray, str]]:
        """The stored ``(partition_of, strategy_name)`` for ``key``, or None.

        Any defect — missing file, truncated zip, wrong embedded key,
        version mismatch (versions live inside the key payload) — is a
        counted miss.
        """
        path = self._path("placements", key, ".npz")
        try:
            with np.load(path, allow_pickle=False) as payload:
                stored_key = bytes(payload["key"]).decode("utf-8")
                if stored_key != _canonical_key(key):
                    raise AnalysisError("artifact key mismatch")
                partition_of = np.asarray(payload["partition_of"], dtype=np.int64)
                strategy_name = bytes(payload["strategy_name"]).decode("utf-8")
        except Exception:
            self._count("placements", hit=False)
            return None
        self._count("placements", hit=True)
        return partition_of, strategy_name

    # ------------------------------------------------------------------
    # Landmarks
    # ------------------------------------------------------------------
    @staticmethod
    def landmark_key(
        dataset: str,
        count: int,
        landmark_seed: int,
        scale: float,
        seed: int,
    ) -> Dict[str, object]:
        """The canonical landmark-choice key payload."""
        return {
            "kind": "landmarks",
            "version": STORE_FORMAT_VERSION,
            "dataset": str(dataset),
            "count": int(count),
            "landmark_seed": int(landmark_seed),
            "scale": float(scale),
            "seed": int(seed),
        }

    def save_landmarks(self, key: Dict[str, object], landmarks: Sequence[int]) -> None:
        """Persist one landmark choice atomically."""
        payload = {"key": key, "landmarks": [int(v) for v in landmarks]}
        _write_artifact(
            self._path("landmarks", key, ".json"),
            json.dumps(payload).encode("utf-8"),
        )

    def load_landmarks(self, key: Dict[str, object]) -> Optional[List[int]]:
        """The stored landmark list for ``key``, or None (a counted miss)."""
        path = self._path("landmarks", key, ".json")
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if payload["key"] != key:
                raise AnalysisError("artifact key mismatch")
            landmarks = [int(v) for v in payload["landmarks"]]
        except Exception:
            self._count("landmarks", hit=False)
            return None
        self._count("landmarks", hit=True)
        return landmarks

    # ------------------------------------------------------------------
    # Run records
    # ------------------------------------------------------------------
    @staticmethod
    def record_key(
        dataset: str,
        partitioner: str,
        num_partitions: int,
        algorithm: str,
        backend: str,
        num_iterations: int,
        scale: float,
        seed: int,
        landmarks: Optional[Tuple[int, int]] = None,
        simulation: Optional[str] = None,
    ) -> Dict[str, object]:
        """The canonical completed-cell key payload.

        ``landmarks`` is the effective ``(count, seed)`` pair for SSSP
        cells (None otherwise); ``simulation`` fingerprints any
        non-default cluster / cost-model configuration so records
        simulated under different calibrations never answer for each
        other.
        """
        return {
            "kind": "record",
            "version": STORE_FORMAT_VERSION,
            "dataset": str(dataset),
            "partitioner": str(partitioner),
            "num_partitions": int(num_partitions),
            "algorithm": str(algorithm),
            "backend": str(backend),
            "num_iterations": int(num_iterations),
            "scale": float(scale),
            "seed": int(seed),
            "landmarks": None if landmarks is None else [int(v) for v in landmarks],
            "simulation": simulation,
        }

    def save_record(self, key: Dict[str, object], record: "RunRecord") -> None:
        """Persist one completed run record atomically."""
        from ..analysis.serialization import record_to_dict

        payload = {"key": key, "record": record_to_dict(record)}
        _write_artifact(
            self._path("records", key, ".json"),
            json.dumps(payload).encode("utf-8"),
        )

    def load_record(self, key: Dict[str, object]) -> Optional["RunRecord"]:
        """The stored run record for ``key``, or None (a counted miss)."""
        from ..analysis.serialization import record_from_dict

        path = self._path("records", key, ".json")
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if payload["key"] != key:
                raise AnalysisError("artifact key mismatch")
            record = record_from_dict(payload["record"])
        except Exception:
            self._count("records", hit=False)
            return None
        self._count("records", hit=True)
        return record

    # ------------------------------------------------------------------
    # Static-analysis results (repro check --cache-dir)
    # ------------------------------------------------------------------
    @staticmethod
    def check_key(
        path: str,
        file_sha256: str,
        ruleset_fingerprint: str,
        engine_version: int,
    ) -> Dict[str, object]:
        """The canonical per-file static-check key payload.

        Keyed by file *content* (SHA-256), the rule-set fingerprint (which
        hashes the analyser's own sources) and the engine version, so an
        edit to the file, to any rule, or to the analysis semantics is a
        miss and forces re-analysis.
        """
        return {
            "kind": "check",
            "version": STORE_FORMAT_VERSION,
            "path": str(path),
            "file_sha256": str(file_sha256),
            "ruleset": str(ruleset_fingerprint),
            "engine_version": int(engine_version),
        }

    def save_check(self, key: Dict[str, object], result: Dict[str, object]) -> None:
        """Persist one file's analysis result (module record + findings)."""
        payload = {"key": key, "result": result}
        _write_artifact(
            self._path("checks", key, ".json"),
            json.dumps(payload).encode("utf-8"),
        )

    def load_check(self, key: Dict[str, object]) -> Optional[Dict[str, object]]:
        """The stored analysis result for ``key``, or None (a counted miss)."""
        path = self._path("checks", key, ".json")
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if payload["key"] != key:
                raise AnalysisError("artifact key mismatch")
            result = payload["result"]
            if not isinstance(result, dict):
                raise AnalysisError("malformed check result")
        except Exception:
            self._count("checks", hit=False)
            return None
        self._count("checks", hit=True)
        return result

    # ------------------------------------------------------------------
    # Out-of-core partition shards
    # ------------------------------------------------------------------
    @staticmethod
    def shard_key(
        dataset: str,
        partitioner: str,
        num_partitions: int,
        scale: float,
        seed: int,
    ) -> Dict[str, object]:
        """The canonical shard key payload (same shape as placements;
        callers should canonicalise the partitioner name first)."""
        return {
            "kind": "shard",
            "version": STORE_FORMAT_VERSION,
            "dataset": str(dataset),
            "partitioner": str(partitioner),
            "num_partitions": int(num_partitions),
            "scale": float(scale),
            "seed": int(seed),
        }

    def shard_member_path(self, key: Dict[str, object], member: str) -> str:
        """On-disk path of one shard sidecar (e.g. ``"vtx.npz"``,
        ``"p00003.npy"``) — this is what the engine memory-maps."""
        return self._path("shards", key, "." + member)

    def save_shard_member(self, key: Dict[str, object], member: str, data: bytes) -> None:
        """Persist one shard sidecar atomically.  Sidecars must all be
        published *before* :meth:`save_shard_manifest` so a crash mid-write
        leaves an unreferenced sidecar, never a dangling manifest."""
        _write_artifact(self.shard_member_path(key, member), data)

    @contextlib.contextmanager
    def open_shard_member(self, key: Dict[str, object], member: str):
        """Stream one shard sidecar to disk with the atomic-publish
        guarantee of :meth:`save_shard_member`, without ever holding the
        payload in memory.

        Yields a binary handle onto a temporary sibling; a clean exit
        ``os.replace``-s it into place, any exception removes it.  This is
        what lets the ingest writer emit multi-hundred-MiB partition files
        while staying inside an O(chunk) memory budget.
        """
        target = self.shard_member_path(key, member)
        try:
            directory = os.path.dirname(target) or "."
            os.makedirs(directory, exist_ok=True)
            temp_path = os.path.join(
                directory, f".tmp-{os.getpid()}-{os.urandom(6).hex()}.part"
            )
            fd = os.open(temp_path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o666)
        except OSError as exc:
            raise AnalysisError(f"cannot write artifact {target}: {exc}") from exc
        try:
            # Until os.fdopen hands fd to a file object, fd must be
            # closed on failure here or it leaks.
            handle = os.fdopen(fd, "wb")
        except BaseException:
            os.close(fd)
            try:
                os.remove(temp_path)
            except OSError:
                pass
            raise
        try:
            with handle:
                yield handle
            os.replace(temp_path, target)
        except BaseException as exc:
            try:
                os.remove(temp_path)
            except OSError:
                pass
            if isinstance(exc, OSError):
                raise AnalysisError(
                    f"cannot write artifact {target}: {exc}"
                ) from exc
            raise

    def save_shard_manifest(self, key: Dict[str, object], manifest: Dict[str, object]) -> None:
        """Publish a shard by writing its manifest (the commit point)."""
        payload = {"key": key, "manifest": manifest}
        _write_artifact(
            self._path("shards", key, ".json"),
            json.dumps(payload).encode("utf-8"),
        )

    def load_shard_manifest(self, key: Dict[str, object]) -> Optional[Dict[str, object]]:
        """The stored shard manifest for ``key``, or None.

        Deliberately does **not** touch the hit/miss counters: a shard load
        is only a hit once every sidecar the manifest references has been
        verified, so :func:`repro.ooc.mmap_graph.load_sharded_graph` owns
        the verdict and reports it through :meth:`count_shard`.
        """
        path = self._path("shards", key, ".json")
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if payload["key"] != key:
                raise AnalysisError("artifact key mismatch")
            manifest = payload["manifest"]
            if not isinstance(manifest, dict):
                raise AnalysisError("malformed shard manifest")
        except Exception:
            return None
        return manifest

    def count_shard(self, hit: bool) -> None:
        """Record the verdict of one shard load attempt (see above)."""
        self._count("shards", hit)

    def discard_shard(self, key: Dict[str, object]) -> None:
        """Remove a shard's manifest and every sidecar sharing its digest.

        The manifest goes first: a crash mid-discard leaves orphaned
        sidecars (swept by :meth:`clear`), never a manifest referencing
        deleted data.
        """
        directory = os.path.join(self.root, "shards")
        digest = _digest(_canonical_key(key))
        try:
            names = sorted(os.listdir(directory))
        except OSError:
            return
        members = [n for n in names if n.startswith(digest)]
        members.sort(key=lambda n: (not n.endswith(".json"), n))
        for name in members:
            try:
                os.remove(os.path.join(directory, name))
            except OSError:
                pass

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _artifact_files(self, kind: str) -> List[str]:
        directory = os.path.join(self.root, kind)
        try:
            names = os.listdir(directory)
        except OSError:
            return []
        return [
            os.path.join(directory, name)
            for name in sorted(names)
            if name.endswith((".npz", ".json"))
        ]

    def _sidecar_data_files(self, kind: str) -> List[str]:
        """Raw ``.npy`` edge files riding along shard manifests: part of the
        store's bytes and of ``clear``, but not artifacts in their own
        right (one shard = one manifest)."""
        directory = os.path.join(self.root, kind)
        try:
            names = os.listdir(directory)
        except OSError:
            return []
        return [
            os.path.join(directory, name)
            for name in sorted(names)
            if name.endswith(".npy")
        ]

    def info(self) -> StoreInfo:
        """Artifact counts and total bytes currently on disk."""
        counts: Dict[str, int] = {}
        total_bytes = 0
        for kind in _KINDS:
            files = self._artifact_files(kind)
            if kind == "shards":
                # One shard = one manifest; vertex tables (.npz) and edge
                # data (.npy) are sidecars counted in bytes only.
                counts[kind] = sum(1 for path in files if path.endswith(".json"))
                files = files + self._sidecar_data_files(kind)
            else:
                counts[kind] = len(files)
            for path in files:
                try:
                    total_bytes += os.path.getsize(path)
                except OSError:
                    pass
        return StoreInfo(
            root=self.root,
            placements=counts["placements"],
            landmarks=counts["landmarks"],
            records=counts["records"],
            shards=counts["shards"],
            checks=counts["checks"],
            total_bytes=total_bytes,
        )

    def clear(self, kind: Optional[str] = None) -> int:
        """Delete stored artifacts (all kinds, or just ``kind``); returns
        how many artifacts were removed.  Orphaned ``.part`` temp files —
        left by writers killed between create and rename — are swept too
        (not counted: they were never published artifacts).  Counters are
        kept — they describe the store's history, not its contents."""
        if kind is not None and kind not in _KINDS:
            raise AnalysisError(f"unknown artifact kind {kind!r}; expected one of {_KINDS}")
        removed = 0
        for name in _KINDS if kind is None else (kind,):
            paths = self._artifact_files(name)
            if name == "shards":
                paths = paths + self._sidecar_data_files(name)
            for path in paths:
                try:
                    os.remove(path)
                    # Shard sidecars (.npz vertex tables, .npy edge data)
                    # are removed but not counted: one shard = one manifest.
                    if name != "shards" or path.endswith(".json"):
                        removed += 1
                except OSError:
                    pass
            directory = os.path.join(self.root, name)
            try:
                orphans = [f for f in os.listdir(directory) if f.endswith(".part")]
            except OSError:
                orphans = []
            for orphan in orphans:
                try:
                    os.remove(os.path.join(directory, orphan))
                except OSError:
                    pass
        return removed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ArtifactStore(root={self.root!r})"


def as_store(store: Union["ArtifactStore", PathLike, None]) -> Optional[ArtifactStore]:
    """Coerce ``Session(store=...)`` input: a store, a directory path, or None."""
    if store is None or isinstance(store, ArtifactStore):
        return store
    if isinstance(store, (str, os.PathLike)):
        return ArtifactStore(store)
    raise AnalysisError(
        f"store must be an ArtifactStore or a directory path, got {type(store).__name__}"
    )
