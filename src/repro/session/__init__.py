"""Unified experiment sessions: caching, declarative grids, result sets.

This package is the front door of the experiment layer:

* :class:`Session` — memoized dataset loads and a partitioned-graph cache
  keyed by ``(dataset, partitioner, num_partitions, scale, seed)``;
* :class:`ExperimentPlan` — the fluent grid builder behind
  ``session.plan()``, expanding to explicit :class:`PlannedRun` cells and
  executing them (optionally on a thread pool);
* :class:`ResultSet` — the queryable, serialisable collection of
  :class:`~repro.analysis.results.RunRecord` a plan returns;
* :class:`ArtifactStore` — the persistent on-disk L2 behind
  ``Session(store=...)``: placements, landmark choices and completed run
  records survive the process, making sweeps warm-startable and
  resumable (``repro sweep --cache-dir/--resume``).

The legacy harness entry points (``run_algorithm_study``,
``run_partitioning_study``, ``run_infrastructure_study``,
``sweep_granularity``, ``recommend_empirically``) are thin wrappers over
this package; see :mod:`repro.analysis`.
"""

from .store import STORE_FORMAT_VERSION, ArtifactStore, DiskStats, StoreInfo
from .session import CacheStats, Session
from .resultset import ResultSet
from .plan import METRICS_ONLY, ExperimentPlan, PlannedRun, PlanPreview

__all__ = [
    "ArtifactStore",
    "CacheStats",
    "DiskStats",
    "ExperimentPlan",
    "METRICS_ONLY",
    "PlanPreview",
    "PlannedRun",
    "ResultSet",
    "STORE_FORMAT_VERSION",
    "Session",
    "StoreInfo",
]
