"""Sessions: memoized dataset loads and partitioned-graph caching.

The paper's evaluation is a *grid* — every partitioner x dataset x
granularity x algorithm (Tables 2-3, Figures 3-6) — and most cells of
that grid share the expensive work: generating the dataset analogue and
partitioning it.  A :class:`Session` owns those shared artefacts:

* dataset loads are memoized per ``(name, scale, seed)`` (pre-built
  graphs can be registered with :meth:`Session.add_graph`);
* partitioned graphs are memoized per ``(dataset, partitioner,
  num_partitions, scale, seed)``, so a full figure-suite reproduction
  partitions each triple exactly once no matter how many algorithms and
  backends consume it;
* SSSP landmark choices are memoized per ``(dataset, count, seed)``.

Every cache uses per-key build locks, so a multi-threaded
:meth:`ExperimentPlan.run` (see :mod:`repro.session.plan`) never builds
the same placement twice and never blocks unrelated builds on each
other.  :attr:`Session.stats` exposes hit/miss accounting for tests and
``repro sweep --dry-run`` estimates.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, TypeVar

from ..algorithms.shortest_paths import choose_landmarks
from ..core.graph import Graph
from ..datasets.catalog import load_dataset
from ..engine.cluster import ClusterConfig
from ..engine.cost_model import CostParameters
from ..engine.partitioned_graph import PartitionedGraph
from ..errors import AnalysisError
from ..partitioning.registry import canonical_partitioner_name

__all__ = ["CacheStats", "Session"]

T = TypeVar("T")


class _KeyedCache:
    """Thread-safe build-once memoization with per-key build locks.

    ``get(key, build)`` returns the cached value or runs ``build`` under a
    lock private to ``key``: concurrent requests for the same key build
    once and share the result, while different keys build in parallel.
    """

    def __init__(self) -> None:
        self._values: Dict[Hashable, object] = {}
        self._locks: Dict[Hashable, threading.Lock] = {}
        self._master = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable, build: Callable[[], T]) -> T:
        with self._master:
            if key in self._values:
                self.hits += 1
                return self._values[key]
            lock = self._locks.setdefault(key, threading.Lock())
        with lock:
            with self._master:
                if key in self._values:
                    self.hits += 1
                    return self._values[key]
            value = build()
            with self._master:
                self._values[key] = value
                self.misses += 1
            return value

    def count_hit(self) -> None:
        """Record a hit served outside the cache (e.g. a registered graph)."""
        with self._master:
            self.hits += 1

    def peek(self, key: Hashable):
        """The cached value for ``key`` (or None), without touching the stats."""
        with self._master:
            return self._values.get(key)

    def __contains__(self, key: Hashable) -> bool:
        with self._master:
            return key in self._values

    def __len__(self) -> int:
        with self._master:
            return len(self._values)

    def evict(self, predicate: Callable[[Hashable], bool]) -> None:
        """Drop every entry whose key matches ``predicate`` (stats are kept)."""
        with self._master:
            for key in [key for key in self._values if predicate(key)]:
                del self._values[key]
                self._locks.pop(key, None)

    def clear(self) -> None:
        with self._master:
            self._values.clear()
            self._locks.clear()


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss accounting of a session's graph and partition caches.

    A *miss* is a build: ``partition_misses`` counts how many placements
    were actually computed, ``partition_hits`` how many requests were
    served from the cache.  Registered pre-built graphs count as graph
    hits (they are never loaded by the session).
    """

    graph_hits: int
    graph_misses: int
    partition_hits: int
    partition_misses: int

    @property
    def partition_builds(self) -> int:
        """Alias: the number of placements actually partitioned."""
        return self.partition_misses

    def as_dict(self) -> Dict[str, int]:
        return {
            "graph_hits": self.graph_hits,
            "graph_misses": self.graph_misses,
            "partition_hits": self.partition_hits,
            "partition_misses": self.partition_misses,
        }


class Session:
    """Shared state behind a grid of experiments.

    ``scale`` and ``seed`` are the session's defaults for dataset
    generation; ``cluster`` and ``cost_parameters`` are the default
    simulation settings of plans opened with :meth:`plan`.  ``graphs``
    registers pre-built graphs by name (the equivalent of the legacy
    harness' ``graphs=`` argument).
    """

    def __init__(
        self,
        scale: float = 1.0,
        seed: int = 0,
        cluster: Optional[ClusterConfig] = None,
        cost_parameters: Optional[CostParameters] = None,
        graphs: Optional[Dict[str, Graph]] = None,
    ) -> None:
        if scale <= 0:
            raise AnalysisError("scale must be positive")
        self.scale = float(scale)
        self.seed = int(seed)
        self.cluster = cluster
        self.cost_parameters = cost_parameters
        self._registered: Dict[str, Graph] = {}
        self._graphs = _KeyedCache()
        self._partitions = _KeyedCache()
        self._engine_ready = _KeyedCache()
        self._landmarks = _KeyedCache()
        if graphs:
            for name, graph in graphs.items():
                self.add_graph(name, graph)

    # ------------------------------------------------------------------
    # Graphs
    # ------------------------------------------------------------------
    def add_graph(self, name: str, graph: Graph) -> "Session":
        """Register a pre-built graph under ``name`` (bypasses the catalog).

        Re-registering the same graph object is a no-op; registering a
        *different* graph under a name the session has already served
        evicts every placement and landmark choice built from the old
        graph, so the caches can never answer for the wrong graph.
        """
        if not isinstance(graph, Graph):
            raise AnalysisError(
                f"add_graph expects a Graph, got {type(graph).__name__}"
            )
        current = self.cached_graph(name)
        if current is not None and current is not graph:
            self._partitions.evict(lambda key: key[0] == name)
            self._engine_ready.evict(lambda key: key[0] == name)
            self._landmarks.evict(lambda key: key[0] == name)
            self._graphs.evict(lambda key: key[0] == name)
        self._registered[name] = graph
        return self

    def adopt_graph(self, name: str, graph: Graph) -> "Session":
        """Register ``graph`` under ``name``, refusing to displace another graph.

        The harness wrappers use this instead of :meth:`add_graph`: sharing
        a session across studies must never *silently* swap the graph every
        later study sees (and evict its placements).  Re-adopting the same
        object is a no-op; a conflicting graph raises — replace it
        explicitly with :meth:`add_graph` if that is really intended.
        """
        current = self.cached_graph(name)
        if current is not None and current is not graph:
            raise AnalysisError(
                f"session already serves a different graph named {name!r}; use a "
                f"fresh session, a distinct graph name, or replace it explicitly "
                f"with add_graph"
            )
        return self.add_graph(name, graph)

    def cached_graph(self, name: str) -> Optional[Graph]:
        """The graph currently answering to ``name`` (or None): registered
        graphs first, then previously catalog-loaded ones.  No stats impact."""
        registered = self._registered.get(name)
        if registered is not None:
            return registered
        return self._graphs.peek((name, self.scale, self.seed))

    def is_registered(self, name: str) -> bool:
        """Whether a pre-built graph was registered under ``name``.

        Registered graphs are served as-is regardless of the session's
        scale/seed; catalog loads are not (they follow the session's
        generation parameters).
        """
        return name in self._registered

    def graph(self, name: str) -> Graph:
        """The graph for ``name``: registered, cached, or loaded and cached."""
        registered = self._registered.get(name)
        if registered is not None:
            self._graphs.count_hit()
            return registered
        key = (name, self.scale, self.seed)
        return self._graphs.get(
            key, lambda: load_dataset(name, scale=self.scale, seed=self.seed)
        )

    # ------------------------------------------------------------------
    # Partitioned graphs
    # ------------------------------------------------------------------
    def _partition_key(self, dataset: str, partitioner: str, num_partitions: int):
        return (
            dataset,
            canonical_partitioner_name(partitioner),
            int(num_partitions),
            self.scale,
            self.seed,
        )

    def partitioned(
        self,
        dataset: str,
        partitioner: str,
        num_partitions: int,
        engine_ready: bool = False,
    ) -> PartitionedGraph:
        """The cached placement for ``(dataset, partitioner, num_partitions)``.

        Builds (and caches) the placement on first request; the Section 3.1
        metrics are computed inside the build lock so every consumer shares
        one metrics object.  ``engine_ready=True`` additionally materialises
        the engine-facing derived structures (edge partitions, routing
        table, triplet arrays) under a per-key lock, so concurrent
        algorithm cells share them instead of racing — and duplicating —
        the lazy initialisers on the shared ``PartitionedGraph``.
        Metrics-only consumers should leave it off: those structures are
        the dominant memory cost of a placement.
        """
        if num_partitions < 1:
            raise AnalysisError("num_partitions must be >= 1")
        key = self._partition_key(dataset, partitioner, num_partitions)

        def build() -> PartitionedGraph:
            graph = self.graph(dataset)
            pgraph = PartitionedGraph.partition(graph, key[1], num_partitions)
            pgraph.metrics  # materialise under the build lock (shared by all cells)
            return pgraph

        pgraph = self._partitions.get(key, build)
        if engine_ready:
            self._engine_ready.get(key, lambda: self._materialize_engine_state(pgraph))
        return pgraph

    @staticmethod
    def _materialize_engine_state(pgraph: PartitionedGraph) -> bool:
        pgraph.partitions
        pgraph.routing
        pgraph.triplets()
        return True

    def is_partitioned(
        self, dataset: str, partitioner: str, num_partitions: int
    ) -> bool:
        """Whether the placement is already cached (no stats impact)."""
        return self._partition_key(dataset, partitioner, num_partitions) in self._partitions

    # ------------------------------------------------------------------
    # Landmarks (SSSP)
    # ------------------------------------------------------------------
    def landmarks(self, dataset: str, count: int, seed: Optional[int] = None) -> List[int]:
        """Memoized deterministic SSSP landmark choice for ``dataset``.

        ``seed`` defaults to ``session.seed + 7``, matching the legacy
        ``run_algorithm_study`` convention.
        """
        chosen_seed = self.seed + 7 if seed is None else int(seed)
        key = (dataset, int(count), chosen_seed)
        return self._landmarks.get(
            key, lambda: choose_landmarks(self.graph(dataset), count=count, seed=chosen_seed)
        )

    # ------------------------------------------------------------------
    # Plans and accounting
    # ------------------------------------------------------------------
    def plan(self) -> "ExperimentPlan":
        """Open a declarative :class:`ExperimentPlan` over this session."""
        from .plan import ExperimentPlan

        return ExperimentPlan(self)

    @property
    def stats(self) -> CacheStats:
        """A snapshot of the session's cache accounting."""
        return CacheStats(
            graph_hits=self._graphs.hits,
            graph_misses=self._graphs.misses,
            partition_hits=self._partitions.hits,
            partition_misses=self._partitions.misses,
        )

    @property
    def num_cached_partitions(self) -> int:
        """How many placements the session currently holds."""
        return len(self._partitions)

    def clear(self) -> None:
        """Drop every cached graph, placement and landmark choice.

        Registered graphs stay registered; hit/miss counters are kept (they
        describe the session's history, not its current contents).
        """
        self._graphs.clear()
        self._partitions.clear()
        self._engine_ready.clear()
        self._landmarks.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Session(scale={self.scale}, seed={self.seed}, "
            f"graphs={len(self._graphs) + len(self._registered)}, "
            f"partitions={len(self._partitions)})"
        )
