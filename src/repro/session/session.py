"""Sessions: memoized dataset loads and partitioned-graph caching.

The paper's evaluation is a *grid* — every partitioner x dataset x
granularity x algorithm (Tables 2-3, Figures 3-6) — and most cells of
that grid share the expensive work: generating the dataset analogue and
partitioning it.  A :class:`Session` owns those shared artefacts:

* dataset loads are memoized per ``(name, scale, seed)`` (pre-built
  graphs can be registered with :meth:`Session.add_graph`);
* partitioned graphs are memoized per ``(dataset, partitioner,
  num_partitions, scale, seed)``, so a full figure-suite reproduction
  partitions each triple exactly once no matter how many algorithms and
  backends consume it;
* SSSP landmark choices are memoized per ``(dataset, count, seed)``.

Every cache uses per-key build locks, so a multi-threaded
:meth:`ExperimentPlan.run` (see :mod:`repro.session.plan`) never builds
the same placement twice and never blocks unrelated builds on each
other.  :attr:`Session.stats` exposes hit/miss accounting for tests and
``repro sweep --dry-run`` estimates.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, TypeVar, Union

from ..algorithms.shortest_paths import (
    LandmarkMatrix,
    build_landmark_matrix,
    choose_landmarks,
)
from ..core.graph import Graph
from ..core.io import PathLike
from ..datasets.catalog import load_dataset
from ..engine.cluster import ClusterConfig
from ..engine.cost_model import CostParameters
from ..engine.partitioned_graph import PartitionedGraph
from ..errors import AnalysisError, ReproError
from ..partitioning.base import EdgePartitionAssignment
from ..partitioning.registry import canonical_partitioner_name
from .store import ArtifactStore, as_store

__all__ = ["CacheStats", "Session"]

_T = TypeVar("_T")


class _KeyedCache:
    """Thread-safe build-once memoization with per-key build locks.

    ``get(key, build)`` returns the cached value or runs ``build`` under a
    lock private to ``key``: concurrent requests for the same key build
    once and share the result, while different keys build in parallel.
    """

    def __init__(self) -> None:
        self._values: Dict[Hashable, object] = {}
        self._locks: Dict[Hashable, threading.Lock] = {}
        self._master = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable, build: Callable[[], _T]) -> _T:
        with self._master:
            if key in self._values:
                self.hits += 1
                return self._values[key]
            lock = self._locks.setdefault(key, threading.Lock())
        with lock:
            with self._master:
                if key in self._values:
                    self.hits += 1
                    return self._values[key]
            value = build()
            with self._master:
                self._values[key] = value
                self.misses += 1
            return value

    def count_hit(self) -> None:
        """Record a hit served outside the cache (e.g. a registered graph)."""
        with self._master:
            self.hits += 1

    def peek(self, key: Hashable):
        """The cached value for ``key`` (or None), without touching the stats."""
        with self._master:
            return self._values.get(key)

    def __contains__(self, key: Hashable) -> bool:
        with self._master:
            return key in self._values

    def __len__(self) -> int:
        with self._master:
            return len(self._values)

    def evict(self, predicate: Callable[[Hashable], bool]) -> None:
        """Drop every entry whose key matches ``predicate`` (stats are kept)."""
        with self._master:
            for key in [key for key in self._values if predicate(key)]:
                del self._values[key]
                self._locks.pop(key, None)

    def clear(self) -> None:
        with self._master:
            self._values.clear()
            self._locks.clear()


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss accounting of a session's graph and partition caches.

    ``partition_hits`` / ``partition_misses`` describe the in-memory L1:
    a miss means the placement was not held in this process.  When the
    session has an on-disk :class:`~repro.session.store.ArtifactStore`
    attached, an L1 miss first consults the disk L2 — ``disk_partition_hits``
    counts placements rehydrated from disk, ``disk_partition_misses``
    placements that genuinely had to be partitioned (and were then
    persisted).  The same convention covers landmark choices and the
    completed-cell records an :class:`ExperimentPlan` resumes from.
    Registered pre-built graphs count as graph hits (they are never
    loaded by the session and never touch the disk store).
    """

    graph_hits: int
    graph_misses: int
    partition_hits: int
    partition_misses: int
    disk_partition_hits: int = 0
    disk_partition_misses: int = 0
    disk_landmark_hits: int = 0
    disk_landmark_misses: int = 0
    disk_record_hits: int = 0
    disk_record_misses: int = 0
    disk_shard_hits: int = 0
    disk_shard_misses: int = 0

    @property
    def partition_builds(self) -> int:
        """The number of placements actually partitioned (not rehydrated):
        L1 misses that the disk L2 could not answer either."""
        return self.partition_misses - self.disk_partition_hits

    @property
    def shard_builds(self) -> int:
        """Shards actually ingested (disk lookups the store could not answer)."""
        return self.disk_shard_misses

    @property
    def disk_hits(self) -> int:
        """Artifacts of any kind served from the disk store."""
        return (
            self.disk_partition_hits
            + self.disk_landmark_hits
            + self.disk_record_hits
            + self.disk_shard_hits
        )

    @property
    def disk_misses(self) -> int:
        """Disk lookups of any kind that had to rebuild (or first-run builds)."""
        return (
            self.disk_partition_misses
            + self.disk_landmark_misses
            + self.disk_record_misses
            + self.disk_shard_misses
        )

    def as_dict(self) -> Dict[str, int]:
        return {
            "graph_hits": self.graph_hits,
            "graph_misses": self.graph_misses,
            "partition_hits": self.partition_hits,
            "partition_misses": self.partition_misses,
            "disk_partition_hits": self.disk_partition_hits,
            "disk_partition_misses": self.disk_partition_misses,
            "disk_landmark_hits": self.disk_landmark_hits,
            "disk_landmark_misses": self.disk_landmark_misses,
            "disk_record_hits": self.disk_record_hits,
            "disk_record_misses": self.disk_record_misses,
            "disk_shard_hits": self.disk_shard_hits,
            "disk_shard_misses": self.disk_shard_misses,
        }


class Session:
    """Shared state behind a grid of experiments.

    ``scale`` and ``seed`` are the session's defaults for dataset
    generation; ``cluster`` and ``cost_parameters`` are the default
    simulation settings of plans opened with :meth:`plan`.  ``graphs``
    registers pre-built graphs by name (the equivalent of the legacy
    harness' ``graphs=`` argument).  ``store`` attaches a persistent
    :class:`~repro.session.store.ArtifactStore` (or a directory path to
    open one in): the in-memory caches become an L1 over that disk L2,
    so placements, landmark choices and completed run records survive
    the process.  Registered graphs never touch the store — their
    content is not derivable from the cache key, so a later process
    could be served the wrong placement.
    """

    def __init__(
        self,
        scale: float = 1.0,
        seed: int = 0,
        cluster: Optional[ClusterConfig] = None,
        cost_parameters: Optional[CostParameters] = None,
        graphs: Optional[Dict[str, Graph]] = None,
        store: Union[ArtifactStore, PathLike, None] = None,
    ) -> None:
        if scale <= 0:
            raise AnalysisError("scale must be positive")
        self.scale = float(scale)
        self.seed = int(seed)
        self.cluster = cluster
        self.cost_parameters = cost_parameters
        self.store = as_store(store)
        self._registered: Dict[str, Graph] = {}
        self._graphs = _KeyedCache()
        self._partitions = _KeyedCache()
        self._sharded = _KeyedCache()
        self._engine_ready = _KeyedCache()
        self._landmarks = _KeyedCache()
        self._landmark_matrices = _KeyedCache()
        self._disk_lock = threading.Lock()
        self._disk_counters: Dict[str, int] = {
            "partition_hits": 0,
            "partition_misses": 0,
            "landmark_hits": 0,
            "landmark_misses": 0,
            "record_hits": 0,
            "record_misses": 0,
            "shard_hits": 0,
            "shard_misses": 0,
        }
        self._absorbed: Dict[str, int] = {}
        if graphs:
            for name, graph in graphs.items():
                self.add_graph(name, graph)

    # ------------------------------------------------------------------
    # Disk store plumbing
    # ------------------------------------------------------------------
    def _store_for(self, dataset: str) -> Optional[ArtifactStore]:
        """The disk store, unless ``dataset`` is a registered graph (whose
        content the cache key cannot identify)."""
        if self.store is None or dataset in self._registered:
            return None
        return self.store

    def _count_disk(self, counter: str, hit: bool) -> None:
        """Session-level disk accounting (kept separate from the store's own
        counters, which a shared store would aggregate across sessions)."""
        key = f"{counter}_{'hits' if hit else 'misses'}"
        with self._disk_lock:
            self._disk_counters[key] += 1

    def absorb_stats(self, delta: Dict[str, int]) -> None:
        """Fold another session's ``CacheStats.as_dict()`` (or a delta of
        two snapshots) into this session's accounting.

        The process executor runs cells in worker sessions the parent
        never observes directly; absorbing their per-cell deltas keeps
        :attr:`stats` an honest fleet-wide picture — without it a
        process-parallel sweep would always report zero builds.
        """
        with self._disk_lock:
            for key, value in delta.items():
                self._absorbed[key] = self._absorbed.get(key, 0) + int(value)

    # ------------------------------------------------------------------
    # Graphs
    # ------------------------------------------------------------------
    def add_graph(self, name: str, graph: Graph) -> "Session":
        """Register a pre-built graph under ``name`` (bypasses the catalog).

        Re-registering the same graph object is a no-op; registering a
        *different* graph under a name the session has already served
        evicts every placement and landmark choice built from the old
        graph, so the caches can never answer for the wrong graph.
        """
        if not isinstance(graph, Graph):
            raise AnalysisError(
                f"add_graph expects a Graph, got {type(graph).__name__}"
            )
        current = self.cached_graph(name)
        if current is not None and current is not graph:
            self._partitions.evict(lambda key: key[0] == name)
            self._sharded.evict(lambda key: key[0] == name)
            self._engine_ready.evict(lambda key: key[0] == name)
            self._landmarks.evict(lambda key: key[0] == name)
            self._landmark_matrices.evict(lambda key: key[0] == name)
            self._graphs.evict(lambda key: key[0] == name)
        self._registered[name] = graph
        return self

    def adopt_graph(self, name: str, graph: Graph) -> "Session":
        """Register ``graph`` under ``name``, refusing to displace another graph.

        The harness wrappers use this instead of :meth:`add_graph`: sharing
        a session across studies must never *silently* swap the graph every
        later study sees (and evict its placements).  Re-adopting the same
        object is a no-op; a conflicting graph raises — replace it
        explicitly with :meth:`add_graph` if that is really intended.
        """
        current = self.cached_graph(name)
        if current is not None and current is not graph:
            raise AnalysisError(
                f"session already serves a different graph named {name!r}; use a "
                f"fresh session, a distinct graph name, or replace it explicitly "
                f"with add_graph"
            )
        return self.add_graph(name, graph)

    def cached_graph(self, name: str) -> Optional[Graph]:
        """The graph currently answering to ``name`` (or None): registered
        graphs first, then previously catalog-loaded ones.  No stats impact."""
        registered = self._registered.get(name)
        if registered is not None:
            return registered
        return self._graphs.peek((name, self.scale, self.seed))

    def is_registered(self, name: str) -> bool:
        """Whether a pre-built graph was registered under ``name``.

        Registered graphs are served as-is regardless of the session's
        scale/seed; catalog loads are not (they follow the session's
        generation parameters).
        """
        return name in self._registered

    def graph(self, name: str) -> Graph:
        """The graph for ``name``: registered, cached, or loaded and cached."""
        registered = self._registered.get(name)
        if registered is not None:
            self._graphs.count_hit()
            return registered
        key = (name, self.scale, self.seed)
        return self._graphs.get(
            key, lambda: load_dataset(name, scale=self.scale, seed=self.seed)
        )

    # ------------------------------------------------------------------
    # Partitioned graphs
    # ------------------------------------------------------------------
    def _partition_key(self, dataset: str, partitioner: str, num_partitions: int):
        return (
            dataset,
            canonical_partitioner_name(partitioner),
            int(num_partitions),
            self.scale,
            self.seed,
        )

    def partitioned(
        self,
        dataset: str,
        partitioner: str,
        num_partitions: int,
        engine_ready: bool = False,
    ) -> PartitionedGraph:
        """The cached placement for ``(dataset, partitioner, num_partitions)``.

        Builds (and caches) the placement on first request; the Section 3.1
        metrics are computed inside the build lock so every consumer shares
        one metrics object.  ``engine_ready=True`` additionally materialises
        the engine-facing derived structures (edge partitions, routing
        table, triplet arrays) under a per-key lock, so concurrent
        algorithm cells share them instead of racing — and duplicating —
        the lazy initialisers on the shared ``PartitionedGraph``.
        Metrics-only consumers should leave it off: those structures are
        the dominant memory cost of a placement.
        """
        if num_partitions < 1:
            raise AnalysisError("num_partitions must be >= 1")
        key = self._partition_key(dataset, partitioner, num_partitions)

        def build() -> PartitionedGraph:
            graph = self.graph(dataset)
            store = self._store_for(dataset)
            pgraph = None
            placement_key = None
            if store is not None:
                placement_key = ArtifactStore.placement_key(
                    dataset, key[1], int(num_partitions), self.scale, self.seed
                )
                pgraph = self._rehydrate_placement(store, placement_key, graph)
                self._count_disk("partition", hit=pgraph is not None)
            if pgraph is None:
                pgraph = PartitionedGraph.partition(graph, key[1], num_partitions)
                if store is not None:
                    store.save_placement(
                        placement_key,
                        pgraph.assignment.partition_of,
                        pgraph.assignment.strategy_name,
                    )
            pgraph.metrics  # materialise under the build lock (shared by all cells)
            return pgraph

        pgraph = self._partitions.get(key, build)
        if engine_ready:
            self._engine_ready.get(key, lambda: self._materialize_engine_state(pgraph))
        return pgraph

    @staticmethod
    def _rehydrate_placement(
        store: ArtifactStore, placement_key: Dict[str, object], graph: Graph
    ) -> Optional[PartitionedGraph]:
        """A :class:`PartitionedGraph` rebuilt from a stored placement array,
        or None when the artifact is absent, corrupt, or inconsistent with
        the graph (wrong length / out-of-range ids degrade to a miss)."""
        loaded = store.load_placement(placement_key)
        if loaded is None:
            return None
        partition_of, strategy_name = loaded
        try:
            assignment = EdgePartitionAssignment(
                graph=graph,
                num_partitions=int(placement_key["num_partitions"]),
                partition_of=partition_of,
                strategy_name=strategy_name,
            )
        except ReproError:
            return None
        return PartitionedGraph(assignment)

    @staticmethod
    def _materialize_engine_state(pgraph: PartitionedGraph) -> bool:
        pgraph.partitions
        pgraph.routing
        pgraph.triplets()
        return True

    def is_partitioned(
        self, dataset: str, partitioner: str, num_partitions: int
    ) -> bool:
        """Whether the placement is already cached (no stats impact)."""
        return self._partition_key(dataset, partitioner, num_partitions) in self._partitions

    # ------------------------------------------------------------------
    # Out-of-core sharded graphs
    # ------------------------------------------------------------------
    def sharded_partition(
        self,
        dataset: str,
        partitioner: str,
        num_partitions: int,
        source: Optional["EdgeChunkSource"] = None,
        chunk_edges: Optional[int] = None,
    ) -> "ShardedGraph":
        """The memory-mapped sharded graph for one placement triple.

        The out-of-core sibling of :meth:`partitioned`: serves the shard
        from the attached :class:`~repro.session.store.ArtifactStore` when
        present (``disk_shard_hits``), otherwise streams the dataset through
        the shard writer (``disk_shard_misses``) and memoizes the mmapped
        graph in this process.  ``source`` overrides the edge stream (for
        graphs too large to materialise — e.g. a
        :class:`~repro.ooc.chunks.SyntheticChunkSource`); without it the
        catalog graph is streamed chunk-wise.  Requires a store: shards are
        disk artifacts by definition.  Registered graphs are refused for
        the same reason they bypass the placement store — their content is
        not derivable from the cache key.
        """
        from ..ooc.chunks import DEFAULT_CHUNK_EDGES, GraphChunkSource
        from ..ooc.ingest import ingest_source

        if num_partitions < 1:
            raise AnalysisError("num_partitions must be >= 1")
        if self.store is None:
            raise AnalysisError(
                "sharded_partition requires a session store (Session(store=...)); "
                "shards are on-disk artifacts"
            )
        if dataset in self._registered:
            raise AnalysisError(
                f"dataset {dataset!r} is a registered in-memory graph; shards are "
                f"keyed by (name, scale, seed) and cannot identify its content"
            )
        chunk = DEFAULT_CHUNK_EDGES if chunk_edges is None else int(chunk_edges)
        key = self._partition_key(dataset, partitioner, num_partitions)

        def build() -> "ShardedGraph":
            stream = source
            if stream is None:
                stream = GraphChunkSource(self.graph(dataset), chunk_edges=chunk)
            graph, report = ingest_source(
                self.store,
                stream,
                key[1],
                int(num_partitions),
                scale=self.scale,
                seed=self.seed,
                chunk_edges=chunk,
            )
            self._count_disk("shard", hit=report.reused)
            return graph

        return self._sharded.get(key, build)

    # ------------------------------------------------------------------
    # Landmarks (SSSP)
    # ------------------------------------------------------------------
    def landmarks(self, dataset: str, count: int, seed: Optional[int] = None) -> List[int]:
        """Memoized deterministic SSSP landmark choice for ``dataset``.

        ``seed`` defaults to ``session.seed + 7``, matching the legacy
        ``run_algorithm_study`` convention.
        """
        chosen_seed = self.seed + 7 if seed is None else int(seed)
        key = (dataset, int(count), chosen_seed)

        def build() -> List[int]:
            store = self._store_for(dataset)
            landmark_key = None
            if store is not None:
                landmark_key = ArtifactStore.landmark_key(
                    dataset, int(count), chosen_seed, self.scale, self.seed
                )
                stored = store.load_landmarks(landmark_key)
                self._count_disk("landmark", hit=stored is not None)
                if stored is not None:
                    return stored
            chosen = choose_landmarks(self.graph(dataset), count=count, seed=chosen_seed)
            if store is not None:
                store.save_landmarks(landmark_key, chosen)
            return chosen

        return self._landmarks.get(key, build)

    def landmark_matrix(
        self,
        dataset: str,
        partitioner: str,
        num_partitions: int,
        count: int,
        seed: Optional[int] = None,
    ) -> LandmarkMatrix:
        """Memoized landmark-distance matrix for one served placement.

        The serving layer answers point-to-point distance queries from
        this matrix (triangle-inequality estimates), so it is built once
        per ``(placement, count, seed)`` — two Pregel sweeps — and shared
        by every subsequent query and server worker.  Landmark *choices*
        go through :meth:`landmarks` (and therefore the disk store); the
        matrix itself is in-memory only, since rebuilding it from a
        disk-rehydrated placement is exactly two engine runs.
        """
        chosen_seed = self.seed + 7 if seed is None else int(seed)
        key = (
            dataset,
            canonical_partitioner_name(partitioner),
            int(num_partitions),
            int(count),
            chosen_seed,
        )

        def build() -> LandmarkMatrix:
            pgraph = self.partitioned(
                dataset, partitioner, num_partitions, engine_ready=True
            )
            chosen = self.landmarks(dataset, count, seed=chosen_seed)
            return build_landmark_matrix(pgraph, chosen)

        return self._landmark_matrices.get(key, build)

    # ------------------------------------------------------------------
    # Plans and accounting
    # ------------------------------------------------------------------
    def plan(self) -> "ExperimentPlan":
        """Open a declarative :class:`ExperimentPlan` over this session."""
        from .plan import ExperimentPlan

        return ExperimentPlan(self)

    @property
    def stats(self) -> CacheStats:
        """A snapshot of the session's cache accounting (including any
        worker-session activity absorbed via :meth:`absorb_stats`)."""
        with self._disk_lock:
            disk = dict(self._disk_counters)
            absorbed = dict(self._absorbed)
        return CacheStats(
            graph_hits=self._graphs.hits + absorbed.get("graph_hits", 0),
            graph_misses=self._graphs.misses + absorbed.get("graph_misses", 0),
            partition_hits=self._partitions.hits + absorbed.get("partition_hits", 0),
            partition_misses=self._partitions.misses + absorbed.get("partition_misses", 0),
            disk_partition_hits=disk["partition_hits"] + absorbed.get("disk_partition_hits", 0),
            disk_partition_misses=disk["partition_misses"]
            + absorbed.get("disk_partition_misses", 0),
            disk_landmark_hits=disk["landmark_hits"] + absorbed.get("disk_landmark_hits", 0),
            disk_landmark_misses=disk["landmark_misses"]
            + absorbed.get("disk_landmark_misses", 0),
            disk_record_hits=disk["record_hits"] + absorbed.get("disk_record_hits", 0),
            disk_record_misses=disk["record_misses"] + absorbed.get("disk_record_misses", 0),
            disk_shard_hits=disk["shard_hits"] + absorbed.get("disk_shard_hits", 0),
            disk_shard_misses=disk["shard_misses"] + absorbed.get("disk_shard_misses", 0),
        )

    @property
    def num_cached_partitions(self) -> int:
        """How many placements the session currently holds."""
        return len(self._partitions)

    def clear(self) -> None:
        """Drop every cached graph, placement and landmark choice.

        Registered graphs stay registered; hit/miss counters are kept (they
        describe the session's history, not its current contents).
        """
        self._graphs.clear()
        self._partitions.clear()
        self._sharded.clear()
        self._engine_ready.clear()
        self._landmarks.clear()
        self._landmark_matrices.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Session(scale={self.scale}, seed={self.seed}, "
            f"graphs={len(self._graphs) + len(self._registered)}, "
            f"partitions={len(self._partitions)})"
        )
