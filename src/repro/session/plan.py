"""Declarative experiment grids: the fluent planner behind the harness.

An :class:`ExperimentPlan` describes a grid of runs the way the paper's
evaluation is structured — datasets x partitioners x granularities x
algorithms x backends — and expands it into explicit, inspectable
:class:`PlannedRun` cells::

    session = Session(scale=0.35, seed=17)
    results = (
        session.plan()
        .datasets("youtube", "pokec")
        .partitioners("2D", "DC")
        .granularities(128, 256)
        .algorithms("PR", "CC")
        .run(workers=4)
    )

Cells execute against the session's partition cache, so each ``(dataset,
partitioner, num_partitions)`` triple is partitioned exactly once no
matter how many algorithm/backend cells consume it.  ``run(workers=N)``
executes cells on a thread pool — safe because both the simulator's
array-native supersteps and the vectorized kernels only read the shared
:class:`~repro.engine.partitioned_graph.PartitionedGraph` — or, with
``executor="process"``, on separate worker interpreters that rebuild
placements through the session's shared artifact store.  Either way
records come back in cell order, so parallel runs are record-identical
to serial ones.  When the session has a store attached, completed cells
are persisted as they finish and already-stored cells are skipped
(unless ``resume=False``), which is what makes interrupted grids
resumable.

A plan with no ``algorithms(...)`` call is *metrics-only*: each cell
just materialises the placement and its Section 3.1 metrics (the Tables
2-3 workload), recorded with ``algorithm == METRICS_ONLY`` and zero
simulated time.
"""

from __future__ import annotations

import dataclasses
import json
import numbers
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..algorithms.registry import canonical_algorithm_name, run_algorithm
from ..backends import get_backend
from ..engine.cluster import ClusterConfig
from ..engine.cost_model import CostParameters
from ..errors import AnalysisError, EngineError
from ..partitioning.registry import PAPER_PARTITIONER_NAMES, canonical_partitioner_name
from .resultset import ResultSet
from .session import Session, _KeyedCache
from .store import ArtifactStore

__all__ = [
    "EXECUTORS","METRICS_ONLY", "PlannedRun", "PlanPreview", "ExperimentPlan"]

#: ``RunRecord.algorithm`` marker of metrics-only cells (no execution).
METRICS_ONLY = "METRICS"

#: Supported ``ExperimentPlan.run`` executors.
EXECUTORS = ("thread", "process")


def _validate_workers(workers) -> int:
    """``workers`` as a plain int; non-integers (e.g. ``2.5``) are rejected
    instead of being silently truncated by ``int(...)``."""
    if isinstance(workers, bool) or not isinstance(workers, numbers.Integral):
        raise AnalysisError(f"workers must be an integer >= 1, got {workers!r}")
    if workers < 1:
        raise AnalysisError("workers must be >= 1")
    return int(workers)


def _simulation_fingerprint(
    cluster: Optional[ClusterConfig], cost_parameters: Optional[CostParameters]
) -> Optional[str]:
    """A canonical string identifying a non-default simulation setup, so
    stored records never answer for runs under a different calibration."""
    if cluster is None and cost_parameters is None:
        return None
    return json.dumps(
        {
            "cluster": None if cluster is None else dataclasses.asdict(cluster),
            "cost_parameters": (
                None if cost_parameters is None else dataclasses.asdict(cost_parameters)
            ),
        },
        sort_keys=True,
        separators=(",", ":"),
    )


@dataclass(frozen=True)
class PlannedRun:
    """One fully-resolved cell of an experiment grid."""

    dataset: str
    partitioner: str
    num_partitions: int
    algorithm: Optional[str]  # None = metrics-only (no algorithm execution)
    backend: str
    num_iterations: int
    scale: float
    seed: int

    @property
    def partition_key(self) -> Tuple[str, str, int, float, int]:
        """The session cache key this cell resolves its placement through."""
        return (self.dataset, self.partitioner, self.num_partitions, self.scale, self.seed)

    def as_row(self) -> dict:
        """Flatten the cell for tabulation (``repro sweep --dry-run``)."""
        return {
            "dataset": self.dataset,
            "partitioner": self.partitioner,
            "partitions": self.num_partitions,
            "algorithm": self.algorithm or METRICS_ONLY.lower(),
            "backend": self.backend if self.algorithm else "-",
            "iterations": self.num_iterations if self.algorithm else "-",
        }


@dataclass(frozen=True)
class PlanPreview:
    """What a plan would do: its cells and the partition-cache forecast."""

    cells: Tuple[PlannedRun, ...]
    unique_partitions: int
    partition_builds: int
    expected_cache_hits: int

    @property
    def num_cells(self) -> int:
        return len(self.cells)


def _flatten(values: Sequence) -> List:
    """Accept both varargs and a single iterable: f(a, b) == f([a, b])."""
    if len(values) == 1 and isinstance(values[0], (list, tuple, set, frozenset)):
        return list(values[0])
    return list(values)


class ExperimentPlan:
    """Fluent builder for a grid of runs over one :class:`Session`.

    Every setter validates eagerly and returns ``self``.  Defaults mirror
    the paper's setup: all six partitioners, granularities 128 and 256,
    the ``reference`` backend, 10 iterations — and *metrics-only* cells
    until :meth:`algorithms` is called.
    """

    #: The paper's two granularities (configurations i and ii).
    DEFAULT_GRANULARITIES = (128, 256)

    def __init__(self, session: Session) -> None:
        self._session = session
        self._datasets: Optional[List[str]] = None
        self._partitioners: List[str] = list(PAPER_PARTITIONER_NAMES)
        self._granularities: List[int] = list(self.DEFAULT_GRANULARITIES)
        self._algorithms: List[Optional[str]] = [None]
        self._backends: List[str] = ["reference"]
        self._num_iterations: int = 10
        self._landmark_count: Optional[int] = None
        self._landmark_seed: Optional[int] = None
        self._cluster: Optional[ClusterConfig] = session.cluster
        self._cost_parameters: Optional[CostParameters] = session.cost_parameters
        self._engine_workers: Optional[int] = None

    # ------------------------------------------------------------------
    # Grid axes
    # ------------------------------------------------------------------
    def datasets(self, *names: str) -> "ExperimentPlan":
        """Datasets to cover (names resolved through the session's catalog)."""
        resolved = _flatten(names)
        if not resolved:
            raise AnalysisError("datasets(...) requires at least one dataset name")
        self._datasets = [str(name) for name in resolved]
        return self

    def partitioners(self, *names: str) -> "ExperimentPlan":
        """Partitioning strategies, case-insensitive (default: the paper's six)."""
        resolved = _flatten(names)
        if not resolved:
            raise AnalysisError("partitioners(...) requires at least one strategy name")
        self._partitioners = [canonical_partitioner_name(name) for name in resolved]
        return self

    def granularities(self, *counts: int) -> "ExperimentPlan":
        """Partition counts to sweep (default: the paper's 128 and 256)."""
        resolved = _flatten(counts)
        if not resolved:
            raise AnalysisError("granularities(...) requires at least one partition count")
        if any(int(count) < 1 for count in resolved):
            raise AnalysisError("partition counts must be >= 1")
        self._granularities = [int(count) for count in resolved]
        return self

    def algorithms(self, *names: str) -> "ExperimentPlan":
        """Algorithms to execute per placement.

        Calling with no arguments (or an explicit ``None``) makes the plan
        *metrics-only*.  An empty iterable is rejected — a caller
        forwarding a user-supplied list that happens to be empty should
        fail loudly, not silently degrade to zero-timing metrics records.
        """
        if not names:
            self._algorithms = [None]
            return self
        resolved = _flatten(names)
        if resolved == [None]:
            self._algorithms = [None]
            return self
        if not resolved:
            raise AnalysisError(
                "algorithms(...) requires at least one algorithm name; "
                "call algorithms() with no arguments for a metrics-only plan"
            )
        try:
            self._algorithms = [canonical_algorithm_name(name) for name in resolved]
        except EngineError as error:
            raise AnalysisError(str(error)) from error
        return self

    def backends(self, *names: str) -> "ExperimentPlan":
        """Execution backends (default: the ``reference`` simulator)."""
        resolved = _flatten(names)
        if not resolved:
            raise AnalysisError("backends(...) requires at least one backend name")
        for name in resolved:
            get_backend(name)  # validate eagerly; raises BackendError if unknown
        self._backends = [str(name) for name in resolved]
        return self

    # ------------------------------------------------------------------
    # Execution parameters
    # ------------------------------------------------------------------
    def iterations(self, count: int) -> "ExperimentPlan":
        """Superstep budget per algorithm run (default 10, the paper's setting)."""
        if int(count) < 1:
            raise AnalysisError("num_iterations must be >= 1")
        self._num_iterations = int(count)
        return self

    def landmarks(self, count: int, seed: Optional[int] = None) -> "ExperimentPlan":
        """Pre-choose ``count`` SSSP landmarks per dataset (memoized on the session).

        Without this call SSSP cells let :func:`run_algorithm` pick its own
        default landmark.  ``seed`` defaults to ``session.seed + 7``.
        """
        if int(count) < 1:
            raise AnalysisError("landmark count must be >= 1")
        self._landmark_count = int(count)
        self._landmark_seed = None if seed is None else int(seed)
        return self

    def cluster(self, cluster: Optional[ClusterConfig]) -> "ExperimentPlan":
        """Simulated cluster for reference-backend cells (default: the session's)."""
        self._cluster = cluster
        return self

    def cost_parameters(self, parameters: Optional[CostParameters]) -> "ExperimentPlan":
        """Cost-model calibration for reference-backend cells."""
        self._cost_parameters = parameters
        return self

    def engine_workers(self, workers: Optional[int]) -> "ExperimentPlan":
        """Shared-memory Pregel workers per cell (``None``/1 = serial).

        Fans each reference-backend Pregel run's supersteps across a
        process pool (see :mod:`repro.engine.parallel`).  Results are
        bit-identical at any worker count, so this is deliberately *not*
        part of the record identity: cached records from serial runs
        satisfy parallel plans and vice versa.  Composes with
        ``run(workers=...)``: that parallelises across cells, this within
        one.
        """
        if workers is not None and int(workers) < 1:
            raise AnalysisError("engine_workers must be >= 1")
        self._engine_workers = None if workers is None else int(workers)
        return self

    # ------------------------------------------------------------------
    # Expansion
    # ------------------------------------------------------------------
    def cells(self) -> List[PlannedRun]:
        """Expand the grid into explicit cells.

        The order is deterministic and mirrors the legacy harness loops:
        dataset-major, then granularity, then algorithm, then backend,
        then partitioner — so single-axis plans reproduce the record
        order of ``run_algorithm_study`` (dataset -> partitioner) and
        ``sweep_granularity`` (granularity -> partitioner) exactly.
        """
        if self._datasets is None:
            from ..datasets.catalog import PAPER_DATASET_NAMES

            datasets = list(PAPER_DATASET_NAMES)
        else:
            datasets = self._datasets
        return [
            PlannedRun(
                dataset=dataset,
                partitioner=partitioner,
                num_partitions=num_partitions,
                algorithm=algorithm,
                backend=backend,
                num_iterations=self._num_iterations,
                scale=self._session.scale,
                seed=self._session.seed,
            )
            for dataset in datasets
            for num_partitions in self._granularities
            for algorithm in self._algorithms
            for backend in self._backends
            for partitioner in self._partitioners
        ]

    def preview(self) -> PlanPreview:
        """The planned cells plus a partition-cache forecast (no execution)."""
        cells = tuple(self.cells())
        unique = {cell.partition_key for cell in cells}
        builds = sum(
            1
            for dataset, partitioner, num_partitions, _, _ in unique
            if not self._session.is_partitioned(dataset, partitioner, num_partitions)
        )
        return PlanPreview(
            cells=cells,
            unique_partitions=len(unique),
            partition_builds=builds,
            expected_cache_hits=len(cells) - builds,
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        workers: int = 1,
        executor: str = "thread",
        resume: Optional[bool] = None,
    ) -> ResultSet:
        """Execute every cell and return a :class:`ResultSet` in cell order.

        ``workers`` > 1 executes cells concurrently — on a thread pool by
        default, or on a :class:`~concurrent.futures.ProcessPoolExecutor`
        with ``executor="process"`` (cells ship to workers as picklable
        specs; each worker process rebuilds placements through the shared
        artifact store when one is attached).  Results are always
        re-assembled in cell order, so the records are identical to a
        ``workers=1`` run (measured wall-clock timings aside).

        When the session has an artifact store, every completed cell's
        record is persisted as it finishes, and — unless ``resume=False``
        — cells whose records are already stored are *not* re-executed:
        an interrupted grid resumes from where it stopped, and repeating
        a finished sweep re-runs nothing.  ``resume=True`` makes that
        expectation explicit (it raises without a store).
        """
        workers = _validate_workers(workers)
        if executor not in EXECUTORS:
            raise AnalysisError(
                f"unknown executor {executor!r}; expected one of {EXECUTORS}"
            )
        session = self._session
        if resume is None:
            reuse = session.store is not None
        else:
            reuse = bool(resume)
            if reuse and session.store is None:
                raise AnalysisError(
                    "resume=True requires a session with an artifact store attached "
                    "(Session(store=...))"
                )
        cells = self.cells()
        if executor == "process":
            # Validate up front, against the *whole* grid: whether a cell is
            # rejected must not depend on how many cells the store already
            # holds or on the worker count.
            for cell in cells:
                if session.is_registered(cell.dataset):
                    raise AnalysisError(
                        f"executor='process' cannot reach the registered graph "
                        f"{cell.dataset!r} from worker processes; use "
                        f"executor='thread' or catalog datasets"
                    )
        records: List[Optional[object]] = [None] * len(cells)
        pending: List[Tuple[int, PlannedRun]] = []
        for index, cell in enumerate(cells):
            store = session._store_for(cell.dataset)
            if reuse and store is not None:
                stored = store.load_record(self._record_key(cell))
                session._count_disk("record", hit=stored is not None)
                if stored is not None:
                    records[index] = stored
                    continue
            pending.append((index, cell))

        if pending:
            only = [cell for _, cell in pending]
            # workers == 1 always runs serially in-process (a one-worker
            # pool would only add IPC overhead); with workers > 1 the
            # process executor is used even for a single pending cell, so
            # what "executor='process'" reports is what actually happened.
            if executor == "process" and workers > 1:
                computed = self._run_in_processes(only, workers)
            else:
                computed = self._run_in_threads(only, workers)
            for (index, _), record in zip(pending, computed):
                records[index] = record
        return ResultSet(records)

    def _run_in_threads(self, cells: Sequence[PlannedRun], workers: int) -> List[object]:
        """Serial / thread-pool execution against this process's session."""
        # Partition-oblivious backends (e.g. ``vectorized``) produce the
        # same result for every placement of a dataset, so their cells
        # share one execution per (dataset, algorithm, iterations).
        oblivious_memo = _KeyedCache()
        session = self._session

        def execute(cell: PlannedRun):
            record = self._execute(cell, oblivious_memo)
            store = session._store_for(cell.dataset)
            if store is not None:
                # Persist per cell (not per grid) so a killed process can
                # resume from its last completed cell.
                store.save_record(self._record_key(cell), record)
            return record

        if workers == 1 or len(cells) <= 1:
            return [execute(cell) for cell in cells]
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(execute, cells))

    def _run_in_processes(self, cells: Sequence[PlannedRun], workers: int) -> List[object]:
        """Multi-core execution: ship cells to worker processes as specs.

        Each worker rebuilds a session from the spec — sharing placements,
        landmarks and records through the artifact store when the parent
        session has one — and executes cells with the exact serial code
        path, so the returned records are identical to an in-process run.
        """
        session = self._session
        context = _WorkerContext(
            scale=session.scale,
            seed=session.seed,
            store_root=None if session.store is None else session.store.root,
            cluster=self._cluster,
            cost_parameters=self._cost_parameters,
            landmark_count=self._landmark_count,
            landmark_seed=self._landmark_seed,
            engine_workers=self._engine_workers,
        )
        with ProcessPoolExecutor(max_workers=workers) as pool:
            outcomes = list(
                pool.map(_execute_cell_in_worker, [(context, cell) for cell in cells])
            )
        records = []
        for record, stats_delta in outcomes:
            # Surface the workers' cache activity in the parent session, so
            # `session.stats` (and the CLI's cache report) stays honest for
            # process-parallel runs instead of reading all zeros.
            session.absorb_stats(stats_delta)
            records.append(record)
        return records

    def _record_key(self, cell: PlannedRun) -> Dict[str, object]:
        """The artifact-store key identifying ``cell``'s completed record.

        Includes everything the record's values depend on: the grid axes,
        the effective SSSP landmark choice, and a fingerprint of any
        non-default cluster / cost-model calibration.
        """
        landmarks = None
        if cell.algorithm == "SSSP" and self._landmark_count is not None:
            seed = (
                self._session.seed + 7
                if self._landmark_seed is None
                else self._landmark_seed
            )
            landmarks = (self._landmark_count, seed)
        return ArtifactStore.record_key(
            dataset=cell.dataset,
            partitioner=cell.partitioner,
            num_partitions=cell.num_partitions,
            algorithm=cell.algorithm or METRICS_ONLY,
            backend=cell.backend if cell.algorithm else "none",
            num_iterations=cell.num_iterations if cell.algorithm else 0,
            scale=cell.scale,
            seed=cell.seed,
            landmarks=landmarks,
            simulation=(
                None
                if cell.algorithm is None
                else _simulation_fingerprint(self._cluster, self._cost_parameters)
            ),
        )

    def _execute(self, cell: PlannedRun, oblivious_memo: _KeyedCache):
        from ..analysis.results import RunRecord

        session = self._session
        backend = None if cell.algorithm is None else get_backend(cell.backend)
        # Partition-aware execution touches the placement's derived engine
        # structures; materialise them under the session's per-key lock so
        # concurrent cells share one build instead of racing the lazy
        # initialisers.  Metrics-only and partition-oblivious cells skip it.
        pgraph = session.partitioned(
            cell.dataset,
            cell.partitioner,
            cell.num_partitions,
            engine_ready=backend is not None and backend.uses_partitioning,
        )
        if cell.algorithm is None:
            return RunRecord(
                dataset=cell.dataset,
                partitioner=cell.partitioner,
                num_partitions=cell.num_partitions,
                algorithm=METRICS_ONLY,
                metrics=pgraph.metrics,
                simulated_seconds=0.0,
                num_supersteps=0,
                backend="none",
                wall_seconds=0.0,
            )

        landmarks = None
        if cell.algorithm == "SSSP" and self._landmark_count is not None:
            landmarks = session.landmarks(
                cell.dataset, self._landmark_count, self._landmark_seed
            )

        def run_cell():
            return run_algorithm(
                cell.algorithm,
                pgraph,
                num_iterations=cell.num_iterations,
                landmarks=landmarks,
                cluster=self._cluster,
                cost_parameters=self._cost_parameters,
                backend=cell.backend,
                engine_workers=self._engine_workers,
            )

        if backend.uses_partitioning:
            result = run_cell()
        else:
            memo_key = (cell.dataset, cell.algorithm, cell.backend, cell.num_iterations)
            result = oblivious_memo.get(memo_key, run_cell)

        return RunRecord(
            dataset=cell.dataset,
            partitioner=cell.partitioner,
            num_partitions=cell.num_partitions,
            algorithm=cell.algorithm,
            metrics=pgraph.metrics,
            simulated_seconds=result.simulated_seconds,
            num_supersteps=result.num_supersteps,
            backend=result.backend,
            wall_seconds=result.wall_seconds,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        datasets = "paper" if self._datasets is None else len(self._datasets)
        algorithms = [name or METRICS_ONLY.lower() for name in self._algorithms]
        return (
            f"ExperimentPlan(datasets={datasets}, partitioners={self._partitioners}, "
            f"granularities={self._granularities}, algorithms={algorithms}, "
            f"backends={self._backends})"
        )


# ----------------------------------------------------------------------
# Process-pool worker side
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _WorkerContext:
    """Everything a worker process needs to rebuild the plan's execution
    environment (all fields are picklable and hashable)."""

    scale: float
    seed: int
    store_root: Optional[str]
    cluster: Optional[ClusterConfig]
    cost_parameters: Optional[CostParameters]
    landmark_count: Optional[int]
    landmark_seed: Optional[int]
    engine_workers: Optional[int] = None


#: Per-process cache: one rebuilt (plan, oblivious-memo) pair per context,
#: so a worker executing many cells shares graph loads and placements
#: instead of rebuilding them per cell.
_WORKER_STATE: Dict[_WorkerContext, Tuple["ExperimentPlan", _KeyedCache]] = {}


def _worker_state(context: _WorkerContext) -> Tuple["ExperimentPlan", _KeyedCache]:
    state = _WORKER_STATE.get(context)
    if state is None:
        session = Session(
            scale=context.scale,
            seed=context.seed,
            cluster=context.cluster,
            cost_parameters=context.cost_parameters,
            store=context.store_root,
        )
        plan = ExperimentPlan(session)
        plan._cluster = context.cluster
        plan._cost_parameters = context.cost_parameters
        plan._landmark_count = context.landmark_count
        plan._landmark_seed = context.landmark_seed
        plan._engine_workers = context.engine_workers
        state = (plan, _KeyedCache())
        _WORKER_STATE[context] = state
    return state


def _execute_cell_in_worker(payload: Tuple[_WorkerContext, PlannedRun]):
    """Top-level (hence picklable) entry point of process-pool workers.

    Runs the exact serial execution path against a per-process session;
    when a store is shared, the completed record is persisted *from the
    worker*, so even cells whose results never reach a killed parent
    remain resumable.  Returns ``(record, stats_delta)`` — the cell's
    cache accounting, for the parent session to absorb.
    """
    context, cell = payload
    plan, oblivious_memo = _worker_state(context)
    before = plan._session.stats.as_dict()
    record = plan._execute(cell, oblivious_memo)
    store = plan._session._store_for(cell.dataset)
    if store is not None:
        store.save_record(plan._record_key(cell), record)
    after = plan._session.stats.as_dict()
    delta = {key: after[key] - before[key] for key in after}
    return record, delta
