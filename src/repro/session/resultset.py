"""ResultSet: a queryable, serialisable collection of run records.

:meth:`ExperimentPlan.run` returns one of these.  It behaves like an
immutable sequence of :class:`~repro.analysis.results.RunRecord` and adds
the post-processing verbs the paper's analysis needs — ``filter``,
``group_by``, ``best``, ``pivot`` — plus JSON round-tripping built on the
existing record serialisation, so grids can be archived and re-analysed
without re-running anything.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Union

from ..analysis.results import RunRecord, records_to_rows
from ..analysis.serialization import (
    PathLike,
    load_records,
    record_from_dict,
    record_to_dict,
    save_records,
)
from ..errors import AnalysisError

__all__ = ["ResultSet"]

#: Aliases accepted wherever a field name selects a record value.
_FIELD_ALIASES = {"seconds": "simulated_seconds", "partitions": "num_partitions"}

#: Direct attributes of RunRecord; anything else resolves as a metric name.
_RECORD_FIELDS = frozenset(
    (
        "dataset",
        "partitioner",
        "num_partitions",
        "algorithm",
        "simulated_seconds",
        "num_supersteps",
        "backend",
        "wall_seconds",
    )
)


def _value_of(record: RunRecord, field: str):
    """A record value by field name: record attributes first, then metrics."""
    name = _FIELD_ALIASES.get(field, field)
    if name in _RECORD_FIELDS:
        return getattr(record, name)
    return record.metrics.value(name)


class ResultSet:
    """An ordered, immutable collection of run records."""

    __slots__ = ("_records",)

    def __init__(self, records: Iterable[RunRecord] = ()) -> None:
        self._records = tuple(records)

    # ------------------------------------------------------------------
    # Sequence protocol
    # ------------------------------------------------------------------
    @property
    def records(self) -> List[RunRecord]:
        """The records as a plain list (a copy; the set itself is immutable)."""
        return list(self._records)

    def __iter__(self) -> Iterator[RunRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __getitem__(self, index: Union[int, slice]):
        if isinstance(index, slice):
            return ResultSet(self._records[index])
        return self._records[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ResultSet):
            return self._records == other._records
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultSet({len(self._records)} records)"

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def filter(
        self,
        predicate: Optional[Callable[[RunRecord], bool]] = None,
        **fields,
    ) -> "ResultSet":
        """Records matching a predicate and/or field constraints.

        Field constraints compare by equality, or by membership when the
        expected value is a list/tuple/set/frozenset::

            results.filter(algorithm="PR", num_partitions=(128, 256))
        """

        def matches(record: RunRecord) -> bool:
            if predicate is not None and not predicate(record):
                return False
            for field, expected in fields.items():
                value = _value_of(record, field)
                if isinstance(expected, (list, tuple, set, frozenset)):
                    if value not in expected:
                        return False
                elif value != expected:
                    return False
            return True

        return ResultSet(record for record in self._records if matches(record))

    def group_by(self, field: str) -> Dict[object, "ResultSet"]:
        """Partition the records by a field value, preserving record order."""
        grouped: Dict[object, List[RunRecord]] = {}
        for record in self._records:
            grouped.setdefault(_value_of(record, field), []).append(record)
        return {key: ResultSet(records) for key, records in grouped.items()}

    def best(self, by: str = "simulated_seconds") -> RunRecord:
        """The record minimising ``by`` (a record field or metric name)."""
        if not self._records:
            raise AnalysisError("cannot take the best record of an empty result set")
        return min(self._records, key=lambda record: _value_of(record, by))

    def pivot(
        self,
        rows: str = "dataset",
        cols: str = "partitioner",
        value: str = "simulated_seconds",
    ) -> Dict[object, Dict[object, object]]:
        """A two-axis table ``{row: {col: value}}`` of one value per cell.

        Raises :class:`AnalysisError` when several records land in the same
        cell (filter the set down to one grid slice first).
        """
        table: Dict[object, Dict[object, object]] = {}
        for record in self._records:
            row_key = _value_of(record, rows)
            col_key = _value_of(record, cols)
            row = table.setdefault(row_key, {})
            if col_key in row:
                raise AnalysisError(
                    f"pivot cell ({row_key!r}, {col_key!r}) is ambiguous: several "
                    f"records match; filter the result set to one grid slice first"
                )
            row[col_key] = _value_of(record, value)
        return table

    def to_rows(self) -> List[Dict[str, object]]:
        """Flat dict rows for tabulation (same shape as ``records_to_rows``)."""
        return records_to_rows(self._records)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialise to a JSON string (the ``save_records`` payload format)."""
        return json.dumps([record_to_dict(record) for record in self._records], indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ResultSet":
        """Rebuild a result set from :meth:`to_json` output."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise AnalysisError(f"result set payload is not valid JSON: {exc}") from exc
        if not isinstance(payload, list):
            raise AnalysisError("result set payload must be a JSON list of run records")
        return cls(record_from_dict(item) for item in payload)

    def save(self, path: PathLike, indent: int = 2) -> None:
        """Write the records to a JSON file (readable by ``load_records``)."""
        save_records(self._records, path, indent=indent)

    @classmethod
    def load(cls, path: PathLike) -> "ResultSet":
        """Read a result set from a file written by :meth:`save` (or ``save_records``)."""
        return cls(load_records(path))
