"""repro: reproduction of "Cut to Fit: Tailoring the Partitioning to the Computation".

The package re-implements, in pure Python, the full experimental pipeline
of Kolokasis & Pratikakis' study of vertex-cut partitioning in GraphX:

* :mod:`repro.core` — the property-graph substrate and dataset statistics;
* :mod:`repro.datasets` — synthetic analogues of the paper's nine datasets;
* :mod:`repro.partitioning` — the six evaluated partitioners (plus
  extensions) and :mod:`repro.metrics` — the five partitioning metrics;
* :mod:`repro.engine` — a GraphX-like BSP engine with a simulated cluster
  cost model;
* :mod:`repro.algorithms` — PageRank, Connected Components, Triangle Count
  and SSSP on top of the engine;
* :mod:`repro.backends` — pluggable execution backends: the ``reference``
  cost-model simulator and the ``vectorized`` CSR/numpy kernels;
* :mod:`repro.analysis` — the experiment harness, correlation analysis and
  the "cut to fit" partitioner advisor.

Quickstart
----------
>>> from repro import load_dataset, PartitionedGraph, pagerank
>>> graph = load_dataset("youtube", scale=0.2)
>>> pgraph = PartitionedGraph.partition(graph, "2D", num_partitions=16)
>>> result = pagerank(pgraph, num_iterations=10)
>>> round(result.simulated_seconds, 3) > 0
True
"""

from ._version import __version__
from .algorithms import (
    AlgorithmResult,
    connected_components,
    degree_count,
    pagerank,
    run_algorithm,
    shortest_paths,
    total_triangles,
    triangle_count,
)
from .analysis import (
    ExperimentConfig,
    Recommendation,
    RunRecord,
    recommend_empirically,
    recommend_partitioner,
    run_algorithm_study,
    run_infrastructure_study,
    run_partitioning_study,
)
from .backends import (
    Backend,
    CSRGraph,
    available_backends,
    get_backend,
    register_backend,
    validate_backends,
)
from .core import Graph, GraphBuilder, GraphSummary, read_edge_list, summarize, write_edge_list
from .datasets import PAPER_DATASET_NAMES, load_all_datasets, load_dataset
from .engine import ClusterConfig, CostParameters, PartitionedGraph, paper_cluster, pregel
from .errors import (
    AnalysisError,
    BackendError,
    DatasetError,
    EngineError,
    GraphIOError,
    GraphValidationError,
    PartitioningError,
    ReproError,
)
from .metrics import PartitioningMetrics, compute_metrics
from .partitioning import (
    EXTENSION_PARTITIONER_NAMES,
    PAPER_PARTITIONER_NAMES,
    VertexMembership,
    canonical_partitioner_name,
    make_partitioner,
    paper_partitioners,
)

__all__ = [
    "__version__",
    "AlgorithmResult",
    "AnalysisError",
    "Backend",
    "BackendError",
    "CSRGraph",
    "ClusterConfig",
    "CostParameters",
    "DatasetError",
    "EngineError",
    "ExperimentConfig",
    "EXTENSION_PARTITIONER_NAMES",
    "Graph",
    "GraphBuilder",
    "GraphIOError",
    "GraphSummary",
    "GraphValidationError",
    "PAPER_DATASET_NAMES",
    "PAPER_PARTITIONER_NAMES",
    "PartitionedGraph",
    "PartitioningError",
    "PartitioningMetrics",
    "Recommendation",
    "ReproError",
    "RunRecord",
    "VertexMembership",
    "available_backends",
    "canonical_partitioner_name",
    "compute_metrics",
    "connected_components",
    "degree_count",
    "get_backend",
    "load_all_datasets",
    "load_dataset",
    "make_partitioner",
    "pagerank",
    "paper_cluster",
    "paper_partitioners",
    "pregel",
    "read_edge_list",
    "recommend_empirically",
    "register_backend",
    "recommend_partitioner",
    "run_algorithm",
    "run_algorithm_study",
    "run_infrastructure_study",
    "run_partitioning_study",
    "shortest_paths",
    "summarize",
    "total_triangles",
    "triangle_count",
    "validate_backends",
    "write_edge_list",
]
